//! Adaptive-bitrate (ABR) video streaming over simulated mmWave 5G — the
//! paper's flagship use case (§2.2/§2.3; with prediction error ≤ 20%, ABR
//! QoE approaches optimal [58]).
//!
//! A walker streams ultra-HD video along the 1300 m Loop. The player
//! (`lumos5g::abr`) runs real buffer dynamics; three prediction sources
//! pick each segment's bitrate:
//!   - oracle — knows the future throughput (upper bound);
//!   - harmonic — harmonic mean of past observed throughput (FESTIVE/MPC);
//!   - lumos5g — GDBT L+M+C next-second prediction.
//!
//! ```text
//! cargo run --release --example video_streaming
//! ```

use lumos5g::abr::{simulate_session, PlayerConfig, Predictor};
use lumos5g::features::{FeatureSet, FeatureSpec};
use lumos5g::prelude::*;
use lumos5g::tabular::build_tabular;
use lumos5g_ml::GbdtRegressor;
use lumos5g_sim::{loop_area, quality, run_campaign, CampaignConfig, Dataset};

fn main() {
    // Drive the loop: speed-dependent degradation and handoffs make the
    // link volatile — exactly where prediction pays (Fig 14a).
    let area = loop_area(11);
    let cfg = CampaignConfig {
        passes_per_trajectory: 5,
        max_duration_s: 1100,
        mode: lumos5g_sim::MobilityMode::driving(),
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    let (data, _) = quality::apply(&raw, &area.frame, &Default::default());

    // Train Lumos5G on 4 of 5 passes; stream the held-out pass.
    let train: Dataset = data.filter(|r| r.pass_id % 5 != 4);
    let session: Dataset = data.filter(|r| r.pass_id == 4 && r.trajectory == 0);

    let spec = FeatureSpec::new(FeatureSet::LMC);
    let tr = build_tabular(&train, &spec);
    let gbdt = GbdtRegressor::fit(&tr.xs, &tr.ys, &quick_gbdt());

    // The held-out pass becomes the ground-truth trace; Lumos5G predicts
    // each next second from the features of the previous one.
    let te = build_tabular(&session, &spec);
    let trace: Vec<f64> = te.ys.clone();
    let lumos_pred: Vec<f64> = te.xs.iter().map(|x| gbdt.predict_row(x)).collect();
    println!(
        "training on {} s, streaming session of {} s",
        tr.len(),
        trace.len()
    );

    let player = PlayerConfig {
        buffer_capacity_s: 4.0, // small buffer: prediction quality matters
        ..Default::default()
    };
    println!(
        "\n{:<10} {:>9} {:>12} {:>10} {:>8} {:>9}",
        "policy", "QoE", "avg bitrate", "rebuffer%", "stalls", "switches"
    );
    for (name, pred) in [
        ("oracle", Predictor::Oracle),
        ("lumos5g", Predictor::Supplied(lumos_pred)),
        ("harmonic", Predictor::Harmonic { window: 5 }),
    ] {
        let r = simulate_session(&trace, &pred, &player);
        println!(
            "{name:<10} {:>9.0} {:>9.0} Mb {:>9.1}% {:>8} {:>7.0} Mb",
            r.qoe,
            r.avg_bitrate_mbps,
            r.rebuffer_ratio * 100.0,
            r.stall_events,
            r.avg_switch_mbps
        );
    }

    let lumos = simulate_session(
        &trace,
        &Predictor::Supplied(te.xs.iter().map(|x| gbdt.predict_row(x)).collect()),
        &player,
    );
    let hm = simulate_session(&trace, &Predictor::Harmonic { window: 5 }, &player);
    if lumos.qoe > hm.qoe {
        println!("\nLumos5G prediction beats the harmonic-mean baseline, as §6.3 expects.");
    } else {
        println!("\nNote: harmonic mean won this session — try more training passes.");
    }
}
