//! The paper's Fig 4 scenario: Alice rides a taxi along the same street
//! where Bob is walking. Their apps query the downloaded throughput map
//! with a *conical* look-ahead (the paper's "conical heatmap") and a
//! mode-aware Lumos5G model — Alice should expect worse throughput than
//! Bob at the very same locations, purely because of her speed and the car
//! body (§2.3, §4.6).
//!
//! ```text
//! cargo run --release --example fig4_scenario
//! ```

use lumos5g::prelude::*;
use lumos5g_sim::{loop_area, quality, run_campaign, CampaignConfig, MobilityMode};

fn main() {
    let area = loop_area(37);

    // Build per-mode throughput maps from crowdsourced campaigns.
    let campaign = |mode: MobilityMode, seed: u64| {
        let cfg = CampaignConfig {
            passes_per_trajectory: 4,
            mode,
            base_seed: seed,
            max_duration_s: 1100,
            bad_gps_fraction: 0.0,
            ..Default::default()
        };
        let raw = run_campaign(&area, &cfg);
        quality::apply(&raw, &area.frame, &Default::default()).0
    };
    let walk_data = campaign(MobilityMode::walking(), 1);
    let drive_data = campaign(MobilityMode::driving(), 2);

    let walk_map = ThroughputMap::from_dataset(&walk_data);
    let drive_map = ThroughputMap::from_dataset(&drive_data);
    println!(
        "maps built: walking {} cells, driving {} cells",
        walk_map.len(),
        drive_map.len()
    );

    // Bob and Alice are both on the south street heading east, mid-block.
    let (x, y, heading) = (150.0, 0.0, 90.0);
    println!("\nBoth look 60 m ahead (±25° cone) from ({x:.0} m, {y:.0} m), heading east:");
    let bob = walk_map.conical_query(x, y, heading, 25.0, 60.0);
    let alice = drive_map.conical_query(x, y, heading, 25.0, 60.0);
    match (bob, alice) {
        (Some(b), Some(a)) => {
            println!("  Bob (walking)  expects ≈ {b:.0} Mbps ahead");
            println!("  Alice (taxi)   expects ≈ {a:.0} Mbps ahead");
            println!(
                "  → the same street, {:.1}× worse from the car at speed (§4.6)",
                b / a
            );
        }
        _ => println!("  (cone not covered — rerun with more passes)"),
    }

    // Sweep the look-ahead along the street to show where each should
    // pre-buffer (the paper's "anticipate and prepare" for handoff patches).
    println!("\nlook-ahead sweep along the south street (walking map):");
    println!("{:>8} {:>14}", "x (m)", "expected Mbps");
    for xs in (20..400).step_by(40) {
        if let Some(v) = walk_map.conical_query(xs as f64, 0.0, 90.0, 25.0, 50.0) {
            let marker = if v < 300.0 {
                "  ← pre-buffer here"
            } else {
                ""
            };
            println!("{:>8} {:>14.0}{marker}", xs, v);
        }
    }
}
