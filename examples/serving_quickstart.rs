//! Minimal end-to-end tour of `lumos5g-serve`: train a model, start the
//! sharded engine, stream a simulated campaign through it, hot-swap the
//! model mid-stream, and print the engine report.
//!
//! ```sh
//! cargo run --release --example serving_quickstart
//! ```

use lumos5g::prelude::*;
use lumos5g_serve::{Engine, EngineConfig, ReplaySource};
use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig};

fn main() {
    // Simulate a small drive-test campaign to get training + replay data.
    let area = airport(7);
    let cfg = CampaignConfig {
        passes_per_trajectory: 2,
        max_duration_s: 150,
        base_seed: 7,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let (data, _) = quality::apply(&run_campaign(&area, &cfg), &area.frame, &Default::default());
    println!("campaign: {} records", data.records.len());

    // Train the model the engine will serve.
    let model = Lumos5G::new(FeatureSet::LMC, ModelKind::Gdbt(quick_gbdt()))
        .fit_regression(&data)
        .expect("fit");

    // Start the engine (4 shards by default) and stream the campaign
    // through it as a multi-UE feed.
    let engine = Engine::start(model, EngineConfig::default());
    let source = ReplaySource::from_dataset(&data, 16);
    let events = source.len();
    let rx = engine.responses().clone();
    let consumer =
        std::thread::spawn(move || rx.iter().filter(|p| p.predicted_mbps.is_some()).count());

    source.run(&engine, 0.0); // 0.0 = replay at maximum speed

    // Hot-swap a retrained model mid-service: new sessions pick up the new
    // version atomically, nothing is dropped or reordered.
    let retrained = Lumos5G::new(FeatureSet::LM, ModelKind::Gdbt(quick_gbdt()))
        .fit_regression(&data)
        .expect("refit");
    let version = engine.registry().swap(retrained);
    source.run(&engine, 0.0); // second pass served by v2

    let (report, responses) = engine.shutdown();
    drop(responses);
    let predictions = consumer.join().expect("consumer");
    println!(
        "served {} events twice ({} processed), {} predictions, model v{version}",
        events, report.processed, predictions
    );
    println!(
        "p50 {:.1} us  p95 {:.1} us  p99 {:.1} us  online MAE {:.1} Mbps",
        report.p50_ns as f64 / 1e3,
        report.p95_ns as f64 / 1e3,
        report.p99_ns as f64 / 1e3,
        report.mae_mbps.unwrap_or(f64::NAN)
    );
}
