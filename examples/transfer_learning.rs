//! Cross-panel transferability (§6.2): tower-based (T+M) features are
//! location-agnostic, so a model trained on one panel's surroundings can
//! predict throughput around a *different* panel it has never seen.
//!
//! ```text
//! cargo run --release --example transfer_learning
//! ```

use lumos5g::prelude::*;
use lumos5g::transfer::panel_transfer;
use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig};

fn main() {
    let area = airport(29);
    let cfg = CampaignConfig {
        passes_per_trajectory: 10,
        max_duration_s: 400,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    let (data, _) = quality::apply(&raw, &area.frame, &Default::default());

    // Panel ids at the Airport: 1 = South, 2 = North (see lumos5g_sim).
    println!("Training a T+M GDBT classifier on NORTH-panel samples,");
    println!("testing on SOUTH-panel samples the model never saw.\n");

    let r = panel_transfer(&data, 2, 1, &quick_gbdt(), 25.0).expect("enough samples");
    println!(
        "overall weighted-F1 on the unseen panel : {:.2}",
        r.overall_f1
    );
    println!(
        "weighted-F1 within {:.0} m of the panel    : {:.2}  ({} samples)",
        r.near_radius_m, r.near_f1, r.n_near
    );

    // Control: train and test on the same (south) panel.
    let control = panel_transfer(&data, 1, 1, &quick_gbdt(), 25.0).expect("enough samples");
    println!(
        "same-panel control weighted-F1          : {:.2}",
        control.overall_f1
    );

    println!(
        "\nPaper §6.2 reports 0.71 overall rising to 0.91 near-field —\n\
         the same pattern: geometry transfers, far-field clutter does not."
    );

    // Contrast with location-based features, which cannot transfer at all:
    // an L+M model trained on the north half has never seen the south
    // half's coordinates.
    let north_half = data.filter(|r| r.true_y_m > 160.0);
    let south_half = data.filter(|r| r.true_y_m <= 160.0);
    let lm = Lumos5G::new(FeatureSet::LM, ModelKind::Gdbt(quick_gbdt()))
        .fit_classification(&north_half)
        .expect("train");
    let (t, p) = lm.eval(&south_half);
    let f1 = lumos5g_ml::weighted_f1(&t, &p, ThroughputClass::COUNT);
    println!("\nL+M model trained north / tested south weighted-F1: {f1:.2} (location features do not transfer)");
}
