//! Quickstart: simulate a small measurement campaign, clean it with the
//! paper's §3.1 quality pipeline, train a Lumos5G GDBT model on the L+M
//! feature group, and report the paper's metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lumos5g::prelude::*;
use lumos5g_ml::{mae, rmse};
use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig};

fn main() {
    // 1. Simulate walking passes through the Airport corridor (the paper's
    //    indoor area: two head-on mmWave panels, booth obstacles).
    let area = airport(7);
    let cfg = CampaignConfig {
        passes_per_trajectory: 6,
        max_duration_s: 400,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    println!("raw records: {}", raw.len());

    // 2. Quality pipeline: discard bad-GPS passes, trim the calibration
    //    buffer, pixelize to the zoom-17 grid.
    let (data, report) = quality::apply(&raw, &area.frame, &Default::default());
    println!(
        "after pipeline: {} records ({} of {} passes discarded)",
        data.len(),
        report.passes_discarded,
        report.passes_total
    );

    // 3. Train the composable predictor: GDBT on Location + Mobility.
    let model = Lumos5G::new(FeatureSet::LM, ModelKind::Gdbt(quick_gbdt()))
        .fit_regression(&data)
        .expect("training data available");

    // 4. Evaluate next-second throughput prediction.
    let (truth, pred) = model.eval(&data);
    println!("\nGDBT (L+M) on {} samples:", truth.len());
    println!("  MAE  = {:>6.1} Mbps", mae(&truth, &pred));
    println!("  RMSE = {:>6.1} Mbps", rmse(&truth, &pred));

    // 5. Qualitative view: the 3-class prediction of §5.2.
    let clf = Lumos5G::new(FeatureSet::LM, ModelKind::Gdbt(quick_gbdt()))
        .fit_classification(&data)
        .expect("training data available");
    let (ct, cp) = clf.eval(&data);
    let f1 = lumos5g_ml::weighted_f1(&ct, &cp, ThroughputClass::COUNT);
    println!("  weighted F1 (low/medium/high classes) = {f1:.3}");

    // 6. And the throughput map the paper envisions (Fig 3c/6).
    let map = ThroughputMap::from_dataset(&data);
    println!(
        "\nthroughput map: {} populated 2m cells ({}% above 1 Gbps)",
        map.len(),
        (map.bucket_fraction(5) * 100.0).round()
    );
    println!("{}", map.to_ascii());
}
