//! Build the paper's direction-aware throughput maps (Figs 6 & 9): the same
//! Airport corridor mapped from north-bound vs south-bound walks looks
//! completely different — mmWave body blockage follows the walker.
//!
//! ```text
//! cargo run --release --example throughput_map
//! ```

use lumos5g::prelude::*;
use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig};

fn main() {
    let area = airport(19);
    let cfg = CampaignConfig {
        passes_per_trajectory: 8,
        max_duration_s: 400,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    let (data, _) = quality::apply(&raw, &area.frame, &Default::default());

    // Trajectory 0 = NB, 1 = SB (see lumos5g_sim::airport).
    let nb = data.by_trajectory(0);
    let sb = data.by_trajectory(1);

    let map_nb = ThroughputMap::from_dataset(&nb);
    let map_sb = ThroughputMap::from_dataset(&sb);

    println!("legend: 0 = <60 Mbps … 5 = >1 Gbps, '.' = no samples\n");
    println!("=== North-bound walks ({} cells) ===", map_nb.len());
    println!("{}", map_nb.to_ascii());
    println!("=== South-bound walks ({} cells) ===", map_sb.len());
    println!("{}", map_sb.to_ascii());

    // Quantify the direction effect at shared locations.
    let mut diffs = Vec::new();
    for (cell, stats_nb) in map_nb.cells() {
        let center = lumos5g_geo::GridIndex::paper_map_grid().center_of(*cell);
        if let Some(stats_sb) = map_sb.query(center.x, center.y) {
            if stats_nb.n >= 5 && stats_sb.n >= 5 {
                diffs.push((stats_nb.mean - stats_sb.mean).abs());
            }
        }
    }
    diffs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if !diffs.is_empty() {
        let median = diffs[diffs.len() / 2];
        println!(
            "cells covered in both directions: {}   median |NB − SB| mean throughput: {:.0} Mbps",
            diffs.len(),
            median
        );
        println!("(the paper's Fig 9: same floor tiles, different map per direction)");
    }

    // Persist CSVs for plotting.
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/example_map_nb.csv", map_nb.to_csv()).ok();
    std::fs::write("results/example_map_sb.csv", map_sb.to_csv()).ok();
    println!("CSV maps written to results/example_map_{{nb,sb}}.csv");
}
