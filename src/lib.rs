//! Workspace-level umbrella crate: hosts the integration tests in `tests/`
//! and the runnable examples in `examples/`. All functionality lives in the
//! `lumos5g-*` member crates; see the workspace README for an overview.
