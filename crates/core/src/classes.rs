//! Throughput classes (§5.2).
//!
//! The paper casts qualitative prediction as 3-way classification with
//! boundaries at 300 and 700 Mbps, chosen because mmWave throughput
//! fluctuates ±200 Mbps from uncontrollable effects. The low class's recall
//! is a first-class metric: predicting "high" when the truth is "low"
//! stalls a video, the reverse merely lowers quality.

/// Qualitative throughput level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ThroughputClass {
    /// Below 300 Mbps (4G-like or worse).
    Low = 0,
    /// 300–700 Mbps.
    Medium = 1,
    /// Above 700 Mbps (mmWave working as advertised).
    High = 2,
}

impl ThroughputClass {
    /// Lower boundary of the Medium class, Mbps.
    pub const LOW_BOUNDARY_MBPS: f64 = 300.0;
    /// Lower boundary of the High class, Mbps.
    pub const HIGH_BOUNDARY_MBPS: f64 = 700.0;
    /// Number of classes.
    pub const COUNT: usize = 3;

    /// Classify a throughput value.
    pub fn of(throughput_mbps: f64) -> Self {
        if throughput_mbps < Self::LOW_BOUNDARY_MBPS {
            ThroughputClass::Low
        } else if throughput_mbps < Self::HIGH_BOUNDARY_MBPS {
            ThroughputClass::Medium
        } else {
            ThroughputClass::High
        }
    }

    /// Class index (0 = Low).
    pub fn index(self) -> usize {
        self as usize
    }

    /// From a class index.
    pub fn from_index(i: usize) -> Option<Self> {
        match i {
            0 => Some(ThroughputClass::Low),
            1 => Some(ThroughputClass::Medium),
            2 => Some(ThroughputClass::High),
            _ => None,
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ThroughputClass::Low => "low",
            ThroughputClass::Medium => "medium",
            ThroughputClass::High => "high",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_match_paper() {
        assert_eq!(ThroughputClass::of(0.0), ThroughputClass::Low);
        assert_eq!(ThroughputClass::of(299.999), ThroughputClass::Low);
        assert_eq!(ThroughputClass::of(300.0), ThroughputClass::Medium);
        assert_eq!(ThroughputClass::of(699.999), ThroughputClass::Medium);
        assert_eq!(ThroughputClass::of(700.0), ThroughputClass::High);
        assert_eq!(ThroughputClass::of(2000.0), ThroughputClass::High);
    }

    #[test]
    fn index_roundtrip() {
        for c in [
            ThroughputClass::Low,
            ThroughputClass::Medium,
            ThroughputClass::High,
        ] {
            assert_eq!(ThroughputClass::from_index(c.index()), Some(c));
        }
        assert_eq!(ThroughputClass::from_index(3), None);
    }

    #[test]
    fn ordering_is_by_level() {
        assert!(ThroughputClass::Low < ThroughputClass::Medium);
        assert!(ThroughputClass::Medium < ThroughputClass::High);
    }
}
