//! The composable Lumos5G predictor (§5).
//!
//! [`Lumos5G`] binds a [`FeatureSpec`] (which feature groups to use) to a
//! [`ModelKind`] (GDBT, Seq2Seq, or one of the 3G/4G baselines) and trains
//! either a regressor or a classifier on a simulated-campaign [`Dataset`].
//! Trained models evaluate directly against a dataset — each model family
//! internally builds the representation it needs (tabular rows, sequences,
//! coordinates, or throughput history), which is what makes the framework
//! "composable": swapping models or feature groups is a one-line change.

use crate::classes::ThroughputClass;
use crate::features::FeatureSpec;
use crate::tabular::{build_sequences, build_tabular};
use lumos5g_ml::dataset::TargetScaler;
use lumos5g_ml::forest::ForestConfig;
use lumos5g_ml::{
    GbdtClassifier, GbdtConfig, GbdtRegressor, HarmonicMeanPredictor, KnnClassifier, KnnRegressor,
    OrdinaryKriging, RandomForestClassifier, RandomForestRegressor, Seq2Seq, Seq2SeqConfig,
    StandardScaler,
};
use lumos5g_sim::Dataset;

/// Seq2Seq training parameters at the framework level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Seq2SeqParams {
    /// Encoder input sequence length (paper: 20).
    pub input_len: usize,
    /// Prediction horizon `k` (paper: 20).
    pub horizon: usize,
    /// Hidden units (paper: 128).
    pub hidden: usize,
    /// Stacked layers (paper: 2).
    pub layers: usize,
    /// Training epochs (paper: 2000).
    pub epochs: usize,
    /// Minibatch size (paper: 256).
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Window stride when slicing training sequences.
    pub stride: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of sequences held out for early stopping (0 disables).
    pub val_fraction: f64,
    /// Epochs without validation improvement before stopping (0 disables);
    /// the best epoch's weights are restored.
    pub patience: usize,
}

impl Default for Seq2SeqParams {
    fn default() -> Self {
        Seq2SeqParams {
            input_len: 20,
            horizon: 20,
            hidden: 64,
            layers: 2,
            epochs: 40,
            batch_size: 128,
            lr: 3e-3,
            stride: 2,
            seed: 0,
            val_fraction: 0.0,
            patience: 0,
        }
    }
}

/// Model family selector.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelKind {
    /// Gradient-boosted decision trees (proposed, light-weight).
    Gdbt(GbdtConfig),
    /// LSTM Seq2Seq encoder–decoder (proposed, expressive).
    Seq2Seq(Seq2SeqParams),
    /// k-nearest-neighbours baseline.
    Knn {
        /// Number of neighbours.
        k: usize,
    },
    /// Random Forest baseline \[20\].
    RandomForest(ForestConfig),
    /// Ordinary Kriging baseline \[26\] (location-only).
    Kriging {
        /// Local neighbourhood size per prediction.
        neighbors: usize,
    },
    /// Harmonic-mean history baseline \[38, 64\].
    HarmonicMean {
        /// History window length.
        window: usize,
    },
}

/// A fast GDBT config for examples/tests (the paper-scale config is
/// `GbdtConfig::paper_scale()`).
pub fn quick_gbdt() -> GbdtConfig {
    GbdtConfig {
        n_estimators: 60,
        max_depth: 4,
        learning_rate: 0.15,
        min_samples_leaf: 5,
        subsample: 0.8,
        seed: 0,
    }
}

/// A fast Seq2Seq config for examples/tests.
pub fn quick_seq2seq() -> Seq2SeqParams {
    Seq2SeqParams {
        input_len: 10,
        horizon: 5,
        hidden: 16,
        layers: 2,
        epochs: 8,
        batch_size: 32,
        lr: 5e-3,
        stride: 3,
        seed: 0,
        val_fraction: 0.0,
        patience: 0,
    }
}

/// The untrained framework object: a feature set bound to a model family.
#[derive(Debug, Clone)]
pub struct Lumos5G {
    /// Feature extraction configuration.
    pub spec: FeatureSpec,
    /// Model family and hyperparameters.
    pub model: ModelKind,
}

impl Lumos5G {
    /// Bind a feature set to a model.
    pub fn new(set: crate::features::FeatureSet, model: ModelKind) -> Self {
        Lumos5G {
            spec: FeatureSpec::new(set),
            model,
        }
    }

    /// Train a regressor on `data` (next-second throughput prediction).
    ///
    /// Non-finite feature values are rejected up front with an `Err` — a
    /// single corrupt logger sample must not panic mid-fit.
    pub fn fit_regression(&self, data: &Dataset) -> Result<TrainedRegressor, String> {
        data.check_finite()
            .map_err(|e| format!("non-finite training data: {e}"))?;
        match &self.model {
            ModelKind::Gdbt(cfg) => {
                let td = build_tabular(data, &self.spec);
                if td.is_empty() {
                    return Err("no usable training samples".into());
                }
                Ok(TrainedRegressor::Gdbt {
                    model: GbdtRegressor::fit(&td.xs, &td.ys, cfg),
                    spec: self.spec,
                })
            }
            ModelKind::Seq2Seq(p) => {
                let sd = build_sequences(data, &self.spec, p.input_len, p.horizon, p.stride);
                if sd.is_empty() {
                    return Err("no usable training sequences".into());
                }
                // Standardize features (fit on flattened steps) and targets.
                let flat: Vec<Vec<f64>> = sd.inputs.iter().flatten().cloned().collect();
                let x_scaler = StandardScaler::fit(&flat);
                let all_y: Vec<f64> = sd.targets.iter().flatten().copied().collect();
                let y_scaler = TargetScaler::fit(&all_y);
                let inputs: Vec<Vec<Vec<f64>>> = sd
                    .inputs
                    .iter()
                    .map(|seq| seq.iter().map(|x| x_scaler.transform_row(x)).collect())
                    .collect();
                let targets: Vec<Vec<f64>> = sd
                    .targets
                    .iter()
                    .map(|t| t.iter().map(|&y| y_scaler.transform(y)).collect())
                    .collect();
                let mut model = Seq2Seq::new(Seq2SeqConfig {
                    input_dim: self.spec.dim(),
                    hidden: p.hidden,
                    layers: p.layers,
                    horizon: p.horizon,
                    epochs: p.epochs,
                    batch_size: p.batch_size,
                    lr: p.lr,
                    teacher_forcing: 0.7,
                    clip_norm: 5.0,
                    seed: p.seed,
                });
                model.train_resumable(
                    &inputs,
                    &targets,
                    p.val_fraction,
                    p.patience,
                    None,
                    0,
                    |_| {},
                );
                Ok(TrainedRegressor::Seq2Seq {
                    model: Box::new(model),
                    x_scaler,
                    y_scaler,
                    params: *p,
                    spec: self.spec,
                })
            }
            ModelKind::Knn { k } => {
                let td = build_tabular(data, &self.spec);
                if td.is_empty() {
                    return Err("no usable training samples".into());
                }
                Ok(TrainedRegressor::Knn {
                    model: KnnRegressor::fit(&td.xs, &td.ys, *k),
                    spec: self.spec,
                })
            }
            ModelKind::RandomForest(cfg) => {
                let td = build_tabular(data, &self.spec);
                if td.is_empty() {
                    return Err("no usable training samples".into());
                }
                Ok(TrainedRegressor::RandomForest {
                    model: RandomForestRegressor::fit(&td.xs, &td.ys, cfg),
                    spec: self.spec,
                })
            }
            ModelKind::Kriging { neighbors } => {
                let td = build_tabular(data, &self.spec);
                if td.len() < 3 {
                    return Err("kriging needs at least 3 samples".into());
                }
                Ok(TrainedRegressor::Kriging {
                    model: OrdinaryKriging::fit(&td.positions, &td.ys, *neighbors),
                    spec: self.spec,
                })
            }
            ModelKind::HarmonicMean { window } => {
                Ok(TrainedRegressor::Harmonic { window: *window })
            }
        }
    }

    /// Train a classifier on `data` (3-way throughput-class prediction).
    ///
    /// GDBT, KNN and RF have native classifiers; Seq2Seq, Kriging and HM
    /// classify by bucketing their regression output, exactly like the
    /// paper's post-processing step (§6.1).
    pub fn fit_classification(&self, data: &Dataset) -> Result<TrainedClassifier, String> {
        data.check_finite()
            .map_err(|e| format!("non-finite training data: {e}"))?;
        match &self.model {
            ModelKind::Gdbt(cfg) => {
                let td = build_tabular(data, &self.spec);
                if td.is_empty() {
                    return Err("no usable training samples".into());
                }
                Ok(TrainedClassifier::GdbtNative {
                    model: GbdtClassifier::fit(&td.xs, &td.labels, ThroughputClass::COUNT, cfg),
                    spec: self.spec,
                })
            }
            ModelKind::Knn { k } => {
                let td = build_tabular(data, &self.spec);
                if td.is_empty() {
                    return Err("no usable training samples".into());
                }
                Ok(TrainedClassifier::KnnNative {
                    model: KnnClassifier::fit(&td.xs, &td.labels, ThroughputClass::COUNT, *k),
                    spec: self.spec,
                })
            }
            ModelKind::RandomForest(cfg) => {
                let td = build_tabular(data, &self.spec);
                if td.is_empty() {
                    return Err("no usable training samples".into());
                }
                Ok(TrainedClassifier::RfNative {
                    model: RandomForestClassifier::fit(
                        &td.xs,
                        &td.labels,
                        ThroughputClass::COUNT,
                        cfg,
                    ),
                    spec: self.spec,
                })
            }
            _ => Ok(TrainedClassifier::FromRegression(Box::new(
                self.fit_regression(data)?,
            ))),
        }
    }
}

/// A trained regression model with everything needed to evaluate on a
/// dataset.
#[derive(Debug, Clone)]
pub enum TrainedRegressor {
    /// GDBT.
    Gdbt {
        /// Fitted booster.
        model: GbdtRegressor,
        /// Feature spec it was trained with.
        spec: FeatureSpec,
    },
    /// Seq2Seq.
    Seq2Seq {
        /// Fitted network.
        model: Box<Seq2Seq>,
        /// Feature scaler (fit on train).
        x_scaler: StandardScaler,
        /// Target scaler (fit on train).
        y_scaler: TargetScaler,
        /// Sequence shape.
        params: Seq2SeqParams,
        /// Feature spec.
        spec: FeatureSpec,
    },
    /// KNN.
    Knn {
        /// Fitted neighbours model.
        model: KnnRegressor,
        /// Feature spec.
        spec: FeatureSpec,
    },
    /// Random Forest.
    RandomForest {
        /// Fitted forest.
        model: RandomForestRegressor,
        /// Feature spec.
        spec: FeatureSpec,
    },
    /// Ordinary Kriging (position-based).
    Kriging {
        /// Fitted interpolator.
        model: OrdinaryKriging,
        /// Feature spec (used only to build positions consistently).
        spec: FeatureSpec,
    },
    /// Harmonic mean of recent throughput history.
    Harmonic {
        /// History window.
        window: usize,
    },
}

impl TrainedRegressor {
    /// Evaluate on `data`: returns aligned `(truth, prediction)` vectors.
    pub fn eval(&self, data: &Dataset) -> (Vec<f64>, Vec<f64>) {
        match self {
            TrainedRegressor::Gdbt { model, spec } => {
                let td = build_tabular(data, spec);
                (td.ys.clone(), model.predict(&td.xs))
            }
            TrainedRegressor::Knn { model, spec } => {
                let td = build_tabular(data, spec);
                (td.ys.clone(), model.predict(&td.xs))
            }
            TrainedRegressor::RandomForest { model, spec } => {
                let td = build_tabular(data, spec);
                (td.ys.clone(), model.predict(&td.xs))
            }
            TrainedRegressor::Kriging { model, spec } => {
                let td = build_tabular(data, spec);
                let pred = td
                    .positions
                    .iter()
                    .map(|p| model.predict(p[0], p[1]))
                    .collect();
                (td.ys.clone(), pred)
            }
            TrainedRegressor::Seq2Seq {
                model,
                x_scaler,
                y_scaler,
                params,
                spec,
            } => {
                let sd =
                    build_sequences(data, spec, params.input_len, params.horizon, params.stride);
                let mut truth = Vec::with_capacity(sd.len());
                let mut pred = Vec::with_capacity(sd.len());
                for (input, target) in sd.inputs.iter().zip(&sd.targets) {
                    let scaled: Vec<Vec<f64>> =
                        input.iter().map(|x| x_scaler.transform_row(x)).collect();
                    let out = model.predict(&scaled);
                    // Next-slot evaluation: first horizon step.
                    truth.push(target[0]);
                    pred.push(y_scaler.inverse(out[0]));
                }
                (truth, pred)
            }
            TrainedRegressor::Harmonic { window } => {
                let mut truth = Vec::new();
                let mut pred = Vec::new();
                // `traces()` hands back a HashMap; iterate in sorted key
                // order so two evals of the same dataset emit bit-identical
                // output sequences (the repo-wide reproducibility invariant).
                let mut traces: Vec<_> = data.traces().into_iter().collect();
                traces.sort_unstable_by_key(|&(k, _)| k);
                for (_, trace) in traces {
                    for (t, p) in HarmonicMeanPredictor::eval_trace(&trace, *window) {
                        truth.push(t);
                        pred.push(p);
                    }
                }
                (truth, pred)
            }
        }
    }

    /// Multi-step prediction for one feature-vector history (Seq2Seq only;
    /// other models return a one-step vector).
    ///
    /// Panics on an empty history or a family with no sequence form
    /// (Kriging, HarmonicMean); the serving engine uses the non-panicking
    /// [`Self::predict_sequence_checked`] instead.
    pub fn predict_sequence(&self, history: &[Vec<f64>]) -> Vec<f64> {
        match self {
            TrainedRegressor::Kriging { .. } | TrainedRegressor::Harmonic { .. } => {
                panic!("predict_sequence is not defined for Kriging/HarmonicMean")
            }
            _ => self
                .predict_sequence_checked(history)
                .expect("non-empty history"),
        }
    }

    /// Non-panicking multi-step prediction: the serving-engine sequence
    /// path. For Seq2Seq, scales `history` with the training-time feature
    /// scaler, decodes the full `horizon`, and inverse-scales — exactly the
    /// offline [`Self::predict_sequence`] code path, so online horizons are
    /// bit-identical to offline ones. Tabular families (GDBT / KNN / RF)
    /// return a one-step vector from the last history row. Returns `None`
    /// for an empty history (a warm-up session) or a family with no
    /// sequence form (Kriging, HarmonicMean), so a short history or a
    /// hot-swapped family can never unwind a shard worker.
    pub fn predict_sequence_checked(&self, history: &[Vec<f64>]) -> Option<Vec<f64>> {
        match self {
            TrainedRegressor::Seq2Seq {
                model,
                x_scaler,
                y_scaler,
                ..
            } => {
                let scaled: Vec<Vec<f64>> =
                    history.iter().map(|x| x_scaler.transform_row(x)).collect();
                Some(
                    model
                        .predict_checked(&scaled)?
                        .into_iter()
                        .map(|z| y_scaler.inverse(z))
                        .collect(),
                )
            }
            TrainedRegressor::Gdbt { model, .. } => {
                history.last().map(|x| vec![model.predict_row(x)])
            }
            TrainedRegressor::Knn { model, .. } => {
                history.last().map(|x| vec![model.predict_row(x)])
            }
            TrainedRegressor::RandomForest { model, .. } => {
                history.last().map(|x| vec![model.predict_row(x)])
            }
            TrainedRegressor::Kriging { .. } | TrainedRegressor::Harmonic { .. } => None,
        }
    }

    /// Batched multi-step prediction over several histories at once — the
    /// serving engine's batched-decoder dispatch. Lane `i` of the result is
    /// bit-identical to `predict_sequence_checked(histories[i])` (the
    /// Seq2Seq matmuls are row-blocked, which reorders memory traffic but
    /// never per-lane floating-point operations). Returns `None` under the
    /// same conditions as the single-history form: any empty lane, or a
    /// family with no sequence form.
    pub fn predict_sequence_batch(&self, histories: &[&[Vec<f64>]]) -> Option<Vec<Vec<f64>>> {
        match self {
            TrainedRegressor::Seq2Seq {
                model,
                x_scaler,
                y_scaler,
                ..
            } => {
                if histories.iter().any(|h| h.is_empty()) {
                    return None;
                }
                let scaled: Vec<Vec<Vec<f64>>> = histories
                    .iter()
                    .map(|h| h.iter().map(|x| x_scaler.transform_row(x)).collect())
                    .collect();
                let refs: Vec<&[Vec<f64>]> = scaled.iter().map(|s| s.as_slice()).collect();
                Some(
                    model
                        .predict_batch(&refs)?
                        .into_iter()
                        .map(|lane| lane.into_iter().map(|z| y_scaler.inverse(z)).collect())
                        .collect(),
                )
            }
            _ => histories
                .iter()
                .map(|h| self.predict_sequence_checked(h))
                .collect(),
        }
    }

    /// Sequence-model hyperparameters (Seq2Seq only). Serving engines use
    /// the input length to size per-session feature-history buffers and the
    /// horizon to validate responses.
    pub fn seq2seq_params(&self) -> Option<&Seq2SeqParams> {
        match self {
            TrainedRegressor::Seq2Seq { params, .. } => Some(params),
            _ => None,
        }
    }

    /// GDBT global feature importance (None for other families).
    pub fn feature_importance(&self) -> Option<Vec<(String, f64)>> {
        match self {
            TrainedRegressor::Gdbt { model, spec } => Some(
                spec.feature_names()
                    .into_iter()
                    .zip(model.feature_importance())
                    .collect(),
            ),
            _ => None,
        }
    }

    /// The feature spec this model was trained with (`None` for the
    /// feature-free harmonic-mean baseline).
    pub fn spec(&self) -> Option<&FeatureSpec> {
        match self {
            TrainedRegressor::Gdbt { spec, .. }
            | TrainedRegressor::Seq2Seq { spec, .. }
            | TrainedRegressor::Knn { spec, .. }
            | TrainedRegressor::RandomForest { spec, .. }
            | TrainedRegressor::Kriging { spec, .. } => Some(spec),
            TrainedRegressor::Harmonic { .. } => None,
        }
    }

    /// Single-row prediction for the tabular families (GDBT / KNN / RF) —
    /// the serving-engine hot path. Uses the same `predict_row` the batch
    /// `eval` path reduces to, so an online prediction over a feature vector
    /// built by [`FeatureSpec::extract_latest`] is bit-identical to the
    /// offline one. Returns `None` for families that are not a function of
    /// a single feature row (Seq2Seq, Kriging, HarmonicMean).
    pub fn predict_one(&self, x: &[f64]) -> Option<f64> {
        match self {
            TrainedRegressor::Gdbt { model, .. } => Some(model.predict_row(x)),
            TrainedRegressor::Knn { model, .. } => Some(model.predict_row(x)),
            TrainedRegressor::RandomForest { model, .. } => Some(model.predict_row(x)),
            _ => None,
        }
    }
}

// Serving shards share trained models across worker threads behind
// `Arc<TrainedRegressor>`; a non-thread-safe field sneaking into any model
// family must fail to compile, not panic at runtime.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TrainedRegressor>();
    assert_send_sync::<TrainedClassifier>();
};

/// A trained classification model.
#[derive(Debug, Clone)]
pub enum TrainedClassifier {
    /// Native multiclass GDBT.
    GdbtNative {
        /// Fitted booster.
        model: GbdtClassifier,
        /// Feature spec.
        spec: FeatureSpec,
    },
    /// Native KNN classifier.
    KnnNative {
        /// Fitted model.
        model: KnnClassifier,
        /// Feature spec.
        spec: FeatureSpec,
    },
    /// Native Random Forest classifier.
    RfNative {
        /// Fitted forest.
        model: RandomForestClassifier,
        /// Feature spec.
        spec: FeatureSpec,
    },
    /// Regression model + class bucketing post-processing.
    FromRegression(Box<TrainedRegressor>),
}

impl TrainedClassifier {
    /// Evaluate on `data`: aligned `(truth_labels, predicted_labels)`.
    pub fn eval(&self, data: &Dataset) -> (Vec<usize>, Vec<usize>) {
        match self {
            TrainedClassifier::GdbtNative { model, spec } => {
                let td = build_tabular(data, spec);
                (td.labels.clone(), model.predict(&td.xs))
            }
            TrainedClassifier::KnnNative { model, spec } => {
                let td = build_tabular(data, spec);
                (td.labels.clone(), model.predict(&td.xs))
            }
            TrainedClassifier::RfNative { model, spec } => {
                let td = build_tabular(data, spec);
                (td.labels.clone(), model.predict(&td.xs))
            }
            TrainedClassifier::FromRegression(reg) => {
                let (truth, pred) = reg.eval(data);
                (
                    truth
                        .iter()
                        .map(|&y| ThroughputClass::of(y).index())
                        .collect(),
                    pred.iter()
                        .map(|&y| ThroughputClass::of(y).index())
                        .collect(),
                )
            }
        }
    }

    /// GDBT global feature importance (None for other families).
    pub fn feature_importance(&self) -> Option<Vec<(String, f64)>> {
        match self {
            TrainedClassifier::GdbtNative { model, spec } => Some(
                spec.feature_names()
                    .into_iter()
                    .zip(model.feature_importance())
                    .collect(),
            ),
            TrainedClassifier::FromRegression(reg) => reg.feature_importance(),
            _ => None,
        }
    }

    /// Single-row class prediction (serving hot path); `None` when the
    /// underlying family has no single-row form.
    pub fn predict_one(&self, x: &[f64]) -> Option<usize> {
        match self {
            TrainedClassifier::GdbtNative { model, .. } => Some(model.predict_row(x)),
            TrainedClassifier::KnnNative { model, .. } => Some(model.predict_row(x)),
            TrainedClassifier::RfNative { model, .. } => Some(model.predict_row(x)),
            TrainedClassifier::FromRegression(reg) => {
                reg.predict_one(x).map(|y| ThroughputClass::of(y).index())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig};

    fn small_data() -> Dataset {
        let area = airport(3);
        let cfg = CampaignConfig {
            passes_per_trajectory: 3,
            max_duration_s: 280,
            base_seed: 5,
            bad_gps_fraction: 0.0,
            ..Default::default()
        };
        let raw = run_campaign(&area, &cfg);
        let (clean, _) = quality::apply(&raw, &area.frame, &Default::default());
        clean
    }

    #[test]
    fn gdbt_regression_end_to_end() {
        let data = small_data();
        let m = Lumos5G::new(FeatureSet::LM, ModelKind::Gdbt(quick_gbdt()))
            .fit_regression(&data)
            .unwrap();
        let (truth, pred) = m.eval(&data);
        assert_eq!(truth.len(), pred.len());
        assert!(!truth.is_empty());
        let mae = lumos5g_ml::mae(&truth, &pred);
        // In-sample on its own training data, GDBT must do far better than
        // predicting the mean.
        let mean = truth.iter().sum::<f64>() / truth.len() as f64;
        let base: f64 = truth.iter().map(|t| (t - mean).abs()).sum::<f64>() / truth.len() as f64;
        assert!(mae < base, "mae {mae} vs baseline {base}");
    }

    #[test]
    fn gdbt_importance_covers_all_features() {
        let data = small_data();
        let m = Lumos5G::new(FeatureSet::TM, ModelKind::Gdbt(quick_gbdt()))
            .fit_regression(&data)
            .unwrap();
        let imp = m.feature_importance().unwrap();
        assert_eq!(imp.len(), FeatureSpec::new(FeatureSet::TM).dim());
        let total: f64 = imp.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn knn_and_rf_classifiers_run() {
        let data = small_data();
        for kind in [
            ModelKind::Knn { k: 5 },
            ModelKind::RandomForest(ForestConfig {
                n_trees: 20,
                ..Default::default()
            }),
        ] {
            let m = Lumos5G::new(FeatureSet::L, kind)
                .fit_classification(&data)
                .unwrap();
            let (truth, pred) = m.eval(&data);
            assert_eq!(truth.len(), pred.len());
        }
    }

    #[test]
    fn kriging_runs_on_location_only() {
        let data = small_data();
        let m = Lumos5G::new(FeatureSet::L, ModelKind::Kriging { neighbors: 12 })
            .fit_regression(&data)
            .unwrap();
        let (truth, pred) = m.eval(&data);
        assert_eq!(truth.len(), pred.len());
        assert!(pred.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn harmonic_mean_runs_without_training_data_features() {
        let data = small_data();
        let m = Lumos5G::new(FeatureSet::L, ModelKind::HarmonicMean { window: 5 })
            .fit_regression(&data)
            .unwrap();
        let (truth, pred) = m.eval(&data);
        assert_eq!(truth.len(), pred.len());
        assert!(!truth.is_empty());
    }

    #[test]
    fn seq2seq_trains_and_predicts() {
        let data = small_data();
        let mut p = quick_seq2seq();
        p.epochs = 3; // keep the unit test fast
        let m = Lumos5G::new(FeatureSet::LM, ModelKind::Seq2Seq(p))
            .fit_regression(&data)
            .unwrap();
        let (truth, pred) = m.eval(&data);
        assert_eq!(truth.len(), pred.len());
        assert!(!truth.is_empty());
        // Multi-step API returns `horizon` values.
        let spec = FeatureSpec::new(FeatureSet::LM);
        let recs: Vec<_> = data.records.iter().take(20).cloned().collect();
        let hist: Vec<Vec<f64>> = (0..10).map(|i| spec.extract(&recs, i).unwrap()).collect();
        assert_eq!(m.predict_sequence(&hist).len(), p.horizon);

        // The checked surface agrees bit-for-bit with the legacy one and
        // types out the empty-history case instead of panicking.
        let checked = m.predict_sequence_checked(&hist).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&checked), bits(&m.predict_sequence(&hist)));
        assert_eq!(m.predict_sequence_checked(&[]), None);
        assert_eq!(m.seq2seq_params(), Some(&p));

        // Batched inference is lane-for-lane bit-identical to singles.
        let hist2: Vec<Vec<f64>> = (3..13).map(|i| spec.extract(&recs, i).unwrap()).collect();
        let batch = m
            .predict_sequence_batch(&[hist.as_slice(), hist2.as_slice()])
            .unwrap();
        assert_eq!(bits(&batch[0]), bits(&checked));
        assert_eq!(bits(&batch[1]), bits(&m.predict_sequence(&hist2)));
        assert_eq!(m.predict_sequence_batch(&[hist.as_slice(), &[]]), None);
    }

    #[test]
    fn families_without_a_sequence_form_return_none_not_panic() {
        let data = small_data();
        let hist = vec![vec![0.0, 0.0]];
        let kriging = Lumos5G::new(FeatureSet::L, ModelKind::Kriging { neighbors: 12 })
            .fit_regression(&data)
            .unwrap();
        assert_eq!(kriging.predict_sequence_checked(&hist), None);
        assert_eq!(kriging.predict_sequence_batch(&[hist.as_slice()]), None);
        assert_eq!(kriging.seq2seq_params(), None);
        let harmonic = Lumos5G::new(FeatureSet::L, ModelKind::HarmonicMean { window: 5 })
            .fit_regression(&data)
            .unwrap();
        assert_eq!(harmonic.predict_sequence_checked(&hist), None);

        // Tabular families reduce to a one-step vector from the last row.
        let gdbt = Lumos5G::new(FeatureSet::LM, ModelKind::Gdbt(quick_gbdt()))
            .fit_regression(&data)
            .unwrap();
        let spec = FeatureSpec::new(FeatureSet::LM);
        let row = spec.extract(&data.records, 0).unwrap();
        let got = gdbt
            .predict_sequence_checked(std::slice::from_ref(&row))
            .unwrap();
        assert_eq!(got, vec![gdbt.predict_one(&row).unwrap()]);
        assert_eq!(gdbt.predict_sequence_checked(&[]), None);
    }

    #[test]
    fn fit_rejects_non_finite_samples_with_err() {
        let mut data = small_data();
        data.records[7].nr_ssrsrp_dbm = f64::NAN;
        let framework = Lumos5G::new(FeatureSet::TM, ModelKind::Gdbt(quick_gbdt()));
        let got = framework.fit_regression(&data);
        assert!(got.is_err());
        assert!(got.unwrap_err().contains("non-finite"));
        assert!(framework.fit_classification(&data).is_err());
    }

    #[test]
    fn classification_from_regression_buckets() {
        let data = small_data();
        let m = Lumos5G::new(FeatureSet::L, ModelKind::HarmonicMean { window: 5 })
            .fit_classification(&data)
            .unwrap();
        let (truth, pred) = m.eval(&data);
        assert!(truth.iter().all(|&c| c < 3));
        assert!(pred.iter().all(|&c| c < 3));
    }
}
