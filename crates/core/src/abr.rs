//! Adaptive-bitrate (ABR) video streaming over predicted throughput — the
//! paper's flagship application (§2.2: "it is shown in \[58\] that with a
//! prediction error ≤ 20%, the QoE of adaptive video streaming can be
//! improved close to optimal"; §8.2 sketches Lumos5G-driven rate
//! adaptation for 8K video).
//!
//! [`simulate_session`] runs a segment-by-segment player against a
//! ground-truth throughput trace, choosing bitrates from a prediction
//! source, with real buffer dynamics (startup, stalls, capacity) and the
//! control-theoretic QoE score of Yin et al. \[64\]:
//! `QoE = mean bitrate − λ·rebuffer ratio − μ·switch magnitude`.

use lumos5g_ml::HarmonicMeanPredictor;

/// Bitrate ladder (sorted ascending, Mbps).
#[derive(Debug, Clone)]
pub struct Ladder {
    rungs: Vec<f64>,
}

impl Ladder {
    /// Build from rungs; sorts and deduplicates.
    pub fn new(mut rungs: Vec<f64>) -> Self {
        assert!(!rungs.is_empty(), "ladder needs at least one rung");
        assert!(rungs.iter().all(|&r| r > 0.0), "rungs must be positive");
        rungs.sort_by(|a, b| a.partial_cmp(b).expect("finite rungs"));
        rungs.dedup();
        Ladder { rungs }
    }

    /// An 8K-era ladder (the paper's eMBB motivation), Mbps.
    pub fn ultra_hd() -> Self {
        Ladder::new(vec![20.0, 50.0, 120.0, 300.0, 700.0, 1400.0])
    }

    /// Lowest rung.
    pub fn min(&self) -> f64 {
        self.rungs[0]
    }

    /// Highest rung.
    pub fn max(&self) -> f64 {
        *self.rungs.last().expect("non-empty")
    }

    /// Highest rung at or below `budget_mbps` (lowest rung if none fit).
    pub fn pick(&self, budget_mbps: f64) -> f64 {
        self.rungs
            .iter()
            .copied()
            .filter(|&r| r <= budget_mbps)
            .fold(self.min(), f64::max)
    }
}

/// Player configuration.
#[derive(Debug, Clone)]
pub struct PlayerConfig {
    /// Available bitrates.
    pub ladder: Ladder,
    /// Segment duration, seconds.
    pub segment_s: f64,
    /// Playback starts once this much media is buffered.
    pub startup_buffer_s: f64,
    /// Maximum buffered media, seconds.
    pub buffer_capacity_s: f64,
    /// Fraction of the predicted throughput the controller budgets
    /// (safety margin against prediction error).
    pub safety_margin: f64,
    /// When the buffer is below this, the controller drops to the lowest
    /// rung regardless of prediction (panic mode).
    pub panic_buffer_s: f64,
    /// QoE rebuffer penalty λ (Mbps-equivalent per unit rebuffer ratio).
    pub lambda_rebuffer: f64,
    /// QoE switch penalty μ (per Mbps of average switch magnitude).
    pub mu_switch: f64,
}

impl Default for PlayerConfig {
    fn default() -> Self {
        PlayerConfig {
            ladder: Ladder::ultra_hd(),
            segment_s: 1.0,
            startup_buffer_s: 2.0,
            buffer_capacity_s: 30.0,
            safety_margin: 0.8,
            panic_buffer_s: 1.0,
            lambda_rebuffer: 5_600.0, // 4 × max rung
            mu_switch: 0.5,
        }
    }
}

/// Where bitrate decisions come from.
#[derive(Debug, Clone)]
pub enum Predictor {
    /// Ground truth (upper bound / oracle).
    Oracle,
    /// Harmonic mean of the last `window` observed segment throughputs.
    Harmonic {
        /// History window length.
        window: usize,
    },
    /// Externally supplied predictions, one per segment (e.g. Lumos5G).
    Supplied(Vec<f64>),
}

/// Session outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct QoeReport {
    /// Mean selected bitrate, Mbps.
    pub avg_bitrate_mbps: f64,
    /// Total stall time / total session time.
    pub rebuffer_ratio: f64,
    /// Number of distinct stall events (excluding startup).
    pub stall_events: usize,
    /// Mean |bitrate switch| between consecutive segments, Mbps.
    pub avg_switch_mbps: f64,
    /// Composite QoE (Yin et al. form).
    pub qoe: f64,
    /// Segments played.
    pub segments: usize,
}

/// Simulate one streaming session over `throughput` (ground-truth Mbps per
/// second). Bitrate for each segment comes from `predictor`.
pub fn simulate_session(
    throughput: &[f64],
    predictor: &Predictor,
    cfg: &PlayerConfig,
) -> QoeReport {
    assert!(!throughput.is_empty(), "need a throughput trace");
    if let Predictor::Supplied(p) = predictor {
        assert!(
            p.len() * cfg.segment_s as usize >= throughput.len().saturating_sub(1) || !p.is_empty(),
            "supplied predictions must cover the session"
        );
    }

    let mut hm = HarmonicMeanPredictor::new(match predictor {
        Predictor::Harmonic { window } => *window,
        _ => 5,
    });

    let total_time = throughput.len() as f64;
    let mut t = 0.0f64; // wall-clock seconds
    let mut buffer_s = 0.0f64;
    let mut playing = false;
    let mut stall_time = 0.0f64;
    let mut stall_events = 0usize;
    let mut stalled_now = false;
    let mut bitrates: Vec<f64> = Vec::new();
    let mut seg_index = 0usize;

    while t < total_time - 1e-9 {
        // Decide the next segment's bitrate.
        let second = t as usize;
        let predicted = match predictor {
            Predictor::Oracle => throughput[second.min(throughput.len() - 1)],
            Predictor::Harmonic { .. } => hm.predict().unwrap_or(cfg.ladder.min()),
            Predictor::Supplied(p) => p[seg_index.min(p.len() - 1)],
        };
        let mut bitrate = cfg.ladder.pick(predicted * cfg.safety_margin);
        if playing && buffer_s < cfg.panic_buffer_s {
            bitrate = cfg.ladder.min();
        }
        bitrates.push(bitrate);

        // Download the segment against the per-second trace.
        let mut remaining_mb = bitrate * cfg.segment_s; // megabits
        let mut observed_mb = 0.0;
        let mut observed_t = 0.0;
        while remaining_mb > 1e-12 && t < total_time - 1e-9 {
            let sec = t as usize;
            let rate = throughput[sec.min(throughput.len() - 1)].max(1e-6);
            let until_boundary = (sec as f64 + 1.0) - t;
            let dt = (remaining_mb / rate).min(until_boundary).max(1e-9);
            let got = rate * dt;
            remaining_mb -= got;
            observed_mb += got;
            observed_t += dt;

            // Playback drains the buffer in parallel.
            if playing {
                if buffer_s > 0.0 {
                    let drained = dt.min(buffer_s);
                    buffer_s -= drained;
                    let stall_dt = dt - drained;
                    if stall_dt > 0.0 {
                        if !stalled_now {
                            stalled_now = true;
                            stall_events += 1;
                        }
                        stall_time += stall_dt;
                    }
                } else {
                    if !stalled_now {
                        stalled_now = true;
                        stall_events += 1;
                    }
                    stall_time += dt;
                }
            }
            t += dt;
        }
        if remaining_mb > 1e-9 {
            // Trace ended mid-download; discard the partial segment.
            bitrates.pop();
            break;
        }

        // Segment arrived.
        hm.observe(observed_mb / observed_t.max(1e-9));
        buffer_s += cfg.segment_s;
        stalled_now = false;
        if !playing && buffer_s >= cfg.startup_buffer_s {
            playing = true;
        }
        // Buffer-full: idle until there is room (playback keeps draining).
        if buffer_s > cfg.buffer_capacity_s {
            let wait = buffer_s - cfg.buffer_capacity_s;
            buffer_s -= wait.min(buffer_s);
            t += wait;
        }
        seg_index += 1;
    }

    let n = bitrates.len().max(1) as f64;
    let avg_bitrate = bitrates.iter().sum::<f64>() / n;
    let avg_switch = if bitrates.len() >= 2 {
        bitrates
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .sum::<f64>()
            / (bitrates.len() - 1) as f64
    } else {
        0.0
    };
    let rebuffer_ratio = stall_time / total_time;
    QoeReport {
        avg_bitrate_mbps: avg_bitrate,
        rebuffer_ratio,
        stall_events,
        avg_switch_mbps: avg_switch,
        qoe: avg_bitrate - cfg.lambda_rebuffer * rebuffer_ratio - cfg.mu_switch * avg_switch,
        segments: bitrates.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steady(rate: f64, secs: usize) -> Vec<f64> {
        vec![rate; secs]
    }

    #[test]
    fn ladder_picks_highest_affordable() {
        let l = Ladder::ultra_hd();
        assert_eq!(l.pick(1_000.0), 700.0);
        assert_eq!(l.pick(25.0), 20.0);
        assert_eq!(l.pick(5.0), 20.0); // floor
        assert_eq!(l.pick(5_000.0), 1_400.0);
    }

    #[test]
    fn oracle_on_steady_link_never_stalls() {
        let trace = steady(900.0, 120);
        let r = simulate_session(&trace, &Predictor::Oracle, &PlayerConfig::default());
        assert_eq!(r.stall_events, 0, "{r:?}");
        assert!(r.rebuffer_ratio < 1e-9);
        // 900 × 0.8 margin → 700 rung.
        assert!((r.avg_bitrate_mbps - 700.0).abs() < 1e-9);
    }

    #[test]
    fn oracle_tracks_a_step_change() {
        let mut trace = steady(1_800.0, 60);
        trace.extend(steady(100.0, 60));
        let r = simulate_session(&trace, &Predictor::Oracle, &PlayerConfig::default());
        assert_eq!(r.stall_events, 0, "{r:?}");
        assert!(r.avg_switch_mbps > 0.0); // it did switch down
    }

    #[test]
    fn harmonic_stalls_on_sudden_drop() {
        // 30 s at 1.8 Gbps then a hard outage: the history-based controller
        // keeps requesting huge segments and must stall.
        let mut trace = steady(1_800.0, 30);
        trace.extend(steady(15.0, 60));
        let cfg = PlayerConfig {
            buffer_capacity_s: 4.0, // small buffer to expose the error
            ..Default::default()
        };
        let hm = simulate_session(&trace, &Predictor::Harmonic { window: 5 }, &cfg);
        let oracle = simulate_session(&trace, &Predictor::Oracle, &cfg);
        assert!(
            hm.rebuffer_ratio > oracle.rebuffer_ratio,
            "hm {hm:?} vs oracle {oracle:?}"
        );
    }

    #[test]
    fn better_predictions_give_better_qoe() {
        // Alternating link: oracle (perfect prediction) must beat harmonic.
        let trace: Vec<f64> = (0..240)
            .map(|i| if (i / 20) % 2 == 0 { 1_500.0 } else { 60.0 })
            .collect();
        let cfg = PlayerConfig {
            buffer_capacity_s: 6.0,
            ..Default::default()
        };
        let oracle = simulate_session(&trace, &Predictor::Oracle, &cfg);
        let hm = simulate_session(&trace, &Predictor::Harmonic { window: 5 }, &cfg);
        assert!(
            oracle.qoe > hm.qoe,
            "oracle {:.0} should beat harmonic {:.0}",
            oracle.qoe,
            hm.qoe
        );
    }

    #[test]
    fn supplied_predictions_are_used() {
        let trace = steady(500.0, 60);
        // Deliberately terrible predictions: always promise 2 Gbps.
        let bad = Predictor::Supplied(vec![2_000.0; 60]);
        let cfg = PlayerConfig {
            buffer_capacity_s: 4.0,
            ..Default::default()
        };
        let r_bad = simulate_session(&trace, &bad, &cfg);
        let good = Predictor::Supplied(vec![500.0; 60]);
        let r_good = simulate_session(&trace, &good, &cfg);
        assert!(r_good.qoe > r_bad.qoe, "good {r_good:?} vs bad {r_bad:?}");
    }

    #[test]
    fn panic_mode_prevents_death_spiral() {
        // Weak link: panic mode pins the lowest rung, which is streamable.
        let trace = steady(25.0, 120);
        let r = simulate_session(&trace, &Predictor::Oracle, &PlayerConfig::default());
        assert!((r.avg_bitrate_mbps - 20.0).abs() < 1e-9);
        assert!(r.rebuffer_ratio < 0.2, "{r:?}");
    }

    #[test]
    fn report_fields_are_consistent() {
        let trace = steady(800.0, 90);
        let r = simulate_session(
            &trace,
            &Predictor::Harmonic { window: 5 },
            &PlayerConfig::default(),
        );
        assert!(r.segments > 0);
        assert!(r.avg_bitrate_mbps >= 20.0 && r.avg_bitrate_mbps <= 1_400.0);
        assert!(r.rebuffer_ratio >= 0.0 && r.rebuffer_ratio <= 1.0);
    }
}
