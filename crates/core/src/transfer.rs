//! Transferability analysis (§6.2).
//!
//! Tower-based (`T*`) features are location-agnostic: they describe the UE
//! relative to *a* panel, not *where* it is. The paper shows a T+M model
//! trained on the Airport's North panel transfers to the South panel with a
//! weighted-F1 of 0.71 overall, rising to 0.91 within 25 m of the panel
//! (where the two panels' environments are most alike).

use crate::classes::ThroughputClass;
use crate::features::{FeatureSet, FeatureSpec};
use crate::tabular::build_tabular;
use lumos5g_ml::{ClassificationReport, GbdtClassifier, GbdtConfig};
use lumos5g_sim::Dataset;

/// Outcome of a cross-panel transfer experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferResult {
    /// Weighted-average F1 on all test-panel samples.
    pub overall_f1: f64,
    /// Weighted-average F1 restricted to samples within `near_radius_m`.
    pub near_f1: f64,
    /// The near-field radius used, meters.
    pub near_radius_m: f64,
    /// Test samples (overall).
    pub n_test: usize,
    /// Test samples within the near radius.
    pub n_near: usize,
}

/// Train a T+M GDBT classifier on samples served by `train_panel` and test
/// on samples served by `test_panel`.
pub fn panel_transfer(
    data: &Dataset,
    train_panel: u32,
    test_panel: u32,
    gbdt: &GbdtConfig,
    near_radius_m: f64,
) -> Result<TransferResult, String> {
    let spec = FeatureSpec::new(FeatureSet::TM);

    let train_data = data.filter(|r| r.on_5g && r.cell_id == train_panel);
    let test_data = data.filter(|r| r.on_5g && r.cell_id == test_panel);
    let train = build_tabular(&train_data, &spec);
    let test = build_tabular(&test_data, &spec);
    if train.len() < 20 || test.len() < 20 {
        return Err(format!(
            "too few samples (train {}, test {})",
            train.len(),
            test.len()
        ));
    }

    let model = GbdtClassifier::fit(&train.xs, &train.labels, ThroughputClass::COUNT, gbdt);
    let pred = model.predict(&test.xs);
    let overall = ClassificationReport::from_labels(&test.labels, &pred, ThroughputClass::COUNT);

    // Near-field restriction: feature 0 of the T group is panel distance.
    let near_idx: Vec<usize> = test
        .xs
        .iter()
        .enumerate()
        .filter(|(_, x)| x[0] < near_radius_m)
        .map(|(i, _)| i)
        .collect();
    let near_f1 = if near_idx.len() >= 5 {
        let t: Vec<usize> = near_idx.iter().map(|&i| test.labels[i]).collect();
        let p: Vec<usize> = near_idx.iter().map(|&i| pred[i]).collect();
        ClassificationReport::from_labels(&t, &p, ThroughputClass::COUNT).weighted_f1
    } else {
        f64::NAN
    };

    Ok(TransferResult {
        overall_f1: overall.weighted_f1,
        near_f1,
        near_radius_m,
        n_test: test.len(),
        n_near: near_idx.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::quick_gbdt;
    use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig};

    fn data() -> Dataset {
        let area = airport(23);
        let cfg = CampaignConfig {
            passes_per_trajectory: 5,
            max_duration_s: 300,
            base_seed: 4,
            bad_gps_fraction: 0.0,
            ..Default::default()
        };
        let raw = run_campaign(&area, &cfg);
        quality::apply(&raw, &area.frame, &Default::default()).0
    }

    #[test]
    fn transfer_produces_sane_scores() {
        let d = data();
        // Train on south panel (id 1), test on north (id 2).
        let r = panel_transfer(&d, 1, 2, &quick_gbdt(), 25.0).unwrap();
        assert!(r.overall_f1 > 0.2 && r.overall_f1 <= 1.0, "{r:?}");
        assert!(r.n_test > 50);
    }

    #[test]
    fn transfer_beats_chance() {
        let d = data();
        let r = panel_transfer(&d, 1, 2, &quick_gbdt(), 25.0).unwrap();
        // Three classes: chance weighted-F1 ≈ class imbalance dependent,
        // but a transferred T+M model must do clearly better than 1/3.
        assert!(r.overall_f1 > 0.4, "overall F1 = {}", r.overall_f1);
    }

    #[test]
    fn errors_on_missing_panel() {
        let d = data();
        assert!(panel_transfer(&d, 1, 99, &quick_gbdt(), 25.0).is_err());
    }
}
