//! On-disk model persistence — versioned save/load for trained models.
//!
//! A serving engine restart must not retrain: every [`TrainedRegressor`]
//! family the engine serves (GDBT, Random Forest, KNN, Harmonic, and the
//! LSTM Seq2Seq) and every [`TrainedClassifier`] serializes to a compact,
//! dependency-free binary format and loads back **bit-identically** —
//! `f64`s travel as raw IEEE-754 bits, the KNN spatial index is rebuilt
//! deterministically from its stored points, and a restored Seq2Seq decodes
//! the same horizons bit-for-bit (its feature/target scalers ride along;
//! Adam moments are training state and restart cold).
//!
//! ## Format layout (`.l5gm` files)
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "L5GM"
//!      4     2  format version (u16 LE, currently 2; v1 still readable)
//!      6     1  kind     (0 = regressor, 1 = classifier, 2 = training
//!                         checkpoint)
//!      7     1  family   (regressor: 1 GDBT, 2 RF, 3 KNN, 4 Harmonic,
//!                         6 Seq2Seq, 7 Kriging;
//!                         classifier: 1 GDBT, 2 RF, 3 KNN, 5 FromRegression)
//!      8     1  spec presence (0 = none, 1 = FeatureSpec follows)
//!      9     …  FeatureSpec  (set tag u8, history_window u32) when present
//!      …     …  family payload (model-defined, see `lumos5g-ml::codec`)
//!   last     4  CRC32 (IEEE, LE) of every preceding byte — v2 only
//! ```
//!
//! Versioning policy: the format version is bumped on any incompatible
//! layout change; loaders reject unknown versions and unknown family tags
//! with a typed error rather than guessing. Writers always emit v2; v1
//! files (no checksum, no Kriging/checkpoint kinds, shorter Seq2Seq
//! params) still decode. For v2 the trailing CRC32 is verified *before*
//! any payload decoding, so a torn or bit-flipped file surfaces as
//! [`PersistError::CrcMismatch`] rather than a structurally plausible but
//! wrong model. Trailing bytes after the payload are treated as
//! corruption.
//!
//! Saves go through [`atomic_write`]: temp file in the target directory,
//! `fsync`, `rename` over the destination, `fsync` of the directory — a
//! crash at any point leaves either the old file or the new one, never a
//! torn hybrid.

use crate::features::{FeatureSet, FeatureSpec};
use crate::predictor::{Seq2SeqParams, TrainedClassifier, TrainedRegressor};
use lumos5g_ml::codec::{crc32, ByteReader, ByteWriter, CodecError};
use lumos5g_ml::dataset::TargetScaler;
use lumos5g_ml::{
    GbdtCheckpoint, GbdtClassifier, GbdtRegressor, KnnClassifier, KnnRegressor, OrdinaryKriging,
    RandomForestClassifier, RandomForestRegressor, Seq2Seq, Seq2SeqTrainState, StandardScaler,
};
use std::fmt;
use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File magic: the first four bytes of every saved model.
pub const MAGIC: [u8; 4] = *b"L5GM";
/// Current wire-format version (written on save).
pub const FORMAT_VERSION: u16 = 2;
/// Oldest wire-format version this build still reads.
pub const MIN_FORMAT_VERSION: u16 = 1;
/// Conventional extension for saved models.
pub const MODEL_EXTENSION: &str = "l5gm";

const KIND_REGRESSOR: u8 = 0;
const KIND_CLASSIFIER: u8 = 1;
const KIND_CHECKPOINT: u8 = 2;

const FAM_GDBT: u8 = 1;
const FAM_RF: u8 = 2;
const FAM_KNN: u8 = 3;
const FAM_HARMONIC: u8 = 4;
const FAM_FROM_REGRESSION: u8 = 5;
const FAM_SEQ2SEQ: u8 = 6;
const FAM_KRIGING: u8 = 7;

/// Why a save or load failed.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem error.
    Io(io::Error),
    /// The file does not start with the `L5GM` magic.
    BadMagic,
    /// The file's format version is newer than this build understands.
    UnsupportedVersion(u16),
    /// The file holds a classifier where a regressor was expected (or vice
    /// versa).
    WrongKind {
        /// What the caller asked for.
        expected: &'static str,
        /// The kind byte found in the file.
        found: u8,
    },
    /// The family tag is unknown (a newer build's model, or corruption).
    UnsupportedFamily(String),
    /// The v2 trailing checksum does not match the payload — the file was
    /// torn mid-write or bit-flipped at rest.
    CrcMismatch {
        /// CRC32 recomputed over the payload.
        expected: u32,
        /// CRC32 stored in the file's trailer.
        found: u32,
    },
    /// Structurally corrupt payload.
    Codec(CodecError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a Lumos5G model file (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported format version {v} (this build reads \
                     {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
                )
            }
            PersistError::WrongKind { expected, found } => {
                write!(f, "expected a {expected}, found kind byte {found}")
            }
            PersistError::UnsupportedFamily(fam) => {
                write!(f, "model family {fam} has no persistent form")
            }
            PersistError::CrcMismatch { expected, found } => {
                write!(
                    f,
                    "checksum mismatch (stored {found:#010x}, payload hashes to \
                     {expected:#010x}): torn or corrupted file"
                )
            }
            PersistError::Codec(e) => write!(f, "corrupt model file: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CodecError> for PersistError {
    fn from(e: CodecError) -> Self {
        PersistError::Codec(e)
    }
}

fn set_tag(set: FeatureSet) -> u8 {
    match set {
        FeatureSet::L => 0,
        FeatureSet::LM => 1,
        FeatureSet::TM => 2,
        FeatureSet::LMC => 3,
        FeatureSet::TMC => 4,
        FeatureSet::LTM => 5,
    }
}

fn set_from_tag(tag: u8) -> Result<FeatureSet, PersistError> {
    Ok(match tag {
        0 => FeatureSet::L,
        1 => FeatureSet::LM,
        2 => FeatureSet::TM,
        3 => FeatureSet::LMC,
        4 => FeatureSet::TMC,
        5 => FeatureSet::LTM,
        _ => {
            return Err(PersistError::Codec(CodecError::BadTag {
                what: "feature set",
                tag,
            }))
        }
    })
}

fn put_spec(w: &mut ByteWriter, spec: Option<&FeatureSpec>) {
    match spec {
        None => w.put_u8(0),
        Some(s) => {
            w.put_u8(1);
            w.put_u8(set_tag(s.set));
            w.put_u32(s.history_window as u32);
        }
    }
}

fn get_spec(r: &mut ByteReader<'_>) -> Result<Option<FeatureSpec>, PersistError> {
    match r.u8()? {
        0 => Ok(None),
        1 => {
            let set = set_from_tag(r.u8()?)?;
            let history_window = r.u32()? as usize;
            Ok(Some(FeatureSpec {
                set,
                history_window,
            }))
        }
        tag => Err(PersistError::Codec(CodecError::BadTag {
            what: "spec presence",
            tag,
        })),
    }
}

fn put_seq2seq_params(w: &mut ByteWriter, p: &Seq2SeqParams) {
    w.put_len(p.input_len);
    w.put_len(p.horizon);
    w.put_len(p.hidden);
    w.put_len(p.layers);
    w.put_len(p.epochs);
    w.put_len(p.batch_size);
    w.put_f64(p.lr);
    w.put_len(p.stride);
    w.put_u64(p.seed);
    // v2 additions: early-stopping configuration.
    w.put_f64(p.val_fraction);
    w.put_len(p.patience);
}

fn get_seq2seq_params(r: &mut ByteReader<'_>, version: u16) -> Result<Seq2SeqParams, PersistError> {
    let mut p = Seq2SeqParams {
        input_len: r.len()?,
        horizon: r.len()?,
        hidden: r.len()?,
        layers: r.len()?,
        epochs: r.len()?,
        batch_size: r.len()?,
        lr: r.f64()?,
        stride: r.len()?,
        seed: r.u64()?,
        // v1 files predate early stopping: disabled, matching old behavior.
        val_fraction: 0.0,
        patience: 0,
    };
    if version >= 2 {
        p.val_fraction = r.f64()?;
        p.patience = r.len()?;
    }
    Ok(p)
}

fn put_header(w: &mut ByteWriter, kind: u8) {
    w.put_bytes(&MAGIC);
    w.put_u16(FORMAT_VERSION);
    w.put_u8(kind);
}

/// Checks magic + version, returns `(version, kind byte)`.
fn get_header(r: &mut ByteReader<'_>) -> Result<(u16, u8), PersistError> {
    if r.take(4)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u16()?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(PersistError::UnsupportedVersion(version));
    }
    Ok((version, r.u8()?))
}

/// Append the v2 trailer: a CRC32 of every byte written so far.
fn seal(w: ByteWriter) -> Vec<u8> {
    let mut bytes = w.into_bytes();
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    bytes
}

/// Validate the container around `bytes` and return the payload slice
/// (header included, trailer stripped for v2).
///
/// The version is read *before* the checksum is checked so a genuinely
/// newer file reports [`PersistError::UnsupportedVersion`], and the
/// checksum is checked *before* any payload decoding so corruption
/// surfaces as [`PersistError::CrcMismatch`] rather than a garbage decode.
fn split_container(bytes: &[u8]) -> Result<&[u8], PersistError> {
    let mut peek = ByteReader::new(bytes);
    if peek.take(4)? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = peek.u16()?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(PersistError::UnsupportedVersion(version));
    }
    if version < 2 {
        return Ok(bytes);
    }
    let trailer_at =
        bytes
            .len()
            .checked_sub(4)
            .ok_or(PersistError::Codec(CodecError::UnexpectedEof {
                needed: 4,
                remaining: bytes.len(),
            }))?;
    if trailer_at < 7 {
        // Shorter than magic + version + kind: the trailer would overlap
        // the header.
        return Err(PersistError::Codec(CodecError::UnexpectedEof {
            needed: 11,
            remaining: bytes.len(),
        }));
    }
    let (payload, trailer) = bytes.split_at(trailer_at);
    let found = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
    let expected = crc32(payload);
    if found != expected {
        return Err(PersistError::CrcMismatch { expected, found });
    }
    Ok(payload)
}

/// Encode a regressor to bytes. Every family round-trips.
pub fn encode_regressor(model: &TrainedRegressor) -> Result<Vec<u8>, PersistError> {
    let mut w = ByteWriter::new();
    put_header(&mut w, KIND_REGRESSOR);
    match model {
        TrainedRegressor::Gdbt { model, spec } => {
            w.put_u8(FAM_GDBT);
            put_spec(&mut w, Some(spec));
            model.encode(&mut w);
        }
        TrainedRegressor::RandomForest { model, spec } => {
            w.put_u8(FAM_RF);
            put_spec(&mut w, Some(spec));
            model.encode(&mut w);
        }
        TrainedRegressor::Knn { model, spec } => {
            w.put_u8(FAM_KNN);
            put_spec(&mut w, Some(spec));
            model.encode(&mut w);
        }
        TrainedRegressor::Harmonic { window } => {
            w.put_u8(FAM_HARMONIC);
            put_spec(&mut w, None);
            w.put_u32(*window as u32);
        }
        TrainedRegressor::Seq2Seq {
            model,
            x_scaler,
            y_scaler,
            params,
            spec,
        } => {
            w.put_u8(FAM_SEQ2SEQ);
            put_spec(&mut w, Some(spec));
            put_seq2seq_params(&mut w, params);
            x_scaler.encode(&mut w);
            w.put_f64(y_scaler.mean);
            w.put_f64(y_scaler.std);
            model.encode(&mut w);
        }
        TrainedRegressor::Kriging { model, spec } => {
            w.put_u8(FAM_KRIGING);
            put_spec(&mut w, Some(spec));
            model.encode(&mut w);
        }
    }
    Ok(seal(w))
}

/// Decode a regressor from bytes produced by [`encode_regressor`].
pub fn decode_regressor(bytes: &[u8]) -> Result<TrainedRegressor, PersistError> {
    let payload = split_container(bytes)?;
    let mut r = ByteReader::new(payload);
    let model = decode_regressor_from(&mut r)?;
    r.finish().map_err(PersistError::Codec)?;
    Ok(model)
}

fn decode_regressor_from(r: &mut ByteReader<'_>) -> Result<TrainedRegressor, PersistError> {
    let (version, kind) = get_header(r)?;
    if kind != KIND_REGRESSOR {
        return Err(PersistError::WrongKind {
            expected: "regressor",
            found: kind,
        });
    }
    let family = r.u8()?;
    let spec = get_spec(r)?;
    let need_spec = |spec: Option<FeatureSpec>| {
        spec.ok_or(PersistError::Codec(CodecError::Invalid(
            "missing feature spec".into(),
        )))
    };
    Ok(match family {
        FAM_GDBT => TrainedRegressor::Gdbt {
            model: GbdtRegressor::decode(r)?,
            spec: need_spec(spec)?,
        },
        FAM_RF => TrainedRegressor::RandomForest {
            model: RandomForestRegressor::decode(r)?,
            spec: need_spec(spec)?,
        },
        FAM_KNN => TrainedRegressor::Knn {
            model: KnnRegressor::decode(r)?,
            spec: need_spec(spec)?,
        },
        FAM_HARMONIC => {
            let window = r.u32()? as usize;
            if window == 0 {
                return Err(PersistError::Codec(CodecError::Invalid(
                    "harmonic window of zero".into(),
                )));
            }
            TrainedRegressor::Harmonic { window }
        }
        FAM_KRIGING => TrainedRegressor::Kriging {
            model: OrdinaryKriging::decode(r)?,
            spec: need_spec(spec)?,
        },
        FAM_SEQ2SEQ => {
            let spec = need_spec(spec)?;
            let params = get_seq2seq_params(r, version)?;
            let x_scaler = StandardScaler::decode(r)?;
            let y_scaler = TargetScaler {
                mean: r.f64()?,
                std: r.f64()?,
            };
            let model = Seq2Seq::decode(r)?;
            // The network architecture must agree with the framework-level
            // params and the feature spec it claims to serve; a mismatch
            // means the payload was stitched together from different files.
            let cfg = model.config();
            if cfg.input_dim != spec.dim()
                || cfg.hidden != params.hidden
                || cfg.layers != params.layers
                || cfg.horizon != params.horizon
            {
                return Err(PersistError::Codec(CodecError::Invalid(
                    "Seq2Seq architecture disagrees with stored params/spec".into(),
                )));
            }
            if x_scaler.means.len() != spec.dim() || x_scaler.stds.len() != spec.dim() {
                return Err(PersistError::Codec(CodecError::Invalid(
                    "Seq2Seq feature scaler disagrees with feature spec".into(),
                )));
            }
            TrainedRegressor::Seq2Seq {
                model: Box::new(model),
                x_scaler,
                y_scaler,
                params,
                spec,
            }
        }
        _ => {
            return Err(PersistError::UnsupportedFamily(format!(
                "regressor tag {family}"
            )))
        }
    })
}

/// Encode a classifier to bytes. A `FromRegression` classifier nests its
/// regressor's full encoding, so it is persistable exactly when the
/// regressor is.
pub fn encode_classifier(model: &TrainedClassifier) -> Result<Vec<u8>, PersistError> {
    let mut w = ByteWriter::new();
    put_header(&mut w, KIND_CLASSIFIER);
    match model {
        TrainedClassifier::GdbtNative { model, spec } => {
            w.put_u8(FAM_GDBT);
            put_spec(&mut w, Some(spec));
            model.encode(&mut w);
        }
        TrainedClassifier::RfNative { model, spec } => {
            w.put_u8(FAM_RF);
            put_spec(&mut w, Some(spec));
            model.encode(&mut w);
        }
        TrainedClassifier::KnnNative { model, spec } => {
            w.put_u8(FAM_KNN);
            put_spec(&mut w, Some(spec));
            model.encode(&mut w);
        }
        TrainedClassifier::FromRegression(reg) => {
            w.put_u8(FAM_FROM_REGRESSION);
            put_spec(&mut w, None);
            let inner = encode_regressor(reg)?;
            w.put_len(inner.len());
            w.put_bytes(&inner);
        }
    }
    Ok(seal(w))
}

/// Decode a classifier from bytes produced by [`encode_classifier`].
pub fn decode_classifier(bytes: &[u8]) -> Result<TrainedClassifier, PersistError> {
    let payload = split_container(bytes)?;
    let mut r = ByteReader::new(payload);
    let (_version, kind) = get_header(&mut r)?;
    if kind != KIND_CLASSIFIER {
        return Err(PersistError::WrongKind {
            expected: "classifier",
            found: kind,
        });
    }
    let family = r.u8()?;
    let spec = get_spec(&mut r)?;
    let need_spec = |spec: Option<FeatureSpec>| {
        spec.ok_or(PersistError::Codec(CodecError::Invalid(
            "missing feature spec".into(),
        )))
    };
    let model = match family {
        FAM_GDBT => TrainedClassifier::GdbtNative {
            model: GbdtClassifier::decode(&mut r)?,
            spec: need_spec(spec)?,
        },
        FAM_RF => TrainedClassifier::RfNative {
            model: RandomForestClassifier::decode(&mut r)?,
            spec: need_spec(spec)?,
        },
        FAM_KNN => TrainedClassifier::KnnNative {
            model: KnnClassifier::decode(&mut r)?,
            spec: need_spec(spec)?,
        },
        FAM_FROM_REGRESSION => {
            let len = r.len()?;
            let inner = r.take(len)?;
            TrainedClassifier::FromRegression(Box::new(decode_regressor(inner)?))
        }
        _ => {
            return Err(PersistError::UnsupportedFamily(format!(
                "classifier tag {family}"
            )))
        }
    };
    r.finish().map_err(PersistError::Codec)?;
    Ok(model)
}

/// A persisted mid-training snapshot — everything a boosting loop or an
/// epoch loop needs to resume bit-identically after a kill.
#[derive(Debug, Clone)]
pub enum TrainingCheckpoint {
    /// GDBT boosting state: config, completed rounds, trees so far.
    Gdbt(GbdtCheckpoint),
    /// Seq2Seq epoch state: weights, Adam moments, epochs done, best
    /// validation snapshot. Boxed: the state dwarfs the GDBT variant.
    Seq2Seq(Box<Seq2SeqTrainState>),
}

/// Encode a training checkpoint into the same sealed `.l5gm` container
/// models use (kind byte 2).
pub fn encode_checkpoint(ckpt: &TrainingCheckpoint) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_header(&mut w, KIND_CHECKPOINT);
    match ckpt {
        TrainingCheckpoint::Gdbt(state) => {
            w.put_u8(FAM_GDBT);
            state.encode(&mut w);
        }
        TrainingCheckpoint::Seq2Seq(state) => {
            w.put_u8(FAM_SEQ2SEQ);
            state.encode(&mut w);
        }
    }
    seal(w)
}

/// Decode a training checkpoint produced by [`encode_checkpoint`].
pub fn decode_checkpoint(bytes: &[u8]) -> Result<TrainingCheckpoint, PersistError> {
    let payload = split_container(bytes)?;
    let mut r = ByteReader::new(payload);
    let (_version, kind) = get_header(&mut r)?;
    if kind != KIND_CHECKPOINT {
        return Err(PersistError::WrongKind {
            expected: "training checkpoint",
            found: kind,
        });
    }
    let family = r.u8()?;
    let ckpt = match family {
        FAM_GDBT => TrainingCheckpoint::Gdbt(GbdtCheckpoint::decode(&mut r)?),
        FAM_SEQ2SEQ => TrainingCheckpoint::Seq2Seq(Box::new(Seq2SeqTrainState::decode(&mut r)?)),
        _ => {
            return Err(PersistError::UnsupportedFamily(format!(
                "checkpoint tag {family}"
            )))
        }
    };
    r.finish().map_err(PersistError::Codec)?;
    Ok(ckpt)
}

/// Save a training checkpoint atomically to `path`.
pub fn save_checkpoint(ckpt: &TrainingCheckpoint, path: &Path) -> Result<(), PersistError> {
    atomic_write(path, &encode_checkpoint(ckpt))
}

/// Load a training checkpoint saved by [`save_checkpoint`].
pub fn load_checkpoint(path: &Path) -> Result<TrainingCheckpoint, PersistError> {
    decode_checkpoint(&std::fs::read(path)?)
}

/// Crash-safe file replacement: write a temp file next to `path`, fsync
/// it, `rename` over the destination, and fsync the directory so the
/// rename itself is durable. A kill at any instant leaves either the old
/// content or the new content at `path` — never a torn hybrid — plus at
/// worst an orphaned `*.tmp` file that loaders ignore.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    std::fs::create_dir_all(&parent)?;
    let file_name = path.file_name().ok_or_else(|| {
        PersistError::Io(io::Error::new(
            io::ErrorKind::InvalidInput,
            "atomic_write target has no file name",
        ))
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(format!(".{}.tmp", std::process::id()));
    let tmp = parent.join(tmp_name);
    let write = (|| -> io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // The data must be on disk before the rename publishes it,
        // otherwise a crash could surface a durable name with volatile
        // content — exactly the torn state the temp file exists to avoid.
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = write {
        let _ = std::fs::remove_file(&tmp);
        return Err(PersistError::Io(e));
    }
    // Durability of the directory entry; best-effort where directories
    // cannot be fsynced (some filesystems), correctness never depends on
    // it — only on the data-before-rename ordering above.
    if let Ok(dir) = std::fs::File::open(&parent) {
        let _ = dir.sync_all();
    }
    Ok(())
}

/// Save a regressor atomically to `path`, creating parent directories as
/// needed.
pub fn save_regressor(model: &TrainedRegressor, path: &Path) -> Result<(), PersistError> {
    let bytes = encode_regressor(model)?;
    atomic_write(path, &bytes)
}

/// Load a regressor saved by [`save_regressor`].
pub fn load_regressor(path: &Path) -> Result<TrainedRegressor, PersistError> {
    decode_regressor(&std::fs::read(path)?)
}

/// Save a classifier atomically to `path`, creating parent directories as
/// needed.
pub fn save_classifier(model: &TrainedClassifier, path: &Path) -> Result<(), PersistError> {
    let bytes = encode_classifier(model)?;
    atomic_write(path, &bytes)
}

/// Load a classifier saved by [`save_classifier`].
pub fn load_classifier(path: &Path) -> Result<TrainedClassifier, PersistError> {
    decode_classifier(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{quick_gbdt, quick_seq2seq, Lumos5G, ModelKind};
    use lumos5g_ml::forest::ForestConfig;
    use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig, Dataset};

    fn campaign(seed: u64) -> Dataset {
        let area = airport(seed);
        let cfg = CampaignConfig {
            passes_per_trajectory: 2,
            max_duration_s: 160,
            base_seed: seed,
            bad_gps_fraction: 0.0,
            ..Default::default()
        };
        let raw = run_campaign(&area, &cfg);
        let (clean, _) = quality::apply(&raw, &area.frame, &Default::default());
        clean
    }

    fn family_grid(seed: u64) -> Vec<(&'static str, ModelKind)> {
        let mut gbdt = quick_gbdt();
        gbdt.seed = seed;
        vec![
            ("gdbt", ModelKind::Gdbt(gbdt)),
            ("knn", ModelKind::Knn { k: 5 }),
            (
                "rf",
                ModelKind::RandomForest(ForestConfig {
                    n_trees: 15,
                    ..Default::default()
                }),
            ),
        ]
    }

    #[test]
    fn regressor_round_trip_is_bit_identical_for_every_family() {
        let data = campaign(11);
        for (name, kind) in family_grid(11) {
            for set in [FeatureSet::L, FeatureSet::LM, FeatureSet::LMC] {
                let model = Lumos5G::new(set, kind.clone())
                    .fit_regression(&data)
                    .unwrap();
                let bytes = encode_regressor(&model).unwrap();
                let loaded = decode_regressor(&bytes).unwrap();
                assert_eq!(loaded.spec(), model.spec(), "{name}/{set:?}");
                let (_, want) = model.eval(&data);
                let (_, got) = loaded.eval(&data);
                assert_eq!(want.len(), got.len());
                for (w, g) in want.iter().zip(&got) {
                    assert_eq!(w.to_bits(), g.to_bits(), "{name}/{set:?}");
                }
            }
        }
    }

    #[test]
    fn classifier_round_trip_is_bit_identical_for_every_family() {
        let data = campaign(13);
        for (name, kind) in family_grid(13) {
            let model = Lumos5G::new(FeatureSet::LM, kind)
                .fit_classification(&data)
                .unwrap();
            let bytes = encode_classifier(&model).unwrap();
            let loaded = decode_classifier(&bytes).unwrap();
            let (_, want) = model.eval(&data);
            let (_, got) = loaded.eval(&data);
            assert_eq!(want, got, "{name}");
        }
    }

    #[test]
    fn harmonic_and_from_regression_round_trip() {
        let data = campaign(17);
        let reg = Lumos5G::new(FeatureSet::L, ModelKind::HarmonicMean { window: 7 })
            .fit_regression(&data)
            .unwrap();
        let loaded = decode_regressor(&encode_regressor(&reg).unwrap()).unwrap();
        assert!(matches!(loaded, TrainedRegressor::Harmonic { window: 7 }));

        let clf = Lumos5G::new(FeatureSet::L, ModelKind::HarmonicMean { window: 7 })
            .fit_classification(&data)
            .unwrap();
        let loaded = decode_classifier(&encode_classifier(&clf).unwrap()).unwrap();
        let (want_t, want_p) = clf.eval(&data);
        let (got_t, got_p) = loaded.eval(&data);
        assert_eq!(want_t, got_t);
        assert_eq!(want_p, got_p);
    }

    #[test]
    fn kriging_round_trip_is_bit_identical() {
        let data = campaign(19);
        let kriging = Lumos5G::new(FeatureSet::L, ModelKind::Kriging { neighbors: 8 })
            .fit_regression(&data)
            .unwrap();
        let bytes = encode_regressor(&kriging).unwrap();
        let loaded = decode_regressor(&bytes).unwrap();
        assert_eq!(loaded.spec(), kriging.spec());
        let (_, want) = kriging.eval(&data);
        let (_, got) = loaded.eval(&data);
        assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
        // Truncations must error cleanly, never panic.
        for cut in (0..bytes.len()).step_by(13).chain([bytes.len() - 1]) {
            assert!(decode_regressor(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn seq2seq_round_trip_is_bit_identical_including_horizons() {
        let data = campaign(19);
        let mut p = quick_seq2seq();
        p.epochs = 2;
        let model = Lumos5G::new(FeatureSet::LM, ModelKind::Seq2Seq(p))
            .fit_regression(&data)
            .unwrap();
        let bytes = encode_regressor(&model).unwrap();
        let loaded = decode_regressor(&bytes).unwrap();
        assert_eq!(loaded.spec(), model.spec());
        assert_eq!(loaded.seq2seq_params(), model.seq2seq_params());

        // Every k-step horizon decoded from a restored model must match the
        // original bit-for-bit.
        let spec = *model.spec().unwrap();
        let seqs = crate::build_sequences(&data, &spec, p.input_len, p.horizon, p.stride);
        assert!(!seqs.inputs.is_empty());
        for hist in seqs.inputs.iter().take(16) {
            let want = model.predict_sequence_checked(hist).unwrap();
            let got = loaded.predict_sequence_checked(hist).unwrap();
            assert_eq!(want.len(), got.len());
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // Truncations must error cleanly, never panic (the payload is large,
        // so stride the cut points).
        for cut in (0..bytes.len()).step_by(257).chain([bytes.len() - 1]) {
            assert!(decode_regressor(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_truncation_errors_instead_of_panicking() {
        let data = campaign(23);
        let model = Lumos5G::new(FeatureSet::LM, ModelKind::Knn { k: 3 })
            .fit_regression(&data)
            .unwrap();
        let bytes = encode_regressor(&model).unwrap();
        // Every strict prefix must fail cleanly (step 7 keeps it fast; the
        // interesting boundaries near the header are all covered).
        for cut in (0..bytes.len()).step_by(7).chain([bytes.len() - 1]) {
            assert!(decode_regressor(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupted_header_and_trailing_bytes_are_rejected() {
        let model = TrainedRegressor::Harmonic { window: 5 };
        let bytes = encode_regressor(&model).unwrap();

        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode_regressor(&bad_magic),
            Err(PersistError::BadMagic)
        ));

        let mut future = bytes.clone();
        future[4..6].copy_from_slice(&999u16.to_le_bytes());
        assert!(matches!(
            decode_regressor(&future),
            Err(PersistError::UnsupportedVersion(999))
        ));

        // Any payload byte flip — family tag included — fails the v2
        // checksum before the decoder ever sees the bogus tag.
        let mut bad_family = bytes.clone();
        bad_family[7] = 0xEE;
        assert!(matches!(
            decode_regressor(&bad_family),
            Err(PersistError::CrcMismatch { .. })
        ));

        // Appending a byte shifts the trailer window off the real CRC.
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            decode_regressor(&trailing),
            Err(PersistError::CrcMismatch { .. })
        ));

        // A regressor file is not a classifier and vice versa.
        assert!(matches!(
            decode_classifier(&bytes),
            Err(PersistError::WrongKind { .. })
        ));
    }

    #[test]
    fn every_bit_flip_is_caught_by_the_checksum() {
        let model = TrainedRegressor::Harmonic { window: 5 };
        let bytes = encode_regressor(&model).unwrap();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[byte] ^= 1 << bit;
                assert!(
                    decode_regressor(&flipped).is_err(),
                    "flip at byte {byte} bit {bit} must not decode"
                );
            }
        }
    }

    #[test]
    fn v1_files_without_checksum_still_decode() {
        // A v1 Harmonic file, exactly as the previous release wrote it:
        // magic + version 1 + kind + family + no spec + window, no trailer.
        let mut w = ByteWriter::new();
        w.put_bytes(&MAGIC);
        w.put_u16(1);
        w.put_u8(KIND_REGRESSOR);
        w.put_u8(FAM_HARMONIC);
        w.put_u8(0); // no spec
        w.put_u32(9);
        let bytes = w.into_bytes();
        let loaded = decode_regressor(&bytes).unwrap();
        assert!(matches!(loaded, TrainedRegressor::Harmonic { window: 9 }));
    }

    #[test]
    fn checkpoint_container_rejects_kind_confusion() {
        let model = TrainedRegressor::Harmonic { window: 5 };
        let bytes = encode_regressor(&model).unwrap();
        assert!(matches!(
            decode_checkpoint(&bytes),
            Err(PersistError::WrongKind { .. })
        ));
    }

    #[test]
    fn atomic_write_replaces_and_survives_reread() {
        let dir = std::env::temp_dir().join(format!("l5gm-atomic-{}", std::process::id()));
        let path = dir.join("model.l5gm");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No temp file left behind after a successful write.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path() != path)
            .collect();
        assert!(leftovers.is_empty(), "stray files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_load_files_round_trip() {
        let dir = std::env::temp_dir().join(format!("l5gm-persist-{}", std::process::id()));
        let data = campaign(29);
        let model = Lumos5G::new(FeatureSet::LM, ModelKind::Gdbt(quick_gbdt()))
            .fit_regression(&data)
            .unwrap();
        let path = dir.join("nested/model.l5gm");
        save_regressor(&model, &path).unwrap();
        let loaded = load_regressor(&path).unwrap();
        let (_, want) = model.eval(&data);
        let (_, got) = loaded.eval(&data);
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
