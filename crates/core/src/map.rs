//! 5G throughput maps (Figs 3c, 6, 9).
//!
//! A [`ThroughputMap`] aggregates samples on the paper's 2 m × 2 m grid and
//! renders them as CSV (for plotting) or ASCII art (for terminals), using
//! the paper's color semantics: dark red < 60 Mbps … lime green > 1 Gbps.
//! Maps can be restricted by direction to reproduce the NB-vs-SB contrast
//! of Fig 9, and support cell-level statistics for the §4.1 analysis.

use lumos5g_geo::{GridCell, GridIndex};
use lumos5g_sim::Dataset;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Aggregated per-cell throughput statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStats {
    /// Number of samples.
    pub n: usize,
    /// Mean throughput, Mbps.
    pub mean: f64,
    /// Sample standard deviation (0 for a single sample).
    pub std: f64,
}

/// A gridded throughput map.
#[derive(Debug, Clone)]
pub struct ThroughputMap {
    grid: GridIndex,
    cells: HashMap<GridCell, CellStats>,
}

impl ThroughputMap {
    /// Build from a dataset on the paper's 2 m grid.
    pub fn from_dataset(data: &Dataset) -> Self {
        Self::from_dataset_with_grid(data, GridIndex::paper_map_grid())
    }

    /// Build with a custom grid.
    pub fn from_dataset_with_grid(data: &Dataset, grid: GridIndex) -> Self {
        let groups = data.throughput_by_cell(&grid);
        let cells = groups
            .into_iter()
            .map(|(cell, vals)| {
                let n = vals.len();
                let mean = vals.iter().sum::<f64>() / n as f64;
                let var = if n > 1 {
                    vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
                } else {
                    0.0
                };
                (
                    cell,
                    CellStats {
                        n,
                        mean,
                        std: var.sqrt(),
                    },
                )
            })
            .collect();
        ThroughputMap { grid, cells }
    }

    /// Number of non-empty cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the map has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Statistics for the cell containing local point `(x, y)`.
    pub fn query(&self, x: f64, y: f64) -> Option<CellStats> {
        self.cells
            .get(&self.grid.cell_of(lumos5g_geo::Point2::new(x, y)))
            .copied()
    }

    /// Iterate over `(cell, stats)`.
    pub fn cells(&self) -> impl Iterator<Item = (&GridCell, &CellStats)> {
        self.cells.iter()
    }

    /// The paper's Fig 6 color-scale bucket for a mean throughput:
    /// 0 = "<60 Mbps" (dark red) … 5 = ">1 Gbps" (lime green).
    pub fn color_bucket(mean_mbps: f64) -> u8 {
        match mean_mbps {
            m if m < 60.0 => 0,
            m if m < 300.0 => 1,
            m if m < 500.0 => 2,
            m if m < 700.0 => 3,
            m if m < 1000.0 => 4,
            _ => 5,
        }
    }

    /// CSV export: `cell_i,cell_j,x_m,y_m,n,mean_mbps,std_mbps,bucket`.
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<(&GridCell, &CellStats)> = self.cells.iter().collect();
        rows.sort_by_key(|(c, _)| (c.j, c.i));
        let mut out = String::from("cell_i,cell_j,x_m,y_m,n,mean_mbps,std_mbps,bucket\n");
        for (c, s) in rows {
            let center = self.grid.center_of(*c);
            let _ = writeln!(
                out,
                "{},{},{:.1},{:.1},{},{:.1},{:.1},{}",
                c.i,
                c.j,
                center.x,
                center.y,
                s.n,
                s.mean,
                s.std,
                Self::color_bucket(s.mean)
            );
        }
        out
    }

    /// ASCII heatmap: one character per cell (`.` empty, `0`–`5` bucket),
    /// north up. Useful in terminals and integration tests.
    pub fn to_ascii(&self) -> String {
        if self.cells.is_empty() {
            return String::from("(empty map)\n");
        }
        let min_i = self.cells.keys().map(|c| c.i).min().expect("non-empty");
        let max_i = self.cells.keys().map(|c| c.i).max().expect("non-empty");
        let min_j = self.cells.keys().map(|c| c.j).min().expect("non-empty");
        let max_j = self.cells.keys().map(|c| c.j).max().expect("non-empty");
        let mut out = String::new();
        for j in (min_j..=max_j).rev() {
            for i in min_i..=max_i {
                match self.cells.get(&GridCell { i, j }) {
                    None => out.push('.'),
                    Some(s) => {
                        out.push(
                            char::from_digit(Self::color_bucket(s.mean) as u32, 10)
                                .expect("bucket < 10"),
                        );
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Merge maps contributed by multiple users (the §8.2 crowdsourced
    /// platform): per-cell statistics are pooled exactly as if all samples
    /// had been collected by one device. All maps must share the grid size.
    pub fn merge(maps: &[&ThroughputMap]) -> ThroughputMap {
        assert!(!maps.is_empty(), "need at least one map to merge");
        let cell = maps[0].grid.cell_size();
        assert!(
            maps.iter()
                .all(|m| (m.grid.cell_size() - cell).abs() < 1e-12),
            "maps must share a grid size"
        );
        let mut cells: HashMap<GridCell, CellStats> = HashMap::new();
        for m in maps {
            for (k, s) in &m.cells {
                cells
                    .entry(*k)
                    .and_modify(|acc| *acc = pool(*acc, *s))
                    .or_insert(*s);
            }
        }
        ThroughputMap {
            grid: maps[0].grid,
            cells,
        }
    }

    /// The Fig-4 "conical heatmap" query: expected throughput in a cone of
    /// half-angle `halfangle_deg` around `heading_deg` from `(x, y)`, out
    /// to `range_m`. Returns the sample-weighted mean over covered cells,
    /// or `None` when no populated cell falls inside the cone — this is the
    /// primitive a 5G-aware app would call to anticipate conditions ahead.
    pub fn conical_query(
        &self,
        x: f64,
        y: f64,
        heading_deg: f64,
        halfangle_deg: f64,
        range_m: f64,
    ) -> Option<f64> {
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for (cell, stats) in &self.cells {
            let c = self.grid.center_of(*cell);
            let dx = c.x - x;
            let dy = c.y - y;
            let d = (dx * dx + dy * dy).sqrt();
            if d < 1e-9 || d > range_m {
                continue;
            }
            let bearing = lumos5g_geo::bearing_deg(x, y, c.x, c.y);
            if lumos5g_geo::signed_delta_deg(heading_deg, bearing).abs() > halfangle_deg {
                continue;
            }
            weighted += stats.mean * stats.n as f64;
            weight += stats.n as f64;
        }
        if weight > 0.0 {
            Some(weighted / weight)
        } else {
            None
        }
    }

    /// Fraction of cells whose mean falls in the given bucket.
    pub fn bucket_fraction(&self, bucket: u8) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        let hits = self
            .cells
            .values()
            .filter(|s| Self::color_bucket(s.mean) == bucket)
            .count();
        hits as f64 / self.cells.len() as f64
    }
}

/// Pool two per-cell summaries as if their samples were one set (exact for
/// mean; std via combined sum-of-squares).
fn pool(a: CellStats, b: CellStats) -> CellStats {
    let n = a.n + b.n;
    let nf = n as f64;
    let mean = (a.mean * a.n as f64 + b.mean * b.n as f64) / nf;
    // Reconstruct each group's total sum of squared deviations (sample
    // variance uses n−1).
    let ss = |s: CellStats| -> f64 {
        if s.n > 1 {
            s.std * s.std * (s.n - 1) as f64
        } else {
            0.0
        }
    };
    let total_ss =
        ss(a) + ss(b) + a.n as f64 * (a.mean - mean).powi(2) + b.n as f64 * (b.mean - mean).powi(2);
    let std = if n > 1 {
        (total_ss / (n - 1) as f64).sqrt()
    } else {
        0.0
    };
    CellStats { n, mean, std }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig};

    fn map_from_sim() -> ThroughputMap {
        let area = airport(9);
        let cfg = CampaignConfig {
            passes_per_trajectory: 2,
            max_duration_s: 280,
            bad_gps_fraction: 0.0,
            ..Default::default()
        };
        let raw = run_campaign(&area, &cfg);
        let (clean, _) = quality::apply(&raw, &area.frame, &Default::default());
        ThroughputMap::from_dataset(&clean)
    }

    #[test]
    fn map_has_cells_along_the_corridor() {
        let m = map_from_sim();
        assert!(m.len() > 50, "only {} cells", m.len());
    }

    #[test]
    fn buckets_match_paper_scale() {
        assert_eq!(ThroughputMap::color_bucket(10.0), 0);
        assert_eq!(ThroughputMap::color_bucket(100.0), 1);
        assert_eq!(ThroughputMap::color_bucket(400.0), 2);
        assert_eq!(ThroughputMap::color_bucket(600.0), 3);
        assert_eq!(ThroughputMap::color_bucket(800.0), 4);
        assert_eq!(ThroughputMap::color_bucket(1500.0), 5);
    }

    #[test]
    fn csv_row_count_matches_cells() {
        let m = map_from_sim();
        let csv = m.to_csv();
        assert_eq!(csv.lines().count(), m.len() + 1);
    }

    #[test]
    fn ascii_renders_digits_and_dots() {
        let m = map_from_sim();
        let art = m.to_ascii();
        assert!(art.contains('\n'));
        assert!(art
            .chars()
            .all(|c| c == '.' || c == '\n' || c.is_ascii_digit()));
    }

    #[test]
    fn bucket_fractions_sum_to_one() {
        let m = map_from_sim();
        let total: f64 = (0..=5).map(|b| m.bucket_fraction(b)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn query_finds_populated_cells() {
        let m = map_from_sim();
        // The corridor spine (x≈0, y≈100) should be covered.
        let found = (80..240)
            .step_by(2)
            .any(|y| m.query(0.0, y as f64).is_some());
        assert!(found);
    }

    #[test]
    fn conical_query_sees_ahead_not_behind() {
        let m = map_from_sim();
        // Standing mid-corridor looking north: cells ahead are covered.
        let ahead = m.conical_query(0.0, 150.0, 0.0, 30.0, 80.0);
        assert!(ahead.is_some());
        // Looking due east out of the corridor: nothing there.
        let outside = m.conical_query(0.0, 150.0, 90.0, 20.0, 200.0);
        // The corridor is ~30 m wide, so a narrow east cone finds little or
        // nothing beyond it.
        if let Some(v) = outside {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn conical_query_range_limits_coverage() {
        let m = map_from_sim();
        let near = m.conical_query(0.0, 100.0, 0.0, 45.0, 20.0);
        let far = m.conical_query(0.0, 100.0, 0.0, 45.0, 250.0);
        // Wider range must cover at least as many cells (both Some here).
        assert!(near.is_some() && far.is_some());
    }

    #[test]
    fn merge_pools_statistics_exactly() {
        use lumos5g_sim::Dataset;
        let area = airport(31);
        let cfg = CampaignConfig {
            passes_per_trajectory: 2,
            max_duration_s: 200,
            bad_gps_fraction: 0.0,
            ..Default::default()
        };
        let raw = run_campaign(&area, &cfg);
        let (clean, _) = quality::apply(&raw, &area.frame, &Default::default());
        // Split by pass parity into two "users", map each, merge.
        let user_a: Dataset = clean.filter(|r| r.pass_id % 2 == 0);
        let user_b: Dataset = clean.filter(|r| r.pass_id % 2 == 1);
        let map_a = ThroughputMap::from_dataset(&user_a);
        let map_b = ThroughputMap::from_dataset(&user_b);
        let merged = ThroughputMap::merge(&[&map_a, &map_b]);
        let direct = ThroughputMap::from_dataset(&clean);
        assert_eq!(merged.len(), direct.len());
        for (cell, want) in direct.cells() {
            let center = lumos5g_geo::GridIndex::paper_map_grid().center_of(*cell);
            let got = merged.query(center.x, center.y).expect("cell present");
            assert_eq!(got.n, want.n);
            assert!((got.mean - want.mean).abs() < 1e-9);
            assert!(
                (got.std - want.std).abs() < 1e-9,
                "{} vs {}",
                got.std,
                want.std
            );
        }
    }

    #[test]
    fn merge_single_map_is_identity() {
        let m = map_from_sim();
        let merged = ThroughputMap::merge(&[&m]);
        assert_eq!(merged.len(), m.len());
    }

    #[test]
    fn conical_query_empty_cone_is_none() {
        let m = map_from_sim();
        // Far outside the corridor looking further away.
        assert_eq!(m.conical_query(5_000.0, 5_000.0, 45.0, 10.0, 50.0), None);
    }
}
