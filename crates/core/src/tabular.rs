//! Supervised dataset construction.
//!
//! The prediction task (§5.2): from features measured up to second `t`,
//! predict the throughput of second `t+1` (short-term regression) or its
//! class. GDBT and the tabular baselines see the feature vector of the
//! current second; Seq2Seq sees the last `input_len` feature vectors and
//! emits `horizon` future throughputs.

use crate::classes::ThroughputClass;
use crate::features::FeatureSpec;
use lumos5g_sim::{Dataset, Record};
use std::collections::BTreeMap;

/// Tabular supervised data (GDBT, KNN, RF, Kriging).
#[derive(Debug, Clone, Default)]
pub struct TabularData {
    /// Feature matrix.
    pub xs: Vec<Vec<f64>>,
    /// Next-second throughput targets, Mbps.
    pub ys: Vec<f64>,
    /// Class labels of the targets.
    pub labels: Vec<usize>,
    /// Snapped (x, y) positions of the feature second — Kriging's inputs.
    pub positions: Vec<[f64; 2]>,
}

impl TabularData {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Select a subset by indices.
    pub fn select(&self, idx: &[usize]) -> TabularData {
        TabularData {
            xs: idx.iter().map(|&i| self.xs[i].clone()).collect(),
            ys: idx.iter().map(|&i| self.ys[i]).collect(),
            labels: idx.iter().map(|&i| self.labels[i]).collect(),
            positions: idx.iter().map(|&i| self.positions[i]).collect(),
        }
    }
}

/// Time-ordered per-pass record slices.
fn passes(data: &Dataset) -> Vec<Vec<&Record>> {
    let mut map: BTreeMap<(u32, u32), Vec<&Record>> = BTreeMap::new();
    for r in &data.records {
        map.entry((r.trajectory, r.pass_id)).or_default().push(r);
    }
    map.into_values()
        .map(|mut v| {
            v.sort_by_key(|r| r.t);
            v
        })
        .collect()
}

/// Build tabular data: features at second `t` → throughput at `t+1`.
pub fn build_tabular(data: &Dataset, spec: &FeatureSpec) -> TabularData {
    let mut out = TabularData::default();
    for pass in passes(data) {
        let owned: Vec<Record> = pass.iter().map(|r| (*r).clone()).collect();
        for i in 0..owned.len().saturating_sub(1) {
            // Target must be the contiguous next second of the same pass.
            if owned[i + 1].t != owned[i].t + 1 {
                continue;
            }
            if let Some(x) = spec.extract(&owned, i) {
                let y = owned[i + 1].throughput_mbps;
                out.xs.push(x);
                out.ys.push(y);
                out.labels.push(ThroughputClass::of(y).index());
                out.positions
                    .push([owned[i].snapped_x_m, owned[i].snapped_y_m]);
            }
        }
    }
    out
}

/// Sequence supervised data (Seq2Seq).
#[derive(Debug, Clone, Default)]
pub struct SequenceData {
    /// Input sequences: `inputs[sample][time][feature]`.
    pub inputs: Vec<Vec<Vec<f64>>>,
    /// Target sequences: `targets[sample][future_step]`, Mbps.
    pub targets: Vec<Vec<f64>>,
}

impl SequenceData {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Select a subset by indices.
    pub fn select(&self, idx: &[usize]) -> SequenceData {
        SequenceData {
            inputs: idx.iter().map(|&i| self.inputs[i].clone()).collect(),
            targets: idx.iter().map(|&i| self.targets[i].clone()).collect(),
        }
    }
}

/// Build sequence data: `input_len` consecutive feature vectors → the next
/// `horizon` throughputs. Windows slide by `stride` within each pass.
pub fn build_sequences(
    data: &Dataset,
    spec: &FeatureSpec,
    input_len: usize,
    horizon: usize,
    stride: usize,
) -> SequenceData {
    assert!(input_len >= 1 && horizon >= 1 && stride >= 1);
    let mut out = SequenceData::default();
    for pass in passes(data) {
        let owned: Vec<Record> = pass.iter().map(|r| (*r).clone()).collect();
        if owned.len() < input_len + horizon {
            continue;
        }
        // Contiguity: require consecutive seconds across the whole window.
        let contiguous = |a: usize, b: usize| owned[b].t - owned[a].t == (b - a) as u32;
        let mut start = 0usize;
        while start + input_len + horizon <= owned.len() {
            let end_in = start + input_len;
            let end_out = end_in + horizon;
            if contiguous(start, end_out - 1) {
                let mut xs = Vec::with_capacity(input_len);
                let mut ok = true;
                for i in start..end_in {
                    match spec.extract(&owned, i) {
                        Some(x) => xs.push(x),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if ok {
                    out.inputs.push(xs);
                    out.targets.push(
                        (end_in..end_out)
                            .map(|i| owned[i].throughput_mbps)
                            .collect(),
                    );
                }
            }
            start += stride;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FeatureSet;
    use lumos5g_sim::{Activity, Record};

    fn rec(t: u32, pass: u32, thpt: f64) -> Record {
        Record {
            area: 1,
            pass_id: pass,
            trajectory: 0,
            t,
            lat: 44.88,
            lon: -93.20,
            gps_accuracy_m: 2.0,
            activity: Activity::Walking,
            moving_speed_mps: 1.4,
            compass_deg: 0.0,
            throughput_mbps: thpt,
            on_5g: true,
            cell_id: 1,
            lte_rsrp_dbm: -95.0,
            nr_ssrsrp_dbm: -80.0,
            horizontal_handoff: false,
            vertical_handoff: false,
            panel_distance_m: 50.0,
            theta_p_deg: 0.0,
            theta_m_deg: 0.0,
            pixel_x: (t as i64) * 2,
            pixel_y: 7,
            snapped_x_m: t as f64,
            snapped_y_m: 0.0,
            true_x_m: t as f64,
            true_y_m: 0.0,
            true_speed_mps: 1.4,
        }
    }

    fn toy_dataset(n: u32) -> Dataset {
        Dataset::new((0..n).map(|t| rec(t, 1, 100.0 + t as f64)).collect())
    }

    #[test]
    fn tabular_targets_are_next_second() {
        let td = build_tabular(&toy_dataset(5), &FeatureSpec::new(FeatureSet::L));
        assert_eq!(td.len(), 4);
        // Features of t=0 (pixel_x 0) predict throughput at t=1 (101).
        assert_eq!(td.xs[0][0], 0.0);
        assert_eq!(td.ys[0], 101.0);
    }

    #[test]
    fn tabular_skips_time_gaps() {
        let mut recs: Vec<Record> = (0..3).map(|t| rec(t, 1, 100.0)).collect();
        recs.push(rec(10, 1, 100.0)); // gap
        recs.push(rec(11, 1, 100.0));
        let td = build_tabular(&Dataset::new(recs), &FeatureSpec::new(FeatureSet::L));
        // Pairs: (0→1), (1→2), (10→11). The 2→10 gap is skipped.
        assert_eq!(td.len(), 3);
    }

    #[test]
    fn tabular_class_labels_follow_targets() {
        let recs = vec![rec(0, 1, 0.0), rec(1, 1, 500.0), rec(2, 1, 900.0)];
        let td = build_tabular(&Dataset::new(recs), &FeatureSpec::new(FeatureSet::L));
        assert_eq!(td.labels, vec![1, 2]); // 500 = medium, 900 = high
    }

    #[test]
    fn sequences_have_requested_shape() {
        let sd = build_sequences(&toy_dataset(30), &FeatureSpec::new(FeatureSet::L), 10, 5, 1);
        assert!(!sd.is_empty());
        assert_eq!(sd.inputs[0].len(), 10);
        assert_eq!(sd.inputs[0][0].len(), 2);
        assert_eq!(sd.targets[0].len(), 5);
        // First window: inputs t=0..9, targets t=10..14 → 110..114.
        assert_eq!(sd.targets[0], vec![110.0, 111.0, 112.0, 113.0, 114.0]);
    }

    #[test]
    fn sequences_respect_stride() {
        let s1 = build_sequences(&toy_dataset(30), &FeatureSpec::new(FeatureSet::L), 10, 5, 1);
        let s5 = build_sequences(&toy_dataset(30), &FeatureSpec::new(FeatureSet::L), 10, 5, 5);
        assert!(s5.len() < s1.len());
    }

    #[test]
    fn short_passes_produce_no_sequences() {
        let sd = build_sequences(&toy_dataset(8), &FeatureSpec::new(FeatureSet::L), 10, 5, 1);
        assert!(sd.is_empty());
    }

    #[test]
    fn select_subsets_consistently() {
        let td = build_tabular(&toy_dataset(10), &FeatureSpec::new(FeatureSet::L));
        let sub = td.select(&[0, 2]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.ys[1], td.ys[2]);
    }
}
