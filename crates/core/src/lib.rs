#![warn(missing_docs)]

//! # lumos5g
//!
//! **Lumos5G** — a composable, context-aware machine-learning framework for
//! mmWave 5G throughput prediction, reproducing Narayanan et al., *"Lumos5G:
//! Mapping and Predicting Commercial mmWave 5G Throughput"*, IMC 2020.
//!
//! The framework's central idea (§5) is that no single UE-side signal
//! explains mmWave throughput; instead, features are organized into
//! **feature groups** —
//!
//! | Group | Contents |
//! |-------|----------|
//! | `L` | pixelized geolocation (zoom-17 X/Y) |
//! | `M` | moving speed + compass direction |
//! | `T` | UE–panel distance + positional angle θp + mobility angle θm |
//! | `C` | past throughput + radio type + LTE/NR signal strength + handoffs |
//!
//! — and models are *composed* from group combinations (`L+M`, `T+M`,
//! `L+M+C`, `T+M+C`) depending on what the usage context can supply.
//! Two model families are provided: light-weight, interpretable **GDBT**
//! and an expressive **LSTM Seq2Seq** (both from `lumos5g-ml`), plus the
//! 3G/4G-era baselines (KNN, Random Forest, Ordinary Kriging, Harmonic
//! Mean) the paper compares against.
//!
//! Quick start (see `examples/quickstart.rs` at the workspace root):
//!
//! ```
//! use lumos5g::prelude::*;
//!
//! // Simulate a small campaign at the Airport area and clean it.
//! let area = lumos5g_sim::airport(7);
//! let cfg = lumos5g_sim::CampaignConfig {
//!     passes_per_trajectory: 3,
//!     max_duration_s: 300,
//!     ..Default::default()
//! };
//! let raw = lumos5g_sim::run_campaign(&area, &cfg);
//! let (data, _) = lumos5g_sim::quality::apply(&raw, &area.frame, &Default::default());
//!
//! // Train a Lumos5G GDBT regressor on the L+M feature group.
//! let model = Lumos5G::new(FeatureSet::LM, ModelKind::Gdbt(quick_gbdt()))
//!     .fit_regression(&data)
//!     .unwrap();
//! let (truth, pred) = model.eval(&data);
//! assert_eq!(truth.len(), pred.len());
//! ```

pub mod abr;
pub mod classes;
pub mod eval;
pub mod features;
pub mod map;
pub mod map_model;
pub mod persist;
pub mod predictor;
pub mod tabular;
pub mod transfer;

pub use abr::{simulate_session, Ladder, PlayerConfig, Predictor, QoeReport};
pub use classes::ThroughputClass;
pub use features::{FeatureGroup, FeatureSet, FeatureSpec};
pub use map::ThroughputMap;
pub use map_model::{map_model_eval, MapModel};
pub use persist::{load_regressor, save_regressor, PersistError};
pub use predictor::{
    quick_gbdt, quick_seq2seq, Lumos5G, ModelKind, Seq2SeqParams, TrainedRegressor,
};
pub use tabular::{build_sequences, build_tabular, TabularData};

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use crate::classes::ThroughputClass;
    pub use crate::eval::{classification_eval, regression_eval, EvalSummary};
    pub use crate::features::{FeatureGroup, FeatureSet, FeatureSpec};
    pub use crate::map::ThroughputMap;
    pub use crate::predictor::{quick_gbdt, quick_seq2seq, Lumos5G, ModelKind};
    pub use crate::tabular::{build_sequences, build_tabular};
}
