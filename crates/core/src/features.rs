//! Feature groups and feature extraction (Table 6).
//!
//! Circular quantities (compass direction, θp, θm) are encoded as
//! (sin, cos) pairs so that 359° and 1° are near each other in feature
//! space — a representation detail the paper leaves to the models; trees
//! can threshold raw degrees but KNN/Kriging distances benefit from the
//! circular encoding, so we use it uniformly.

use lumos5g_sim::Record;

/// The four primary feature groups of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureGroup {
    /// Pixelized longitude/latitude coordinates.
    Location,
    /// UE moving speed + compass direction.
    Mobility,
    /// UE–panel distance + positional angle + mobility angle.
    Tower,
    /// Past throughput + radio type + signal strengths + handoffs.
    Connection,
}

/// A combination of primary groups — the "composed" models of Table 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureSet {
    /// Location only.
    L,
    /// Location + Mobility.
    LM,
    /// Tower + Mobility.
    TM,
    /// Location + Mobility + Connection.
    LMC,
    /// Tower + Mobility + Connection.
    TMC,
    /// Location + Tower + Mobility — not one of Table 6's deployment sets,
    /// but exactly the factor list of the §4 statistical analysis
    /// (Table 4, row 2: geolocation + distance + both angles + speed).
    LTM,
}

impl FeatureSet {
    /// The primary groups this set composes.
    pub fn groups(self) -> Vec<FeatureGroup> {
        use FeatureGroup::*;
        match self {
            FeatureSet::L => vec![Location],
            FeatureSet::LM => vec![Location, Mobility],
            FeatureSet::TM => vec![Tower, Mobility],
            FeatureSet::LMC => vec![Location, Mobility, Connection],
            FeatureSet::TMC => vec![Tower, Mobility, Connection],
            FeatureSet::LTM => vec![Location, Tower, Mobility],
        }
    }

    /// Paper-style label ("L+M", "T+M+C", …).
    pub fn label(self) -> &'static str {
        match self {
            FeatureSet::L => "L",
            FeatureSet::LM => "L+M",
            FeatureSet::TM => "T+M",
            FeatureSet::LMC => "L+M+C",
            FeatureSet::TMC => "T+M+C",
            FeatureSet::LTM => "L+T+M",
        }
    }

    /// Whether the set needs tower/panel knowledge (unavailable for the
    /// Loop area, like in the paper).
    pub fn needs_panels(self) -> bool {
        matches!(self, FeatureSet::TM | FeatureSet::TMC | FeatureSet::LTM)
    }

    /// Whether the set needs connection history (a 5G session in progress).
    pub fn needs_history(self) -> bool {
        matches!(self, FeatureSet::LMC | FeatureSet::TMC)
    }

    /// All five sets in the paper's table order.
    pub fn all() -> [FeatureSet; 5] {
        [
            FeatureSet::L,
            FeatureSet::LM,
            FeatureSet::TM,
            FeatureSet::LMC,
            FeatureSet::TMC,
        ]
    }
}

/// Extraction configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureSpec {
    /// Which groups to extract.
    pub set: FeatureSet,
    /// How many past throughput samples the `C` group includes.
    pub history_window: usize,
}

impl FeatureSpec {
    /// Default spec: the given set with a 5-sample throughput history.
    pub fn new(set: FeatureSet) -> Self {
        FeatureSpec {
            set,
            history_window: 5,
        }
    }

    /// Feature names, in extraction order (for importance reports).
    pub fn feature_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for g in self.set.groups() {
            match g {
                FeatureGroup::Location => {
                    names.push("pixel_x".into());
                    names.push("pixel_y".into());
                }
                FeatureGroup::Mobility => {
                    names.push("moving_speed".into());
                    names.push("compass_sin".into());
                    names.push("compass_cos".into());
                }
                FeatureGroup::Tower => {
                    names.push("panel_distance".into());
                    names.push("theta_p_sin".into());
                    names.push("theta_p_cos".into());
                    names.push("theta_m_sin".into());
                    names.push("theta_m_cos".into());
                }
                FeatureGroup::Connection => {
                    for i in (1..=self.history_window).rev() {
                        names.push(format!("past_throughput_t-{i}"));
                    }
                    names.push("radio_type_5g".into());
                    names.push("lte_rsrp".into());
                    names.push("nr_ssrsrp".into());
                    names.push("horizontal_handoff".into());
                    names.push("vertical_handoff".into());
                }
            }
        }
        names
    }

    /// Group label for each feature index (for grouped importance, Fig 22).
    pub fn feature_group_of(&self, idx: usize) -> FeatureGroup {
        let mut i = 0;
        for g in self.set.groups() {
            let width = match g {
                FeatureGroup::Location => 2,
                FeatureGroup::Mobility => 3,
                FeatureGroup::Tower => 5,
                FeatureGroup::Connection => self.history_window + 5,
            };
            if idx < i + width {
                return g;
            }
            i += width;
        }
        panic!("feature index {idx} out of range");
    }

    /// Total feature-vector dimension.
    pub fn dim(&self) -> usize {
        self.feature_names().len()
    }

    /// Extract the feature vector for `records[i]`.
    ///
    /// `records` must be one time-ordered pass (the `C` group reads the
    /// `history_window` preceding samples). Returns `None` when the set
    /// requires history that is not yet available.
    pub fn extract(&self, records: &[Record], i: usize) -> Option<Vec<f64>> {
        let r = &records[i];
        let mut x = Vec::with_capacity(self.dim());
        for g in self.set.groups() {
            match g {
                FeatureGroup::Location => {
                    x.push(r.pixel_x as f64);
                    x.push(r.pixel_y as f64);
                }
                FeatureGroup::Mobility => {
                    x.push(r.moving_speed_mps);
                    let rad = r.compass_deg.to_radians();
                    x.push(rad.sin());
                    x.push(rad.cos());
                }
                FeatureGroup::Tower => {
                    x.push(r.panel_distance_m);
                    let tp = r.theta_p_deg.to_radians();
                    x.push(tp.sin());
                    x.push(tp.cos());
                    let tm = r.theta_m_deg.to_radians();
                    x.push(tm.sin());
                    x.push(tm.cos());
                }
                FeatureGroup::Connection => {
                    if i < self.history_window {
                        return None;
                    }
                    // Guard against pass boundaries: history must be the
                    // same pass with contiguous seconds.
                    for k in (1..=self.history_window).rev() {
                        let prev = &records[i - k];
                        if prev.pass_id != r.pass_id || prev.t + k as u32 != r.t {
                            return None;
                        }
                        x.push(prev.throughput_mbps);
                    }
                    x.push(if r.on_5g { 1.0 } else { 0.0 });
                    x.push(r.lte_rsrp_dbm);
                    x.push(r.nr_ssrsrp_dbm);
                    x.push(if r.horizontal_handoff { 1.0 } else { 0.0 });
                    x.push(if r.vertical_handoff { 1.0 } else { 0.0 });
                }
            }
        }
        debug_assert_eq!(x.len(), self.dim());
        Some(x)
    }

    /// Extract features for the newest record of a streaming session window.
    ///
    /// `window` is the per-UE sliding history a serving engine maintains
    /// (oldest first, newest last). This is exactly
    /// `extract(window, window.len() - 1)` — sharing the code path is what
    /// guarantees online predictions are bit-identical to offline
    /// evaluation over the same records.
    pub fn extract_latest(&self, window: &[Record]) -> Option<Vec<f64>> {
        if window.is_empty() {
            return None;
        }
        self.extract(window, window.len() - 1)
    }

    /// The minimum window length a streaming session must retain so that
    /// [`Self::extract_latest`] can succeed: the newest record plus the
    /// `C`-group history when the set uses it.
    pub fn required_window(&self) -> usize {
        if self.set.needs_history() {
            self.history_window + 1
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos5g_sim::{Activity, Record};

    fn rec(t: u32, pass: u32, thpt: f64) -> Record {
        Record {
            area: 1,
            pass_id: pass,
            trajectory: 0,
            t,
            lat: 44.88,
            lon: -93.20,
            gps_accuracy_m: 2.0,
            activity: Activity::Walking,
            moving_speed_mps: 1.4,
            compass_deg: 90.0,
            throughput_mbps: thpt,
            on_5g: true,
            cell_id: 1,
            lte_rsrp_dbm: -95.0,
            nr_ssrsrp_dbm: -80.0,
            horizontal_handoff: false,
            vertical_handoff: false,
            panel_distance_m: 50.0,
            theta_p_deg: 30.0,
            theta_m_deg: 180.0,
            pixel_x: 1000,
            pixel_y: 2000,
            snapped_x_m: 1.0,
            snapped_y_m: 2.0,
            true_x_m: 1.0,
            true_y_m: 2.0,
            true_speed_mps: 1.4,
        }
    }

    #[test]
    fn dims_match_names() {
        for set in FeatureSet::all() {
            let spec = FeatureSpec::new(set);
            assert_eq!(spec.dim(), spec.feature_names().len());
        }
    }

    #[test]
    fn l_set_is_two_dimensional() {
        let spec = FeatureSpec::new(FeatureSet::L);
        assert_eq!(spec.dim(), 2);
        let recs = vec![rec(0, 1, 100.0)];
        let x = spec.extract(&recs, 0).unwrap();
        assert_eq!(x, vec![1000.0, 2000.0]);
    }

    #[test]
    fn compass_is_circularly_encoded() {
        let spec = FeatureSpec::new(FeatureSet::LM);
        let recs = vec![rec(0, 1, 100.0)];
        let x = spec.extract(&recs, 0).unwrap();
        // compass 90° → sin = 1, cos = 0.
        assert!((x[3] - 1.0).abs() < 1e-12);
        assert!(x[4].abs() < 1e-12);
    }

    #[test]
    fn c_features_need_history() {
        let spec = FeatureSpec::new(FeatureSet::LMC);
        let recs: Vec<Record> = (0..10).map(|t| rec(t, 1, 100.0 + t as f64)).collect();
        assert!(spec.extract(&recs, 3).is_none()); // window = 5
        let x = spec.extract(&recs, 7).unwrap();
        // Past throughputs t-5..t-1 = 102..106.
        assert_eq!(&x[5..10], &[102.0, 103.0, 104.0, 105.0, 106.0]);
    }

    #[test]
    fn history_does_not_cross_pass_boundaries() {
        let spec = FeatureSpec::new(FeatureSet::LMC);
        let mut recs: Vec<Record> = (0..6).map(|t| rec(t, 1, 100.0)).collect();
        recs.extend((0..6).map(|t| rec(t, 2, 200.0)));
        // Index 8 is t=2 of pass 2: only 2 in-pass predecessors < window.
        assert!(spec.extract(&recs, 8).is_none());
        // Index 11 is t=5 of pass 2: full in-pass history.
        assert!(spec.extract(&recs, 11).is_some());
    }

    #[test]
    fn group_of_feature_indices() {
        let spec = FeatureSpec::new(FeatureSet::TMC);
        assert_eq!(spec.feature_group_of(0), FeatureGroup::Tower);
        assert_eq!(spec.feature_group_of(5), FeatureGroup::Mobility);
        assert_eq!(spec.feature_group_of(8), FeatureGroup::Connection);
    }

    #[test]
    fn extract_latest_matches_batch_extract() {
        let spec = FeatureSpec::new(FeatureSet::LMC);
        let recs: Vec<Record> = (0..10).map(|t| rec(t, 1, 100.0 + t as f64)).collect();
        for i in spec.history_window..recs.len() {
            let window = &recs[i + 1 - spec.required_window()..=i];
            assert_eq!(spec.extract_latest(window), spec.extract(&recs, i));
        }
        assert_eq!(spec.extract_latest(&[]), None);
        // Too-short window → history guard refuses.
        assert_eq!(spec.extract_latest(&recs[..3]), spec.extract(&recs, 2));
    }

    #[test]
    fn required_window_reflects_history_need() {
        assert_eq!(FeatureSpec::new(FeatureSet::LM).required_window(), 1);
        assert_eq!(FeatureSpec::new(FeatureSet::LMC).required_window(), 6);
        assert_eq!(FeatureSpec::new(FeatureSet::TMC).required_window(), 6);
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(FeatureSet::LMC.label(), "L+M+C");
        assert_eq!(FeatureSet::TM.label(), "T+M");
    }

    #[test]
    fn panel_requirement_flags() {
        assert!(FeatureSet::TM.needs_panels());
        assert!(FeatureSet::TMC.needs_panels());
        assert!(!FeatureSet::LMC.needs_panels());
    }
}
