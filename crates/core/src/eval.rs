//! Evaluation harness matching §6.1: 70/30 random train/test split,
//! MAE/RMSE for regression, weighted-average F1 + low-class recall for
//! classification.

use crate::classes::ThroughputClass;
use crate::features::{FeatureSet, FeatureSpec};
use crate::predictor::{ModelKind, Seq2SeqParams};
use crate::tabular::{build_sequences, build_tabular};
use lumos5g_ml::dataset::TargetScaler;
use lumos5g_ml::{
    train_test_split, ClassificationReport, GbdtClassifier, GbdtRegressor, HarmonicMeanPredictor,
    KnnClassifier, KnnRegressor, OrdinaryKriging, RandomForestClassifier, RandomForestRegressor,
    Seq2Seq, Seq2SeqConfig, StandardScaler,
};
use lumos5g_sim::Dataset;

/// Regression metrics (Table 8 cells).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionOutcome {
    /// Mean absolute error, Mbps.
    pub mae: f64,
    /// Root mean squared error, Mbps.
    pub rmse: f64,
    /// Test samples evaluated.
    pub n_test: usize,
}

/// Classification metrics (Table 7 cells).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassificationOutcome {
    /// Support-weighted average F1.
    pub weighted_f1: f64,
    /// Recall of the low-throughput class.
    pub low_recall: f64,
    /// Plain accuracy.
    pub accuracy: f64,
    /// Test samples evaluated.
    pub n_test: usize,
}

/// A labelled row for summary tables.
#[derive(Debug, Clone)]
pub struct EvalSummary {
    /// Model name.
    pub model: String,
    /// Feature-set label.
    pub feature_set: String,
    /// Regression metrics if run.
    pub regression: Option<RegressionOutcome>,
    /// Classification metrics if run.
    pub classification: Option<ClassificationOutcome>,
}

fn reg_metrics(truth: &[f64], pred: &[f64]) -> RegressionOutcome {
    RegressionOutcome {
        mae: lumos5g_ml::mae(truth, pred),
        rmse: lumos5g_ml::rmse(truth, pred),
        n_test: truth.len(),
    }
}

/// Training-cost cap for tabular models: beyond ~20k rows the simulated
/// areas' learning curves are flat, while tree training cost grows
/// linearly. The cap subsamples the *training* split evenly; the test
/// split is never reduced.
const MAX_TRAIN_TABULAR: usize = 20_000;

fn cap_train(tr: Vec<usize>) -> Vec<usize> {
    if tr.len() <= MAX_TRAIN_TABULAR {
        return tr;
    }
    let step = tr.len() as f64 / MAX_TRAIN_TABULAR as f64;
    (0..MAX_TRAIN_TABULAR)
        .map(|k| tr[(k as f64 * step) as usize])
        .collect()
}

fn clf_metrics(truth: &[usize], pred: &[usize]) -> ClassificationOutcome {
    let r = ClassificationReport::from_labels(truth, pred, ThroughputClass::COUNT);
    ClassificationOutcome {
        weighted_f1: r.weighted_f1,
        low_recall: r.recall[ThroughputClass::Low.index()],
        accuracy: r.accuracy,
        n_test: truth.len(),
    }
}

/// Train/test a regression model under a 70/30 split (paper §6.1).
pub fn regression_eval(
    data: &Dataset,
    set: FeatureSet,
    model: &ModelKind,
    split_seed: u64,
) -> Result<RegressionOutcome, String> {
    let spec = FeatureSpec::new(set);
    match model {
        ModelKind::Seq2Seq(p) => {
            let (truth, pred) = seq2seq_holdout(data, &spec, p, split_seed)?;
            Ok(reg_metrics(&truth, &pred))
        }
        ModelKind::HarmonicMean { window } => {
            // History-only model: no training; evaluate over every trace.
            let mut truth = Vec::new();
            let mut pred = Vec::new();
            for (_, trace) in data.traces() {
                for (t, p) in HarmonicMeanPredictor::eval_trace(&trace, *window) {
                    truth.push(t);
                    pred.push(p);
                }
            }
            if truth.is_empty() {
                return Err("no traces to evaluate".into());
            }
            Ok(reg_metrics(&truth, &pred))
        }
        _ => {
            let td = build_tabular(data, &spec);
            if td.len() < 20 {
                return Err(format!("too few samples: {}", td.len()));
            }
            let (tr, te) = train_test_split(td.len(), 0.7, split_seed);
            let train = td.select(&cap_train(tr));
            let test = td.select(&te);
            let pred = match model {
                ModelKind::Gdbt(cfg) => {
                    GbdtRegressor::fit(&train.xs, &train.ys, cfg).predict(&test.xs)
                }
                ModelKind::Knn { k } => {
                    KnnRegressor::fit(&train.xs, &train.ys, *k).predict(&test.xs)
                }
                ModelKind::RandomForest(cfg) => {
                    RandomForestRegressor::fit(&train.xs, &train.ys, cfg).predict(&test.xs)
                }
                ModelKind::Kriging { neighbors } => {
                    let ok = OrdinaryKriging::fit(&train.positions, &train.ys, *neighbors);
                    test.positions
                        .iter()
                        .map(|p| ok.predict(p[0], p[1]))
                        .collect()
                }
                _ => unreachable!("handled above"),
            };
            Ok(reg_metrics(&test.ys, &pred))
        }
    }
}

/// Train/test a classification model under a 70/30 split.
pub fn classification_eval(
    data: &Dataset,
    set: FeatureSet,
    model: &ModelKind,
    split_seed: u64,
) -> Result<ClassificationOutcome, String> {
    let spec = FeatureSpec::new(set);
    match model {
        ModelKind::Seq2Seq(p) => {
            let (truth, pred) = seq2seq_holdout(data, &spec, p, split_seed)?;
            let t: Vec<usize> = truth
                .iter()
                .map(|&y| ThroughputClass::of(y).index())
                .collect();
            let q: Vec<usize> = pred
                .iter()
                .map(|&y| ThroughputClass::of(y).index())
                .collect();
            Ok(clf_metrics(&t, &q))
        }
        ModelKind::HarmonicMean { window } => {
            let mut t = Vec::new();
            let mut q = Vec::new();
            for (_, trace) in data.traces() {
                for (tv, pv) in HarmonicMeanPredictor::eval_trace(&trace, *window) {
                    t.push(ThroughputClass::of(tv).index());
                    q.push(ThroughputClass::of(pv).index());
                }
            }
            if t.is_empty() {
                return Err("no traces to evaluate".into());
            }
            Ok(clf_metrics(&t, &q))
        }
        ModelKind::Kriging { neighbors } => {
            // Regression + bucketing (OK has no native classifier).
            let td = build_tabular(data, &spec);
            if td.len() < 20 {
                return Err(format!("too few samples: {}", td.len()));
            }
            let (tr, te) = train_test_split(td.len(), 0.7, split_seed);
            let train = td.select(&cap_train(tr));
            let test = td.select(&te);
            let ok = OrdinaryKriging::fit(&train.positions, &train.ys, *neighbors);
            let pred: Vec<usize> = test
                .positions
                .iter()
                .map(|p| ThroughputClass::of(ok.predict(p[0], p[1])).index())
                .collect();
            Ok(clf_metrics(&test.labels, &pred))
        }
        _ => {
            let td = build_tabular(data, &spec);
            if td.len() < 20 {
                return Err(format!("too few samples: {}", td.len()));
            }
            let (tr, te) = train_test_split(td.len(), 0.7, split_seed);
            let train = td.select(&cap_train(tr));
            let test = td.select(&te);
            let pred = match model {
                ModelKind::Gdbt(cfg) => {
                    GbdtClassifier::fit(&train.xs, &train.labels, ThroughputClass::COUNT, cfg)
                        .predict(&test.xs)
                }
                ModelKind::Knn { k } => {
                    KnnClassifier::fit(&train.xs, &train.labels, ThroughputClass::COUNT, *k)
                        .predict(&test.xs)
                }
                ModelKind::RandomForest(cfg) => RandomForestClassifier::fit(
                    &train.xs,
                    &train.labels,
                    ThroughputClass::COUNT,
                    cfg,
                )
                .predict(&test.xs),
                _ => unreachable!("handled above"),
            };
            Ok(clf_metrics(&test.labels, &pred))
        }
    }
}

/// Convenience wrapper producing a labelled [`EvalSummary`] row for report
/// tables.
pub fn summarize(
    model_name: &str,
    data: &Dataset,
    set: FeatureSet,
    model: &ModelKind,
    split_seed: u64,
) -> EvalSummary {
    let both = eval_both(data, set, model, split_seed).ok();
    EvalSummary {
        model: model_name.to_string(),
        feature_set: set.label().to_string(),
        regression: both.map(|(r, _)| r),
        classification: both.map(|(_, c)| c),
    }
}

/// Run both tasks with minimal re-training: model families whose
/// classification is post-processed regression (Seq2Seq, Kriging, Harmonic
/// Mean) train **once** and derive both metrics from the same predictions;
/// native classifiers (GDBT, KNN, RF) run both paths.
pub fn eval_both(
    data: &Dataset,
    set: FeatureSet,
    model: &ModelKind,
    split_seed: u64,
) -> Result<(RegressionOutcome, ClassificationOutcome), String> {
    match model {
        ModelKind::Seq2Seq(p) => {
            let spec = FeatureSpec::new(set);
            let (truth, pred) = seq2seq_holdout(data, &spec, p, split_seed)?;
            let t: Vec<usize> = truth
                .iter()
                .map(|&y| ThroughputClass::of(y).index())
                .collect();
            let q: Vec<usize> = pred
                .iter()
                .map(|&y| ThroughputClass::of(y).index())
                .collect();
            Ok((reg_metrics(&truth, &pred), clf_metrics(&t, &q)))
        }
        ModelKind::HarmonicMean { .. } | ModelKind::Kriging { .. } => {
            let reg = regression_eval(data, set, model, split_seed)?;
            let clf = classification_eval(data, set, model, split_seed)?;
            Ok((reg, clf))
        }
        _ => {
            let reg = regression_eval(data, set, model, split_seed)?;
            let clf = classification_eval(data, set, model, split_seed)?;
            Ok((reg, clf))
        }
    }
}

/// Shared Seq2Seq pipeline: build sequences, split, train, evaluate
/// next-slot predictions on the held-out 30%.
fn seq2seq_holdout(
    data: &Dataset,
    spec: &FeatureSpec,
    p: &Seq2SeqParams,
    split_seed: u64,
) -> Result<(Vec<f64>, Vec<f64>), String> {
    let sd = build_sequences(data, spec, p.input_len, p.horizon, p.stride);
    if sd.len() < 20 {
        return Err(format!("too few sequences: {}", sd.len()));
    }
    let (mut tr, te) = train_test_split(sd.len(), 0.7, split_seed);
    // Training-cost cap: beyond ~5k sequences additional data improves the
    // holdout metric marginally but costs linearly; subsample evenly.
    const MAX_TRAIN_SEQ: usize = 5_000;
    if tr.len() > MAX_TRAIN_SEQ {
        let step = tr.len() as f64 / MAX_TRAIN_SEQ as f64;
        tr = (0..MAX_TRAIN_SEQ)
            .map(|k| tr[(k as f64 * step) as usize])
            .collect();
    }
    let train = sd.select(&tr);
    let test = sd.select(&te);

    let flat: Vec<Vec<f64>> = train.inputs.iter().flatten().cloned().collect();
    let x_scaler = StandardScaler::fit(&flat);
    let all_y: Vec<f64> = train.targets.iter().flatten().copied().collect();
    let y_scaler = TargetScaler::fit(&all_y);

    let scale_in = |seqs: &[Vec<Vec<f64>>]| -> Vec<Vec<Vec<f64>>> {
        seqs.iter()
            .map(|s| s.iter().map(|x| x_scaler.transform_row(x)).collect())
            .collect()
    };
    let train_in = scale_in(&train.inputs);
    let train_tg: Vec<Vec<f64>> = train
        .targets
        .iter()
        .map(|t| t.iter().map(|&y| y_scaler.transform(y)).collect())
        .collect();

    let mut model = Seq2Seq::new(Seq2SeqConfig {
        input_dim: spec.dim(),
        hidden: p.hidden,
        layers: p.layers,
        horizon: p.horizon,
        epochs: p.epochs,
        batch_size: p.batch_size,
        lr: p.lr,
        teacher_forcing: 0.7,
        clip_norm: 5.0,
        seed: p.seed,
    });
    model.train(&train_in, &train_tg);

    let test_in = scale_in(&test.inputs);
    let mut truth = Vec::with_capacity(test.len());
    let mut pred = Vec::with_capacity(test.len());
    for (input, target) in test_in.iter().zip(&test.targets) {
        let out = model.predict(input);
        truth.push(target[0]);
        pred.push(y_scaler.inverse(out[0]));
    }
    Ok((truth, pred))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{quick_gbdt, quick_seq2seq};
    use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig};

    fn data() -> Dataset {
        let area = airport(17);
        let cfg = CampaignConfig {
            passes_per_trajectory: 4,
            max_duration_s: 280,
            base_seed: 2,
            bad_gps_fraction: 0.0,
            ..Default::default()
        };
        let raw = run_campaign(&area, &cfg);
        quality::apply(&raw, &area.frame, &Default::default()).0
    }

    #[test]
    fn gdbt_beats_location_only_knn() {
        let d = data();
        let knn_l = regression_eval(&d, FeatureSet::L, &ModelKind::Knn { k: 5 }, 1).unwrap();
        let gdbt_lm =
            regression_eval(&d, FeatureSet::LM, &ModelKind::Gdbt(quick_gbdt()), 1).unwrap();
        assert!(
            gdbt_lm.mae < knn_l.mae,
            "GDBT L+M ({:.0}) should beat KNN L ({:.0})",
            gdbt_lm.mae,
            knn_l.mae
        );
    }

    #[test]
    fn classification_scores_are_probabilities() {
        let d = data();
        let out =
            classification_eval(&d, FeatureSet::LM, &ModelKind::Gdbt(quick_gbdt()), 1).unwrap();
        assert!(out.weighted_f1 > 0.0 && out.weighted_f1 <= 1.0);
        assert!(out.low_recall >= 0.0 && out.low_recall <= 1.0);
        assert!(out.accuracy > 0.3, "accuracy = {}", out.accuracy);
    }

    #[test]
    fn kriging_only_sensible_on_l() {
        let d = data();
        let out =
            regression_eval(&d, FeatureSet::L, &ModelKind::Kriging { neighbors: 12 }, 1).unwrap();
        assert!(out.mae.is_finite());
    }

    #[test]
    fn harmonic_mean_eval_runs() {
        let d = data();
        let out =
            regression_eval(&d, FeatureSet::L, &ModelKind::HarmonicMean { window: 5 }, 1).unwrap();
        assert!(out.mae > 0.0);
    }

    #[test]
    fn seq2seq_eval_runs_small() {
        let d = data();
        let mut p = quick_seq2seq();
        p.epochs = 2;
        let out = regression_eval(&d, FeatureSet::LM, &ModelKind::Seq2Seq(p), 1).unwrap();
        assert!(out.mae.is_finite());
        assert!(out.n_test > 0);
    }

    #[test]
    fn summarize_labels_and_fills_both_tasks() {
        let d = data();
        let s = summarize("knn", &d, FeatureSet::L, &ModelKind::Knn { k: 5 }, 1);
        assert_eq!(s.model, "knn");
        assert_eq!(s.feature_set, "L");
        assert!(s.regression.is_some());
        assert!(s.classification.is_some());
    }

    #[test]
    fn split_seed_changes_outcome_slightly() {
        let d = data();
        let a = regression_eval(&d, FeatureSet::L, &ModelKind::Knn { k: 5 }, 1).unwrap();
        let b = regression_eval(&d, FeatureSet::L, &ModelKind::Knn { k: 5 }, 2).unwrap();
        // Different splits, same data: results close but not identical.
        assert!(a.mae != b.mae);
    }
}
