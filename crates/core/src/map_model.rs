//! The throughput **map as a model** — the paper's Fig 3c vision made
//! predictive.
//!
//! A [`MapModel`] is what a UE would actually download in the envisaged
//! crowdsourced platform (§2.2, §8.2): per-cell statistics, optionally
//! split by travel direction (§4.2 showed direction changes the map).
//! Prediction is a hierarchical lookup with graceful fallback:
//!
//! 1. exact (cell, direction-octant) entry, if direction-aware;
//! 2. cell entry pooled over directions;
//! 3. mean of the 8 neighbouring cells;
//! 4. the global mean.
//!
//! This is also the natural **long-term** predictor of §5.2 (time scales of
//! minutes/hours/days): unlike the `C`-feature models it needs no live
//! session, only the map.

use crate::tabular::TabularData;
use lumos5g_geo::{GridCell, GridIndex};
use lumos5g_sim::Dataset;
use std::collections::HashMap;

/// Which lookup level produced a prediction (for diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupLevel {
    /// Exact (cell, octant) hit.
    CellAndDirection,
    /// Cell hit, direction pooled.
    Cell,
    /// Mean of neighbouring cells.
    Neighbors,
    /// Global fallback.
    Global,
}

/// A gridded, optionally direction-aware throughput predictor.
#[derive(Debug, Clone)]
pub struct MapModel {
    grid: GridIndex,
    direction_aware: bool,
    by_cell_dir: HashMap<(GridCell, u8), (f64, usize)>,
    by_cell: HashMap<GridCell, (f64, usize)>,
    global_mean: f64,
}

fn octant(compass_deg: f64) -> u8 {
    ((compass_deg.rem_euclid(360.0) / 45.0) as u8) % 8
}

impl MapModel {
    /// Fit from a dataset on the paper's 2 m grid.
    pub fn fit(data: &Dataset, direction_aware: bool) -> Self {
        Self::fit_with_grid(data, direction_aware, GridIndex::paper_map_grid())
    }

    /// Fit with a custom grid.
    pub fn fit_with_grid(data: &Dataset, direction_aware: bool, grid: GridIndex) -> Self {
        assert!(!data.is_empty(), "cannot fit a map model on no data");
        let mut by_cell_dir: HashMap<(GridCell, u8), (f64, usize)> = HashMap::new();
        let mut by_cell: HashMap<GridCell, (f64, usize)> = HashMap::new();
        let mut total = 0.0;
        for r in &data.records {
            let cell = grid.cell_of(r.snapped());
            let e = by_cell.entry(cell).or_insert((0.0, 0));
            e.0 += r.throughput_mbps;
            e.1 += 1;
            if direction_aware {
                let e = by_cell_dir
                    .entry((cell, octant(r.compass_deg)))
                    .or_insert((0.0, 0));
                e.0 += r.throughput_mbps;
                e.1 += 1;
            }
            total += r.throughput_mbps;
        }
        MapModel {
            grid,
            direction_aware,
            by_cell_dir,
            by_cell,
            global_mean: total / data.len() as f64,
        }
    }

    /// Predict the throughput at local position `(x, y)` for a UE heading
    /// `compass_deg`; also reports which fallback level answered.
    pub fn predict(&self, x: f64, y: f64, compass_deg: f64) -> (f64, LookupLevel) {
        let cell = self.grid.cell_of(lumos5g_geo::Point2::new(x, y));
        if self.direction_aware {
            if let Some(&(sum, n)) = self.by_cell_dir.get(&(cell, octant(compass_deg))) {
                if n >= 3 {
                    return (sum / n as f64, LookupLevel::CellAndDirection);
                }
            }
        }
        if let Some(&(sum, n)) = self.by_cell.get(&cell) {
            return (sum / n as f64, LookupLevel::Cell);
        }
        // 8-neighbourhood average.
        let mut acc = 0.0;
        let mut n = 0usize;
        for di in -1..=1i64 {
            for dj in -1..=1i64 {
                if di == 0 && dj == 0 {
                    continue;
                }
                if let Some(&(sum, cnt)) = self.by_cell.get(&GridCell {
                    i: cell.i + di,
                    j: cell.j + dj,
                }) {
                    acc += sum;
                    n += cnt;
                }
            }
        }
        if n > 0 {
            (acc / n as f64, LookupLevel::Neighbors)
        } else {
            (self.global_mean, LookupLevel::Global)
        }
    }

    /// Evaluate on tabular samples (features built elsewhere; this model
    /// only reads positions and compass). Returns `(truth, pred)`.
    pub fn eval_tabular(&self, td: &TabularData, compass: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(td.len(), compass.len(), "compass column length mismatch");
        let mut truth = Vec::with_capacity(td.len());
        let mut pred = Vec::with_capacity(td.len());
        for (i, pos) in td.positions.iter().enumerate() {
            truth.push(td.ys[i]);
            pred.push(self.predict(pos[0], pos[1], compass[i]).0);
        }
        (truth, pred)
    }

    /// Number of populated cells.
    pub fn cell_count(&self) -> usize {
        self.by_cell.len()
    }

    /// Global mean throughput of the training data.
    pub fn global_mean(&self) -> f64 {
        self.global_mean
    }
}

/// Train/test evaluation over a dataset (70/30 record split by pass): fit
/// the map on train passes, predict next-second throughput on test passes.
/// Returns `(mae, rmse, n_test)`.
pub fn map_model_eval(
    data: &Dataset,
    direction_aware: bool,
    split_seed: u64,
) -> Result<(f64, f64, usize), String> {
    // Split whole passes so the map never sees the test walk.
    let mut passes: Vec<(u32, u32)> = data
        .records
        .iter()
        .map(|r| (r.trajectory, r.pass_id))
        .collect();
    passes.sort_unstable();
    passes.dedup();
    if passes.len() < 4 {
        return Err("need at least 4 passes".into());
    }
    let (tr, te) = lumos5g_ml::train_test_split(passes.len(), 0.7, split_seed);
    let train_keys: std::collections::HashSet<(u32, u32)> = tr.iter().map(|&i| passes[i]).collect();
    let train = data.filter(|r| train_keys.contains(&(r.trajectory, r.pass_id)));
    let test_keys: std::collections::HashSet<(u32, u32)> = te.iter().map(|&i| passes[i]).collect();
    let test = data.filter(|r| test_keys.contains(&(r.trajectory, r.pass_id)));
    if train.is_empty() || test.is_empty() {
        return Err("degenerate pass split".into());
    }

    let model = MapModel::fit(&train, direction_aware);
    let mut truth = Vec::new();
    let mut pred = Vec::new();
    for r in &test.records {
        truth.push(r.throughput_mbps);
        pred.push(model.predict(r.snapped_x_m, r.snapped_y_m, r.compass_deg).0);
    }
    Ok((
        lumos5g_ml::mae(&truth, &pred),
        lumos5g_ml::rmse(&truth, &pred),
        truth.len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig};

    fn data() -> Dataset {
        let area = airport(41);
        let cfg = CampaignConfig {
            passes_per_trajectory: 6,
            max_duration_s: 300,
            bad_gps_fraction: 0.0,
            ..Default::default()
        };
        let raw = run_campaign(&area, &cfg);
        quality::apply(&raw, &area.frame, &Default::default()).0
    }

    #[test]
    fn exact_cell_lookup_answers_first() {
        let d = data();
        let m = MapModel::fit(&d, true);
        let r = &d.records[100];
        let (_, level) = m.predict(r.snapped_x_m, r.snapped_y_m, r.compass_deg);
        assert!(matches!(
            level,
            LookupLevel::CellAndDirection | LookupLevel::Cell
        ));
    }

    #[test]
    fn far_away_falls_back_to_global() {
        let d = data();
        let m = MapModel::fit(&d, false);
        let (v, level) = m.predict(99_999.0, 99_999.0, 0.0);
        assert_eq!(level, LookupLevel::Global);
        assert!((v - m.global_mean()).abs() < 1e-9);
    }

    #[test]
    fn neighbor_fallback_near_coverage_edge() {
        let d = data();
        let m = MapModel::fit(&d, false);
        // Probe a ring around known cells until a Neighbors-level hit.
        let mut saw_neighbor = false;
        for r in d.records.iter().step_by(37) {
            let (_, level) = m.predict(r.snapped_x_m + 2.0, r.snapped_y_m + 2.0, 0.0);
            if level == LookupLevel::Neighbors {
                saw_neighbor = true;
                break;
            }
        }
        assert!(saw_neighbor, "never exercised the neighbour fallback");
    }

    #[test]
    fn direction_aware_map_beats_direction_blind() {
        // §4.2: direction changes the map; the Airport's NB/SB asymmetry
        // makes a direction-aware lookup strictly better.
        let d = data();
        let (mae_dir, _, _) = map_model_eval(&d, true, 3).unwrap();
        let (mae_blind, _, _) = map_model_eval(&d, false, 3).unwrap();
        assert!(
            mae_dir < mae_blind,
            "direction-aware {mae_dir:.0} should beat blind {mae_blind:.0}"
        );
    }

    #[test]
    fn map_model_beats_global_mean_baseline() {
        let d = data();
        let (mae_map, _, _) = map_model_eval(&d, true, 5).unwrap();
        // Global-mean-only predictor baseline.
        let ys: Vec<f64> = d.records.iter().map(|r| r.throughput_mbps).collect();
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let mae_mean = ys.iter().map(|y| (y - mean).abs()).sum::<f64>() / ys.len() as f64;
        assert!(mae_map < mae_mean, "map {mae_map:.0} vs mean {mae_mean:.0}");
    }

    #[test]
    fn eval_requires_enough_passes() {
        let d = data();
        let tiny = d.filter(|r| r.pass_id == 0);
        assert!(map_model_eval(&tiny, true, 1).is_err());
    }
}
