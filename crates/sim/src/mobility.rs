//! Mobility models: how the UE moves along a trajectory during a pass.
//!
//! - **Walking** (§4.6, Fig 14b): hand-held UE, ~1.4 m/s with per-pass and
//!   per-second variation, brief pauses at stop points (traffic lights).
//! - **Driving** (Fig 14a): windshield-mounted UE, accelerates toward a
//!   per-pass cruise speed up to 45 km/h, decelerates and waits at stop
//!   points (lights / rail crossings) with random red phases.
//! - **Stationary**: parked at a fixed arc position.
//!
//! Models advance in 1 s ticks and report `(arc_position, speed)`.

use lumos5g_radio::TransportMode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A point along the trajectory where traffic can force a stop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopPoint {
    /// Arc-length position, meters.
    pub arc_m: f64,
    /// Probability that this pass has to stop here.
    pub stop_probability: f64,
    /// Min/max stop duration, seconds.
    pub wait_s: (u32, u32),
}

/// Which kind of pass to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityMode {
    /// Walking at roughly the given base speed (m/s).
    Walking {
        /// Nominal walking speed; per-pass speeds vary around it.
        base_speed_mps: f64,
    },
    /// Driving with the given cruise-speed bounds (m/s).
    Driving {
        /// Minimum per-pass cruise speed.
        min_cruise_mps: f64,
        /// Maximum per-pass cruise speed.
        max_cruise_mps: f64,
    },
    /// Standing still at a fixed arc position.
    Stationary {
        /// Where along the trajectory the UE stands, meters.
        arc_m: f64,
    },
}

impl MobilityMode {
    /// Default walking mode (1.4 m/s ≈ 5 km/h).
    pub fn walking() -> Self {
        MobilityMode::Walking {
            base_speed_mps: 1.4,
        }
    }

    /// Default driving mode (0–45 km/h like the paper's Loop tests).
    pub fn driving() -> Self {
        MobilityMode::Driving {
            min_cruise_mps: 6.0,
            max_cruise_mps: 12.5,
        }
    }

    /// The radio-model transport mode this mobility implies.
    pub fn transport(&self) -> TransportMode {
        match self {
            MobilityMode::Walking { .. } => TransportMode::Walking,
            MobilityMode::Driving { .. } => TransportMode::Driving,
            MobilityMode::Stationary { .. } => TransportMode::Stationary,
        }
    }
}

#[derive(Debug, Clone)]
enum Phase {
    Moving,
    Stopped { remaining_s: u32 },
}

/// Stateful per-pass mobility process.
#[derive(Debug, Clone)]
pub struct MobilityModel {
    mode: MobilityMode,
    rng: StdRng,
    arc_m: f64,
    speed_mps: f64,
    /// Per-pass target speed (walking pace or driving cruise speed).
    target_mps: f64,
    stops: Vec<StopPoint>,
    /// Which stops this pass will actually stop at, with durations.
    armed_stops: Vec<(f64, u32)>,
    phase: Phase,
}

impl MobilityModel {
    /// Create a pass. Stop decisions are drawn once up front so a pass is a
    /// deterministic function of its seed.
    pub fn new(mode: MobilityMode, stops: &[StopPoint], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let target_mps = match mode {
            MobilityMode::Walking { base_speed_mps } => {
                (base_speed_mps + 0.25 * gaussian(&mut rng)).clamp(0.8, 2.0)
            }
            MobilityMode::Driving {
                min_cruise_mps,
                max_cruise_mps,
            } => rng.gen_range(min_cruise_mps..=max_cruise_mps),
            MobilityMode::Stationary { .. } => 0.0,
        };
        let mut armed: Vec<(f64, u32)> = Vec::new();
        for s in stops {
            // Draw both decisions unconditionally to keep the RNG stream
            // aligned regardless of which stops arm.
            let arm = rng.gen::<f64>() < s.stop_probability;
            let wait = rng.gen_range(s.wait_s.0..=s.wait_s.1);
            if arm {
                armed.push((s.arc_m, wait));
            }
        }
        armed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite arc"));
        let arc0 = match mode {
            MobilityMode::Stationary { arc_m } => arc_m,
            _ => 0.0,
        };
        MobilityModel {
            mode,
            rng,
            arc_m: arc0,
            speed_mps: 0.0,
            target_mps,
            stops: stops.to_vec(),
            armed_stops: armed,
            phase: Phase::Moving,
        }
    }

    /// Advance one second; returns `(arc_position_m, speed_mps)`.
    pub fn step(&mut self) -> (f64, f64) {
        match self.mode {
            MobilityMode::Stationary { arc_m } => {
                self.speed_mps = 0.0;
                (arc_m, 0.0)
            }
            MobilityMode::Walking { .. } => {
                self.step_moving(/*accel*/ 1.0, /*jitter*/ 0.15)
            }
            MobilityMode::Driving { .. } => {
                self.step_moving(/*accel*/ 2.2, /*jitter*/ 0.5)
            }
        }
    }

    fn step_moving(&mut self, accel: f64, jitter: f64) -> (f64, f64) {
        if let Phase::Stopped { remaining_s } = &mut self.phase {
            self.speed_mps = 0.0;
            if *remaining_s > 0 {
                *remaining_s -= 1;
                return (self.arc_m, 0.0);
            }
            self.phase = Phase::Moving;
        }

        // Approach control: brake if an armed stop is within braking range.
        let next_stop = self
            .armed_stops
            .iter()
            .find(|&&(a, _)| a > self.arc_m)
            .copied();
        let mut target = self.target_mps;
        if let Some((stop_arc, wait)) = next_stop {
            let dist = stop_arc - self.arc_m;
            let braking = self.speed_mps * self.speed_mps / (2.0 * accel);
            if dist <= self.speed_mps.max(1.0) {
                // Arrive and stop this tick.
                self.arc_m = stop_arc;
                self.armed_stops.retain(|&(a, _)| a > stop_arc);
                self.speed_mps = 0.0;
                self.phase = Phase::Stopped { remaining_s: wait };
                return (self.arc_m, 0.0);
            }
            if dist < braking + self.speed_mps {
                target = 0.0;
            }
        }

        // Speed relaxation toward target with jitter.
        let noise = jitter * gaussian(&mut self.rng);
        if self.speed_mps < target {
            self.speed_mps = (self.speed_mps + accel).min(target);
        } else {
            self.speed_mps = (self.speed_mps - accel).max(target);
        }
        self.speed_mps = (self.speed_mps + noise).max(0.0);
        self.arc_m += self.speed_mps;
        (self.arc_m, self.speed_mps)
    }

    /// Current arc position.
    pub fn arc(&self) -> f64 {
        self.arc_m
    }

    /// Stop points of the underlying route.
    pub fn stops(&self) -> &[StopPoint] {
        &self.stops
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    // Box–Muller; same approach as the radio crate (approved crates only).
    loop {
        let u1: f64 = rng.gen();
        if u1 > 1e-300 {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walking_speed_stays_in_human_range() {
        let mut m = MobilityModel::new(MobilityMode::walking(), &[], 1);
        for _ in 0..100 {
            let (_, v) = m.step();
            assert!((0.0..3.0).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn walking_covers_expected_distance() {
        let mut m = MobilityModel::new(MobilityMode::walking(), &[], 2);
        let mut last = 0.0;
        for _ in 0..200 {
            last = m.step().0;
        }
        // ~1.4 m/s × 200 s = 280 m, allow wide tolerance for pace variation.
        assert!((180.0..400.0).contains(&last), "arc = {last}");
    }

    #[test]
    fn driving_reaches_cruise_speed() {
        let mut m = MobilityModel::new(MobilityMode::driving(), &[], 3);
        let mut vmax = 0.0f64;
        for _ in 0..60 {
            vmax = vmax.max(m.step().1);
        }
        assert!(vmax > 5.5, "vmax = {vmax}");
        assert!(vmax < 14.5, "vmax = {vmax}");
    }

    #[test]
    fn armed_stop_halts_the_pass() {
        let stops = [StopPoint {
            arc_m: 30.0,
            stop_probability: 1.0,
            wait_s: (5, 5),
        }];
        let mut m = MobilityModel::new(MobilityMode::walking(), &stops, 4);
        let mut zero_speed_at_stop = 0;
        for _ in 0..60 {
            let (arc, v) = m.step();
            if (arc - 30.0).abs() < 1e-9 && v == 0.0 {
                zero_speed_at_stop += 1;
            }
        }
        assert!(zero_speed_at_stop >= 5, "stopped {zero_speed_at_stop}s");
    }

    #[test]
    fn probability_zero_stop_never_triggers() {
        let stops = [StopPoint {
            arc_m: 10.0,
            stop_probability: 0.0,
            wait_s: (100, 100),
        }];
        let mut m = MobilityModel::new(MobilityMode::walking(), &stops, 5);
        let mut halted = false;
        let mut prev_arc = 0.0;
        for _ in 0..40 {
            let (arc, v) = m.step();
            if v == 0.0 && arc > 5.0 && (arc - prev_arc).abs() < 1e-12 {
                halted = true;
            }
            prev_arc = arc;
        }
        assert!(!halted);
    }

    #[test]
    fn stationary_never_moves() {
        let mut m = MobilityModel::new(MobilityMode::Stationary { arc_m: 55.0 }, &[], 6);
        for _ in 0..20 {
            let (arc, v) = m.step();
            assert_eq!(arc, 55.0);
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn passes_are_seed_deterministic() {
        let stops = [StopPoint {
            arc_m: 40.0,
            stop_probability: 0.5,
            wait_s: (3, 10),
        }];
        let mut a = MobilityModel::new(MobilityMode::driving(), &stops, 7);
        let mut b = MobilityModel::new(MobilityMode::driving(), &stops, 7);
        for _ in 0..50 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn transport_mode_mapping() {
        assert_eq!(MobilityMode::walking().transport(), TransportMode::Walking);
        assert_eq!(MobilityMode::driving().transport(), TransportMode::Driving);
        assert_eq!(
            MobilityMode::Stationary { arc_m: 0.0 }.transport(),
            TransportMode::Stationary
        );
    }
}
