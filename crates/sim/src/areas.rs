//! The three measurement areas of Table 2.
//!
//! Geometry is synthetic but mirrors each area's description:
//!
//! - **Intersection**: an outdoor four-way downtown intersection with three
//!   dual-panel 5G towers at the corners, high-rise buildings occupying the
//!   four quadrants, and 12 walking trajectories (4 straight crossings in
//!   both directions + 4 turns, 230–270 m each).
//! - **Airport**: an indoor mall corridor with two head-on single-panel
//!   towers ~200 m apart and information-booth/restaurant obstacles creating
//!   the NLoS dip of Fig 11b; two trajectories (NB, SB, ~340 m).
//! - **Loop**: a 1300 m city loop with panels on some corners, a park edge
//!   with poor coverage, traffic lights and a rail crossing; walked and
//!   driven.
//!
//! All coordinates are meters in a per-area local frame anchored in
//! Minneapolis (the paper's city) so WGS84 export and zoom-17 pixelization
//! behave exactly as they would on the real data.

use crate::mobility::StopPoint;
use lumos5g_geo::{LatLon, LocalFrame, PanelPose, Point2, Polyline};
use lumos5g_radio::{LteModel, Obstacle, ObstacleMap, Panel, RadioConfig, RadioField, ShadowField};

/// Stable area identifiers (the `area` column of the dataset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AreaId {
    /// Downtown four-way intersection (outdoor).
    Intersection = 0,
    /// Airport mall corridor (indoor).
    Airport = 1,
    /// 1300 m downtown loop (outdoor, walking + driving).
    Loop = 2,
}

impl AreaId {
    /// Numeric id used in records.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            AreaId::Intersection => "intersection",
            AreaId::Airport => "airport",
            AreaId::Loop => "loop",
        }
    }
}

/// A named walkable/drivable route with its traffic stop points.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// Label, e.g. "NB", "S→N", "loop-cw".
    pub name: String,
    /// The route geometry.
    pub path: Polyline,
    /// Stop points along the route.
    pub stops: Vec<StopPoint>,
}

/// A fully assembled measurement area.
#[derive(Debug, Clone)]
pub struct Area {
    /// Identifier.
    pub id: AreaId,
    /// WGS84 anchor for the local frame.
    pub frame: LocalFrame,
    /// The mmWave radio environment.
    pub field: RadioField,
    /// LTE fallback model.
    pub lte: LteModel,
    /// Routes measured in this area.
    pub trajectories: Vec<Trajectory>,
    /// Whether panel locations are known exogenously (false for Loop, like
    /// the paper — so tower-based features are unavailable there).
    pub panels_known: bool,
}

impl Area {
    /// The panel nearest to `p` (for post-processing geometry when the UE
    /// is on LTE). Panics if the area has no panels.
    pub fn nearest_panel(&self, p: Point2) -> &Panel {
        self.field
            .panels
            .iter()
            .min_by(|a, b| {
                a.pose
                    .distance_to(p)
                    .partial_cmp(&b.pose.distance_to(p))
                    .expect("finite distance")
            })
            .expect("area has panels")
    }

    /// Panel by id.
    pub fn panel_by_id(&self, id: u32) -> Option<&Panel> {
        self.field.panels.iter().find(|p| p.id == id)
    }
}

fn pt(x: f64, y: f64) -> Point2 {
    Point2::new(x, y)
}

/// The outdoor four-way **Intersection** area (12 trajectories).
pub fn intersection(seed: u64) -> Area {
    let frame = LocalFrame::new(LatLon::new(44.9760, -93.2730));

    // Buildings fill the four quadrants, leaving 24 m-wide streets. The
    // quadrants are deliberately asymmetric (high-rise, mid-rise, a parking
    // structure and a plaza) so the four street legs have *different* radio
    // environments — in the real downtown no two crossings look alike.
    let obstacles = ObstacleMap::from_vec(vec![
        // NE: glass high-rise, heavy loss.
        Obstacle::Aabb {
            min: pt(14.0, 14.0),
            max: pt(140.0, 140.0),
            loss_db: 34.0,
        },
        // NW: mid-rise with a recessed plaza near the corner.
        Obstacle::Aabb {
            min: pt(-140.0, 30.0),
            max: pt(-26.0, 140.0),
            loss_db: 28.0,
        },
        // SW: low parking structure, mmWave partially penetrates/deflects.
        Obstacle::Aabb {
            min: pt(-140.0, -140.0),
            max: pt(-14.0, -14.0),
            loss_db: 18.0,
        },
        // SE: two separate buildings with an alley between them.
        Obstacle::Aabb {
            min: pt(14.0, -70.0),
            max: pt(140.0, -14.0),
            loss_db: 30.0,
        },
        Obstacle::Aabb {
            min: pt(14.0, -140.0),
            max: pt(140.0, -86.0),
            loss_db: 30.0,
        },
        // Street furniture (bus shelter) shadows part of the east sidewalk
        // from tower A; placed clear of the tower itself.
        Obstacle::Aabb {
            min: pt(8.0, 30.0),
            max: pt(10.5, 50.0),
            loss_db: 12.0,
        },
    ]);

    // Three dual-panel towers, spread along different street legs (real
    // deployments stagger towers down the block, not all at the center):
    // tower A mid-way up the north leg, tower B down the east leg, tower C
    // at the south-west corner. The west leg has no tower — a weak patch.
    // Per-panel EIRP varies like real installations.
    let mut panels = vec![
        Panel::new(1, PanelPose::new(pt(11.0, 70.0), 190.0)), // A → center
        Panel::new(2, PanelPose::new(pt(11.0, 70.0), 10.0)),  // A → north
        Panel::new(3, PanelPose::new(pt(70.0, -11.0), 280.0)), // B → center
        Panel::new(4, PanelPose::new(pt(70.0, -11.0), 100.0)), // B → east
        Panel::new(5, PanelPose::new(pt(-13.0, -13.0), 45.0)), // C → center
        Panel::new(6, PanelPose::new(pt(-13.0, -13.0), 225.0)), // C → SW
    ];
    for (panel, eirp) in panels.iter_mut().zip([21.0, 19.0, 20.0, 18.0, 20.0, 16.0]) {
        panel.eirp_dbm = eirp;
    }

    let field = RadioField::new(
        panels,
        obstacles,
        ShadowField::mmwave_default(seed ^ 0xA1),
        RadioConfig::default(),
    );

    // Sidewalk offsets keep walkers out of the buildings.
    let s = 9.0;
    let ext = 130.0;
    let light = |arc: f64| StopPoint {
        arc_m: arc,
        stop_probability: 0.45,
        wait_s: (8, 35),
    };
    let straight = |name: &str, a: Point2, mid: Point2, bpt: Point2| Trajectory {
        name: name.to_string(),
        path: Polyline::new(vec![a, mid, bpt]),
        stops: vec![light(ext - 14.0)],
    };
    let turn = |name: &str, a: Point2, corner: Point2, bpt: Point2| Trajectory {
        name: name.to_string(),
        path: Polyline::new(vec![a, corner, bpt]),
        stops: vec![light(ext - 14.0)],
    };

    let trajectories = vec![
        straight("S→N", pt(s, -ext), pt(s, 0.0), pt(s, ext)),
        straight("N→S", pt(-s, ext), pt(-s, 0.0), pt(-s, -ext)),
        straight("W→E", pt(-ext, -s), pt(0.0, -s), pt(ext, -s)),
        straight("E→W", pt(ext, s), pt(0.0, s), pt(-ext, s)),
        straight("S→N'", pt(-s, -ext), pt(-s, 0.0), pt(-s, ext)),
        straight("N→S'", pt(s, ext), pt(s, 0.0), pt(s, -ext)),
        straight("W→E'", pt(-ext, s), pt(0.0, s), pt(ext, s)),
        straight("E→W'", pt(ext, -s), pt(0.0, -s), pt(-ext, -s)),
        turn("S→E", pt(s, -ext), pt(s, -s), pt(ext, -s)),
        turn("E→N", pt(ext, s), pt(s, s), pt(s, ext)),
        turn("N→W", pt(-s, ext), pt(-s, s), pt(-ext, s)),
        turn("W→S", pt(-ext, -s), pt(-s, -s), pt(-s, -ext)),
    ];

    Area {
        id: AreaId::Intersection,
        frame,
        field,
        lte: LteModel::new(seed ^ 0xA2),
        trajectories,
        panels_known: true,
    }
}

/// The indoor **Airport** mall corridor (NB/SB trajectories).
pub fn airport(seed: u64) -> Area {
    let frame = LocalFrame::new(LatLon::new(44.8830, -93.2010));

    // Booths/open restaurants inside the corridor (Fig 11b's NLoS band).
    let obstacles = ObstacleMap::from_vec(vec![
        Obstacle::Aabb {
            min: pt(-10.0, 110.0),
            max: pt(-1.5, 150.0),
            loss_db: 16.0,
        },
        Obstacle::Aabb {
            min: pt(2.0, 170.0),
            max: pt(9.5, 205.0),
            loss_db: 16.0,
        },
        Obstacle::Aabb {
            min: pt(-8.0, 228.0),
            max: pt(0.5, 243.0),
            loss_db: 14.0,
        },
    ]);

    // Two head-on single panels ~200 m apart: south faces north and vice
    // versa.
    let panels = vec![
        Panel::new(1, PanelPose::new(pt(0.0, 60.0), 0.0)), // south panel
        Panel::new(2, PanelPose::new(pt(0.0, 260.0), 180.0)), // north panel
    ];

    // Indoor: slightly milder shadowing terrain.
    let field = RadioField::new(
        panels,
        obstacles,
        ShadowField::new(seed ^ 0xB1, 8.0, 3.5),
        RadioConfig::default(),
    );

    // The walkway weaves gently around the booths.
    let weave = |dir: f64| -> Vec<Point2> {
        let mut pts = Vec::new();
        let n = 18;
        for i in 0..=n {
            let y = 10.0 + 330.0 * i as f64 / n as f64;
            let x = 5.5 * (y / 55.0).sin();
            pts.push(pt(x, y));
        }
        if dir < 0.0 {
            pts.reverse();
        }
        pts
    };
    let trajectories = vec![
        Trajectory {
            name: "NB".to_string(),
            path: Polyline::new(weave(1.0)),
            stops: vec![],
        },
        Trajectory {
            name: "SB".to_string(),
            path: Polyline::new(weave(-1.0)),
            stops: vec![],
        },
    ];

    Area {
        id: AreaId::Airport,
        frame,
        field,
        lte: LteModel::new(seed ^ 0xB2),
        trajectories,
        panels_known: true,
    }
}

/// The 1300 m **Loop** area (walking + driving).
pub fn loop_area(seed: u64) -> Area {
    let frame = LocalFrame::new(LatLon::new(44.9740, -93.2580));

    // City block inside the loop plus some outer structures; the west edge
    // borders a park (no nearby panel → weak patch).
    let obstacles = ObstacleMap::from_vec(vec![
        Obstacle::Aabb {
            min: pt(25.0, 25.0),
            max: pt(375.0, 225.0),
            loss_db: 32.0,
        },
        Obstacle::Aabb {
            min: pt(60.0, -80.0),
            max: pt(180.0, -20.0),
            loss_db: 30.0,
        },
        Obstacle::Aabb {
            min: pt(240.0, 270.0),
            max: pt(340.0, 330.0),
            loss_db: 30.0,
        },
    ]);

    // Panels serve the south, east and north streets; the west (park) edge
    // has none. Several sit near intersections/crossings — carriers target
    // places where traffic dwells.
    let panels = vec![
        Panel::new(1, PanelPose::new(pt(80.0, -8.0), 0.0)),
        Panel::new(2, PanelPose::new(pt(385.0, -8.0), 0.0)), // SE corner light
        Panel::new(3, PanelPose::new(pt(408.0, 70.0), 270.0)),
        Panel::new(4, PanelPose::new(pt(408.0, 180.0), 270.0)),
        Panel::new(5, PanelPose::new(pt(390.0, 258.0), 180.0)), // NE corner light
        Panel::new(6, PanelPose::new(pt(220.0, 258.0), 180.0)), // rail crossing
    ];

    let field = RadioField::new(
        panels,
        obstacles,
        ShadowField::mmwave_default(seed ^ 0xC1),
        RadioConfig::default(),
    );

    // The loop runs counterclockwise: south street eastward, east street
    // northward, north street westward, park edge southward.
    let ring = vec![
        pt(0.0, 0.0),
        pt(400.0, 0.0),
        pt(400.0, 250.0),
        pt(0.0, 250.0),
    ];
    let light = |arc: f64, p: f64, wait: (u32, u32)| StopPoint {
        arc_m: arc,
        stop_probability: p,
        wait_s: wait,
    };
    // Corners at arcs 400, 650, 1050; rail crossing midway along the north
    // street; perimeter = 1300.
    let stops_cw = vec![
        light(400.0, 0.5, (8, 40)),
        light(650.0, 0.5, (8, 40)),
        light(830.0, 0.4, (15, 60)), // rail crossing
        light(1050.0, 0.5, (8, 40)),
    ];
    let mut rev_ring = ring.clone();
    rev_ring.reverse();
    let stops_ccw = vec![
        light(250.0, 0.5, (8, 40)),
        light(470.0, 0.4, (15, 60)), // rail from the other side
        light(650.0, 0.5, (8, 40)),
        light(900.0, 0.5, (8, 40)),
    ];

    let trajectories = vec![
        Trajectory {
            name: "loop-ccw".to_string(),
            path: Polyline::closed(ring),
            stops: stops_cw,
        },
        Trajectory {
            name: "loop-cw".to_string(),
            path: Polyline::closed(rev_ring),
            stops: stops_ccw,
        },
    ];

    Area {
        id: AreaId::Loop,
        frame,
        field,
        lte: LteModel::new(seed ^ 0xC2),
        trajectories,
        // The paper could not reliably obtain panel locations for Loop, so
        // tower-based features are not evaluated there (Table 7: "-").
        panels_known: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersection_has_twelve_trajectories() {
        let a = intersection(1);
        assert_eq!(a.trajectories.len(), 12);
        assert_eq!(a.field.panels.len(), 6);
        assert!(a.panels_known);
    }

    #[test]
    fn intersection_trajectory_lengths_match_table2() {
        // Table 2: 232–274 m. Ours are 260 m exactly.
        let a = intersection(1);
        for t in &a.trajectories {
            let len = t.path.length();
            assert!((200.0..300.0).contains(&len), "{}: {len}", t.name);
        }
    }

    #[test]
    fn airport_trajectories_match_table2() {
        // Table 2: 324–369 m, two trajectories.
        let a = airport(1);
        assert_eq!(a.trajectories.len(), 2);
        for t in &a.trajectories {
            let len = t.path.length();
            assert!((320.0..380.0).contains(&len), "{}: {len}", t.name);
        }
    }

    #[test]
    fn airport_panels_are_200m_apart_head_on() {
        let a = airport(1);
        let p1 = a.panel_by_id(1).unwrap();
        let p2 = a.panel_by_id(2).unwrap();
        assert!((p1.pose.position.distance(p2.pose.position) - 200.0).abs() < 1e-9);
        assert_eq!(p1.pose.azimuth_deg, 0.0);
        assert_eq!(p2.pose.azimuth_deg, 180.0);
    }

    #[test]
    fn loop_is_1300m() {
        let a = loop_area(1);
        for t in &a.trajectories {
            assert!((t.path.length() - 1300.0).abs() < 1e-9);
        }
        assert!(!a.panels_known);
    }

    #[test]
    fn areas_have_good_coverage_near_panels() {
        use lumos5g_radio::{TransportMode, UeState};
        for area in [intersection(2), airport(2), loop_area(2)] {
            let p = &area.field.panels[0];
            // Stand 20 m in front of the first panel.
            let az = p.pose.azimuth_deg.to_radians();
            let ue_pos = Point2::new(
                p.pose.position.x + 20.0 * az.sin(),
                p.pose.position.y + 20.0 * az.cos(),
            );
            let ue = UeState {
                pos: ue_pos,
                heading_deg: 0.0,
                speed_mps: 0.0,
                mode: TransportMode::Stationary,
            };
            let best = area.field.best_signal(&ue, 0.0).unwrap();
            assert!(
                best.capacity_mbps > 1_000.0,
                "{}: {} Mbps",
                area.id.name(),
                best.capacity_mbps
            );
        }
    }

    #[test]
    fn nearest_panel_is_correct() {
        let a = airport(1);
        assert_eq!(a.nearest_panel(pt(0.0, 80.0)).id, 1);
        assert_eq!(a.nearest_panel(pt(0.0, 240.0)).id, 2);
    }

    #[test]
    fn airport_booths_create_nlos_somewhere_mid_corridor() {
        let a = airport(1);
        // Ray from the south panel to a point shadowed by the first booth.
        let blocked = !a.field.obstacles.has_los(pt(0.0, 60.0), pt(-8.0, 200.0));
        assert!(blocked);
    }
}
