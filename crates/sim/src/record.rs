//! Per-second log records (Table 1 of the paper) and dataset containers.

use lumos5g_geo::{GridCell, GridIndex, Point2};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// Google Activity-Recognition style label (Table 1, "detected activity").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// Not moving.
    Still,
    /// On foot.
    Walking,
    /// In a car.
    InVehicle,
}

impl Activity {
    /// Short string for CSV.
    pub fn as_str(self) -> &'static str {
        match self {
            Activity::Still => "still",
            Activity::Walking => "walking",
            Activity::InVehicle => "in_vehicle",
        }
    }

    /// Parse from the CSV string.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "still" => Some(Activity::Still),
            "walking" => Some(Activity::Walking),
            "in_vehicle" => Some(Activity::InVehicle),
            _ => None,
        }
    }
}

/// One 1 Hz sample — the union of what the paper's app logs (Table 1), the
/// post-processed panel-geometry fields, and (simulator-only) ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Area identifier (0 = intersection, 1 = airport, 2 = loop).
    pub area: u8,
    /// Measurement pass this sample belongs to.
    pub pass_id: u32,
    /// Trajectory index within the area.
    pub trajectory: u32,
    /// Second within the pass.
    pub t: u32,

    // ---- Raw app fields (with sensor noise) ----
    /// Reported latitude, degrees.
    pub lat: f64,
    /// Reported longitude, degrees.
    pub lon: f64,
    /// GPS accuracy estimate reported by the location API, meters.
    pub gps_accuracy_m: f64,
    /// Activity-recognition label.
    pub activity: Activity,
    /// Reported moving speed, m/s.
    pub moving_speed_mps: f64,
    /// Reported compass direction of travel, degrees.
    pub compass_deg: f64,

    // ---- Ground truth + connection state ----
    /// iPerf-reported downlink goodput, Mbps.
    pub throughput_mbps: f64,
    /// True when attached to 5G NR, false when on LTE.
    pub on_5g: bool,
    /// Serving cell id (panel id on 5G; `1000` denotes the LTE macro cell).
    pub cell_id: u32,
    /// LTE RSRP, dBm.
    pub lte_rsrp_dbm: f64,
    /// NR SS-RSRP of the serving (or best) panel, dBm.
    pub nr_ssrsrp_dbm: f64,
    /// Panel→panel handoff occurred this second.
    pub horizontal_handoff: bool,
    /// 5G↔LTE handoff occurred this second.
    pub vertical_handoff: bool,

    // ---- Post-processed tower geometry (exogenous panel registry) ----
    /// Distance to the serving (or nearest) panel, meters.
    pub panel_distance_m: f64,
    /// Positional angle θp, degrees [0, 360).
    pub theta_p_deg: f64,
    /// Mobility angle θm, degrees [0, 360).
    pub theta_m_deg: f64,

    // ---- Quality-pipeline outputs ----
    /// Pixelized X at zoom 17 (0 before the pipeline runs).
    pub pixel_x: i64,
    /// Pixelized Y at zoom 17.
    pub pixel_y: i64,
    /// Local-plane X of the pixel center, meters.
    pub snapped_x_m: f64,
    /// Local-plane Y of the pixel center, meters.
    pub snapped_y_m: f64,

    // ---- Simulator-only ground truth (not observable on a real UE) ----
    /// True local X, meters.
    pub true_x_m: f64,
    /// True local Y, meters.
    pub true_y_m: f64,
    /// True ground speed, m/s.
    pub true_speed_mps: f64,
}

impl Record {
    /// Position after pixel snapping (what analyses should use).
    pub fn snapped(&self) -> Point2 {
        Point2::new(self.snapped_x_m, self.snapped_y_m)
    }

    /// True position (for simulator diagnostics only).
    pub fn true_pos(&self) -> Point2 {
        Point2::new(self.true_x_m, self.true_y_m)
    }

    /// `Err(field name)` when any numeric field is NaN or infinite. A single
    /// corrupt logger sample must be rejected here, at the dataset boundary,
    /// instead of panicking deep inside a model fit or a serving shard.
    pub fn check_finite(&self) -> Result<(), &'static str> {
        let fields: [(&'static str, f64); 16] = [
            ("lat", self.lat),
            ("lon", self.lon),
            ("gps_accuracy_m", self.gps_accuracy_m),
            ("moving_speed_mps", self.moving_speed_mps),
            ("compass_deg", self.compass_deg),
            ("throughput_mbps", self.throughput_mbps),
            ("lte_rsrp_dbm", self.lte_rsrp_dbm),
            ("nr_ssrsrp_dbm", self.nr_ssrsrp_dbm),
            ("panel_distance_m", self.panel_distance_m),
            ("theta_p_deg", self.theta_p_deg),
            ("theta_m_deg", self.theta_m_deg),
            ("snapped_x_m", self.snapped_x_m),
            ("snapped_y_m", self.snapped_y_m),
            ("true_x_m", self.true_x_m),
            ("true_y_m", self.true_y_m),
            ("true_speed_mps", self.true_speed_mps),
        ];
        for (name, v) in fields {
            if !v.is_finite() {
                return Err(name);
            }
        }
        Ok(())
    }
}

/// A bag of records with grouping helpers used throughout the analyses.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// The samples.
    pub records: Vec<Record>,
}

impl Dataset {
    /// Wrap records.
    pub fn new(records: Vec<Record>) -> Self {
        Dataset { records }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append another dataset, keeping pass identities distinct.
    ///
    /// Grouping throughout the workspace keys traces by `(trajectory,
    /// pass_id)` *without* the area — so merging campaigns from two areas
    /// (whose pass ids both start at 0) used to silently splice unrelated
    /// passes into one trace. When any incoming key collides with an
    /// existing one, every incoming `pass_id` is shifted past the current
    /// maximum, which preserves the other dataset's internal pass structure
    /// while guaranteeing global uniqueness.
    pub fn extend(&mut self, mut other: Dataset) {
        let existing: std::collections::HashSet<(u32, u32)> = self
            .records
            .iter()
            .map(|r| (r.trajectory, r.pass_id))
            .collect();
        let collides = other
            .records
            .iter()
            .any(|r| existing.contains(&(r.trajectory, r.pass_id)));
        if collides {
            let offset = self
                .records
                .iter()
                .map(|r| r.pass_id)
                .max()
                .map_or(0, |m| m + 1);
            for r in &mut other.records {
                r.pass_id += offset;
            }
        }
        self.records.extend(other.records);
    }

    /// Group throughput samples by map-grid cell of the snapped position.
    pub fn throughput_by_cell(&self, grid: &GridIndex) -> HashMap<GridCell, Vec<f64>> {
        let mut m: HashMap<GridCell, Vec<f64>> = HashMap::new();
        for r in &self.records {
            m.entry(grid.cell_of(r.snapped()))
                .or_default()
                .push(r.throughput_mbps);
        }
        m
    }

    /// Group by `(cell, heading-octant)` — the paper's "account for mobility
    /// direction" treatment (§4.2) at 45° resolution.
    pub fn throughput_by_cell_and_direction(
        &self,
        grid: &GridIndex,
    ) -> HashMap<(GridCell, u8), Vec<f64>> {
        let mut m: HashMap<(GridCell, u8), Vec<f64>> = HashMap::new();
        for r in &self.records {
            let octant = ((r.compass_deg.rem_euclid(360.0) / 45.0) as u8) % 8;
            m.entry((grid.cell_of(r.snapped()), octant))
                .or_default()
                .push(r.throughput_mbps);
        }
        m
    }

    /// Per-pass throughput traces, keyed by `(trajectory, pass_id)`,
    /// ordered by time.
    pub fn traces(&self) -> HashMap<(u32, u32), Vec<f64>> {
        let mut m: HashMap<(u32, u32), Vec<(u32, f64)>> = HashMap::new();
        for r in &self.records {
            m.entry((r.trajectory, r.pass_id))
                .or_default()
                .push((r.t, r.throughput_mbps));
        }
        m.into_iter()
            .map(|(k, mut v)| {
                v.sort_by_key(|&(t, _)| t);
                (k, v.into_iter().map(|(_, x)| x).collect())
            })
            .collect()
    }

    /// Records filtered by trajectory index.
    pub fn by_trajectory(&self, trajectory: u32) -> Dataset {
        Dataset::new(
            self.records
                .iter()
                .filter(|r| r.trajectory == trajectory)
                .cloned()
                .collect(),
        )
    }

    /// Records filtered by a predicate.
    pub fn filter(&self, f: impl Fn(&Record) -> bool) -> Dataset {
        Dataset::new(self.records.iter().filter(|r| f(r)).cloned().collect())
    }

    /// `Err` describing the first record with a non-finite numeric field.
    /// Model fitting calls this before extracting features.
    pub fn check_finite(&self) -> Result<(), String> {
        for (i, r) in self.records.iter().enumerate() {
            if let Err(field) = r.check_finite() {
                return Err(format!(
                    "record {i} (pass {}, t {}): non-finite {field}",
                    r.pass_id, r.t
                ));
            }
        }
        Ok(())
    }

    /// CSV header used by [`Self::to_csv`].
    pub const CSV_HEADER: &'static str = "area,pass_id,trajectory,t,lat,lon,gps_accuracy_m,activity,moving_speed_mps,compass_deg,throughput_mbps,on_5g,cell_id,lte_rsrp_dbm,nr_ssrsrp_dbm,horizontal_handoff,vertical_handoff,panel_distance_m,theta_p_deg,theta_m_deg,pixel_x,pixel_y,snapped_x_m,snapped_y_m,true_x_m,true_y_m,true_speed_mps";

    /// Serialize to CSV (the public-dataset export format).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.records.len() * 160);
        out.push_str(Self::CSV_HEADER);
        out.push('\n');
        for r in &self.records {
            let _ = writeln!(
                out,
                "{},{},{},{},{:.7},{:.7},{:.2},{},{:.3},{:.2},{:.3},{},{},{:.2},{:.2},{},{},{:.2},{:.2},{:.2},{},{},{:.3},{:.3},{:.3},{:.3},{:.3}",
                r.area,
                r.pass_id,
                r.trajectory,
                r.t,
                r.lat,
                r.lon,
                r.gps_accuracy_m,
                r.activity.as_str(),
                r.moving_speed_mps,
                r.compass_deg,
                r.throughput_mbps,
                r.on_5g as u8,
                r.cell_id,
                r.lte_rsrp_dbm,
                r.nr_ssrsrp_dbm,
                r.horizontal_handoff as u8,
                r.vertical_handoff as u8,
                r.panel_distance_m,
                r.theta_p_deg,
                r.theta_m_deg,
                r.pixel_x,
                r.pixel_y,
                r.snapped_x_m,
                r.snapped_y_m,
                r.true_x_m,
                r.true_y_m,
                r.true_speed_mps,
            );
        }
        out
    }

    /// Write the CSV to `path`.
    pub fn save_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_csv())
    }

    /// Parse a CSV produced by [`Self::to_csv`].
    pub fn from_csv(text: &str) -> Result<Dataset, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty CSV")?;
        if header != Self::CSV_HEADER {
            return Err("unexpected CSV header".to_string());
        }
        let mut records = Vec::new();
        for (lineno, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let f: Vec<&str> = line.split(',').collect();
            if f.len() != 27 {
                return Err(format!(
                    "line {}: expected 27 fields, got {}",
                    lineno + 2,
                    f.len()
                ));
            }
            let err = |what: &str| format!("line {}: bad {}", lineno + 2, what);
            // Rust's f64 parser accepts "NaN"/"inf", so finiteness needs an
            // explicit check after field parsing (see push below).
            let record = Record {
                area: f[0].parse().map_err(|_| err("area"))?,
                pass_id: f[1].parse().map_err(|_| err("pass_id"))?,
                trajectory: f[2].parse().map_err(|_| err("trajectory"))?,
                t: f[3].parse().map_err(|_| err("t"))?,
                lat: f[4].parse().map_err(|_| err("lat"))?,
                lon: f[5].parse().map_err(|_| err("lon"))?,
                gps_accuracy_m: f[6].parse().map_err(|_| err("gps_accuracy_m"))?,
                activity: Activity::parse(f[7]).ok_or_else(|| err("activity"))?,
                moving_speed_mps: f[8].parse().map_err(|_| err("moving_speed"))?,
                compass_deg: f[9].parse().map_err(|_| err("compass"))?,
                throughput_mbps: f[10].parse().map_err(|_| err("throughput"))?,
                on_5g: f[11] == "1",
                cell_id: f[12].parse().map_err(|_| err("cell_id"))?,
                lte_rsrp_dbm: f[13].parse().map_err(|_| err("lte_rsrp"))?,
                nr_ssrsrp_dbm: f[14].parse().map_err(|_| err("nr_ssrsrp"))?,
                horizontal_handoff: f[15] == "1",
                vertical_handoff: f[16] == "1",
                panel_distance_m: f[17].parse().map_err(|_| err("panel_distance"))?,
                theta_p_deg: f[18].parse().map_err(|_| err("theta_p"))?,
                theta_m_deg: f[19].parse().map_err(|_| err("theta_m"))?,
                pixel_x: f[20].parse().map_err(|_| err("pixel_x"))?,
                pixel_y: f[21].parse().map_err(|_| err("pixel_y"))?,
                snapped_x_m: f[22].parse().map_err(|_| err("snapped_x"))?,
                snapped_y_m: f[23].parse().map_err(|_| err("snapped_y"))?,
                true_x_m: f[24].parse().map_err(|_| err("true_x"))?,
                true_y_m: f[25].parse().map_err(|_| err("true_y"))?,
                true_speed_mps: f[26].parse().map_err(|_| err("true_speed"))?,
            };
            record
                .check_finite()
                .map_err(|field| format!("line {}: non-finite {}", lineno + 2, field))?;
            records.push(record);
        }
        Ok(Dataset::new(records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal record for tests.
    pub fn dummy(t: u32, thpt: f64) -> Record {
        Record {
            area: 0,
            pass_id: 1,
            trajectory: 2,
            t,
            lat: 44.9778,
            lon: -93.265,
            gps_accuracy_m: 3.0,
            activity: Activity::Walking,
            moving_speed_mps: 1.4,
            compass_deg: 90.0,
            throughput_mbps: thpt,
            on_5g: true,
            cell_id: 1,
            lte_rsrp_dbm: -95.0,
            nr_ssrsrp_dbm: -80.0,
            horizontal_handoff: false,
            vertical_handoff: false,
            panel_distance_m: 42.0,
            theta_p_deg: 10.0,
            theta_m_deg: 170.0,
            pixel_x: 100,
            pixel_y: 200,
            snapped_x_m: 5.0,
            snapped_y_m: 7.0,
            true_x_m: 5.2,
            true_y_m: 6.9,
            true_speed_mps: 1.38,
        }
    }

    #[test]
    fn csv_roundtrip_preserves_records() {
        let ds = Dataset::new(vec![dummy(0, 1500.0), dummy(1, 20.5)]);
        let csv = ds.to_csv();
        let back = Dataset::from_csv(&csv).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.records[0].t, 0);
        assert!((back.records[1].throughput_mbps - 20.5).abs() < 1e-9);
        assert_eq!(back.records[0].activity, Activity::Walking);
    }

    #[test]
    fn from_csv_rejects_bad_header() {
        assert!(Dataset::from_csv("nope\n1,2").is_err());
    }

    #[test]
    fn from_csv_rejects_short_rows() {
        let text = format!("{}\n1,2,3\n", Dataset::CSV_HEADER);
        assert!(Dataset::from_csv(&text).is_err());
    }

    #[test]
    fn traces_are_time_ordered() {
        let mut a = dummy(5, 50.0);
        a.pass_id = 9;
        let mut b = dummy(2, 20.0);
        b.pass_id = 9;
        let ds = Dataset::new(vec![a, b]);
        let traces = ds.traces();
        assert_eq!(traces[&(2, 9)], vec![20.0, 50.0]);
    }

    #[test]
    fn cell_grouping_uses_snapped_positions() {
        let grid = GridIndex::paper_map_grid();
        let mut a = dummy(0, 100.0);
        a.snapped_x_m = 0.5;
        a.snapped_y_m = 0.5;
        let mut b = dummy(1, 200.0);
        b.snapped_x_m = 1.5;
        b.snapped_y_m = 1.0;
        let ds = Dataset::new(vec![a, b]);
        let cells = ds.throughput_by_cell(&grid);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells.values().next().unwrap().len(), 2);
    }

    #[test]
    fn direction_octants_split_groups() {
        let grid = GridIndex::paper_map_grid();
        let mut a = dummy(0, 100.0);
        a.compass_deg = 10.0; // octant 0
        let mut b = dummy(1, 200.0);
        b.compass_deg = 190.0; // octant 4
        let ds = Dataset::new(vec![a, b]);
        let cells = ds.throughput_by_cell_and_direction(&grid);
        assert_eq!(cells.len(), 2);
    }

    #[test]
    fn extend_keeps_cross_area_passes_distinct() {
        // Two areas, both with pass_id 0 on trajectory 2: before the fix the
        // merged dataset spliced them into one (2, 0) trace.
        let mut a0 = dummy(0, 10.0);
        a0.pass_id = 0;
        let mut a1 = dummy(1, 11.0);
        a1.pass_id = 0;
        let mut downtown = Dataset::new(vec![a0, a1]);

        let mut b0 = dummy(0, 20.0);
        b0.pass_id = 0;
        b0.area = 1;
        let mut b1 = dummy(1, 21.0);
        b1.pass_id = 0;
        b1.area = 1;
        let airport = Dataset::new(vec![b0, b1]);

        downtown.extend(airport);
        let traces = downtown.traces();
        assert_eq!(traces.len(), 2, "colliding passes merged: {traces:?}");
        let mut lens: Vec<usize> = traces.values().map(Vec::len).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![2, 2]);
        assert_eq!(traces[&(2, 0)], vec![10.0, 11.0]);
        assert_eq!(traces[&(2, 1)], vec![20.0, 21.0]);
    }

    #[test]
    fn extend_without_collisions_is_identity_append() {
        let mut a = Dataset::new(vec![dummy(0, 10.0)]);
        let mut b0 = dummy(0, 20.0);
        b0.pass_id = 7;
        a.extend(Dataset::new(vec![b0]));
        // No collision → pass ids untouched.
        assert_eq!(a.records[1].pass_id, 7);
        assert_eq!(a.traces().len(), 2);
    }

    #[test]
    fn from_csv_rejects_nan_fields() {
        // "NaN" parses fine as f64, so the boundary check must catch it.
        let mut bad = dummy(0, 100.0);
        bad.throughput_mbps = f64::NAN;
        let csv = Dataset::new(vec![dummy(0, 50.0), bad]).to_csv();
        let got = Dataset::from_csv(&csv);
        assert!(got.is_err(), "NaN row must be rejected");
        assert!(got.unwrap_err().contains("non-finite"));
    }

    #[test]
    fn check_finite_names_the_offending_field() {
        let mut bad = dummy(3, 100.0);
        bad.compass_deg = f64::INFINITY;
        assert_eq!(bad.check_finite(), Err("compass_deg"));
        let ds = Dataset::new(vec![dummy(0, 1.0), bad]);
        let msg = ds.check_finite().unwrap_err();
        assert!(
            msg.contains("compass_deg") && msg.contains("record 1"),
            "{msg}"
        );
        assert!(Dataset::new(vec![dummy(0, 1.0)]).check_finite().is_ok());
    }

    #[test]
    fn activity_parse_roundtrip() {
        for a in [Activity::Still, Activity::Walking, Activity::InVehicle] {
            assert_eq!(Activity::parse(a.as_str()), Some(a));
        }
        assert_eq!(Activity::parse("flying"), None);
    }
}
