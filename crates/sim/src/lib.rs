#![warn(missing_docs)]

//! # lumos5g-sim
//!
//! Measurement-campaign simulator: the stand-in for the paper's six months
//! of walking (331 km) and driving (132 km) Verizon's mmWave network in
//! Minneapolis with Galaxy S10 handsets (§3).
//!
//! Pipeline per 1 Hz sample, mirroring the paper's app (§3.1, Table 1):
//!
//! 1. a mobility model ([`mobility`]) advances the UE along one of the
//!    area's trajectories (walking, driving with traffic stops, or
//!    stationary);
//! 2. the radio field (`lumos5g-radio`) yields per-panel RSRP/SINR and the
//!    LTE fallback throughput at the UE's true position;
//! 3. the connection manager (`lumos5g-net`) makes attach/handoff decisions
//!    and the iPerf-like 8-stream TCP session converts link capacity into
//!    application goodput — the `throughput` ground-truth column;
//! 4. the logger ([`campaign`]) writes a [`record::Record`] with realistic
//!    GPS/compass/speed noise injected.
//!
//! [`quality`] then applies the paper's §3.1 data-quality rules: discard
//! passes whose mean GPS error exceeds 5 m, trim the calibration buffer
//! period, and pixelize coordinates to the zoom-17 grid.
//!
//! [`areas`] builds the three studied environments (Table 2): the downtown
//! **Intersection** (12 trajectories, 3 dual-panel towers), the indoor
//! **Airport** corridor (NB/SB trajectories, 2 head-on single panels) and
//! the 1300 m **Loop** (driving + walking, lights and a rail crossing).
//! [`congestion`] reproduces the staggered multi-UE contention experiment
//! of App A.1.4 (Fig 21).

pub mod areas;
pub mod campaign;
pub mod congestion;
pub mod mobility;
pub mod quality;
pub mod record;

pub use areas::{airport, intersection, loop_area, Area, AreaId};
pub use campaign::{run_campaign, run_pass, CampaignConfig, LoggerConfig};
pub use mobility::{MobilityMode, MobilityModel};
pub use quality::{QualityConfig, QualityReport};
pub use record::{Activity, Dataset, Record};
