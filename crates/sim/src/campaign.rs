//! Campaign runner: executes measurement passes and emits raw records.
//!
//! One *pass* = one traversal of one trajectory under one mobility mode,
//! mirroring the paper's "at least 30× per trajectory" methodology (§3.2).
//! GPS, compass and speed noise are injected here; the quality pipeline
//! (`crate::quality`) later filters and pixelizes exactly like §3.1.

use crate::areas::Area;
use crate::mobility::{MobilityMode, MobilityModel};
use crate::record::{Activity, Dataset, Record};
use lumos5g_geo::{mobility_angle_deg, normalize_deg, positional_angle_deg, Point2};
use lumos5g_net::{BulkSession, ConnectionManager, HandoffConfig, TcpConfig};
use lumos5g_radio::{FastFading, TransportMode, UeState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Campaign-level knobs.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Passes per trajectory (paper: ≥ 30).
    pub passes_per_trajectory: usize,
    /// Mobility mode for every pass of this campaign.
    pub mode: MobilityMode,
    /// Base RNG seed; pass seeds derive deterministically from it.
    pub base_seed: u64,
    /// Typical GPS noise sigma, meters.
    pub gps_sigma_m: f64,
    /// Fraction of passes with degraded GPS (to exercise the 5 m discard
    /// rule of §3.1).
    pub bad_gps_fraction: f64,
    /// Duration cap per pass, seconds (stationary passes run exactly this
    /// long).
    pub max_duration_s: u32,
    /// Connection-manager tuning (hysteresis, gaps) — exposed for the
    /// handoff ablation study.
    pub handoff: HandoffConfig,
    /// Signal-reporting fidelity of the logger (RSRP quantization + noise).
    pub logger: LoggerConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            passes_per_trajectory: 30,
            mode: MobilityMode::walking(),
            base_seed: 0,
            gps_sigma_m: 2.2,
            bad_gps_fraction: 0.08,
            max_duration_s: 900,
            handoff: HandoffConfig::default(),
            logger: LoggerConfig::default(),
        }
    }
}

/// How faithfully the logger reports signal strength.
///
/// Real handsets do not expose the exact received power: modem firmware
/// quantizes RSRP to integer dB and reports a smoothed, slightly stale
/// value. The ideal logger made the `C` feature group unrealistically
/// informative (DESIGN.md "known fidelity gaps"); with this knob on
/// (the default), logged NR SS-RSRP and LTE RSRP carry AR(1)-correlated
/// reporting noise and are quantized to `rsrp_quant_db`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoggerConfig {
    /// Apply quantization + reporting noise to logged RSRP fields.
    pub realistic_rsrp: bool,
    /// Quantization step for logged RSRP, dB (3GPP reporting is 1 dB).
    pub rsrp_quant_db: f64,
    /// AR(1) coefficient of the reporting noise (per-second lag).
    pub rsrp_noise_rho: f64,
    /// Stationary standard deviation of the reporting noise, dB.
    pub rsrp_noise_sigma_db: f64,
}

impl Default for LoggerConfig {
    fn default() -> Self {
        LoggerConfig {
            realistic_rsrp: true,
            rsrp_quant_db: 1.0,
            rsrp_noise_rho: 0.85,
            rsrp_noise_sigma_db: 1.2,
        }
    }
}

impl LoggerConfig {
    /// The pre-PR-1 ideal logger: exact received power, no quantization.
    pub fn ideal() -> Self {
        LoggerConfig {
            realistic_rsrp: false,
            ..Default::default()
        }
    }
}

/// AR(1) reporting-noise state for one logged signal field.
struct Ar1Noise {
    value_db: f64,
    rho: f64,
    innovation_sigma: f64,
}

impl Ar1Noise {
    fn new(cfg: &LoggerConfig) -> Self {
        Ar1Noise {
            value_db: 0.0,
            rho: cfg.rsrp_noise_rho,
            // Innovation scaled so the stationary std is rsrp_noise_sigma_db.
            innovation_sigma: cfg.rsrp_noise_sigma_db
                * (1.0 - cfg.rsrp_noise_rho * cfg.rsrp_noise_rho).sqrt(),
        }
    }

    fn next(&mut self, rng: &mut StdRng) -> f64 {
        self.value_db = self.rho * self.value_db + self.innovation_sigma * gauss(rng);
        self.value_db
    }
}

/// Quantize a dB value to the reporting step.
fn quantize_db(x: f64, step: f64) -> f64 {
    if step <= 0.0 {
        x
    } else {
        (x / step).round() * step
    }
}

/// Run a full campaign over every trajectory of `area`.
pub fn run_campaign(area: &Area, cfg: &CampaignConfig) -> Dataset {
    let mut all = Vec::new();
    let mut pass_id = 0u32;
    for traj in 0..area.trajectories.len() as u32 {
        for p in 0..cfg.passes_per_trajectory {
            let seed = cfg
                .base_seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add((traj as u64) << 32)
                .wrapping_add(p as u64);
            all.extend(run_pass(area, traj, cfg, pass_id, seed));
            pass_id += 1;
        }
    }
    Dataset::new(all)
}

/// Run one pass and return its raw records.
pub fn run_pass(
    area: &Area,
    trajectory: u32,
    cfg: &CampaignConfig,
    pass_id: u32,
    seed: u64,
) -> Vec<Record> {
    let traj = &area.trajectories[trajectory as usize];
    let mut mobility = MobilityModel::new(cfg.mode, &traj.stops, seed);
    let mut fading = FastFading::mmwave_default(seed ^ 0xFAD);
    let mut lte_fading = FastFading::new(seed ^ 0x17E, 0.8, 1.5);
    let mut session = BulkSession::new(TcpConfig::iperf_default(), seed ^ 0x7C9);
    let mut mgr = ConnectionManager::new(cfg.handoff);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6E5);
    // Dedicated stream for reporting noise so toggling the logger's
    // fidelity does not perturb the mobility/GPS/fading draws.
    let mut rsrp_rng = StdRng::seed_from_u64(seed ^ 0x51A7);
    let mut nr_noise = Ar1Noise::new(&cfg.logger);
    let mut lte_noise = Ar1Noise::new(&cfg.logger);

    // Per-pass GPS quality: mostly good, sometimes degraded beyond the
    // pipeline's 5 m cutoff.
    let gps_sigma = if rng.gen::<f64>() < cfg.bad_gps_fraction {
        rng.gen_range(5.5..11.0)
    } else {
        cfg.gps_sigma_m * rng.gen_range(0.7..1.3)
    };

    let transport = cfg.mode.transport();
    let activity = match transport {
        TransportMode::Stationary => Activity::Still,
        TransportMode::Walking => Activity::Walking,
        TransportMode::Driving => Activity::InVehicle,
    };

    let mut records = Vec::new();
    let path_len = traj.path.length();
    for t in 0..cfg.max_duration_s {
        let (arc, speed) = mobility.step();
        if !matches!(cfg.mode, MobilityMode::Stationary { .. }) && arc >= path_len {
            break;
        }
        let pos = traj.path.point_at(arc);
        let heading = traj.path.heading_at(arc);

        let ue = UeState {
            pos,
            heading_deg: heading,
            speed_mps: speed,
            mode: transport,
        };
        let fade = fading.next_db();
        let signals = area.field.evaluate(&ue, fade);
        let lte_thpt = area.lte.throughput_mbps(pos, lte_fading.next_db());
        let decision = mgr.step(&signals, lte_thpt, &mut session);
        let throughput = session.step_second(decision.capacity_mbps);

        // Geometry fields w.r.t. the serving panel (or nearest when on LTE).
        let panel = decision
            .serving_panel
            .and_then(|id| area.panel_by_id(id))
            .unwrap_or_else(|| area.nearest_panel(pos));
        let panel_distance = panel.pose.distance_to(pos);
        let theta_p = positional_angle_deg(&panel.pose, pos);
        let theta_m = mobility_angle_deg(&panel.pose, heading);

        // Sensor noise.
        let noisy_pos = Point2::new(
            pos.x + gps_sigma * gauss(&mut rng),
            pos.y + gps_sigma * gauss(&mut rng),
        );
        let reported = area.frame.to_latlon(noisy_pos);
        let gps_accuracy = gps_sigma * (1.0 + 0.25 * gauss(&mut rng).abs());
        let compass = normalize_deg(heading + 4.0 * gauss(&mut rng));
        let speed_report = (speed + 0.08 * gauss(&mut rng)).max(0.0);

        let nr_rsrp_exact = decision.rsrp_dbm.unwrap_or_else(|| {
            signals
                .iter()
                .map(|s| s.rsrp_dbm)
                .fold(f64::NEG_INFINITY, f64::max)
        });
        // LTE RSRP tracks the LTE SINR around a −95 dBm median.
        let lte_rsrp_exact = -95.0 + (area.lte.sinr_db(pos, 0.0) - area.lte.median_sinr_db);

        // What the handset actually reports: AR(1) reporting noise on top
        // of the received power, quantized to the 3GPP reporting step.
        let (nr_rsrp, lte_rsrp) = if cfg.logger.realistic_rsrp {
            (
                quantize_db(
                    nr_rsrp_exact + nr_noise.next(&mut rsrp_rng),
                    cfg.logger.rsrp_quant_db,
                ),
                quantize_db(
                    lte_rsrp_exact + lte_noise.next(&mut rsrp_rng),
                    cfg.logger.rsrp_quant_db,
                ),
            )
        } else {
            (nr_rsrp_exact, lte_rsrp_exact)
        };

        records.push(Record {
            area: area.id.as_u8(),
            pass_id,
            trajectory,
            t,
            lat: reported.lat,
            lon: reported.lon,
            gps_accuracy_m: gps_accuracy,
            activity,
            moving_speed_mps: speed_report,
            compass_deg: compass,
            throughput_mbps: throughput,
            on_5g: decision.serving_panel.is_some(),
            cell_id: decision.serving_panel.unwrap_or(1000),
            lte_rsrp_dbm: lte_rsrp,
            nr_ssrsrp_dbm: nr_rsrp,
            horizontal_handoff: decision.horizontal_handoff,
            vertical_handoff: decision.vertical_handoff,
            panel_distance_m: panel_distance,
            theta_p_deg: theta_p,
            theta_m_deg: theta_m,
            pixel_x: 0,
            pixel_y: 0,
            snapped_x_m: pos.x, // overwritten by the quality pipeline
            snapped_y_m: pos.y,
            true_x_m: pos.x,
            true_y_m: pos.y,
            true_speed_mps: speed,
        });
    }
    records
}

fn gauss(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > 1e-300 {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areas::airport;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            passes_per_trajectory: 2,
            mode: MobilityMode::walking(),
            base_seed: 11,
            gps_sigma_m: 2.0,
            bad_gps_fraction: 0.0,
            max_duration_s: 600,
            handoff: HandoffConfig::default(),
            logger: LoggerConfig::default(),
        }
    }

    #[test]
    fn pass_walks_the_whole_trajectory() {
        let area = airport(1);
        let recs = run_pass(&area, 0, &small_cfg(), 0, 42);
        assert!(recs.len() > 150, "only {} records", recs.len());
        // Ends near the far end of the corridor.
        let last = recs.last().unwrap();
        assert!(last.true_y_m > 300.0, "ended at y = {}", last.true_y_m);
    }

    #[test]
    fn pass_is_deterministic_per_seed() {
        let area = airport(1);
        let a = run_pass(&area, 0, &small_cfg(), 0, 7);
        let b = run_pass(&area, 0, &small_cfg(), 0, 7);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[10], b[10]);
    }

    #[test]
    fn throughput_reaches_5g_levels_somewhere() {
        let area = airport(1);
        let recs = run_pass(&area, 0, &small_cfg(), 0, 3);
        let max = recs.iter().map(|r| r.throughput_mbps).fold(0.0, f64::max);
        assert!(max > 800.0, "max throughput = {max}");
    }

    #[test]
    fn gps_noise_present_but_bounded() {
        let area = airport(1);
        let recs = run_pass(&area, 0, &small_cfg(), 0, 5);
        let mut total_err = 0.0;
        for r in &recs {
            let reported = area.frame.to_local(lumos5g_geo::LatLon::new(r.lat, r.lon));
            total_err += reported.distance(r.true_pos());
        }
        let avg = total_err / recs.len() as f64;
        assert!(avg > 0.5 && avg < 6.0, "avg gps error = {avg}");
    }

    #[test]
    fn campaign_covers_all_trajectories() {
        let area = airport(1);
        let ds = run_campaign(&area, &small_cfg());
        let mut trajs: Vec<u32> = ds.records.iter().map(|r| r.trajectory).collect();
        trajs.sort_unstable();
        trajs.dedup();
        assert_eq!(trajs, vec![0, 1]);
        // 2 trajectories × 2 passes.
        let mut passes: Vec<u32> = ds.records.iter().map(|r| r.pass_id).collect();
        passes.sort_unstable();
        passes.dedup();
        assert_eq!(passes.len(), 4);
    }

    #[test]
    fn driving_records_report_vehicle_activity() {
        let area = crate::areas::loop_area(1);
        let cfg = CampaignConfig {
            mode: MobilityMode::driving(),
            passes_per_trajectory: 1,
            max_duration_s: 400,
            ..small_cfg()
        };
        let recs = run_pass(&area, 0, &cfg, 0, 9);
        assert!(recs.iter().all(|r| r.activity == Activity::InVehicle));
        let vmax = recs.iter().map(|r| r.true_speed_mps).fold(0.0, f64::max);
        assert!(vmax > 5.0, "vmax = {vmax}");
    }

    #[test]
    fn realistic_rsrp_lands_on_reporting_grid() {
        let area = airport(1);
        let recs = run_pass(&area, 0, &small_cfg(), 0, 17);
        for r in &recs {
            let q = small_cfg().logger.rsrp_quant_db;
            let nr = r.nr_ssrsrp_dbm / q;
            let lte = r.lte_rsrp_dbm / q;
            assert!((nr - nr.round()).abs() < 1e-9, "nr {}", r.nr_ssrsrp_dbm);
            assert!((lte - lte.round()).abs() < 1e-9, "lte {}", r.lte_rsrp_dbm);
        }
    }

    #[test]
    fn ideal_logger_differs_only_in_rsrp() {
        let area = airport(1);
        let realistic = run_pass(&area, 0, &small_cfg(), 0, 23);
        let ideal_cfg = CampaignConfig {
            logger: LoggerConfig::ideal(),
            ..small_cfg()
        };
        let ideal = run_pass(&area, 0, &ideal_cfg, 0, 23);
        assert_eq!(realistic.len(), ideal.len());
        let mut rsrp_diffs = 0usize;
        for (a, b) in realistic.iter().zip(&ideal) {
            // The logger stream is isolated: everything but the RSRP columns
            // must be byte-identical between fidelity settings.
            assert_eq!(a.throughput_mbps, b.throughput_mbps);
            assert_eq!((a.lat, a.lon), (b.lat, b.lon));
            assert_eq!(a.cell_id, b.cell_id);
            assert_eq!(a.true_speed_mps, b.true_speed_mps);
            if a.nr_ssrsrp_dbm != b.nr_ssrsrp_dbm {
                rsrp_diffs += 1;
            }
            // Reporting error = noise + quantization; stationary sigma 1.2 dB
            // with half-step rounding stays well inside 10 dB.
            assert!((a.nr_ssrsrp_dbm - b.nr_ssrsrp_dbm).abs() < 10.0);
        }
        assert!(
            rsrp_diffs > realistic.len() / 2,
            "only {rsrp_diffs}/{} records differ in RSRP",
            realistic.len()
        );
    }

    #[test]
    fn handoffs_occur_during_long_passes() {
        let area = crate::areas::loop_area(2);
        let cfg = CampaignConfig {
            mode: MobilityMode::walking(),
            passes_per_trajectory: 1,
            max_duration_s: 900,
            ..small_cfg()
        };
        let recs = run_pass(&area, 0, &cfg, 0, 13);
        let h: usize = recs.iter().filter(|r| r.horizontal_handoff).count();
        let v: usize = recs.iter().filter(|r| r.vertical_handoff).count();
        assert!(h + v > 0, "no handoffs on a 1300 m walk");
    }
}
