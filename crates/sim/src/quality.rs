//! §3.1 data-quality pipeline.
//!
//! The paper's four rules, implemented verbatim:
//!
//! 1. *Repetition*: handled by the campaign runner (≥ 30 passes/trajectory).
//! 2. *Discard passes with average GPS error > 5 m* (we use the accuracy
//!    estimate the location API reports, as an app must).
//! 3. *Buffer period*: drop the first seconds of each pass while GPS/compass
//!    calibrate.
//! 4. *Pixelization*: snap coordinates to the zoom-17 Google-Maps pixel
//!    grid (~1 m) to de-noise locations.

use crate::record::{Dataset, Record};
use lumos5g_geo::{LatLon, LocalFrame};
use std::collections::HashMap;

/// Pipeline configuration (paper defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityConfig {
    /// Discard a pass when its mean reported GPS accuracy exceeds this.
    pub max_avg_gps_error_m: f64,
    /// Leading seconds to trim from each pass.
    pub buffer_s: u32,
    /// Pixelization zoom level.
    pub zoom: u8,
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            max_avg_gps_error_m: 5.0,
            buffer_s: 10,
            zoom: lumos5g_geo::ZOOM_PAPER,
        }
    }
}

/// What the pipeline did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QualityReport {
    /// Passes seen.
    pub passes_total: usize,
    /// Passes discarded for bad GPS.
    pub passes_discarded: usize,
    /// Records in.
    pub records_in: usize,
    /// Records out (after discard + trim).
    pub records_out: usize,
}

/// Apply the pipeline. `frame` is the area's local frame (needed to convert
/// pixel centers back to analysis coordinates).
pub fn apply(
    dataset: &Dataset,
    frame: &LocalFrame,
    cfg: &QualityConfig,
) -> (Dataset, QualityReport) {
    // Mean reported accuracy per pass.
    let mut acc_sum: HashMap<(u32, u32), (f64, usize)> = HashMap::new();
    for r in &dataset.records {
        let e = acc_sum.entry((r.trajectory, r.pass_id)).or_insert((0.0, 0));
        e.0 += r.gps_accuracy_m;
        e.1 += 1;
    }
    let bad: std::collections::HashSet<(u32, u32)> = acc_sum
        .iter()
        .filter(|(_, &(sum, n))| sum / n as f64 > cfg.max_avg_gps_error_m)
        .map(|(&k, _)| k)
        .collect();

    let mut out: Vec<Record> = Vec::with_capacity(dataset.records.len());
    for r in &dataset.records {
        if bad.contains(&(r.trajectory, r.pass_id)) || r.t < cfg.buffer_s {
            continue;
        }
        let mut r = r.clone();
        let px = LatLon::new(r.lat, r.lon).to_pixel(cfg.zoom);
        let snapped = frame.to_local(px.center_latlon());
        r.pixel_x = px.x;
        r.pixel_y = px.y;
        r.snapped_x_m = snapped.x;
        r.snapped_y_m = snapped.y;
        out.push(r);
    }

    let report = QualityReport {
        passes_total: acc_sum.len(),
        passes_discarded: bad.len(),
        records_in: dataset.records.len(),
        records_out: out.len(),
    };
    (Dataset::new(out), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areas::airport;
    use crate::campaign::{run_campaign, CampaignConfig};
    use crate::mobility::MobilityMode;

    fn quick_dataset(bad_gps_fraction: f64) -> (Dataset, LocalFrame) {
        let area = airport(1);
        let cfg = CampaignConfig {
            passes_per_trajectory: 5,
            mode: MobilityMode::walking(),
            base_seed: 21,
            gps_sigma_m: 2.0,
            bad_gps_fraction,
            max_duration_s: 400,
            handoff: Default::default(),
            logger: Default::default(),
        };
        (run_campaign(&area, &cfg), area.frame)
    }

    #[test]
    fn buffer_period_is_trimmed() {
        let (ds, frame) = quick_dataset(0.0);
        let (clean, _) = apply(&ds, &frame, &QualityConfig::default());
        assert!(clean.records.iter().all(|r| r.t >= 10));
    }

    #[test]
    fn bad_gps_passes_are_discarded() {
        let (ds, frame) = quick_dataset(0.6);
        let (_, report) = apply(&ds, &frame, &QualityConfig::default());
        assert!(report.passes_discarded > 0, "{report:?}");
        assert!(report.records_out < report.records_in);
    }

    #[test]
    fn good_gps_passes_survive() {
        let (ds, frame) = quick_dataset(0.0);
        let (_, report) = apply(&ds, &frame, &QualityConfig::default());
        assert_eq!(report.passes_discarded, 0, "{report:?}");
        assert_eq!(report.passes_total, 10);
    }

    #[test]
    fn pixelization_snaps_within_one_pixel() {
        let (ds, frame) = quick_dataset(0.0);
        let (clean, _) = apply(&ds, &frame, &QualityConfig::default());
        for r in clean.records.iter().take(100) {
            let reported = frame.to_local(LatLon::new(r.lat, r.lon));
            let d = reported.distance(r.snapped());
            // Pixel diagonal at zoom 17 in Minneapolis ≈ 1.2 m.
            assert!(d < 1.3, "snap moved {d} m");
            assert!(r.pixel_x != 0 && r.pixel_y != 0);
        }
    }

    #[test]
    fn snapped_positions_denoise_toward_truth() {
        let (ds, frame) = quick_dataset(0.0);
        let (clean, _) = apply(&ds, &frame, &QualityConfig::default());
        // Snapping cannot add more than half a pixel of error on top of GPS
        // noise; net effect is bounded near the raw noise level.
        let mut raw_err = 0.0;
        let mut snap_err = 0.0;
        for r in &clean.records {
            let reported = frame.to_local(LatLon::new(r.lat, r.lon));
            raw_err += reported.distance(r.true_pos());
            snap_err += r.snapped().distance(r.true_pos());
        }
        let n = clean.records.len() as f64;
        assert!((snap_err / n) < (raw_err / n) + 0.7);
    }
}
