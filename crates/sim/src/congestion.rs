//! Multi-UE contention experiment (App A.1.4, Fig 21).
//!
//! Four UEs side-by-side ~25 m in front of one panel with clear LoS. iPerf
//! sessions start staggered one minute apart and all end together; the
//! figure shows UE₁'s goodput roughly halving as each new UE joins, because
//! equal-airtime scheduling splits the panel among attached UEs.

use crate::areas::Area;
use lumos5g_geo::Point2;
use lumos5g_net::{BulkSession, PanelScheduler, TcpConfig};
use lumos5g_radio::{FastFading, TransportMode, UeState};

/// Configuration of the staggered-start experiment.
#[derive(Debug, Clone, Copy)]
pub struct CongestionConfig {
    /// Number of UEs.
    pub n_ues: usize,
    /// Stagger between session starts, seconds.
    pub stagger_s: u32,
    /// Total experiment duration, seconds (all sessions end here).
    pub total_s: u32,
    /// Distance in front of the panel, meters.
    pub distance_m: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CongestionConfig {
    fn default() -> Self {
        CongestionConfig {
            n_ues: 4,
            stagger_s: 60,
            total_s: 240,
            distance_m: 25.0,
            seed: 0,
        }
    }
}

/// Per-UE goodput timelines; `None` before a UE's session starts.
pub type CongestionTimelines = Vec<Vec<Option<f64>>>;

/// Run the experiment against the first panel of `area`.
pub fn run_congestion_experiment(area: &Area, cfg: &CongestionConfig) -> CongestionTimelines {
    let panel = &area.field.panels[0];
    let az = panel.pose.azimuth_deg.to_radians();
    // All UEs side-by-side in front of the panel (1 m spacing).
    let base = Point2::new(
        panel.pose.position.x + cfg.distance_m * az.sin(),
        panel.pose.position.y + cfg.distance_m * az.cos(),
    );

    let mut sessions: Vec<BulkSession> = (0..cfg.n_ues)
        .map(|i| BulkSession::new(TcpConfig::iperf_default(), cfg.seed.wrapping_add(i as u64)))
        .collect();
    let mut fadings: Vec<FastFading> = (0..cfg.n_ues)
        .map(|i| FastFading::mmwave_default(cfg.seed.wrapping_add(100 + i as u64)))
        .collect();

    let mut timelines: CongestionTimelines =
        vec![Vec::with_capacity(cfg.total_s as usize); cfg.n_ues];
    for t in 0..cfg.total_s {
        let mut sched = PanelScheduler::new();
        // Which UEs are active this second?
        let active: Vec<usize> = (0..cfg.n_ues)
            .filter(|&i| t >= cfg.stagger_s * i as u32)
            .collect();
        for &i in &active {
            let ue = UeState {
                pos: Point2::new(base.x + i as f64, base.y),
                heading_deg: 0.0,
                speed_mps: 0.0,
                mode: TransportMode::Stationary,
            };
            let sig = area.field.evaluate_panel(panel, &ue, fadings[i].next_db());
            sched.register(i as u64, sig.capacity_mbps);
        }
        let alloc = sched.allocate();
        for i in 0..cfg.n_ues {
            if active.contains(&i) {
                let share = alloc.get(&(i as u64)).copied().unwrap_or(0.0);
                timelines[i].push(Some(sessions[i].step_second(share)));
            } else {
                timelines[i].push(None);
            }
        }
    }
    timelines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areas::airport;

    fn mean_window(tl: &[Option<f64>], from: usize, to: usize) -> f64 {
        let vals: Vec<f64> = tl[from..to].iter().filter_map(|v| *v).collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }

    #[test]
    fn ue1_throughput_halves_as_ues_join() {
        let area = airport(5);
        let timelines = run_congestion_experiment(&area, &CongestionConfig::default());
        let solo = mean_window(&timelines[0], 20, 55); // warm, alone
        let duo = mean_window(&timelines[0], 80, 115); // with UE2
        let quad = mean_window(&timelines[0], 200, 235); // all four
        assert!(solo > 1_000.0, "solo = {solo}");
        assert!(
            duo < 0.7 * solo,
            "joining UE2 should roughly halve UE1: solo {solo}, duo {duo}"
        );
        assert!(
            quad < 0.4 * solo,
            "four UEs should quarter UE1: solo {solo}, quad {quad}"
        );
    }

    #[test]
    fn late_ues_start_as_none() {
        let area = airport(5);
        let timelines = run_congestion_experiment(&area, &CongestionConfig::default());
        assert!(timelines[3][..180].iter().all(|v| v.is_none()));
        assert!(timelines[3][181].is_some());
    }

    #[test]
    fn all_timelines_have_full_length() {
        let area = airport(5);
        let cfg = CongestionConfig::default();
        let timelines = run_congestion_experiment(&area, &cfg);
        assert_eq!(timelines.len(), 4);
        for tl in &timelines {
            assert_eq!(tl.len(), cfg.total_s as usize);
        }
    }
}
