//! Property-based tests of the campaign simulator and dataset I/O.

use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig, Dataset, MobilityMode};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csv_parser_never_panics_on_junk(junk in ".{0,300}") {
        // Arbitrary text must yield Ok or Err, never a panic.
        let _ = Dataset::from_csv(&junk);
    }

    #[test]
    fn csv_parser_rejects_truncated_rows(ncols in 1usize..26) {
        let row = vec!["1"; ncols].join(",");
        let text = format!("{}\n{}\n", Dataset::CSV_HEADER, row);
        prop_assert!(Dataset::from_csv(&text).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn campaign_invariants_hold(seed in 0u64..1000) {
        let area = airport(seed);
        let cfg = CampaignConfig {
            passes_per_trajectory: 1,
            mode: MobilityMode::walking(),
            base_seed: seed,
            max_duration_s: 120,
            bad_gps_fraction: 0.2,
            ..Default::default()
        };
        let raw = run_campaign(&area, &cfg);
        prop_assert!(!raw.is_empty());
        for r in &raw.records {
            prop_assert!(r.throughput_mbps >= 0.0);
            prop_assert!(r.throughput_mbps <= 2_000.0 + 1e-9);
            prop_assert!(r.moving_speed_mps >= 0.0);
            prop_assert!((0.0..360.0).contains(&r.compass_deg));
            prop_assert!((0.0..360.0).contains(&r.theta_p_deg));
            prop_assert!((0.0..360.0).contains(&r.theta_m_deg));
            prop_assert!(r.panel_distance_m > 0.0);
            prop_assert!(r.gps_accuracy_m > 0.0);
            // On LTE the throughput must be 4G-like.
            if !r.on_5g {
                prop_assert!(r.throughput_mbps <= 280.0 + 1e-9);
                prop_assert_eq!(r.cell_id, 1000);
            } else {
                prop_assert!(r.cell_id < 1000);
            }
        }
        // Quality pipeline never increases record count and always trims
        // the buffer.
        let (clean, report) = quality::apply(&raw, &area.frame, &Default::default());
        prop_assert!(clean.len() <= raw.len());
        prop_assert_eq!(report.records_in, raw.len());
        prop_assert_eq!(report.records_out, clean.len());
        prop_assert!(clean.records.iter().all(|r| r.t >= 10));
    }
}
