//! Property-based tests of the radio substrate.

use lumos5g_geo::{PanelPose, Point2};
use lumos5g_radio::{
    capacity_mbps, ci_path_loss_db, AntennaPattern, CapacityConfig, Obstacle, ObstacleMap, Panel,
    PathLossEnv, RadioConfig, RadioField, ShadowField, TransportMode, UeState,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn path_loss_monotone_in_distance(d1 in 1.0f64..2000.0, d2 in 1.0f64..2000.0, f in 1.0f64..100.0) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        for env in [PathLossEnv::Los, PathLossEnv::Nlos] {
            prop_assert!(ci_path_loss_db(f, lo, env) <= ci_path_loss_db(f, hi, env) + 1e-9);
        }
    }

    #[test]
    fn nlos_never_cheaper_than_los(d in 1.0f64..2000.0, f in 1.0f64..100.0) {
        prop_assert!(
            ci_path_loss_db(f, d, PathLossEnv::Nlos) >= ci_path_loss_db(f, d, PathLossEnv::Los) - 1e-9
        );
    }

    #[test]
    fn antenna_gain_bounded(theta in -720.0f64..720.0) {
        let a = AntennaPattern::sector_default();
        let g = a.gain_dbi(theta);
        prop_assert!(g <= a.max_gain_dbi + 1e-12);
        prop_assert!(g >= a.max_gain_dbi - a.max_attenuation_db - 1e-12);
    }

    #[test]
    fn capacity_zero_in_outage(sinr in -60.0f64..-5.01) {
        prop_assert_eq!(capacity_mbps(sinr, &CapacityConfig::default()), 0.0);
    }

    #[test]
    fn obstacle_loss_is_additive(
        x in -50.0f64..50.0,
        y1 in 5.0f64..45.0,
        y2 in 55.0f64..95.0,
        l1 in 1.0f64..40.0,
        l2 in 1.0f64..40.0,
    ) {
        // Two slabs stacked along the ray: total loss is the sum.
        let map = ObstacleMap::from_vec(vec![
            Obstacle::Aabb { min: Point2::new(-100.0, y1), max: Point2::new(100.0, y1 + 2.0), loss_db: l1 },
            Obstacle::Aabb { min: Point2::new(-100.0, y2), max: Point2::new(100.0, y2 + 2.0), loss_db: l2 },
        ]);
        let loss = map.penetration_loss_db(Point2::new(x, 0.0), Point2::new(x, 120.0));
        prop_assert!((loss - (l1 + l2)).abs() < 1e-9);
    }

    #[test]
    fn rsrp_decreases_moving_off_boresight(d in 20.0f64..200.0, off in 5.0f64..60.0) {
        let field = RadioField::new(
            vec![Panel::new(1, PanelPose::new(Point2::new(0.0, 0.0), 0.0))],
            ObstacleMap::new(),
            ShadowField::new(1, 10.0, 0.0),
            RadioConfig::default(),
        );
        let on = UeState {
            pos: Point2::new(0.0, d),
            heading_deg: 0.0,
            speed_mps: 0.0,
            mode: TransportMode::Stationary,
        };
        let off_axis = UeState {
            pos: Point2::new(d * off.to_radians().sin(), d * off.to_radians().cos()),
            ..on
        };
        let s_on = field.best_signal(&on, 0.0).unwrap();
        let s_off = field.best_signal(&off_axis, 0.0).unwrap();
        prop_assert!(s_on.rsrp_dbm >= s_off.rsrp_dbm - 1e-9);
    }

    #[test]
    fn reported_distance_matches_geometry(px in -200.0f64..200.0, py in -200.0f64..200.0, ux in -200.0f64..200.0, uy in -200.0f64..200.0) {
        prop_assume!((px - ux).abs() > 1e-6 || (py - uy).abs() > 1e-6);
        let field = RadioField::new(
            vec![Panel::new(1, PanelPose::new(Point2::new(px, py), 90.0))],
            ObstacleMap::new(),
            ShadowField::new(1, 10.0, 0.0),
            RadioConfig::default(),
        );
        let ue = UeState {
            pos: Point2::new(ux, uy),
            heading_deg: 45.0,
            speed_mps: 1.0,
            mode: TransportMode::Walking,
        };
        let s = field.best_signal(&ue, 0.0).unwrap();
        let d = ((px - ux).powi(2) + (py - uy).powi(2)).sqrt();
        prop_assert!((s.distance_m - d).abs() < 1e-9);
    }
}
