//! Obstacle maps and line-of-sight queries.
//!
//! §4.1 attributes the "consistently poor" and "uncertain" patches of the
//! throughput maps to obstructions (buildings, information booths,
//! open-space restaurants). We model obstacles as axis-aligned boxes and
//! thin walls, each with a penetration loss; a LoS query traces the
//! panel→UE segment and sums the losses of everything it crosses.

use lumos5g_geo::Point2;

/// A single obstruction in the local plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Obstacle {
    /// Axis-aligned box, e.g. a building footprint or information booth.
    Aabb {
        /// South-west corner.
        min: Point2,
        /// North-east corner.
        max: Point2,
        /// Loss applied when the ray passes through, dB.
        loss_db: f64,
    },
    /// A thin wall segment, e.g. tinted glass or a concrete facade edge.
    Wall {
        /// One endpoint.
        a: Point2,
        /// Other endpoint.
        b: Point2,
        /// Loss applied when the ray crosses, dB.
        loss_db: f64,
    },
}

impl Obstacle {
    /// Penetration loss if the segment `p → q` intersects this obstacle,
    /// else 0.
    pub fn loss_on_segment(&self, p: Point2, q: Point2) -> f64 {
        match *self {
            Obstacle::Aabb { min, max, loss_db } => {
                if segment_intersects_aabb(p, q, min, max) {
                    loss_db
                } else {
                    0.0
                }
            }
            Obstacle::Wall { a, b, loss_db } => {
                if segments_intersect(p, q, a, b) {
                    loss_db
                } else {
                    0.0
                }
            }
        }
    }
}

/// Liang–Barsky segment vs axis-aligned box test. Touching counts as
/// intersecting; a segment fully inside the box also counts.
pub fn segment_intersects_aabb(p: Point2, q: Point2, min: Point2, max: Point2) -> bool {
    let d = (q.x - p.x, q.y - p.y);
    let mut t0 = 0.0f64;
    let mut t1 = 1.0f64;
    // For each slab (x and y), clip the parameter interval.
    for (p0, dir, lo, hi) in [(p.x, d.0, min.x, max.x), (p.y, d.1, min.y, max.y)] {
        if dir.abs() < 1e-15 {
            if p0 < lo || p0 > hi {
                return false;
            }
        } else {
            let mut ta = (lo - p0) / dir;
            let mut tb = (hi - p0) / dir;
            if ta > tb {
                std::mem::swap(&mut ta, &mut tb);
            }
            t0 = t0.max(ta);
            t1 = t1.min(tb);
            if t0 > t1 {
                return false;
            }
        }
    }
    true
}

/// Proper segment-segment intersection (shared endpoints count).
pub fn segments_intersect(p1: Point2, p2: Point2, p3: Point2, p4: Point2) -> bool {
    fn orient(a: Point2, b: Point2, c: Point2) -> f64 {
        (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    }
    fn on_segment(a: Point2, b: Point2, c: Point2) -> bool {
        c.x >= a.x.min(b.x) - 1e-12
            && c.x <= a.x.max(b.x) + 1e-12
            && c.y >= a.y.min(b.y) - 1e-12
            && c.y <= a.y.max(b.y) + 1e-12
    }
    let d1 = orient(p3, p4, p1);
    let d2 = orient(p3, p4, p2);
    let d3 = orient(p1, p2, p3);
    let d4 = orient(p1, p2, p4);
    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1.abs() < 1e-12 && on_segment(p3, p4, p1))
        || (d2.abs() < 1e-12 && on_segment(p3, p4, p2))
        || (d3.abs() < 1e-12 && on_segment(p1, p2, p3))
        || (d4.abs() < 1e-12 && on_segment(p1, p2, p4))
}

/// The set of obstructions in a measurement area.
#[derive(Debug, Clone, Default)]
pub struct ObstacleMap {
    obstacles: Vec<Obstacle>,
}

impl ObstacleMap {
    /// Empty map (pure LoS area).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an obstacle.
    pub fn push(&mut self, o: Obstacle) {
        self.obstacles.push(o);
    }

    /// Build from a list.
    pub fn from_vec(obstacles: Vec<Obstacle>) -> Self {
        ObstacleMap { obstacles }
    }

    /// Number of obstacles.
    pub fn len(&self) -> usize {
        self.obstacles.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.obstacles.is_empty()
    }

    /// Total penetration loss along the segment `p → q`, dB. Zero means
    /// unobstructed line of sight.
    pub fn penetration_loss_db(&self, p: Point2, q: Point2) -> f64 {
        self.obstacles.iter().map(|o| o.loss_on_segment(p, q)).sum()
    }

    /// True when nothing blocks the segment.
    pub fn has_los(&self, p: Point2, q: Point2) -> bool {
        self.penetration_loss_db(p, q) == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64) -> Point2 {
        Point2::new(x, y)
    }

    #[test]
    fn segment_through_box_intersects() {
        assert!(segment_intersects_aabb(
            pt(-10.0, 5.0),
            pt(10.0, 5.0),
            pt(-1.0, 0.0),
            pt(1.0, 10.0)
        ));
    }

    #[test]
    fn segment_missing_box_does_not() {
        assert!(!segment_intersects_aabb(
            pt(-10.0, 50.0),
            pt(10.0, 50.0),
            pt(-1.0, 0.0),
            pt(1.0, 10.0)
        ));
    }

    #[test]
    fn segment_inside_box_counts() {
        assert!(segment_intersects_aabb(
            pt(0.1, 0.1),
            pt(0.2, 0.2),
            pt(0.0, 0.0),
            pt(1.0, 1.0)
        ));
    }

    #[test]
    fn vertical_segment_vs_box() {
        assert!(segment_intersects_aabb(
            pt(0.5, -5.0),
            pt(0.5, 5.0),
            pt(0.0, 0.0),
            pt(1.0, 1.0)
        ));
        assert!(!segment_intersects_aabb(
            pt(5.0, -5.0),
            pt(5.0, 5.0),
            pt(0.0, 0.0),
            pt(1.0, 1.0)
        ));
    }

    #[test]
    fn crossing_segments_intersect() {
        assert!(segments_intersect(
            pt(0.0, 0.0),
            pt(10.0, 10.0),
            pt(0.0, 10.0),
            pt(10.0, 0.0)
        ));
    }

    #[test]
    fn parallel_segments_do_not() {
        assert!(!segments_intersect(
            pt(0.0, 0.0),
            pt(10.0, 0.0),
            pt(0.0, 1.0),
            pt(10.0, 1.0)
        ));
    }

    #[test]
    fn touching_endpoint_counts() {
        assert!(segments_intersect(
            pt(0.0, 0.0),
            pt(5.0, 5.0),
            pt(5.0, 5.0),
            pt(10.0, 0.0)
        ));
    }

    #[test]
    fn map_sums_losses() {
        let map = ObstacleMap::from_vec(vec![
            Obstacle::Aabb {
                min: pt(2.0, -1.0),
                max: pt(3.0, 1.0),
                loss_db: 20.0,
            },
            Obstacle::Wall {
                a: pt(5.0, -1.0),
                b: pt(5.0, 1.0),
                loss_db: 7.0,
            },
        ]);
        // Ray along y = 0 crosses both.
        assert!((map.penetration_loss_db(pt(0.0, 0.0), pt(10.0, 0.0)) - 27.0).abs() < 1e-12);
        assert!(!map.has_los(pt(0.0, 0.0), pt(10.0, 0.0)));
        // Ray above everything is clear.
        assert!(map.has_los(pt(0.0, 5.0), pt(10.0, 5.0)));
    }
}
