//! Directional panel antenna pattern.
//!
//! mmWave panels are highly directional (§2, footnote 2). We use the 3GPP
//! TR 38.901 parabolic element pattern: relative gain
//! `G(Δ) = −min(12·(Δ/θ₃dB)², A_max)` dB at angular offset `Δ` from
//! boresight, with a front-to-back ratio cap. This produces exactly the
//! F ≫ L/R ≫ B ordering the paper measures for the positional-angle sectors
//! (Fig 13).

use lumos5g_geo::fold_angle_deg;

/// A parabolic main-lobe pattern with a side/back-lobe floor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AntennaPattern {
    /// Peak boresight gain, dBi.
    pub max_gain_dbi: f64,
    /// Half-power (3 dB) beamwidth, degrees.
    pub beamwidth_3db_deg: f64,
    /// Maximum attenuation relative to boresight, dB (front-to-back ratio).
    pub max_attenuation_db: f64,
}

impl AntennaPattern {
    /// A typical mmWave sector panel: 23 dBi peak, 65° beamwidth, 30 dB FBR.
    pub fn sector_default() -> Self {
        AntennaPattern {
            max_gain_dbi: 23.0,
            beamwidth_3db_deg: 65.0,
            max_attenuation_db: 30.0,
        }
    }

    /// Gain in dBi at angular offset `theta_deg` from boresight. The offset
    /// may be any full-circle angle; it is folded to `[0°, 180°]`.
    pub fn gain_dbi(&self, theta_deg: f64) -> f64 {
        let delta = fold_angle_deg(theta_deg);
        let rel = 12.0 * (delta / self.beamwidth_3db_deg).powi(2);
        self.max_gain_dbi - rel.min(self.max_attenuation_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boresight_is_peak() {
        let a = AntennaPattern::sector_default();
        assert!((a.gain_dbi(0.0) - 23.0).abs() < 1e-12);
    }

    #[test]
    fn half_power_at_half_beamwidth() {
        let a = AntennaPattern::sector_default();
        // At Δ = θ3dB/2 the parabolic pattern gives exactly −3 dB.
        assert!((a.gain_dbi(32.5) - (23.0 - 3.0)).abs() < 1e-9);
    }

    #[test]
    fn back_lobe_hits_floor() {
        let a = AntennaPattern::sector_default();
        assert!((a.gain_dbi(180.0) - (23.0 - 30.0)).abs() < 1e-9);
    }

    #[test]
    fn pattern_is_symmetric() {
        let a = AntennaPattern::sector_default();
        assert!((a.gain_dbi(40.0) - a.gain_dbi(-40.0)).abs() < 1e-12);
        assert!((a.gain_dbi(40.0) - a.gain_dbi(320.0)).abs() < 1e-12);
    }

    #[test]
    fn gain_is_monotone_out_to_floor() {
        let a = AntennaPattern::sector_default();
        let mut last = f64::INFINITY;
        for d in [0.0, 10.0, 30.0, 60.0, 90.0, 120.0] {
            let g = a.gain_dbi(d);
            assert!(g <= last + 1e-12);
            last = g;
        }
    }
}
