//! Shadowing and fast fading.
//!
//! Two separate stochastic components, matching the structure the paper's
//! statistics reveal:
//!
//! - [`ShadowField`]: a **deterministic, seeded** spatial field of log-normal
//!   shadowing (smoothed lattice noise with ~meters-scale correlation). It is
//!   a pure function of position, so repeated passes over the same trajectory
//!   see the same shadowing — this is why geolocation carries predictive
//!   signal (Table 5: ~70% of cell pairs differ significantly).
//! - [`FastFading`]: a temporal AR(1) (Gauss–Markov) process in dB, fresh
//!   per measurement pass. This is the "uncontrollable random effect" that
//!   keeps CV high (§4.1: ~53% of cells have CV ≥ 50%) and motivates the
//!   paper's ±200 Mbps error bands.

use lumos5g_geo::Point2;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 — tiny, high-quality hash for lattice noise.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform value in [−1, 1] for lattice point `(i, j)` under `seed`.
fn lattice_value(seed: u64, i: i64, j: i64) -> f64 {
    let h = splitmix64(
        seed ^ splitmix64(i as u64).wrapping_mul(3) ^ splitmix64(j as u64).wrapping_mul(7),
    );
    (h >> 11) as f64 / ((1u64 << 53) as f64) * 2.0 - 1.0
}

fn smoothstep(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// A deterministic spatially-correlated shadowing field (value noise).
///
/// Evaluating at the same position always yields the same dB offset for a
/// given seed — the field plays the role of the fixed environment (clutter,
/// reflectors) around a deployment.
#[derive(Debug, Clone, Copy)]
pub struct ShadowField {
    seed: u64,
    /// Correlation length (lattice spacing), meters.
    corr_m: f64,
    /// Standard deviation of the field, dB.
    sigma_db: f64,
}

impl ShadowField {
    /// Create a field with decorrelation distance `corr_m` meters and
    /// standard deviation `sigma_db` dB.
    pub fn new(seed: u64, corr_m: f64, sigma_db: f64) -> Self {
        assert!(corr_m > 0.0, "correlation length must be positive");
        assert!(sigma_db >= 0.0, "sigma must be non-negative");
        ShadowField {
            seed,
            corr_m,
            sigma_db,
        }
    }

    /// Typical mmWave urban shadowing: 10 m correlation, 4 dB sigma.
    pub fn mmwave_default(seed: u64) -> Self {
        ShadowField::new(seed, 10.0, 4.0)
    }

    /// Shadowing offset at `p`, dB (two octaves of smooth value noise,
    /// scaled so the marginal standard deviation ≈ `sigma_db`).
    pub fn sample_db(&self, p: Point2) -> f64 {
        let base = self.octave(p, self.corr_m);
        let detail = self.octave(p, self.corr_m / 2.9) * 0.5;
        // Var of uniform[−1,1] is 1/3; two octaves sum var (1 + 0.25)/3.
        // Normalize to unit variance then scale by sigma.
        let norm = ((1.0 + 0.25) / 3.0f64).sqrt();
        (base + detail) / norm * self.sigma_db
    }

    fn octave(&self, p: Point2, cell: f64) -> f64 {
        let gx = p.x / cell;
        let gy = p.y / cell;
        let i = gx.floor() as i64;
        let j = gy.floor() as i64;
        let tx = smoothstep(gx - i as f64);
        let ty = smoothstep(gy - j as f64);
        let seed = self.seed ^ (cell.to_bits());
        let v00 = lattice_value(seed, i, j);
        let v10 = lattice_value(seed, i + 1, j);
        let v01 = lattice_value(seed, i, j + 1);
        let v11 = lattice_value(seed, i + 1, j + 1);
        let a = v00 + (v10 - v00) * tx;
        let b = v01 + (v11 - v01) * tx;
        a + (b - a) * ty
    }
}

/// Temporal AR(1) fast fading in dB: `x' = ρ·x + √(1−ρ²)·σ·ε`.
#[derive(Debug, Clone)]
pub struct FastFading {
    rng: StdRng,
    rho: f64,
    sigma_db: f64,
    state_db: f64,
}

impl FastFading {
    /// Create with per-tick correlation `rho` and marginal sigma `sigma_db`.
    pub fn new(seed: u64, rho: f64, sigma_db: f64) -> Self {
        assert!((0.0..1.0).contains(&rho), "rho must be in [0,1)");
        assert!(sigma_db >= 0.0, "sigma must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        // Start from the stationary distribution.
        let state_db = sigma_db * gaussian(&mut rng);
        FastFading {
            rng,
            rho,
            sigma_db,
            state_db,
        }
    }

    /// Typical 1 Hz mmWave fast-fading: ρ = 0.6, σ = 3 dB.
    pub fn mmwave_default(seed: u64) -> Self {
        FastFading::new(seed, 0.6, 3.0)
    }

    /// Advance one tick and return the new fading value, dB.
    pub fn next_db(&mut self) -> f64 {
        let innovation =
            (1.0 - self.rho * self.rho).sqrt() * self.sigma_db * gaussian(&mut self.rng);
        self.state_db = self.rho * self.state_db + innovation;
        self.state_db
    }

    /// Current value without advancing.
    pub fn current_db(&self) -> f64 {
        self.state_db
    }
}

/// Standard normal variate via Box–Muller (keeps us inside the approved
/// crate list — `rand` without `rand_distr`).
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 > 1e-300 {
            let u2: f64 = rng.gen::<f64>();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_field_is_deterministic() {
        let f = ShadowField::mmwave_default(42);
        let p = Point2::new(13.7, -8.2);
        assert_eq!(f.sample_db(p), f.sample_db(p));
    }

    #[test]
    fn shadow_field_varies_across_space() {
        let f = ShadowField::mmwave_default(42);
        let a = f.sample_db(Point2::new(0.0, 0.0));
        let b = f.sample_db(Point2::new(500.0, 500.0));
        assert!((a - b).abs() > 1e-6);
    }

    #[test]
    fn shadow_field_is_smooth_at_small_steps() {
        let f = ShadowField::mmwave_default(7);
        let a = f.sample_db(Point2::new(10.0, 10.0));
        let b = f.sample_db(Point2::new(10.2, 10.0));
        assert!((a - b).abs() < 1.0, "20 cm step moved shadowing {a}→{b}");
    }

    #[test]
    fn shadow_field_marginal_sigma_is_plausible() {
        let f = ShadowField::new(3, 10.0, 4.0);
        let mut vals = Vec::new();
        for i in 0..60 {
            for j in 0..60 {
                vals.push(f.sample_db(Point2::new(i as f64 * 17.0, j as f64 * 17.0)));
            }
        }
        let n = vals.len() as f64;
        let mean = vals.iter().sum::<f64>() / n;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let sd = var.sqrt();
        assert!(sd > 2.0 && sd < 6.0, "sd = {sd}");
        assert!(mean.abs() < 1.0, "mean = {mean}");
    }

    #[test]
    fn different_seeds_give_different_fields() {
        let f1 = ShadowField::mmwave_default(1);
        let f2 = ShadowField::mmwave_default(2);
        let p = Point2::new(25.0, 3.0);
        assert!((f1.sample_db(p) - f2.sample_db(p)).abs() > 1e-9);
    }

    #[test]
    fn fast_fading_is_reproducible_per_seed() {
        let mut a = FastFading::mmwave_default(9);
        let mut b = FastFading::mmwave_default(9);
        for _ in 0..10 {
            assert_eq!(a.next_db(), b.next_db());
        }
    }

    #[test]
    fn fast_fading_stationary_variance() {
        let mut f = FastFading::new(11, 0.6, 3.0);
        let xs: Vec<f64> = (0..20_000).map(|_| f.next_db()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((var.sqrt() - 3.0).abs() < 0.3, "sd = {}", var.sqrt());
        assert!(mean.abs() < 0.2, "mean = {mean}");
    }

    #[test]
    fn fast_fading_is_autocorrelated() {
        let mut f = FastFading::new(13, 0.9, 3.0);
        let xs: Vec<f64> = (0..20_000).map(|_| f.next_db()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        let cov1 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / (xs.len() - 1) as f64;
        let rho1 = cov1 / var;
        assert!((rho1 - 0.9).abs() < 0.05, "rho1 = {rho1}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs: Vec<f64> = (0..50_000).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02);
        assert!((var - 1.0).abs() < 0.05);
    }
}
