//! Close-in (CI) free-space-reference path-loss model for mmWave.
//!
//! `PL(d) = FSPL(1 m) + 10·n·log₁₀(d)` with `FSPL(1 m) = 32.4 +
//! 20·log₁₀(f_GHz)` dB — the standard 3GPP/NYU CI form used throughout the
//! mmWave measurement literature the paper cites (\[51, 66\]). At 28 GHz the
//! 1 m intercept is ≈ 61.34 dB. LoS environments measure `n ≈ 2.0`; urban
//! NLoS, `n ≈ 3.0–3.4`.

/// Propagation environment for the CI model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathLossEnv {
    /// Unobstructed line of sight.
    Los,
    /// Obstructed; energy arrives via diffraction/reflection.
    Nlos,
}

impl PathLossEnv {
    /// Path-loss exponent `n` for this environment (28 GHz urban values).
    pub fn exponent(self) -> f64 {
        match self {
            PathLossEnv::Los => 2.0,
            PathLossEnv::Nlos => 3.0,
        }
    }
}

/// Free-space path loss at the 1 m reference distance, dB.
pub fn fspl_1m_db(freq_ghz: f64) -> f64 {
    assert!(freq_ghz > 0.0, "frequency must be positive");
    32.4 + 20.0 * freq_ghz.log10()
}

/// CI path loss in dB at distance `d_m` meters.
///
/// Distances below 1 m are clamped to the reference distance (the model is
/// not defined closer in and our simulated UEs never touch the panel).
pub fn ci_path_loss_db(freq_ghz: f64, d_m: f64, env: PathLossEnv) -> f64 {
    let d = d_m.max(1.0);
    fspl_1m_db(freq_ghz) + 10.0 * env.exponent() * d.log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intercept_at_28ghz_is_61_3db() {
        assert!((fspl_1m_db(28.0) - 61.34).abs() < 0.05);
    }

    #[test]
    fn los_slope_is_20db_per_decade() {
        let p10 = ci_path_loss_db(28.0, 10.0, PathLossEnv::Los);
        let p100 = ci_path_loss_db(28.0, 100.0, PathLossEnv::Los);
        assert!((p100 - p10 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn nlos_slope_is_30db_per_decade() {
        let p10 = ci_path_loss_db(28.0, 10.0, PathLossEnv::Nlos);
        let p100 = ci_path_loss_db(28.0, 100.0, PathLossEnv::Nlos);
        assert!((p100 - p10 - 30.0).abs() < 1e-9);
    }

    #[test]
    fn sub_meter_clamps_to_reference() {
        let at_ref = ci_path_loss_db(28.0, 1.0, PathLossEnv::Los);
        assert!((ci_path_loss_db(28.0, 0.1, PathLossEnv::Los) - at_ref).abs() < 1e-12);
    }

    #[test]
    fn loss_is_monotone_in_distance() {
        let mut last = 0.0;
        for d in [1.0, 5.0, 25.0, 125.0, 600.0] {
            let p = ci_path_loss_db(28.0, d, PathLossEnv::Nlos);
            assert!(p > last);
            last = p;
        }
    }
}
