//! The composite radio field: panels + obstacles + shadowing → per-panel
//! RSRP / SINR / capacity for a UE state.
//!
//! This is the "ground truth physics" the campaign simulator samples every
//! second. Default constants are calibrated so that the simulated areas
//! reproduce the paper's envelope: ≈2 Gbps peaks near a panel with LoS,
//! decay setting in beyond ~30 m, 4G-like or zero throughput behind panels
//! and across obstructions, and a strong walking-vs-driving gap (Fig 14).

use crate::antenna::AntennaPattern;
use crate::capacity::{capacity_mbps, CapacityConfig};
use crate::fading::ShadowField;
use crate::obstacles::ObstacleMap;
use crate::pathloss::{ci_path_loss_db, PathLossEnv};
use lumos5g_geo::{
    bearing_deg, mobility_angle_deg, positional_angle_deg, signed_delta_deg, PanelPose, Point2,
};

/// How the UE is being carried (§4.6: mode of transport matters beyond
/// ground speed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportMode {
    /// UE static (hand-held or mounted), no body rotation.
    Stationary,
    /// Hand-held in front of a walking user: the body shadows the back
    /// half-plane.
    Walking,
    /// Mounted on a car windshield: car-body penetration loss plus a
    /// speed-dependent beam-tracking penalty.
    Driving,
}

/// Kinematic state of the UE at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UeState {
    /// Position in the area's local frame, meters.
    pub pos: Point2,
    /// Compass direction of travel, degrees (0° = North).
    pub heading_deg: f64,
    /// Ground speed, m/s.
    pub speed_mps: f64,
    /// Transport mode.
    pub mode: TransportMode,
}

/// A deployed mmWave panel (one face of a tower installation; towers in the
/// paper's areas carry one to three panels facing different directions).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Panel {
    /// Stable identifier; becomes the `cell ID` field of the logs.
    pub id: u32,
    /// Position and facing direction.
    pub pose: PanelPose,
    /// Antenna pattern of the face.
    pub pattern: AntennaPattern,
    /// Effective isotropic radiated power excluding the pattern gain, dBm.
    pub eirp_dbm: f64,
}

impl Panel {
    /// A panel with default pattern and power at `pose`.
    pub fn new(id: u32, pose: PanelPose) -> Self {
        Panel {
            id,
            pose,
            pattern: AntennaPattern::sector_default(),
            eirp_dbm: 20.0,
        }
    }
}

/// Tunable physics constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioConfig {
    /// Carrier frequency, GHz.
    pub freq_ghz: f64,
    /// Receiver noise figure, dB.
    pub noise_figure_db: f64,
    /// UE-side beamforming gain, dBi.
    pub ue_gain_dbi: f64,
    /// Loss when the user's body sits between UE and panel, dB (§4.4;
    /// measured 15–25 dB at 28 GHz \[67\]).
    pub body_loss_db: f64,
    /// Half-angle of the body shadow behind a walking user, degrees: the
    /// panel is considered blocked when it lies within this cone behind the
    /// direction of travel.
    pub body_halfangle_deg: f64,
    /// Cap on total obstruction loss, dB — reflective NLoS paths provide a
    /// floor (§4.4's "outlier" deflections).
    pub nlos_cap_db: f64,
    /// Car-body penetration loss while driving, dB.
    pub vehicle_loss_db: f64,
    /// Driving beam-tracking penalty coefficient: extra loss =
    /// `coeff · √max(0, v − v₀)` dB with `v` in m/s.
    pub speed_penalty_coeff: f64,
    /// Speed v₀ below which driving incurs no tracking penalty, m/s
    /// (≈5 km/h per Fig 14a).
    pub speed_penalty_floor_mps: f64,
    /// Fraction of each non-serving panel's received power counted as
    /// co-channel interference (0 = noise-limited, the default: mmWave
    /// beamforming largely nulls other panels; >0 models loaded cells
    /// leaking into the UE's beam).
    pub interference_factor: f64,
    /// SINR → capacity mapping.
    pub capacity: CapacityConfig,
}

impl Default for RadioConfig {
    fn default() -> Self {
        RadioConfig {
            freq_ghz: 28.0,
            noise_figure_db: 9.0,
            ue_gain_dbi: 0.0,
            body_loss_db: 16.0,
            body_halfangle_deg: 70.0,
            nlos_cap_db: 25.0,
            vehicle_loss_db: 9.0,
            speed_penalty_coeff: 3.0,
            speed_penalty_floor_mps: 1.4,
            interference_factor: 0.0,
            capacity: CapacityConfig::default(),
        }
    }
}

impl RadioConfig {
    /// Thermal noise floor over the configured bandwidth, dBm.
    pub fn noise_floor_dbm(&self) -> f64 {
        -174.0 + 10.0 * self.capacity.bandwidth_hz.log10() + self.noise_figure_db
    }
}

/// The signal a UE receives from one panel at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PanelSignal {
    /// Panel identifier.
    pub panel_id: u32,
    /// Received power, dBm (plays the role of `ssRsrp` in the logs).
    pub rsrp_dbm: f64,
    /// Signal-to-noise ratio, dB.
    pub sinr_db: f64,
    /// Truncated-Shannon link capacity, Mbps.
    pub capacity_mbps: f64,
    /// Whether the geometric path is unobstructed.
    pub los: bool,
    /// UE–panel distance, meters.
    pub distance_m: f64,
    /// Positional angle θp, degrees in [0, 360).
    pub theta_p_deg: f64,
    /// Mobility angle θm, degrees in [0, 360).
    pub theta_m_deg: f64,
}

/// A complete radio environment: panels, obstructions and the shadowing
/// terrain of one measurement area.
#[derive(Debug, Clone)]
pub struct RadioField {
    /// Deployed panels.
    pub panels: Vec<Panel>,
    /// Obstruction map.
    pub obstacles: ObstacleMap,
    /// Deterministic shadowing terrain.
    pub shadow: ShadowField,
    /// Physics constants.
    pub cfg: RadioConfig,
}

impl RadioField {
    /// Assemble a field.
    pub fn new(
        panels: Vec<Panel>,
        obstacles: ObstacleMap,
        shadow: ShadowField,
        cfg: RadioConfig,
    ) -> Self {
        RadioField {
            panels,
            obstacles,
            shadow,
            cfg,
        }
    }

    /// Evaluate the signal from every panel for UE state `ue`, adding
    /// `fading_db` of (caller-owned, per-pass) fast fading to each link.
    ///
    /// When [`RadioConfig::interference_factor`] is positive, each panel's
    /// SINR counts that fraction of every *other* panel's received power as
    /// co-channel interference; at the default 0 the links are
    /// noise-limited (beamforming nulls the other panels).
    pub fn evaluate(&self, ue: &UeState, fading_db: f64) -> Vec<PanelSignal> {
        let mut signals: Vec<PanelSignal> = self
            .panels
            .iter()
            .map(|p| self.evaluate_panel(p, ue, fading_db))
            .collect();
        let f = self.cfg.interference_factor;
        if f > 0.0 && signals.len() > 1 {
            let noise_lin = 10f64.powf(self.cfg.noise_floor_dbm() / 10.0);
            let rx_lin: Vec<f64> = signals
                .iter()
                .map(|s| 10f64.powf(s.rsrp_dbm / 10.0))
                .collect();
            let total: f64 = rx_lin.iter().sum();
            for (s, &own) in signals.iter_mut().zip(&rx_lin) {
                let interference = f * (total - own);
                s.sinr_db = s.rsrp_dbm - 10.0 * (noise_lin + interference).log10();
                s.capacity_mbps = capacity_mbps(s.sinr_db, &self.cfg.capacity);
            }
        }
        signals
    }

    /// Signal from a single panel.
    pub fn evaluate_panel(&self, panel: &Panel, ue: &UeState, fading_db: f64) -> PanelSignal {
        let d = panel.pose.distance_to(ue.pos);
        let theta_p = positional_angle_deg(&panel.pose, ue.pos);
        let theta_m = mobility_angle_deg(&panel.pose, ue.heading_deg);

        let penetration = self
            .obstacles
            .penetration_loss_db(panel.pose.position, ue.pos);
        let los = penetration == 0.0;
        let env = if los {
            PathLossEnv::Los
        } else {
            PathLossEnv::Nlos
        };
        let pl = ci_path_loss_db(self.cfg.freq_ghz, d, env);
        let obstruction = penetration.min(self.cfg.nlos_cap_db);

        let mut extra = 0.0;
        match ue.mode {
            TransportMode::Walking => {
                if self.body_blocks(panel, ue) {
                    extra += self.cfg.body_loss_db;
                }
            }
            TransportMode::Driving => {
                extra += self.cfg.vehicle_loss_db;
                let over = (ue.speed_mps - self.cfg.speed_penalty_floor_mps).max(0.0);
                extra += self.cfg.speed_penalty_coeff * over.sqrt();
            }
            TransportMode::Stationary => {}
        }

        let rsrp = panel.eirp_dbm + panel.pattern.gain_dbi(theta_p) + self.cfg.ue_gain_dbi
            - pl
            - obstruction
            - extra
            + self.shadow.sample_db(ue.pos)
            + fading_db;
        let sinr = rsrp - self.cfg.noise_floor_dbm();
        PanelSignal {
            panel_id: panel.id,
            rsrp_dbm: rsrp,
            sinr_db: sinr,
            capacity_mbps: capacity_mbps(sinr, &self.cfg.capacity),
            los,
            distance_m: d,
            theta_p_deg: theta_p,
            theta_m_deg: theta_m,
        }
    }

    /// The strongest panel signal, if any panel exists.
    pub fn best_signal(&self, ue: &UeState, fading_db: f64) -> Option<PanelSignal> {
        self.evaluate(ue, fading_db)
            .into_iter()
            .max_by(|a, b| a.rsrp_dbm.partial_cmp(&b.rsrp_dbm).expect("finite RSRP"))
    }

    /// True when the walking user's body sits between the hand-held UE and
    /// the panel: the panel's bearing (from the UE) falls in a cone around
    /// the direction opposite to travel.
    fn body_blocks(&self, panel: &Panel, ue: &UeState) -> bool {
        if ue.speed_mps < 0.1 {
            return false; // effectively stationary; user orientation unknown
        }
        let bearing_to_panel = bearing_deg(
            ue.pos.x,
            ue.pos.y,
            panel.pose.position.x,
            panel.pose.position.y,
        );
        let off_heading = signed_delta_deg(ue.heading_deg, bearing_to_panel).abs();
        off_heading > 180.0 - self.cfg.body_halfangle_deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos5g_geo::PanelPose;

    /// One north-facing panel at the origin, no obstacles, flat shadowing.
    fn simple_field() -> RadioField {
        let panel = Panel::new(1, PanelPose::new(Point2::new(0.0, 0.0), 0.0));
        RadioField::new(
            vec![panel],
            ObstacleMap::new(),
            ShadowField::new(1, 10.0, 0.0), // zero-sigma: deterministic tests
            RadioConfig::default(),
        )
    }

    fn ue_at(x: f64, y: f64, heading: f64, mode: TransportMode, speed: f64) -> UeState {
        UeState {
            pos: Point2::new(x, y),
            heading_deg: heading,
            speed_mps: speed,
            mode,
        }
    }

    #[test]
    fn close_frontal_ue_saturates_capacity() {
        let f = simple_field();
        // 15 m in front, stationary.
        let s = f
            .best_signal(&ue_at(0.0, 15.0, 0.0, TransportMode::Stationary, 0.0), 0.0)
            .unwrap();
        assert!(s.los);
        assert_eq!(s.capacity_mbps, 2_000.0);
    }

    #[test]
    fn capacity_decays_with_distance() {
        let f = simple_field();
        let near = f
            .best_signal(&ue_at(0.0, 30.0, 0.0, TransportMode::Stationary, 0.0), 0.0)
            .unwrap();
        let far = f
            .best_signal(&ue_at(0.0, 250.0, 0.0, TransportMode::Stationary, 0.0), 0.0)
            .unwrap();
        assert!(near.capacity_mbps > far.capacity_mbps);
        assert!(far.capacity_mbps < 1_500.0, "far = {}", far.capacity_mbps);
    }

    #[test]
    fn behind_panel_is_much_worse_than_front() {
        let f = simple_field();
        let front = f
            .best_signal(&ue_at(0.0, 40.0, 0.0, TransportMode::Stationary, 0.0), 0.0)
            .unwrap();
        let back = f
            .best_signal(&ue_at(0.0, -40.0, 0.0, TransportMode::Stationary, 0.0), 0.0)
            .unwrap();
        assert!(front.rsrp_dbm - back.rsrp_dbm > 25.0);
    }

    #[test]
    fn obstacle_forces_nlos_and_reduces_capacity() {
        let mut f = simple_field();
        f.obstacles.push(crate::obstacles::Obstacle::Aabb {
            min: Point2::new(-5.0, 50.0),
            max: Point2::new(5.0, 60.0),
            loss_db: 40.0,
        });
        let blocked = f
            .best_signal(&ue_at(0.0, 100.0, 0.0, TransportMode::Stationary, 0.0), 0.0)
            .unwrap();
        assert!(!blocked.los);
        let clear = f
            .best_signal(
                &ue_at(30.0, 100.0, 0.0, TransportMode::Stationary, 0.0),
                0.0,
            )
            .unwrap();
        assert!(clear.los);
        assert!(clear.capacity_mbps > blocked.capacity_mbps);
    }

    #[test]
    fn nlos_loss_is_capped() {
        let mut f = simple_field();
        f.obstacles.push(crate::obstacles::Obstacle::Aabb {
            min: Point2::new(-5.0, 50.0),
            max: Point2::new(5.0, 60.0),
            loss_db: 500.0, // absurd raw loss
        });
        let s = f
            .best_signal(&ue_at(0.0, 100.0, 0.0, TransportMode::Stationary, 0.0), 0.0)
            .unwrap();
        // Capped at nlos_cap_db (25), so the link survives via "reflection".
        assert!(s.rsrp_dbm > -120.0);
    }

    #[test]
    fn walking_away_triggers_body_blockage() {
        let f = simple_field();
        // UE north of the panel walking further north (panel behind user).
        let away = f
            .best_signal(&ue_at(0.0, 60.0, 0.0, TransportMode::Walking, 1.4), 0.0)
            .unwrap();
        // Walking toward the panel (southward) from the same spot.
        let toward = f
            .best_signal(&ue_at(0.0, 60.0, 180.0, TransportMode::Walking, 1.4), 0.0)
            .unwrap();
        assert!((toward.rsrp_dbm - away.rsrp_dbm - 16.0).abs() < 1e-9);
    }

    #[test]
    fn theta_m_reported_per_convention() {
        let f = simple_field();
        let s = f
            .best_signal(&ue_at(0.0, 60.0, 180.0, TransportMode::Walking, 1.4), 0.0)
            .unwrap();
        assert!((s.theta_m_deg - 180.0).abs() < 1e-9); // head-on
    }

    #[test]
    fn driving_fast_is_worse_than_driving_slow() {
        let f = simple_field();
        let slow = f
            .best_signal(&ue_at(0.0, 80.0, 0.0, TransportMode::Driving, 1.0), 0.0)
            .unwrap();
        let fast = f
            .best_signal(&ue_at(0.0, 80.0, 0.0, TransportMode::Driving, 12.0), 0.0)
            .unwrap();
        assert!(slow.rsrp_dbm > fast.rsrp_dbm + 5.0);
    }

    #[test]
    fn driving_is_worse_than_walking_toward() {
        let f = simple_field();
        let walk = f
            .best_signal(&ue_at(0.0, 80.0, 180.0, TransportMode::Walking, 1.4), 0.0)
            .unwrap();
        let drive = f
            .best_signal(&ue_at(0.0, 80.0, 180.0, TransportMode::Driving, 8.0), 0.0)
            .unwrap();
        assert!(walk.capacity_mbps > drive.capacity_mbps);
    }

    #[test]
    fn best_signal_picks_strongest_of_two_panels() {
        let p1 = Panel::new(1, PanelPose::new(Point2::new(0.0, 0.0), 0.0));
        let p2 = Panel::new(2, PanelPose::new(Point2::new(0.0, 200.0), 180.0));
        let f = RadioField::new(
            vec![p1, p2],
            ObstacleMap::new(),
            ShadowField::new(1, 10.0, 0.0),
            RadioConfig::default(),
        );
        let near_p1 = f
            .best_signal(&ue_at(0.0, 20.0, 0.0, TransportMode::Stationary, 0.0), 0.0)
            .unwrap();
        assert_eq!(near_p1.panel_id, 1);
        let near_p2 = f
            .best_signal(&ue_at(0.0, 180.0, 0.0, TransportMode::Stationary, 0.0), 0.0)
            .unwrap();
        assert_eq!(near_p2.panel_id, 2);
    }

    #[test]
    fn interference_reduces_sinr_of_contested_links() {
        // Two panels both reaching the UE: with interference on, each
        // link's SINR drops relative to the noise-limited case.
        let p1 = Panel::new(1, PanelPose::new(Point2::new(0.0, 0.0), 0.0));
        let p2 = Panel::new(2, PanelPose::new(Point2::new(0.0, 120.0), 180.0));
        let mk = |f: f64| {
            RadioField::new(
                vec![p1, p2],
                ObstacleMap::new(),
                ShadowField::new(1, 10.0, 0.0),
                RadioConfig {
                    interference_factor: f,
                    ..RadioConfig::default()
                },
            )
        };
        let ue = ue_at(0.0, 60.0, 0.0, TransportMode::Stationary, 0.0);
        let clean = mk(0.0).evaluate(&ue, 0.0);
        let loaded = mk(0.5).evaluate(&ue, 0.0);
        for (c, l) in clean.iter().zip(&loaded) {
            assert!(
                l.sinr_db < c.sinr_db,
                "panel {}: {} !< {}",
                c.panel_id,
                l.sinr_db,
                c.sinr_db
            );
            assert_eq!(l.rsrp_dbm, c.rsrp_dbm); // interference affects SINR only
        }
    }

    #[test]
    fn zero_interference_factor_matches_noise_limited_path() {
        let f = simple_field();
        let ue = ue_at(0.0, 50.0, 0.0, TransportMode::Stationary, 0.0);
        let via_eval = f.evaluate(&ue, 0.0)[0];
        let via_panel = f.evaluate_panel(&f.panels[0], &ue, 0.0);
        assert_eq!(via_eval, via_panel);
    }

    #[test]
    fn fading_shifts_rsrp_directly() {
        let f = simple_field();
        let ue = ue_at(0.0, 50.0, 0.0, TransportMode::Stationary, 0.0);
        let base = f.best_signal(&ue, 0.0).unwrap();
        let faded = f.best_signal(&ue, -7.0).unwrap();
        assert!((base.rsrp_dbm - faded.rsrp_dbm - 7.0).abs() < 1e-9);
    }

    #[test]
    fn noise_floor_matches_formula() {
        let cfg = RadioConfig::default();
        // −174 + 10·log10(400e6) + 9 ≈ −78.98 dBm.
        assert!((cfg.noise_floor_dbm() + 78.98).abs() < 0.05);
    }
}
