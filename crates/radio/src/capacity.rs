//! SINR → link capacity mapping.
//!
//! Truncated Shannon bound, the standard abstraction for NR link adaptation:
//! `C = min(η · B · log₂(1 + SINR), C_max)`, zero below the minimum decodable
//! SINR. With a 400 MHz mmWave carrier, η ≈ 0.55 implementation efficiency
//! and a 2 Gbps per-UE cap this matches the envelope the paper measures
//! (peaks ≈ 2 Gbps, §1).

/// Parameters of the truncated-Shannon capacity map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityConfig {
    /// Carrier bandwidth, Hz.
    pub bandwidth_hz: f64,
    /// Implementation efficiency η relative to Shannon (coding, overhead).
    pub efficiency: f64,
    /// Per-UE throughput cap, Mbps (modem / scheduler limit).
    pub max_mbps: f64,
    /// Minimum decodable SINR, dB; below this the link is in outage.
    pub min_sinr_db: f64,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        CapacityConfig {
            bandwidth_hz: 400e6,
            efficiency: 0.55,
            max_mbps: 2_000.0,
            min_sinr_db: -5.0,
        }
    }
}

/// Link capacity in Mbps for a given SINR.
pub fn capacity_mbps(sinr_db: f64, cfg: &CapacityConfig) -> f64 {
    if sinr_db < cfg.min_sinr_db {
        return 0.0;
    }
    let sinr_lin = 10f64.powf(sinr_db / 10.0);
    let bps = cfg.efficiency * cfg.bandwidth_hz * (1.0 + sinr_lin).log2();
    (bps / 1e6).min(cfg.max_mbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_below_min_sinr() {
        let cfg = CapacityConfig::default();
        assert_eq!(capacity_mbps(-6.0, &cfg), 0.0);
    }

    #[test]
    fn high_sinr_saturates_at_cap() {
        let cfg = CapacityConfig::default();
        assert_eq!(capacity_mbps(40.0, &cfg), 2_000.0);
    }

    #[test]
    fn mid_sinr_matches_shannon() {
        let cfg = CapacityConfig::default();
        // SINR = 10 dB → log2(11) ≈ 3.459; 0.55·400e6·3.459 ≈ 761 Mbps.
        let c = capacity_mbps(10.0, &cfg);
        assert!((c - 761.0).abs() < 2.0, "c = {c}");
    }

    #[test]
    fn capacity_is_monotone_in_sinr() {
        let cfg = CapacityConfig::default();
        let mut last = -1.0;
        for s in -5..=40 {
            let c = capacity_mbps(s as f64, &cfg);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn zero_sinr_db_gives_one_bit_per_hz() {
        let cfg = CapacityConfig {
            efficiency: 1.0,
            ..CapacityConfig::default()
        };
        // SINR = 0 dB → log2(2) = 1 bit/s/Hz → 400 Mbps on 400 MHz.
        assert!((capacity_mbps(0.0, &cfg) - 400.0).abs() < 1e-9);
    }
}
