#![warn(missing_docs)]

//! # lumos5g-radio
//!
//! mmWave 5G radio propagation simulator — the physical substrate that
//! replaces the paper's drive/walk measurements of Verizon's commercial
//! 28 GHz deployment (see DESIGN.md, "Substitutions").
//!
//! The model reproduces every qualitative effect §4 of the paper documents:
//!
//! - **fast distance attenuation** (§4.3): close-in path-loss model with
//!   LoS exponent ≈ 2 and NLoS ≈ 3 at 28 GHz;
//! - **directionality** (§4.5): a 3GPP-style parabolic antenna pattern so
//!   throughput collapses outside the panel's front sector;
//! - **obstructions** (§4.1): an obstacle map with per-obstacle penetration
//!   loss and a capped NLoS penalty (reflective paths provide a floor);
//! - **body blockage** (§4.4): extra loss when the user's body sits between
//!   a hand-held UE and the panel (walking away, θm ≈ 0°);
//! - **vehicle penetration and speed penalty** (§4.6): driving attenuates
//!   the signal through the car body and beam tracking degrades with speed;
//! - **location-conditioned variability** (§4.1): a deterministic, seeded
//!   shadowing *field* (stable across repeated passes of a trajectory, so
//!   geolocation carries signal) plus temporal AR(1) fast fading (so the
//!   same location still fluctuates, CV ≈ 50%).
//!
//! The output of [`RadioField::evaluate`] is the per-panel RSRP/SINR and a
//! truncated-Shannon link capacity; `lumos5g-net` turns capacities into
//! application-level TCP goodput.

pub mod antenna;
pub mod capacity;
pub mod fading;
pub mod field;
pub mod lte;
pub mod obstacles;
pub mod pathloss;

pub use antenna::AntennaPattern;
pub use capacity::{capacity_mbps, CapacityConfig};
pub use fading::{FastFading, ShadowField};
pub use field::{Panel, PanelSignal, RadioConfig, RadioField, TransportMode, UeState};
pub use lte::LteModel;
pub use obstacles::{Obstacle, ObstacleMap};
pub use pathloss::{ci_path_loss_db, fspl_1m_db, PathLossEnv};
