//! 4G LTE fallback model.
//!
//! When mmWave coverage drops out the UE performs a **vertical handoff** to
//! LTE (Table 1). LTE macro cells are omnidirectional, operate far below
//! 6 GHz and are largely insensitive to the factors that whipsaw mmWave:
//! the paper's App A.4 control experiment shows 4G throughput is easily
//! predicted from location alone (KNN/RF MAE ≈ 26–69 Mbps on ~100 Mbps
//! links, 10× smaller relative error than 5G).
//!
//! We model LTE as a smooth location-dependent SINR field (large correlation
//! length, mild sigma) over an aggregated 40 MHz carrier, capped at
//! 280 Mbps (LTE-A carrier aggregation).

use crate::capacity::{capacity_mbps, CapacityConfig};
use crate::fading::ShadowField;
use lumos5g_geo::Point2;

/// Parameters of the LTE fallback link.
#[derive(Debug, Clone)]
pub struct LteModel {
    /// Median SINR across the area, dB.
    pub median_sinr_db: f64,
    /// Smooth location-dependent SINR variation.
    shadow: ShadowField,
    /// Capacity map (40 MHz aggregated, η = 0.75, 280 Mbps cap).
    pub capacity_cfg: CapacityConfig,
}

impl LteModel {
    /// Build with an area seed; LTE shadowing varies over ~60 m (macro cell
    /// scale) with 3 dB sigma.
    pub fn new(seed: u64) -> Self {
        LteModel {
            median_sinr_db: 14.0,
            shadow: ShadowField::new(seed ^ 0x17E_17E, 60.0, 3.0),
            capacity_cfg: CapacityConfig {
                bandwidth_hz: 40e6,
                efficiency: 0.75,
                max_mbps: 280.0,
                min_sinr_db: -6.0,
            },
        }
    }

    /// LTE SINR at `p`, dB (deterministic in position, plus caller fading).
    pub fn sinr_db(&self, p: Point2, fading_db: f64) -> f64 {
        self.median_sinr_db + self.shadow.sample_db(p) + fading_db
    }

    /// LTE throughput at `p`, Mbps.
    pub fn throughput_mbps(&self, p: Point2, fading_db: f64) -> f64 {
        capacity_mbps(self.sinr_db(p, fading_db), &self.capacity_cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lte_throughput_in_4g_range() {
        let m = LteModel::new(3);
        let t = m.throughput_mbps(Point2::new(10.0, 10.0), 0.0);
        assert!(t > 30.0 && t < 280.0, "t = {t}");
    }

    #[test]
    fn lte_is_deterministic_per_location() {
        let m = LteModel::new(3);
        let p = Point2::new(42.0, -17.0);
        assert_eq!(m.throughput_mbps(p, 0.0), m.throughput_mbps(p, 0.0));
    }

    #[test]
    fn lte_varies_gently_across_space() {
        let m = LteModel::new(3);
        let a = m.throughput_mbps(Point2::new(0.0, 0.0), 0.0);
        let b = m.throughput_mbps(Point2::new(5.0, 0.0), 0.0);
        // 5 m of movement moves LTE throughput by only a few Mbps.
        assert!((a - b).abs() < 30.0, "a = {a}, b = {b}");
    }

    #[test]
    fn lte_median_sinr_gives_mid_range_capacity() {
        let cfg = CapacityConfig {
            bandwidth_hz: 40e6,
            efficiency: 0.75,
            max_mbps: 280.0,
            min_sinr_db: -6.0,
        };
        // 14 dB → log2(1+25.1) ≈ 4.71 → 141 Mbps: squarely "4G-like".
        let c = capacity_mbps(14.0, &cfg);
        assert!(c > 100.0 && c < 200.0, "c = {c}");
    }
}
