//! Per-panel radio resource sharing across UEs.
//!
//! App A.1.4 of the paper staggers iPerf sessions on four side-by-side UEs
//! attached to one panel and observes each join roughly halving the incumbent
//! throughput (Fig 21). With symmetric channels, proportional-fair
//! scheduling degenerates to an equal split of airtime, which is what we
//! implement: each attached UE receives `capacity_i / n` where `capacity_i`
//! is the rate its own channel could sustain if scheduled alone.

use std::collections::HashMap;

/// Equal-airtime scheduler for one 5G panel.
#[derive(Debug, Clone, Default)]
pub struct PanelScheduler {
    /// UE id → solo link capacity (Mbps) this tick.
    demands: HashMap<u64, f64>,
}

impl PanelScheduler {
    /// Fresh scheduler (call per tick or reuse with [`Self::clear`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register that UE `ue_id`, whose solo channel supports
    /// `solo_capacity_mbps`, wants to be scheduled this tick.
    pub fn register(&mut self, ue_id: u64, solo_capacity_mbps: f64) {
        self.demands.insert(ue_id, solo_capacity_mbps.max(0.0));
    }

    /// Remove a UE (session ended).
    pub fn unregister(&mut self, ue_id: u64) {
        self.demands.remove(&ue_id);
    }

    /// Number of attached UEs.
    pub fn attached(&self) -> usize {
        self.demands.len()
    }

    /// Allocated rate for each registered UE: equal airtime means each UE
    /// gets its own spectral efficiency divided by the number of sharers.
    pub fn allocate(&self) -> HashMap<u64, f64> {
        let n = self.demands.len().max(1) as f64;
        self.demands
            .iter()
            .map(|(&id, &cap)| (id, cap / n))
            .collect()
    }

    /// Allocation for a single UE, if registered.
    pub fn allocation_for(&self, ue_id: u64) -> Option<f64> {
        let n = self.demands.len().max(1) as f64;
        self.demands.get(&ue_id).map(|&cap| cap / n)
    }

    /// Drop all registrations.
    pub fn clear(&mut self) {
        self.demands.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_ue_gets_full_capacity() {
        let mut s = PanelScheduler::new();
        s.register(1, 1800.0);
        assert_eq!(s.allocation_for(1), Some(1800.0));
    }

    #[test]
    fn second_ue_halves_the_first() {
        let mut s = PanelScheduler::new();
        s.register(1, 1800.0);
        s.register(2, 1800.0);
        assert_eq!(s.allocation_for(1), Some(900.0));
        assert_eq!(s.allocation_for(2), Some(900.0));
    }

    #[test]
    fn four_ues_quarter_the_rate() {
        let mut s = PanelScheduler::new();
        for id in 1..=4 {
            s.register(id, 1600.0);
        }
        for id in 1..=4 {
            assert_eq!(s.allocation_for(id), Some(400.0));
        }
    }

    #[test]
    fn asymmetric_channels_share_airtime_not_rate() {
        let mut s = PanelScheduler::new();
        s.register(1, 2000.0); // great channel
        s.register(2, 400.0); // poor channel
        assert_eq!(s.allocation_for(1), Some(1000.0));
        assert_eq!(s.allocation_for(2), Some(200.0));
    }

    #[test]
    fn unregister_restores_share() {
        let mut s = PanelScheduler::new();
        s.register(1, 1000.0);
        s.register(2, 1000.0);
        s.unregister(2);
        assert_eq!(s.allocation_for(1), Some(1000.0));
        assert_eq!(s.allocation_for(2), None);
    }

    #[test]
    fn negative_capacity_clamped_to_zero() {
        let mut s = PanelScheduler::new();
        s.register(1, -50.0);
        assert_eq!(s.allocation_for(1), Some(0.0));
    }
}
