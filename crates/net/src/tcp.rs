//! Fluid-model bulk TCP over a time-varying bottleneck.
//!
//! A deliberately small, event-stepped model that captures the dynamics that
//! matter to the paper's traces:
//!
//! - **slow start** after connection setup or a path change (vertical
//!   handoff): goodput ramps over seconds rather than jumping;
//! - **AIMD congestion avoidance** against a shared drop-tail queue:
//!   sawtooth utilization slightly below link capacity;
//! - **receive-window caps**: a single connection cannot saturate a 2 Gbps
//!   mmWave link (the reason the paper runs 8 parallel iPerf streams);
//! - **random loss**: keeps long-run utilization realistic (~90%).
//!
//! Time advances in fixed sub-second ticks; [`BulkSession::step_second`]
//! runs one second of ticks against a constant capacity and reports goodput,
//! mirroring iPerf's 1 Hz interval reports.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Congestion-avoidance algorithm for the fluid model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionControl {
    /// Classic AIMD: +1 MSS per RTT, ×β on loss (Reno-style).
    Reno,
    /// CUBIC window growth `W(t) = C·(t − K)³ + W_max` with
    /// `K = ∛(W_max·(1−β)/C)` — Linux's default, what the paper's iPerf
    /// actually ran. Ramps much faster on large-BDP mmWave paths.
    Cubic,
}

/// Tuning knobs of the TCP fluid model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpConfig {
    /// Number of parallel connections (the paper uses 8).
    pub connections: usize,
    /// Base (propagation) round-trip time, seconds.
    pub base_rtt_s: f64,
    /// Maximum in-flight bytes per connection (receive window).
    pub rwnd_bytes: f64,
    /// Bottleneck buffer, bytes.
    pub buffer_bytes: f64,
    /// Random per-tick loss probability per connection.
    pub random_loss_per_tick: f64,
    /// Multiplicative decrease factor on loss (CUBIC-like 0.7).
    pub beta: f64,
    /// Simulation tick, seconds.
    pub tick_s: f64,
    /// Congestion-avoidance algorithm.
    pub cc: CongestionControl,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connections: 8,
            base_rtt_s: 0.025,
            rwnd_bytes: 3.0e6,
            buffer_bytes: 4.0e6,
            random_loss_per_tick: 0.004,
            beta: 0.7,
            tick_s: 0.05,
            cc: CongestionControl::Cubic,
        }
    }
}

impl TcpConfig {
    /// The paper's iPerf setup: 8 parallel connections.
    pub fn iperf_default() -> Self {
        Self::default()
    }

    /// Single-connection variant (for the 1-vs-8 ablation).
    pub fn single_connection() -> Self {
        TcpConfig {
            connections: 1,
            ..Self::default()
        }
    }
}

/// Initial congestion window, bytes (10 segments of 1448 B, RFC 6928).
const INIT_CWND: f64 = 10.0 * 1448.0;
/// Maximum segment size, bytes.
const MSS: f64 = 1448.0;

#[derive(Debug, Clone, Copy)]
struct Conn {
    cwnd: f64,
    ssthresh: f64,
    /// CUBIC: window size at the last loss event, bytes.
    w_max: f64,
    /// CUBIC: seconds since the last loss event.
    t_since_loss: f64,
}

impl Conn {
    fn new() -> Self {
        Conn {
            cwnd: INIT_CWND,
            ssthresh: f64::INFINITY,
            w_max: INIT_CWND,
            t_since_loss: 0.0,
        }
    }
}

/// CUBIC scaling constant (Linux uses 0.4 with windows in segments; we work
/// in bytes so the constant is scaled by MSS³ → folded into the formula).
const CUBIC_C: f64 = 0.4;

/// An iPerf-like bulk download session over a varying bottleneck link.
#[derive(Debug, Clone)]
pub struct BulkSession {
    cfg: TcpConfig,
    conns: Vec<Conn>,
    queue_bytes: f64,
    rng: StdRng,
    total_bytes: f64,
}

impl BulkSession {
    /// Start a session with `cfg` and a deterministic RNG seed.
    pub fn new(cfg: TcpConfig, seed: u64) -> Self {
        assert!(cfg.connections > 0, "need at least one connection");
        assert!(
            cfg.tick_s > 0.0 && cfg.tick_s <= 1.0,
            "tick must be in (0,1]s"
        );
        BulkSession {
            conns: vec![Conn::new(); cfg.connections],
            cfg,
            queue_bytes: 0.0,
            rng: StdRng::seed_from_u64(seed),
            total_bytes: 0.0,
        }
    }

    /// Total bytes delivered so far (iPerf transfer counter).
    pub fn total_bytes(&self) -> f64 {
        self.total_bytes
    }

    /// Reset congestion state after a path change (vertical handoff):
    /// connections re-enter slow start, the bottleneck queue drains.
    pub fn on_path_change(&mut self) {
        for c in &mut self.conns {
            *c = Conn::new();
        }
        self.queue_bytes = 0.0;
    }

    /// Run one second of the session against a constant link capacity
    /// (Mbps) and return the delivered application goodput (Mbps).
    pub fn step_second(&mut self, capacity_mbps: f64) -> f64 {
        let cap_bps = (capacity_mbps.max(0.0)) * 1e6 / 8.0; // bytes per second
        let ticks = (1.0 / self.cfg.tick_s).round() as usize;
        let mut delivered = 0.0;
        for _ in 0..ticks {
            delivered += self.tick(cap_bps);
        }
        self.total_bytes += delivered;
        delivered * 8.0 / 1e6
    }

    /// One tick: offer load, drain the bottleneck, grow/shrink windows.
    fn tick(&mut self, cap_bytes_per_s: f64) -> f64 {
        let dt = self.cfg.tick_s;
        let rtt = self.cfg.base_rtt_s + self.queue_bytes / cap_bytes_per_s.max(1.0);

        // Offered rate per connection: window-limited fluid rate.
        let rates: Vec<f64> = self
            .conns
            .iter()
            .map(|c| c.cwnd.min(self.cfg.rwnd_bytes) / rtt)
            .collect();
        let offered: f64 = rates.iter().sum::<f64>() * dt;
        let drained = cap_bytes_per_s * dt;

        // Queue evolution (drop-tail).
        self.queue_bytes = (self.queue_bytes + offered - drained).max(0.0);
        let overflow = self.queue_bytes > self.cfg.buffer_bytes;
        if overflow {
            self.queue_bytes = self.cfg.buffer_bytes;
        }

        let delivered = offered.min(drained + (self.cfg.buffer_bytes - self.queue_bytes).max(0.0));

        // Window dynamics per connection.
        let total_rate: f64 = rates.iter().sum::<f64>().max(1.0);
        for (i, c) in self.conns.iter_mut().enumerate() {
            c.t_since_loss += dt;
            let share = rates[i] / total_rate;
            let lost = (overflow && self.rng.gen::<f64>() < share.max(0.25))
                || self.rng.gen::<f64>() < self.cfg.random_loss_per_tick;
            if lost {
                c.w_max = c.cwnd;
                c.t_since_loss = 0.0;
                c.cwnd = (c.cwnd * self.cfg.beta).max(2.0 * MSS);
                c.ssthresh = c.cwnd;
            } else if c.cwnd < c.ssthresh {
                // Slow start: cwnd grows by one MSS per ACKed MSS ⇒
                // exponential per RTT.
                c.cwnd = (c.cwnd * (1.0 + dt / rtt).exp2()).min(self.cfg.rwnd_bytes * 1.1);
            } else {
                let target = match self.cfg.cc {
                    CongestionControl::Reno => c.cwnd + MSS * dt / rtt,
                    CongestionControl::Cubic => {
                        // W(t) = C·(t − K)³ + W_max, windows in MSS units.
                        let w_max_seg = c.w_max / MSS;
                        let k = (w_max_seg * (1.0 - self.cfg.beta) / CUBIC_C).cbrt();
                        let t = c.t_since_loss;
                        let w_seg = CUBIC_C * (t - k).powi(3) + w_max_seg;
                        // Never grow slower than Reno (TCP-friendly region).
                        (w_seg * MSS).max(c.cwnd + MSS * dt / rtt)
                    }
                };
                c.cwnd = target.min(self.cfg.rwnd_bytes * 1.1).max(2.0 * MSS);
            }
        }
        delivered.min(drained)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_steady(cfg: TcpConfig, capacity: f64, warmup: usize, measure: usize, seed: u64) -> f64 {
        let mut s = BulkSession::new(cfg, seed);
        for _ in 0..warmup {
            s.step_second(capacity);
        }
        let mut acc = 0.0;
        for _ in 0..measure {
            acc += s.step_second(capacity);
        }
        acc / measure as f64
    }

    #[test]
    fn eight_connections_nearly_saturate_2gbps() {
        let g = run_steady(TcpConfig::iperf_default(), 2_000.0, 10, 20, 1);
        assert!(g > 1_600.0 && g <= 2_000.0, "goodput = {g}");
    }

    #[test]
    fn single_connection_cannot_saturate() {
        // Paper §3.1: one TCP connection cannot fully utilize the 5G
        // downlink; that is why iPerf runs 8 streams.
        let one = run_steady(TcpConfig::single_connection(), 2_000.0, 10, 20, 2);
        let eight = run_steady(TcpConfig::iperf_default(), 2_000.0, 10, 20, 2);
        assert!(one < 0.8 * eight, "one = {one}, eight = {eight}");
    }

    #[test]
    fn goodput_never_exceeds_capacity() {
        let mut s = BulkSession::new(TcpConfig::iperf_default(), 3);
        for sec in 0..30 {
            let cap = 100.0 + 50.0 * (sec as f64);
            let g = s.step_second(cap);
            assert!(g <= cap + 1e-9, "g = {g} > cap = {cap}");
        }
    }

    #[test]
    fn zero_capacity_delivers_nothing() {
        let mut s = BulkSession::new(TcpConfig::iperf_default(), 4);
        s.step_second(1_000.0);
        assert_eq!(s.step_second(0.0), 0.0);
    }

    #[test]
    fn slow_start_ramp_is_visible() {
        let mut s = BulkSession::new(TcpConfig::iperf_default(), 5);
        let first = s.step_second(2_000.0);
        for _ in 0..8 {
            s.step_second(2_000.0);
        }
        let later = s.step_second(2_000.0);
        // With 8 parallel streams the ramp completes within the first
        // second, but its cost must still be visible in the 1 Hz report.
        assert!(first < later * 0.95, "first = {first}, later = {later}");
    }

    #[test]
    fn path_change_resets_ramp() {
        let mut s = BulkSession::new(TcpConfig::iperf_default(), 6);
        for _ in 0..10 {
            s.step_second(2_000.0);
        }
        let before = s.step_second(2_000.0);
        s.on_path_change();
        let after = s.step_second(2_000.0);
        assert!(after < before * 0.95, "before = {before}, after = {after}");
    }

    #[test]
    fn tracks_low_capacity_links_closely() {
        // On a 4G-like 120 Mbps link, 8 connections should utilize ≥80%.
        let g = run_steady(TcpConfig::iperf_default(), 120.0, 5, 20, 7);
        assert!(g > 96.0 && g <= 120.0, "g = {g}");
    }

    #[test]
    fn total_bytes_accumulates() {
        let mut s = BulkSession::new(TcpConfig::iperf_default(), 8);
        s.step_second(500.0);
        let t1 = s.total_bytes();
        s.step_second(500.0);
        assert!(s.total_bytes() > t1);
    }

    #[test]
    fn cubic_recovers_faster_than_reno_after_loss() {
        // After a multiplicative decrease on a high-BDP link, CUBIC's
        // concave-then-convex probe regrows the window faster than Reno's
        // +1 MSS/RTT.
        let base = TcpConfig {
            connections: 1,
            rwnd_bytes: 8.0e6,
            random_loss_per_tick: 0.0,
            ..TcpConfig::iperf_default()
        };
        let run = |cc: CongestionControl| -> f64 {
            let cfg = TcpConfig { cc, ..base };
            let mut s = BulkSession::new(cfg, 11);
            // Warm up on a big pipe, then crush the link (forces losses),
            // then reopen and watch the recovery speed.
            for _ in 0..5 {
                s.step_second(2_000.0);
            }
            for _ in 0..3 {
                s.step_second(50.0);
            }
            let mut recovered = 0.0;
            for _ in 0..4 {
                recovered = s.step_second(2_000.0);
            }
            recovered
        };
        let cubic = run(CongestionControl::Cubic);
        let reno = run(CongestionControl::Reno);
        assert!(
            cubic > reno,
            "CUBIC should recover faster: cubic {cubic:.0} vs reno {reno:.0}"
        );
    }

    #[test]
    fn reno_still_functions_end_to_end() {
        let cfg = TcpConfig {
            cc: CongestionControl::Reno,
            ..TcpConfig::iperf_default()
        };
        let g = {
            let mut s = BulkSession::new(cfg, 13);
            for _ in 0..10 {
                s.step_second(800.0);
            }
            (0..10).map(|_| s.step_second(800.0)).sum::<f64>() / 10.0
        };
        assert!(g > 500.0 && g <= 800.0, "reno goodput = {g}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = BulkSession::new(TcpConfig::iperf_default(), 9);
        let mut b = BulkSession::new(TcpConfig::iperf_default(), 9);
        for _ in 0..5 {
            assert_eq!(a.step_second(800.0), b.step_second(800.0));
        }
    }
}
