#![warn(missing_docs)]

//! # lumos5g-net
//!
//! Network substrate: turns per-second radio link capacities into the
//! *application-perceived* throughput the paper actually measures.
//!
//! The paper's ground truth is iPerf 3.7 bulk transfer over **8 parallel TCP
//! connections** (§3.1 — one connection could not saturate mmWave's downlink).
//! Application goodput therefore differs from raw link capacity: slow-start
//! ramp-ups after handoffs, congestion-window dynamics, and receive-window
//! limits all shape the traces. This crate models that pipeline:
//!
//! - [`tcp`]: a fluid-model TCP with slow start, AIMD congestion avoidance,
//!   receive-window caps and a shared bottleneck queue; [`tcp::BulkSession`]
//!   is the iPerf-like harness reporting per-second goodput.
//! - [`handoff`]: the RSRP-hysteresis connection manager producing the
//!   horizontal (panel→panel) and vertical (5G↔LTE) handoffs of Table 1,
//!   with outage gaps during each transition.
//! - [`scheduler`]: an equal-share (proportional-fair with symmetric
//!   channels) panel scheduler used for the multi-UE congestion experiment
//!   (App A.1.4, Fig 21).

pub mod handoff;
pub mod scheduler;
pub mod tcp;

pub use handoff::{ConnectionManager, HandoffConfig, LinkDecision, RadioType};
pub use scheduler::PanelScheduler;
pub use tcp::{BulkSession, CongestionControl, TcpConfig};
