//! Connection manager: cell attach, horizontal and vertical handoffs.
//!
//! Mirrors NR NSA measurement-report behaviour at 1 Hz granularity:
//!
//! - **Horizontal handoff** (panel → panel, Table 1): triggered when a
//!   neighbour panel's RSRP exceeds the serving panel's by a hysteresis
//!   margin for a time-to-trigger; costs a sub-second outage gap.
//! - **Vertical handoff down** (5G → LTE): when the serving 5G SINR stays
//!   below the outage threshold; costs a longer gap and a TCP path change.
//! - **Vertical handoff up** (LTE → 5G): when any panel's SINR recovers
//!   above the entry threshold for the time-to-trigger.
//!
//! The frequent handoff patches the paper annotates in Fig 9 emerge from
//! this machine interacting with the obstacle geometry.

use crate::tcp::BulkSession;
use lumos5g_radio::PanelSignal;

/// Which radio the UE is currently using (the `radio type` log field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RadioType {
    /// Attached to a 5G mmWave panel.
    FiveG,
    /// Fallen back to 4G LTE.
    Lte,
}

/// Handoff tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HandoffConfig {
    /// Neighbour must beat serving RSRP by this margin, dB (A3 offset).
    pub hysteresis_db: f64,
    /// Consecutive seconds the condition must hold before acting.
    pub time_to_trigger_s: u32,
    /// Serving SINR below this → candidate for LTE fallback, dB.
    pub q_out_sinr_db: f64,
    /// Best 5G SINR above this → candidate for return to 5G, dB.
    pub q_in_sinr_db: f64,
    /// Fraction of one second lost to a horizontal handoff.
    pub horizontal_gap: f64,
    /// Fraction of one second lost to a vertical handoff.
    pub vertical_gap: f64,
}

impl Default for HandoffConfig {
    fn default() -> Self {
        HandoffConfig {
            hysteresis_db: 3.0,
            time_to_trigger_s: 2,
            q_out_sinr_db: -5.0,
            q_in_sinr_db: 2.0,
            horizontal_gap: 0.4,
            vertical_gap: 0.8,
        }
    }
}

/// What the connection manager decided for the current second.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDecision {
    /// Radio in use after this second's decisions.
    pub radio: RadioType,
    /// Serving panel id when on 5G.
    pub serving_panel: Option<u32>,
    /// Link capacity available to TCP this second, Mbps (already reduced by
    /// any handoff gap).
    pub capacity_mbps: f64,
    /// A panel→panel handoff happened this second.
    pub horizontal_handoff: bool,
    /// A 5G↔LTE handoff happened this second.
    pub vertical_handoff: bool,
    /// Serving-link RSRP (5G) this second, dBm, when on 5G.
    pub rsrp_dbm: Option<f64>,
    /// Serving-link SINR, dB, when on 5G.
    pub sinr_db: Option<f64>,
}

/// RSRP/SINR driven attach + handoff state machine.
#[derive(Debug, Clone)]
pub struct ConnectionManager {
    cfg: HandoffConfig,
    radio: RadioType,
    serving: Option<u32>,
    better_neighbor_count: u32,
    low_sinr_count: u32,
    good_5g_count: u32,
}

impl ConnectionManager {
    /// Start attached to whatever is best at the first step.
    pub fn new(cfg: HandoffConfig) -> Self {
        ConnectionManager {
            cfg,
            radio: RadioType::Lte,
            serving: None,
            better_neighbor_count: 0,
            low_sinr_count: 0,
            good_5g_count: 0,
        }
    }

    /// Current radio type.
    pub fn radio(&self) -> RadioType {
        self.radio
    }

    /// One 1 Hz step. `signals` are this second's per-panel measurements;
    /// `lte_capacity_mbps` is the LTE fallback throughput at the UE's
    /// location. `session` is notified of path changes.
    pub fn step(
        &mut self,
        signals: &[PanelSignal],
        lte_capacity_mbps: f64,
        session: &mut BulkSession,
    ) -> LinkDecision {
        let best = signals
            .iter()
            .max_by(|a, b| a.rsrp_dbm.partial_cmp(&b.rsrp_dbm).expect("finite RSRP"));

        let mut horizontal = false;
        let mut vertical = false;

        match (self.radio, self.serving) {
            (RadioType::FiveG, Some(serving_id)) => {
                let serving = signals.iter().find(|s| s.panel_id == serving_id);
                match serving {
                    None => {
                        // Serving panel vanished (left the area): drop to LTE.
                        self.fall_back_to_lte(session);
                        vertical = true;
                    }
                    Some(sv) => {
                        // Radio-link-failure check.
                        if sv.sinr_db < self.cfg.q_out_sinr_db {
                            self.low_sinr_count += 1;
                        } else {
                            self.low_sinr_count = 0;
                        }
                        // A3 neighbour check.
                        let better = best
                            .filter(|b| b.panel_id != serving_id)
                            .filter(|b| b.rsrp_dbm > sv.rsrp_dbm + self.cfg.hysteresis_db);
                        if better.is_some() {
                            self.better_neighbor_count += 1;
                        } else {
                            self.better_neighbor_count = 0;
                        }

                        if self.low_sinr_count >= self.cfg.time_to_trigger_s {
                            self.fall_back_to_lte(session);
                            vertical = true;
                        } else if self.better_neighbor_count >= self.cfg.time_to_trigger_s {
                            self.serving = better.map(|b| b.panel_id);
                            self.better_neighbor_count = 0;
                            horizontal = true;
                        }
                    }
                }
            }
            _ => {
                // On LTE (or unattached): consider going (back) to 5G.
                if let Some(b) = best {
                    if b.sinr_db > self.cfg.q_in_sinr_db {
                        self.good_5g_count += 1;
                    } else {
                        self.good_5g_count = 0;
                    }
                    if self.good_5g_count >= self.cfg.time_to_trigger_s
                        || self.serving.is_none()
                            && self.radio == RadioType::Lte
                            && b.sinr_db > self.cfg.q_in_sinr_db + 6.0
                    {
                        self.radio = RadioType::FiveG;
                        self.serving = Some(b.panel_id);
                        self.good_5g_count = 0;
                        self.low_sinr_count = 0;
                        session.on_path_change();
                        vertical = true;
                    }
                }
            }
        }

        // Capacity for this second under the final state.
        let (capacity, rsrp, sinr) = match (self.radio, self.serving) {
            (RadioType::FiveG, Some(id)) => {
                let s = signals
                    .iter()
                    .find(|s| s.panel_id == id)
                    .expect("serving panel present after decision");
                (s.capacity_mbps, Some(s.rsrp_dbm), Some(s.sinr_db))
            }
            _ => (lte_capacity_mbps, None, None),
        };
        let gap = if vertical {
            self.cfg.vertical_gap
        } else if horizontal {
            self.cfg.horizontal_gap
        } else {
            0.0
        };

        LinkDecision {
            radio: self.radio,
            serving_panel: self.serving.filter(|_| self.radio == RadioType::FiveG),
            capacity_mbps: capacity * (1.0 - gap),
            horizontal_handoff: horizontal,
            vertical_handoff: vertical,
            rsrp_dbm: rsrp,
            sinr_db: sinr,
        }
    }

    fn fall_back_to_lte(&mut self, session: &mut BulkSession) {
        self.radio = RadioType::Lte;
        self.serving = None;
        self.low_sinr_count = 0;
        self.better_neighbor_count = 0;
        self.good_5g_count = 0;
        session.on_path_change();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpConfig;

    fn sig(id: u32, rsrp: f64, sinr: f64, cap: f64) -> PanelSignal {
        PanelSignal {
            panel_id: id,
            rsrp_dbm: rsrp,
            sinr_db: sinr,
            capacity_mbps: cap,
            los: true,
            distance_m: 50.0,
            theta_p_deg: 0.0,
            theta_m_deg: 180.0,
        }
    }

    fn new_mgr() -> (ConnectionManager, BulkSession) {
        (
            ConnectionManager::new(HandoffConfig::default()),
            BulkSession::new(TcpConfig::iperf_default(), 42),
        )
    }

    #[test]
    fn attaches_to_strong_5g_immediately() {
        let (mut m, mut s) = new_mgr();
        let d = m.step(&[sig(1, -60.0, 30.0, 2000.0)], 120.0, &mut s);
        assert_eq!(d.radio, RadioType::FiveG);
        assert_eq!(d.serving_panel, Some(1));
        assert!(d.vertical_handoff);
    }

    #[test]
    fn stays_on_lte_when_5g_weak() {
        let (mut m, mut s) = new_mgr();
        let d = m.step(&[sig(1, -110.0, -8.0, 0.0)], 120.0, &mut s);
        assert_eq!(d.radio, RadioType::Lte);
        assert_eq!(d.capacity_mbps, 120.0);
    }

    #[test]
    fn horizontal_handoff_requires_ttt() {
        let (mut m, mut s) = new_mgr();
        m.step(&[sig(1, -60.0, 30.0, 2000.0)], 120.0, &mut s);
        // Panel 2 becomes better by more than hysteresis.
        let sigs = [sig(1, -80.0, 10.0, 900.0), sig(2, -65.0, 25.0, 1800.0)];
        let d1 = m.step(&sigs, 120.0, &mut s);
        assert!(!d1.horizontal_handoff, "should wait for TTT");
        let d2 = m.step(&sigs, 120.0, &mut s);
        assert!(d2.horizontal_handoff);
        assert_eq!(d2.serving_panel, Some(2));
        // Gap reduces capacity below the raw link rate.
        assert!(d2.capacity_mbps < 1800.0);
    }

    #[test]
    fn hysteresis_prevents_ping_pong() {
        let (mut m, mut s) = new_mgr();
        m.step(&[sig(1, -60.0, 30.0, 2000.0)], 120.0, &mut s);
        // Panel 2 only 1 dB better: inside hysteresis, no handoff ever.
        let sigs = [sig(1, -60.0, 30.0, 2000.0), sig(2, -59.0, 31.0, 2000.0)];
        for _ in 0..5 {
            let d = m.step(&sigs, 120.0, &mut s);
            assert!(!d.horizontal_handoff);
            assert_eq!(d.serving_panel, Some(1));
        }
    }

    #[test]
    fn sustained_low_sinr_falls_back_to_lte() {
        let (mut m, mut s) = new_mgr();
        m.step(&[sig(1, -60.0, 30.0, 2000.0)], 120.0, &mut s);
        let bad = [sig(1, -105.0, -9.0, 0.0)];
        let d1 = m.step(&bad, 120.0, &mut s);
        assert_eq!(d1.radio, RadioType::FiveG, "TTT not yet expired");
        let d2 = m.step(&bad, 120.0, &mut s);
        assert_eq!(d2.radio, RadioType::Lte);
        assert!(d2.vertical_handoff);
    }

    #[test]
    fn returns_to_5g_after_recovery() {
        let (mut m, mut s) = new_mgr();
        m.step(&[sig(1, -60.0, 30.0, 2000.0)], 120.0, &mut s);
        let bad = [sig(1, -105.0, -9.0, 0.0)];
        m.step(&bad, 120.0, &mut s);
        m.step(&bad, 120.0, &mut s); // now on LTE
        assert_eq!(m.radio(), RadioType::Lte);
        let good = [sig(1, -70.0, 20.0, 1500.0)];
        // strong recovery attaches fast
        let d = m.step(&good, 120.0, &mut s);
        assert_eq!(d.radio, RadioType::FiveG);
        assert!(d.vertical_handoff);
    }

    #[test]
    fn transient_dip_does_not_trigger_fallback() {
        let (mut m, mut s) = new_mgr();
        m.step(&[sig(1, -60.0, 30.0, 2000.0)], 120.0, &mut s);
        m.step(&[sig(1, -105.0, -9.0, 0.0)], 120.0, &mut s); // 1s dip
        let d = m.step(&[sig(1, -60.0, 30.0, 2000.0)], 120.0, &mut s);
        assert_eq!(d.radio, RadioType::FiveG);
        assert!(!d.vertical_handoff);
    }

    #[test]
    fn empty_signals_drop_to_lte() {
        let (mut m, mut s) = new_mgr();
        m.step(&[sig(1, -60.0, 30.0, 2000.0)], 120.0, &mut s);
        let d = m.step(&[], 120.0, &mut s);
        assert_eq!(d.radio, RadioType::Lte);
        assert!(d.vertical_handoff);
    }
}
