//! Property-based tests of the network substrate.

use lumos5g_net::{
    BulkSession, ConnectionManager, HandoffConfig, PanelScheduler, RadioType, TcpConfig,
};
use lumos5g_radio::PanelSignal;
use proptest::prelude::*;

fn sig(id: u32, rsrp: f64, sinr: f64, cap: f64) -> PanelSignal {
    PanelSignal {
        panel_id: id,
        rsrp_dbm: rsrp,
        sinr_db: sinr,
        capacity_mbps: cap,
        los: true,
        distance_m: 50.0,
        theta_p_deg: 0.0,
        theta_m_deg: 180.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn goodput_conservation(
        caps in prop::collection::vec(0.0f64..2500.0, 3..30),
        seed in 0u64..500,
        conns in 1usize..12,
    ) {
        let cfg = TcpConfig { connections: conns, ..TcpConfig::iperf_default() };
        let mut s = BulkSession::new(cfg, seed);
        let mut total_bytes = 0.0;
        for &c in &caps {
            let g = s.step_second(c);
            prop_assert!(g >= 0.0 && g <= c + 1e-9);
            total_bytes += g * 1e6 / 8.0;
        }
        prop_assert!((s.total_bytes() - total_bytes).abs() < 1.0);
    }

    #[test]
    fn scheduler_allocations_sum_to_airtime_share(
        caps in prop::collection::vec(1.0f64..2000.0, 1..8),
    ) {
        let mut sched = PanelScheduler::new();
        for (i, &c) in caps.iter().enumerate() {
            sched.register(i as u64, c);
        }
        let alloc = sched.allocate();
        let n = caps.len() as f64;
        for (i, &c) in caps.iter().enumerate() {
            prop_assert!((alloc[&(i as u64)] - c / n).abs() < 1e-9);
        }
    }

    #[test]
    fn handoff_capacity_never_negative(
        rsrps in prop::collection::vec(-130.0f64..-50.0, 5..25),
        lte in 0.0f64..280.0,
    ) {
        let mut mgr = ConnectionManager::new(HandoffConfig::default());
        let mut session = BulkSession::new(TcpConfig::iperf_default(), 1);
        for (t, &r) in rsrps.iter().enumerate() {
            let sinr = r + 79.0;
            let cap = lumos5g_radio::capacity_mbps(sinr, &Default::default());
            let d = mgr.step(&[sig(1, r, sinr, cap)], lte, &mut session);
            prop_assert!(d.capacity_mbps >= 0.0, "t={t}");
            // Serving panel set iff on 5G.
            prop_assert_eq!(d.serving_panel.is_some(), d.radio == RadioType::FiveG);
        }
    }

    #[test]
    fn strong_stable_signal_eventually_attaches_5g(rsrp in -75.0f64..-55.0) {
        let mut mgr = ConnectionManager::new(HandoffConfig::default());
        let mut session = BulkSession::new(TcpConfig::iperf_default(), 2);
        let mut attached = false;
        for _ in 0..5 {
            let sinr = rsrp + 79.0;
            let d = mgr.step(&[sig(1, rsrp, sinr, 1500.0)], 120.0, &mut session);
            attached = d.radio == RadioType::FiveG;
        }
        prop_assert!(attached);
    }
}
