#![warn(missing_docs)]

//! # lumos5g-serve
//!
//! A sharded, real-time serving engine for trained Lumos5G throughput
//! predictors — the deployment half of the paper's vision (§7): the models
//! trained offline on campaign data must answer *"what will this UE's
//! throughput be next second?"* online, per 1 Hz sample, for thousands of
//! concurrent UEs.
//!
//! Architecture (one [`engine::Engine`]):
//!
//! ```text
//!                      ┌────────── shard 0 ── sessions {ue → window} ─┐
//!  submit(ue, record) ─┤ hash(ue) ─ shard 1 ── extract_latest ────────┼─→ responses
//!                      └────────── shard N ── registry.predict_one ───┘
//! ```
//!
//! * **UE affinity** — records are routed to a shard by UE-id hash, so one
//!   UE's stream is always processed by one worker in arrival order; the
//!   per-session sliding window ([`session::Session`]) that feeds the `C`
//!   feature group is therefore race-free without locks.
//! * **Bit-exact with offline eval** — shards build features through
//!   [`lumos5g::FeatureSpec::extract_latest`] and predict through
//!   [`lumos5g::TrainedRegressor::predict_one`], the very code paths the
//!   offline `eval` reduces to, so online predictions are bit-identical to
//!   the training-time numbers (asserted by the workspace `serving` test).
//! * **Hot swap, gated** — [`registry::ModelRegistry`] atomically replaces
//!   the served model mid-stream; in-flight records finish on the version
//!   they started with and responses carry the version that produced them.
//!   [`engine::Engine::guarded_swap`] routes candidates through a
//!   [`registry::Gatekeeper`] that replays a golden slice of held-out
//!   records first — a panicking, non-finite or MAE-regressing candidate is
//!   refused with a typed [`registry::SwapRejected`] reason, and
//!   [`engine::Engine::rollback_model`] restores the previous durable
//!   generation from disk.
//! * **Durable generations** — [`registry::ModelRegistry::store`] writes
//!   `model.gen-{N}.l5gm` checkpoints atomically (temp file + fsync +
//!   rename, CRC-sealed container) with bounded retention;
//!   [`registry::ModelRegistry::load_dir_report`] cold-starts from the
//!   newest generation that passes its integrity check and reports every
//!   torn or corrupt file it skipped ([`registry::LoadReport`]).
//! * **Backpressure** — ingest queues are bounded; [`queue::OverloadPolicy`]
//!   picks between blocking the producer, shedding load (counted, never
//!   silent), and a dequeue-side staleness deadline.
//! * **Sequence serving** — when the engine starts with a Seq2Seq model,
//!   sessions additionally retain the per-second feature-vector history its
//!   encoder consumes, and shards opportunistically answer up to
//!   [`engine::EngineConfig::decode_batch`] queued records (one per UE) with
//!   a single batched decoder call. Responses carry the full k-step horizon
//!   ([`shard::Prediction::horizon_mbps`]) and are bit-identical to the
//!   offline `predict_sequence` for any shard count and batch size.
//! * **Fault tolerance** — admission control rejects malformed telemetry at
//!   the front door with a typed [`engine::RejectReason`]; per-record panic
//!   isolation quarantines poison records; a harmonic fallback chain
//!   answers (tagged `degraded`) when the model panics, returns non-finite,
//!   or blows its time budget; and a supervisor respawns dead shard workers
//!   instead of failing shutdown. [`fault::FaultPlan`] injects all of these
//!   failures deterministically for chaos testing
//!   (`serve_bench --chaos <seed>`, `tests/chaos.rs`).
//! * **Observability** — per-shard counters, log-bucketed latency
//!   histograms (p50/p95/p99), queue-depth gauges and online
//!   prediction-error tracking ([`metrics`]).
//!
//! [`replay::ReplaySource`] turns a simulated campaign [`lumos5g_sim::Dataset`]
//! into a deterministic multi-UE arrival stream for closed-loop load tests
//! (`cargo run -p lumos5g-bench --bin serve_bench`).

pub mod engine;
pub mod fault;
pub mod metrics;
pub mod queue;
pub mod registry;
pub mod replay;
pub mod session;
pub mod shard;

pub use engine::{admit, Engine, EngineConfig, EngineReport, RejectReason, SubmitOutcome};
pub use fault::{Corruption, FaultPlan, PredictFault, RecordFault, RecordKey};
pub use metrics::{LatencyHistogram, MetricsSnapshot, ShardMetrics};
pub use queue::OverloadPolicy;
pub use registry::{
    Gatekeeper, LoadReport, ModelRegistry, ModelVersion, SkippedCheckpoint, SwapRejected,
    RETAIN_GENERATIONS,
};
pub use replay::{ReplaySource, ReplayStats};
pub use session::Session;
pub use shard::{Ingest, Prediction, SequenceServing, ShardContext};
