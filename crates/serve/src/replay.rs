//! Closed-loop load generation: replay a simulated campaign as a
//! deterministic multi-UE arrival stream.
//!
//! A campaign [`Dataset`] is a set of per-pass 1 Hz traces. The replay
//! source assigns passes round-robin to `ues` synthetic UEs (each UE plays
//! its passes back-to-back, keeping the original `pass_id`/`t` so session
//! windows reset at pass boundaries exactly as live streams would) and then
//! interleaves the streams tick-by-tick — at tick `k`, every still-active
//! UE contributes its `k`-th pending record. That models `ues` concurrent
//! handsets sampling at 1 Hz, and is fully deterministic: no clocks, no
//! randomness.

use crate::engine::{Engine, SubmitOutcome};
use crate::fault::FaultPlan;
use lumos5g_sim::{Dataset, Record};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// A pre-computed arrival stream of `(ue, record)` events.
#[derive(Debug, Clone)]
pub struct ReplaySource {
    events: Vec<(u64, Record)>,
    /// `events` index where each 1 Hz tick ends (exclusive).
    tick_ends: Vec<usize>,
    ues: usize,
}

/// Outcome of one replay run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayStats {
    /// Events offered to the engine.
    pub submitted: u64,
    /// Events the engine accepted (exactly one response each, unless a
    /// `Deadline` policy sheds them as stale at dequeue).
    pub accepted: u64,
    /// Events the engine shed.
    pub shed: u64,
    /// Events refused by admission control.
    pub rejected: u64,
    /// Wall-clock time spent submitting.
    pub wall: Duration,
}

impl ReplaySource {
    /// Build the arrival stream from a campaign, fanned out to `ues`
    /// synthetic UEs.
    pub fn from_dataset(dataset: &Dataset, ues: usize) -> Self {
        let ues = ues.max(1);
        // Group into time-ordered per-pass traces. BTreeMap keeps the
        // assignment deterministic regardless of record order.
        let mut traces: BTreeMap<(u32, u32), Vec<Record>> = BTreeMap::new();
        for r in &dataset.records {
            traces
                .entry((r.trajectory, r.pass_id))
                .or_default()
                .push(r.clone());
        }
        let mut streams: Vec<Vec<Record>> = vec![Vec::new(); ues];
        for (i, (_, mut trace)) in traces.into_iter().enumerate() {
            trace.sort_by_key(|r| r.t);
            streams[i % ues].extend(trace);
        }
        // Tick-interleave the UE streams.
        let total: usize = streams.iter().map(Vec::len).sum();
        let mut events = Vec::with_capacity(total);
        let mut tick_ends = Vec::new();
        let mut cursors = vec![0usize; ues];
        loop {
            let mut emitted = false;
            for (ue, stream) in streams.iter().enumerate() {
                if let Some(r) = stream.get(cursors[ue]) {
                    events.push((ue as u64, r.clone()));
                    cursors[ue] += 1;
                    emitted = true;
                }
            }
            if !emitted {
                break;
            }
            tick_ends.push(events.len());
        }
        ReplaySource {
            events,
            tick_ends,
            ues,
        }
    }

    /// The arrival stream, in order.
    pub fn events(&self) -> &[(u64, Record)] {
        &self.events
    }

    /// A copy of this stream with `plan`'s source corruption applied, by
    /// event index — the chaos-bench ingress: deterministically malformed
    /// telemetry that admission control must reject.
    pub fn corrupted(&self, plan: &FaultPlan) -> ReplaySource {
        let mut out = self.clone();
        for (i, (_, record)) in out.events.iter_mut().enumerate() {
            plan.corrupt_record(i as u64, record);
        }
        out
    }

    /// Synthetic UEs in the stream.
    pub fn ues(&self) -> usize {
        self.ues
    }

    /// Total events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the campaign had no records.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Push the whole stream into `engine`.
    ///
    /// `time_compression` scales the 1 Hz tick: `x1000` means each
    /// simulated second of all UEs is submitted every millisecond; `0`
    /// (or anything non-finite/≤ 0) replays as fast as the engine accepts —
    /// the throughput-benchmark mode.
    pub fn run(&self, engine: &Engine, time_compression: f64) -> ReplayStats {
        let paced = time_compression.is_finite() && time_compression > 0.0;
        let tick_len = if paced {
            Duration::from_secs_f64(1.0 / time_compression)
        } else {
            Duration::ZERO
        };
        let start = Instant::now();
        let mut submitted = 0u64;
        let mut accepted = 0u64;
        let mut shed = 0u64;
        let mut rejected = 0u64;
        let mut next_deadline = start;
        let mut tick_start = 0usize;
        for (tick, &tick_end) in self.tick_ends.iter().enumerate() {
            if paced && tick > 0 {
                next_deadline += tick_len;
                let now = Instant::now();
                if next_deadline > now {
                    std::thread::sleep(next_deadline - now);
                }
            }
            for (ue, record) in &self.events[tick_start..tick_end] {
                submitted += 1;
                match engine.offer(*ue, record.clone()) {
                    SubmitOutcome::Accepted => accepted += 1,
                    SubmitOutcome::Shed => shed += 1,
                    SubmitOutcome::Rejected(_) => rejected += 1,
                }
            }
            tick_start = tick_end;
        }
        ReplayStats {
            submitted,
            accepted,
            shed,
            rejected,
            wall: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos5g_sim::{airport, run_campaign, CampaignConfig, MobilityMode};

    fn small_campaign() -> Dataset {
        run_campaign(
            &airport(2),
            &CampaignConfig {
                passes_per_trajectory: 3,
                mode: MobilityMode::walking(),
                base_seed: 4,
                max_duration_s: 60,
                bad_gps_fraction: 0.0,
                ..Default::default()
            },
        )
    }

    #[test]
    fn replay_preserves_every_record() {
        let ds = small_campaign();
        let src = ReplaySource::from_dataset(&ds, 4);
        assert_eq!(src.len(), ds.len());
        assert_eq!(src.ues(), 4);
    }

    #[test]
    fn per_ue_streams_are_time_ordered_within_passes() {
        let ds = small_campaign();
        let src = ReplaySource::from_dataset(&ds, 3);
        let mut last: BTreeMap<u64, (u32, u32)> = BTreeMap::new();
        for (ue, r) in src.events() {
            if let Some(&(pass, t)) = last.get(ue) {
                if r.pass_id == pass {
                    assert_eq!(r.t, t + 1, "ue {ue} jumped within pass {pass}");
                }
            }
            last.insert(*ue, (r.pass_id, r.t));
        }
    }

    #[test]
    fn replay_is_deterministic() {
        let ds = small_campaign();
        let a = ReplaySource::from_dataset(&ds, 5);
        let b = ReplaySource::from_dataset(&ds, 5);
        assert_eq!(a.events().len(), b.events().len());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.0, y.0);
            assert_eq!(x.1, y.1);
        }
    }
}
