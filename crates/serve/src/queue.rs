//! Bounded ingest queues with explicit overload behavior.

use crossbeam::channel::{Sender, TrySendError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What to do when a shard's ingest queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block the producer until the shard drains (lossless backpressure —
    /// the right choice for replay/batch workloads).
    Block,
    /// Drop the record and count it (bounded-latency operation — the right
    /// choice for live telemetry where stale samples are worthless).
    Shed,
    /// Block on enqueue like [`Self::Block`], but shed records older than
    /// `max_age` *at dequeue* (counted as `shed_stale` per shard): during a
    /// backlog — a worker restart, a slow model — the shard burns down the
    /// queue by skipping samples whose prediction window has already
    /// passed, instead of serving answers about seconds long gone.
    Deadline {
        /// Staleness budget: a record dequeued more than this long after it
        /// was submitted is dropped without a response.
        max_age: Duration,
    },
}

impl OverloadPolicy {
    /// The dequeue-side staleness budget, when this policy has one.
    pub fn stale_after(&self) -> Option<Duration> {
        match self {
            OverloadPolicy::Deadline { max_age } => Some(*max_age),
            _ => None,
        }
    }
}

/// A bounded sender to one shard, applying an [`OverloadPolicy`].
#[derive(Debug, Clone)]
pub struct IngestQueue<T> {
    tx: Sender<T>,
    policy: OverloadPolicy,
    shed: Arc<AtomicU64>,
}

impl<T> IngestQueue<T> {
    /// Wrap a bounded channel sender.
    pub fn new(tx: Sender<T>, policy: OverloadPolicy) -> Self {
        IngestQueue {
            tx,
            policy,
            shed: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Offer one item. Returns `false` only when the item was lost — shed
    /// under [`OverloadPolicy::Shed`], or dropped because the shard is
    /// gone. Every lost item is counted: a disconnected shard under `Block`
    /// used to return `false` without incrementing the counter, silently
    /// under-counting lost records in `EngineReport::shed`.
    pub fn push(&self, item: T) -> bool {
        match self.policy {
            OverloadPolicy::Block | OverloadPolicy::Deadline { .. } => {
                if self.tx.send(item).is_ok() {
                    true
                } else {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    false
                }
            }
            OverloadPolicy::Shed => match self.tx.try_send(item) {
                Ok(()) => true,
                Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    false
                }
            },
        }
    }

    /// Items shed so far.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Current queue depth (gauge).
    pub fn depth(&self) -> usize {
        self.tx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel;

    #[test]
    fn shed_policy_drops_and_counts_when_full() {
        let (tx, rx) = channel::bounded(2);
        let q = IngestQueue::new(tx, OverloadPolicy::Shed);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(!q.push(3));
        assert!(!q.push(4));
        assert_eq!(q.shed_count(), 2);
        assert_eq!(q.depth(), 2);
        assert_eq!(rx.try_recv(), Ok(1));
    }

    #[test]
    fn disconnected_shard_drops_are_counted_under_every_policy() {
        for policy in [
            OverloadPolicy::Block,
            OverloadPolicy::Shed,
            OverloadPolicy::Deadline {
                max_age: Duration::from_millis(50),
            },
        ] {
            let (tx, rx) = channel::bounded::<u64>(4);
            let q = IngestQueue::new(tx, policy);
            drop(rx); // the shard died
            assert!(!q.push(1), "{policy:?}: push to a dead shard must fail");
            assert!(!q.push(2));
            assert_eq!(
                q.shed_count(),
                2,
                "{policy:?}: disconnected drops must be counted, not silent"
            );
        }
    }

    #[test]
    fn deadline_policy_blocks_losslessly_on_enqueue() {
        let (tx, rx) = channel::bounded(1);
        let q = IngestQueue::new(
            tx,
            OverloadPolicy::Deadline {
                max_age: Duration::from_secs(3600),
            },
        );
        let consumer = std::thread::spawn(move || rx.iter().sum::<u64>());
        for i in 0..100u64 {
            assert!(q.push(i));
        }
        assert_eq!(q.shed_count(), 0);
        drop(q);
        assert_eq!(consumer.join().unwrap(), 4950);
    }

    #[test]
    fn block_policy_is_lossless_with_a_consumer() {
        let (tx, rx) = channel::bounded(1);
        let q = IngestQueue::new(tx, OverloadPolicy::Block);
        let consumer = std::thread::spawn(move || rx.iter().sum::<u64>());
        for i in 0..100u64 {
            assert!(q.push(i));
        }
        drop(q);
        assert_eq!(consumer.join().unwrap(), 4950);
    }
}
