//! Versioned model registry with atomic hot swap.
//!
//! Shards read the current model once per record; an operator thread can
//! [`ModelRegistry::swap`] in a retrained model at any time without pausing
//! ingest. Records already dispatched keep the `Arc` of the version they
//! started with — a swap can never tear a prediction.

use lumos5g::TrainedRegressor;
use parking_lot::RwLock;
use std::sync::Arc;

/// One published model generation.
#[derive(Debug)]
pub struct ModelVersion {
    /// Monotonic generation number (first published model is 1).
    pub version: u64,
    /// The trained model (shared, immutable).
    pub regressor: Arc<TrainedRegressor>,
}

/// Atomically swappable model holder shared by all shards.
#[derive(Debug)]
pub struct ModelRegistry {
    current: RwLock<Arc<ModelVersion>>,
}

impl ModelRegistry {
    /// Publish the initial model as version 1.
    pub fn new(model: TrainedRegressor) -> Self {
        ModelRegistry {
            current: RwLock::new(Arc::new(ModelVersion {
                version: 1,
                regressor: Arc::new(model),
            })),
        }
    }

    /// Replace the served model; returns the new version number.
    pub fn swap(&self, model: TrainedRegressor) -> u64 {
        let mut guard = self.current.write();
        let version = guard.version + 1;
        *guard = Arc::new(ModelVersion {
            version,
            regressor: Arc::new(model),
        });
        version
    }

    /// The currently served model (cheap: read lock + `Arc` clone).
    pub fn current(&self) -> Arc<ModelVersion> {
        self.current.read().clone()
    }

    /// Current version number.
    pub fn version(&self) -> u64 {
        self.current.read().version
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos5g::TrainedRegressor;

    fn dummy_model(window: usize) -> TrainedRegressor {
        TrainedRegressor::Harmonic { window }
    }

    #[test]
    fn swap_bumps_version_monotonically() {
        let reg = ModelRegistry::new(dummy_model(5));
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.swap(dummy_model(7)), 2);
        assert_eq!(reg.swap(dummy_model(9)), 3);
        assert_eq!(reg.current().version, 3);
    }

    #[test]
    fn readers_keep_their_generation_across_a_swap() {
        let reg = ModelRegistry::new(dummy_model(5));
        let held = reg.current();
        reg.swap(dummy_model(7));
        // The held Arc still points at version 1's model.
        assert_eq!(held.version, 1);
        assert!(matches!(
            *held.regressor,
            TrainedRegressor::Harmonic { window: 5 }
        ));
        assert_eq!(reg.current().version, 2);
    }
}
