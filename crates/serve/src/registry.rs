//! Versioned model registry with atomic hot swap, durable generations and
//! validation-gated publishing.
//!
//! Shards read the current model once per record; an operator thread can
//! [`ModelRegistry::swap`] in a retrained model at any time without pausing
//! ingest. Records already dispatched keep the `Arc` of the version they
//! started with — a swap can never tear a prediction.
//!
//! **Durability.** [`ModelRegistry::store`] writes the served model to a
//! directory as `model.gen-{version}.l5gm` through the atomic
//! temp-file + fsync + rename writer in `lumos5g::persist`, then garbage
//! collects all but the newest [`RETAIN_GENERATIONS`] checkpoints.
//! [`ModelRegistry::load_dir_report`] cold-starts a registry by walking the
//! generation chain newest → oldest until one file passes its CRC and
//! decodes, reporting every skipped checkpoint in a typed [`LoadReport`] —
//! a crash mid-write, a torn rename or a bad disk costs at most the newest
//! generation, never a torn model. The legacy `model-v{N}.l5gm` naming from
//! earlier releases is still recognised.
//!
//! **Gating.** A [`Gatekeeper`] replays a golden slice of held-out records
//! through every candidate before it is published: candidates that panic,
//! emit a non-finite prediction, or regress MAE beyond the configured
//! tolerance are refused with a typed [`SwapRejected`] reason (see
//! `Engine::guarded_swap`).

use lumos5g::persist::{self, PersistError, MODEL_EXTENSION};
use lumos5g::TrainedRegressor;
use lumos5g_sim::Dataset;
use parking_lot::RwLock;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// How many on-disk generations [`ModelRegistry::store`] retains.
pub const RETAIN_GENERATIONS: usize = 4;

/// One published model generation.
#[derive(Debug)]
pub struct ModelVersion {
    /// Monotonic generation number (first published model is 1).
    pub version: u64,
    /// The trained model (shared, immutable).
    pub regressor: Arc<TrainedRegressor>,
}

/// One checkpoint that failed to restore during [`ModelRegistry::load_dir_report`].
#[derive(Debug)]
pub struct SkippedCheckpoint {
    /// Generation number parsed from the filename.
    pub version: u64,
    /// The file that failed.
    pub path: PathBuf,
    /// Why it failed (CRC mismatch, truncation, decode error, IO).
    pub error: PersistError,
}

/// What a cold start found on disk: the generation that serves, plus every
/// newer checkpoint that had to be skipped as corrupt.
#[derive(Debug)]
pub struct LoadReport {
    /// Generation number restored.
    pub version: u64,
    /// File it was restored from.
    pub path: PathBuf,
    /// Newer checkpoints skipped (torn writes, bit rot), newest first.
    pub skipped: Vec<SkippedCheckpoint>,
}

/// Atomically swappable model holder shared by all shards.
#[derive(Debug)]
pub struct ModelRegistry {
    current: RwLock<Arc<ModelVersion>>,
}

impl ModelRegistry {
    /// Publish the initial model as version 1.
    pub fn new(model: TrainedRegressor) -> Self {
        Self::with_version(model, 1)
    }

    /// Publish the initial model at an explicit version (used when
    /// restoring from disk, so version numbers survive restarts).
    pub fn with_version(model: TrainedRegressor, version: u64) -> Self {
        ModelRegistry {
            current: RwLock::new(Arc::new(ModelVersion {
                version,
                regressor: Arc::new(model),
            })),
        }
    }

    /// Save the currently served model to `dir/model.gen-{version}.l5gm`
    /// (creating `dir` as needed) atomically — temp file, fsync, rename —
    /// then garbage-collect all but the newest [`RETAIN_GENERATIONS`]
    /// checkpoints. Returns the written path.
    pub fn store(&self, dir: &Path) -> Result<PathBuf, PersistError> {
        self.store_with_retention(dir, RETAIN_GENERATIONS)
    }

    /// [`Self::store`] with an explicit retention count (`keep` ≥ 1 newest
    /// generations survive; the file just written is never collected).
    pub fn store_with_retention(&self, dir: &Path, keep: usize) -> Result<PathBuf, PersistError> {
        let held = self.current();
        let path = dir.join(format!("model.gen-{}.{MODEL_EXTENSION}", held.version));
        persist::save_regressor(&held.regressor, &path)?;
        // GC is best-effort: a failure to prune old generations must never
        // fail the store that just made the new one durable.
        if let Ok(generations) = list_generations(dir) {
            for (version, old) in generations.into_iter().skip(keep.max(1)) {
                if old != path {
                    if let Err(e) = std::fs::remove_file(&old) {
                        eprintln!(
                            "warning: failed to GC model generation {version} ({}): {e}",
                            old.display()
                        );
                    }
                }
            }
        }
        Ok(path)
    }

    /// Cold-start a registry from a directory written by [`Self::store`],
    /// reporting exactly what happened: the generation chain is walked
    /// newest → oldest until one checkpoint passes its integrity check and
    /// decodes, and every newer file skipped on the way is returned in the
    /// [`LoadReport`] with its typed error. The cold start only fails when
    /// no file restores at all, in which case the newest file's error is
    /// returned.
    pub fn load_dir_report(dir: &Path) -> Result<(Self, LoadReport), PersistError> {
        let mut skipped = Vec::new();
        let mut first_err: Option<PersistError> = None;
        for (version, path) in list_generations(dir)? {
            match persist::load_regressor(&path) {
                Ok(model) => {
                    return Ok((
                        Self::with_version(model, version),
                        LoadReport {
                            version,
                            path,
                            skipped,
                        },
                    ));
                }
                Err(e) => {
                    skipped.push(SkippedCheckpoint {
                        version,
                        path,
                        error: e,
                    });
                    // `skipped` owns the error; keep the newest failure for
                    // the all-corrupt case by re-reading its message.
                    if first_err.is_none() {
                        let s = &skipped[0];
                        first_err = Some(PersistError::Io(std::io::Error::other(format!(
                            "no restorable checkpoint in {}; newest ({}) failed: {}",
                            dir.display(),
                            s.path.display(),
                            s.error
                        ))));
                    }
                }
            }
        }
        Err(first_err.unwrap_or_else(|| {
            PersistError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!(
                    "no model checkpoints (*.{MODEL_EXTENSION}) in {}",
                    dir.display()
                ),
            ))
        }))
    }

    /// [`Self::load_dir_report`] for callers that only need the registry:
    /// every skipped checkpoint is logged to stderr with its typed error.
    pub fn load_dir(dir: &Path) -> Result<Self, PersistError> {
        let (registry, report) = Self::load_dir_report(dir)?;
        for s in &report.skipped {
            eprintln!(
                "warning: skipping corrupt model checkpoint {}: {}",
                s.path.display(),
                s.error
            );
        }
        Ok(registry)
    }

    /// Restore the newest on-disk generation strictly below `below` — the
    /// rollback path: when generation N misbehaves in production, this
    /// finds the most recent durable predecessor. Returns the model and the
    /// generation number it was saved at.
    pub fn load_generation_below(
        dir: &Path,
        below: u64,
    ) -> Result<(TrainedRegressor, u64), PersistError> {
        let mut first_err: Option<PersistError> = None;
        for (version, path) in list_generations(dir)? {
            if version >= below {
                continue;
            }
            match persist::load_regressor(&path) {
                Ok(model) => return Ok((model, version)),
                Err(e) => {
                    eprintln!(
                        "warning: rollback skipping corrupt generation {version} ({}): {e}",
                        path.display()
                    );
                    first_err.get_or_insert(e);
                }
            }
        }
        Err(first_err.unwrap_or_else(|| {
            PersistError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no durable generation below {below} in {}", dir.display()),
            ))
        }))
    }

    /// Replace the served model; returns the new version number.
    pub fn swap(&self, model: TrainedRegressor) -> u64 {
        let mut guard = self.current.write();
        let version = guard.version + 1;
        *guard = Arc::new(ModelVersion {
            version,
            regressor: Arc::new(model),
        });
        version
    }

    /// The currently served model (cheap: read lock + `Arc` clone).
    pub fn current(&self) -> Arc<ModelVersion> {
        self.current.read().clone()
    }

    /// Current version number.
    pub fn version(&self) -> u64 {
        self.current.read().version
    }
}

/// Every model checkpoint in `dir`, newest generation first. Recognises
/// both the current `model.gen-{N}.l5gm` layout and the legacy
/// `model-v{N}.l5gm` naming; when both exist for one generation the
/// current layout wins.
fn list_generations(dir: &Path) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let mut found: Vec<(u64, bool, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(version) = parse_generation(name) {
            found.push((version, true, path));
        } else if let Some(version) = parse_legacy_version(name) {
            found.push((version, false, path));
        }
    }
    // Newest first; within a generation the current naming sorts ahead.
    found.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)));
    found.dedup_by_key(|c| c.0);
    Ok(found.into_iter().map(|(v, _, p)| (v, p)).collect())
}

/// Parse `model.gen-{N}.l5gm` → `N`.
fn parse_generation(name: &str) -> Option<u64> {
    name.strip_prefix("model.gen-")?
        .strip_suffix(".l5gm")?
        .parse()
        .ok()
}

/// Parse the legacy `model-v{N}.l5gm` → `N`.
fn parse_legacy_version(name: &str) -> Option<u64> {
    name.strip_prefix("model-v")?
        .strip_suffix(".l5gm")?
        .parse()
        .ok()
}

/// Why a candidate model was refused publication by the [`Gatekeeper`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapRejected {
    /// The candidate panicked while replaying the golden slice.
    Panicked,
    /// The candidate produced at least one non-finite prediction on the
    /// golden slice.
    NonFinite,
    /// The candidate's golden-slice MAE exceeded
    /// `incumbent_mae * tolerance`.
    MaeRegression,
    /// The golden slice produced no evaluable predictions for this
    /// candidate (too few records for its input window) — nothing can be
    /// asserted about it, so it is refused.
    EmptyGolden,
}

impl SwapRejected {
    /// Number of reasons (for fixed-size counters).
    pub const COUNT: usize = 4;

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            SwapRejected::Panicked => 0,
            SwapRejected::NonFinite => 1,
            SwapRejected::MaeRegression => 2,
            SwapRejected::EmptyGolden => 3,
        }
    }

    /// All reasons, in `index` order.
    pub fn all() -> [SwapRejected; Self::COUNT] {
        [
            SwapRejected::Panicked,
            SwapRejected::NonFinite,
            SwapRejected::MaeRegression,
            SwapRejected::EmptyGolden,
        ]
    }
}

impl std::fmt::Display for SwapRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapRejected::Panicked => write!(f, "candidate panicked on the golden slice"),
            SwapRejected::NonFinite => write!(f, "candidate emitted a non-finite prediction"),
            SwapRejected::MaeRegression => {
                write!(f, "candidate MAE regressed beyond tolerance")
            }
            SwapRejected::EmptyGolden => {
                write!(f, "golden slice yields no predictions for this candidate")
            }
        }
    }
}

/// Validation gate for hot swaps: replays a golden slice of held-out
/// records through every candidate model before it may be published.
///
/// The gate is three checks, in order:
/// 1. the replay must not panic ([`SwapRejected::Panicked`]);
/// 2. every prediction must be finite ([`SwapRejected::NonFinite`]);
/// 3. the candidate's MAE must not exceed `incumbent_mae * tolerance`
///    ([`SwapRejected::MaeRegression`]). The MAE check is skipped until an
///    incumbent baseline exists (seeded from the serving model, or from the
///    first admitted candidate).
///
/// On admission the candidate's own MAE becomes the new incumbent
/// baseline, so the bar ratchets with the quality of what is serving.
#[derive(Debug)]
pub struct Gatekeeper {
    golden: Dataset,
    tolerance: f64,
    incumbent_mae: Option<f64>,
}

impl Gatekeeper {
    /// Gate on `golden` with a relative MAE `tolerance` (e.g. `1.1` allows
    /// a candidate up to 10 % worse than the incumbent; values below 1 are
    /// clamped to 1, i.e. "no worse than the incumbent").
    pub fn new(golden: Dataset, tolerance: f64) -> Self {
        Gatekeeper {
            golden,
            tolerance: tolerance.max(1.0),
            incumbent_mae: None,
        }
    }

    /// Seed the incumbent MAE baseline by scoring `incumbent` on the golden
    /// slice. An incumbent that fails its own gate (panic, non-finite,
    /// empty) leaves the baseline unset — the MAE check stays disabled
    /// until a candidate is admitted — rather than blocking all swaps.
    pub fn seed_incumbent(&mut self, incumbent: &TrainedRegressor) {
        self.incumbent_mae = self.score(incumbent).ok();
    }

    /// Records in the golden slice.
    pub fn golden_len(&self) -> usize {
        self.golden.len()
    }

    /// Current incumbent MAE baseline, if seeded.
    pub fn incumbent_mae(&self) -> Option<f64> {
        self.incumbent_mae
    }

    /// Replay the golden slice through `model` and score it. Returns the
    /// MAE, or the first gate it failed (panic / non-finite / empty).
    pub fn score(&self, model: &TrainedRegressor) -> Result<f64, SwapRejected> {
        let replay = panic::catch_unwind(AssertUnwindSafe(|| model.eval(&self.golden)));
        let (truth, pred) = replay.map_err(|_| SwapRejected::Panicked)?;
        if pred.is_empty() {
            return Err(SwapRejected::EmptyGolden);
        }
        if pred.iter().any(|p| !p.is_finite()) {
            return Err(SwapRejected::NonFinite);
        }
        let mae = truth
            .iter()
            .zip(&pred)
            .map(|(t, p)| (t - p).abs())
            .sum::<f64>()
            / pred.len() as f64;
        if !mae.is_finite() {
            // Non-finite truth can only come from a corrupt golden slice;
            // refuse rather than publish on an unverifiable baseline.
            return Err(SwapRejected::NonFinite);
        }
        Ok(mae)
    }

    /// Validate `candidate` for publication. On success returns its golden
    /// MAE (now the incumbent baseline); on failure returns the typed
    /// rejection and leaves the baseline untouched.
    pub fn admit(&mut self, candidate: &TrainedRegressor) -> Result<f64, SwapRejected> {
        let mae = self.score(candidate)?;
        if let Some(incumbent) = self.incumbent_mae {
            if mae > incumbent * self.tolerance {
                return Err(SwapRejected::MaeRegression);
            }
        }
        self.incumbent_mae = Some(mae);
        Ok(mae)
    }

    /// Overwrite the incumbent baseline (used after a rollback, when the
    /// restored generation becomes the bar again).
    pub fn set_incumbent_mae(&mut self, mae: Option<f64>) {
        self.incumbent_mae = mae;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos5g::TrainedRegressor;
    use lumos5g_sim::{Activity, Record};

    fn dummy_model(window: usize) -> TrainedRegressor {
        TrainedRegressor::Harmonic { window }
    }

    fn golden_record(t: u32, thpt: f64) -> Record {
        Record {
            area: 1,
            pass_id: 1,
            trajectory: 0,
            t,
            lat: 44.88,
            lon: -93.20,
            gps_accuracy_m: 2.0,
            activity: Activity::Walking,
            moving_speed_mps: 1.4,
            compass_deg: 90.0,
            throughput_mbps: thpt,
            on_5g: true,
            cell_id: 2,
            lte_rsrp_dbm: -95.0,
            nr_ssrsrp_dbm: -80.0,
            horizontal_handoff: false,
            vertical_handoff: false,
            panel_distance_m: 50.0,
            theta_p_deg: 30.0,
            theta_m_deg: 180.0,
            pixel_x: 1000,
            pixel_y: 2000,
            snapped_x_m: 1.0,
            snapped_y_m: 2.0,
            true_x_m: 1.0,
            true_y_m: 2.0,
            true_speed_mps: 1.4,
        }
    }

    fn golden(n: u32) -> Dataset {
        Dataset::new(
            (0..n)
                .map(|t| golden_record(t, 80.0 + 10.0 * (t % 5) as f64))
                .collect(),
        )
    }

    #[test]
    fn swap_bumps_version_monotonically() {
        let reg = ModelRegistry::new(dummy_model(5));
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.swap(dummy_model(7)), 2);
        assert_eq!(reg.swap(dummy_model(9)), 3);
        assert_eq!(reg.current().version, 3);
    }

    #[test]
    fn readers_keep_their_generation_across_a_swap() {
        let reg = ModelRegistry::new(dummy_model(5));
        let held = reg.current();
        reg.swap(dummy_model(7));
        // The held Arc still points at version 1's model.
        assert_eq!(held.version, 1);
        assert!(matches!(
            *held.regressor,
            TrainedRegressor::Harmonic { window: 5 }
        ));
        assert_eq!(reg.current().version, 2);
    }

    #[test]
    fn generation_filenames_parse() {
        assert_eq!(parse_generation("model.gen-12.l5gm"), Some(12));
        assert_eq!(parse_generation("model.gen-0.l5gm"), Some(0));
        assert_eq!(parse_generation("model.gen-.l5gm"), None);
        assert_eq!(parse_generation("model.gen-12.tmp"), None);
        assert_eq!(parse_legacy_version("model-v12.l5gm"), Some(12));
        assert_eq!(parse_legacy_version("model-v12.bin"), None);
        assert_eq!(parse_legacy_version("checkpoint.l5gm"), None);
    }

    #[test]
    fn store_then_load_dir_picks_the_highest_generation() {
        let dir = std::env::temp_dir().join(format!("l5gm-registry-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let reg = ModelRegistry::new(dummy_model(5));
        reg.store(&dir).unwrap(); // model.gen-1
        reg.swap(dummy_model(7));
        reg.swap(dummy_model(9));
        let path = reg.store(&dir).unwrap(); // model.gen-3
        assert!(path.ends_with("model.gen-3.l5gm"));
        // Clutter the directory: loaders must skip foreign files.
        std::fs::write(dir.join("notes.txt"), b"not a model").unwrap();

        let restored = ModelRegistry::load_dir(&dir).unwrap();
        assert_eq!(restored.version(), 3);
        assert!(matches!(
            *restored.current().regressor,
            TrainedRegressor::Harmonic { window: 9 }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_layout_still_restores() {
        let dir = std::env::temp_dir().join(format!("l5gm-registry-legacy-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // A pre-generation-layout directory: legacy names only.
        lumos5g::persist::save_regressor(&dummy_model(6), &dir.join("model-v4.l5gm")).unwrap();
        lumos5g::persist::save_regressor(&dummy_model(2), &dir.join("model-v2.l5gm")).unwrap();
        let restored = ModelRegistry::load_dir(&dir).unwrap();
        assert_eq!(restored.version(), 4);
        assert!(matches!(
            *restored.current().regressor,
            TrainedRegressor::Harmonic { window: 6 }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_garbage_collects_old_generations() {
        let dir = std::env::temp_dir().join(format!("l5gm-registry-gc-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let reg = ModelRegistry::new(dummy_model(1));
        reg.store_with_retention(&dir, 2).unwrap();
        for w in 2..=6 {
            reg.swap(dummy_model(w));
            reg.store_with_retention(&dir, 2).unwrap();
        }
        let mut left: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        left.sort();
        assert_eq!(left, vec!["model.gen-5.l5gm", "model.gen-6.l5gm"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_checkpoint_is_reported_and_skipped() {
        let dir =
            std::env::temp_dir().join(format!("l5gm-registry-corrupt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let reg = ModelRegistry::with_version(dummy_model(8), 8);
        reg.store(&dir).unwrap(); // valid model.gen-8
        let valid = std::fs::read(dir.join("model.gen-8.l5gm")).unwrap();
        // Two corrupt newer generations: a truncation and a bit flip.
        std::fs::write(dir.join("model.gen-9.l5gm"), &valid[..valid.len() / 2]).unwrap();
        let mut flipped = valid.clone();
        flipped[6] ^= 0x40;
        std::fs::write(dir.join("model.gen-10.l5gm"), &flipped).unwrap();

        let (restored, report) = ModelRegistry::load_dir_report(&dir).unwrap();
        assert_eq!(
            restored.version(),
            8,
            "must fall back past both corrupt files"
        );
        assert_eq!(report.version, 8);
        assert!(report.path.ends_with("model.gen-8.l5gm"));
        let skipped: Vec<u64> = report.skipped.iter().map(|s| s.version).collect();
        assert_eq!(skipped, vec![10, 9], "every corrupt generation is reported");
        assert!(matches!(
            *restored.current().regressor,
            TrainedRegressor::Harmonic { window: 8 }
        ));

        // When *no* file decodes, the cold start fails with the decode error.
        std::fs::write(dir.join("model.gen-8.l5gm"), b"garbage").unwrap();
        assert!(ModelRegistry::load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_without_models_errors() {
        let dir = std::env::temp_dir().join(format!("l5gm-registry-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(ModelRegistry::load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_generation_below_finds_the_predecessor() {
        let dir =
            std::env::temp_dir().join(format!("l5gm-registry-rollback-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let reg = ModelRegistry::new(dummy_model(1));
        reg.store(&dir).unwrap();
        for w in 2..=3 {
            reg.swap(dummy_model(w));
            reg.store(&dir).unwrap();
        }
        let (model, gen) = ModelRegistry::load_generation_below(&dir, 3).unwrap();
        assert_eq!(gen, 2);
        assert!(matches!(model, TrainedRegressor::Harmonic { window: 2 }));
        // Nothing below the oldest generation.
        assert!(ModelRegistry::load_generation_below(&dir, 1).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gatekeeper_admits_a_healthy_candidate_and_ratchets_the_baseline() {
        let mut gk = Gatekeeper::new(golden(30), 1.1);
        assert_eq!(gk.incumbent_mae(), None);
        assert_eq!(gk.golden_len(), 30);
        let mae = gk.admit(&dummy_model(5)).expect("healthy candidate");
        assert!(mae.is_finite());
        assert_eq!(gk.incumbent_mae(), Some(mae));
        // The same model re-admits: equal MAE is within any tolerance ≥ 1.
        assert_eq!(gk.admit(&dummy_model(5)), Ok(mae));
    }

    #[test]
    fn gatekeeper_rejects_an_mae_regression() {
        let mut gk = Gatekeeper::new(golden(30), 1.05);
        gk.set_incumbent_mae(Some(1e-9)); // an (artificially) excellent incumbent
        assert_eq!(gk.admit(&dummy_model(5)), Err(SwapRejected::MaeRegression));
        assert_eq!(
            gk.incumbent_mae(),
            Some(1e-9),
            "a rejected candidate must not move the baseline"
        );
    }

    #[test]
    fn gatekeeper_rejects_an_empty_golden_slice() {
        let mut gk = Gatekeeper::new(Dataset::default(), 1.1);
        assert_eq!(gk.admit(&dummy_model(5)), Err(SwapRejected::EmptyGolden));
    }

    #[test]
    fn gatekeeper_seeds_incumbent_from_the_serving_model() {
        let mut gk = Gatekeeper::new(golden(30), 1.0);
        gk.seed_incumbent(&dummy_model(5));
        let baseline = gk
            .incumbent_mae()
            .expect("harmonic scores the golden slice");
        assert!(baseline.is_finite());
        // tolerance 1.0: a strictly worse candidate is out, the incumbent
        // itself (equal MAE) stays admissible.
        assert_eq!(gk.admit(&dummy_model(5)), Ok(baseline));
    }

    #[test]
    fn swap_rejected_indexing_is_dense_and_total() {
        for (i, r) in SwapRejected::all().into_iter().enumerate() {
            assert_eq!(r.index(), i);
            assert!(!r.to_string().is_empty());
        }
        assert_eq!(SwapRejected::all().len(), SwapRejected::COUNT);
    }
}
