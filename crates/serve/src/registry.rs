//! Versioned model registry with atomic hot swap and disk persistence.
//!
//! Shards read the current model once per record; an operator thread can
//! [`ModelRegistry::swap`] in a retrained model at any time without pausing
//! ingest. Records already dispatched keep the `Arc` of the version they
//! started with — a swap can never tear a prediction.
//!
//! [`ModelRegistry::store`] writes the served model to a directory as
//! `model-v{version}.l5gm`; [`ModelRegistry::load_dir`] cold-starts a
//! registry from the highest version found there, so a restarted engine
//! serves bit-identical predictions with zero retraining.

use lumos5g::persist::{self, PersistError, MODEL_EXTENSION};
use lumos5g::TrainedRegressor;
use parking_lot::RwLock;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One published model generation.
#[derive(Debug)]
pub struct ModelVersion {
    /// Monotonic generation number (first published model is 1).
    pub version: u64,
    /// The trained model (shared, immutable).
    pub regressor: Arc<TrainedRegressor>,
}

/// Atomically swappable model holder shared by all shards.
#[derive(Debug)]
pub struct ModelRegistry {
    current: RwLock<Arc<ModelVersion>>,
}

impl ModelRegistry {
    /// Publish the initial model as version 1.
    pub fn new(model: TrainedRegressor) -> Self {
        Self::with_version(model, 1)
    }

    /// Publish the initial model at an explicit version (used when
    /// restoring from disk, so version numbers survive restarts).
    pub fn with_version(model: TrainedRegressor, version: u64) -> Self {
        ModelRegistry {
            current: RwLock::new(Arc::new(ModelVersion {
                version,
                regressor: Arc::new(model),
            })),
        }
    }

    /// Save the currently served model to `dir/model-v{version}.l5gm`
    /// (creating `dir` as needed) and return the written path.
    pub fn store(&self, dir: &Path) -> Result<PathBuf, PersistError> {
        let held = self.current();
        let path = dir.join(format!("model-v{}.{MODEL_EXTENSION}", held.version));
        persist::save_regressor(&held.regressor, &path)?;
        Ok(path)
    }

    /// Cold-start a registry from a directory written by [`Self::store`]:
    /// the highest `model-v*.l5gm` version that *decodes* wins and is
    /// published at its saved version number. A corrupt or truncated newest
    /// checkpoint — a crash mid-write, a bad disk — is skipped (with a
    /// warning on stderr) and the next-highest valid version serves
    /// instead; the cold start only fails when no file decodes at all, in
    /// which case the newest file's error is returned.
    pub fn load_dir(dir: &Path) -> Result<Self, PersistError> {
        let mut candidates: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(version) = path.file_name().and_then(|n| parse_version(n.to_str()?)) else {
                continue;
            };
            candidates.push((version, path));
        }
        candidates.sort_unstable_by_key(|c| std::cmp::Reverse(c.0));
        let mut first_err: Option<PersistError> = None;
        for (version, path) in &candidates {
            match persist::load_regressor(path) {
                Ok(model) => return Ok(Self::with_version(model, *version)),
                Err(e) => {
                    eprintln!(
                        "warning: skipping corrupt model checkpoint {}: {e}",
                        path.display()
                    );
                    first_err.get_or_insert(e);
                }
            }
        }
        Err(first_err.unwrap_or_else(|| {
            PersistError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no model-v*.{MODEL_EXTENSION} files in {}", dir.display()),
            ))
        }))
    }

    /// Replace the served model; returns the new version number.
    pub fn swap(&self, model: TrainedRegressor) -> u64 {
        let mut guard = self.current.write();
        let version = guard.version + 1;
        *guard = Arc::new(ModelVersion {
            version,
            regressor: Arc::new(model),
        });
        version
    }

    /// The currently served model (cheap: read lock + `Arc` clone).
    pub fn current(&self) -> Arc<ModelVersion> {
        self.current.read().clone()
    }

    /// Current version number.
    pub fn version(&self) -> u64 {
        self.current.read().version
    }
}

/// Parse `model-v{N}.l5gm` → `N`.
fn parse_version(name: &str) -> Option<u64> {
    name.strip_prefix("model-v")?
        .strip_suffix(".l5gm")?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos5g::TrainedRegressor;

    fn dummy_model(window: usize) -> TrainedRegressor {
        TrainedRegressor::Harmonic { window }
    }

    #[test]
    fn swap_bumps_version_monotonically() {
        let reg = ModelRegistry::new(dummy_model(5));
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.swap(dummy_model(7)), 2);
        assert_eq!(reg.swap(dummy_model(9)), 3);
        assert_eq!(reg.current().version, 3);
    }

    #[test]
    fn readers_keep_their_generation_across_a_swap() {
        let reg = ModelRegistry::new(dummy_model(5));
        let held = reg.current();
        reg.swap(dummy_model(7));
        // The held Arc still points at version 1's model.
        assert_eq!(held.version, 1);
        assert!(matches!(
            *held.regressor,
            TrainedRegressor::Harmonic { window: 5 }
        ));
        assert_eq!(reg.current().version, 2);
    }

    #[test]
    fn version_filenames_parse() {
        assert_eq!(parse_version("model-v12.l5gm"), Some(12));
        assert_eq!(parse_version("model-v0.l5gm"), Some(0));
        assert_eq!(parse_version("model-v.l5gm"), None);
        assert_eq!(parse_version("model-v12.bin"), None);
        assert_eq!(parse_version("checkpoint.l5gm"), None);
    }

    #[test]
    fn store_then_load_dir_picks_the_highest_version() {
        let dir = std::env::temp_dir().join(format!("l5gm-registry-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let reg = ModelRegistry::new(dummy_model(5));
        reg.store(&dir).unwrap(); // model-v1
        reg.swap(dummy_model(7));
        reg.swap(dummy_model(9));
        let path = reg.store(&dir).unwrap(); // model-v3
        assert!(path.ends_with("model-v3.l5gm"));
        // Clutter the directory: loaders must skip foreign files.
        std::fs::write(dir.join("notes.txt"), b"not a model").unwrap();

        let restored = ModelRegistry::load_dir(&dir).unwrap();
        assert_eq!(restored.version(), 3);
        assert!(matches!(
            *restored.current().regressor,
            TrainedRegressor::Harmonic { window: 9 }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_next_valid_version() {
        let dir =
            std::env::temp_dir().join(format!("l5gm-registry-corrupt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let reg = ModelRegistry::with_version(dummy_model(8), 8);
        reg.store(&dir).unwrap(); // valid model-v8
                                  // A truncated newest checkpoint: the first half of valid bytes.
        let valid = std::fs::read(dir.join("model-v8.l5gm")).unwrap();
        std::fs::write(dir.join("model-v9.l5gm"), &valid[..valid.len() / 2]).unwrap();

        let restored = ModelRegistry::load_dir(&dir).unwrap();
        assert_eq!(restored.version(), 8, "must fall back past the corrupt v9");
        assert!(matches!(
            *restored.current().regressor,
            TrainedRegressor::Harmonic { window: 8 }
        ));

        // When *no* file decodes, the cold start fails with the decode error.
        std::fs::write(dir.join("model-v8.l5gm"), b"garbage").unwrap();
        assert!(ModelRegistry::load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_dir_without_models_errors() {
        let dir = std::env::temp_dir().join(format!("l5gm-registry-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(ModelRegistry::load_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
