//! The serving engine: shard pool, UE-affinity routing, admission control,
//! worker supervision, lifecycle and aggregate reporting.
//!
//! Fault tolerance is layered (see also `shard.rs`):
//!
//! 1. **Admission control** — [`Engine::offer`] validates every record at
//!    the front door; malformed telemetry (non-finite throughput, RSRP or
//!    coordinates, absurd GPS accuracy) is rejected with a typed
//!    [`RejectReason`] and counted, never routed to a shard.
//! 2. **Shard supervision** — a supervisor thread watches every worker;
//!    when one dies (a panic escaped the per-record isolation, or an
//!    injected chaos kill), it is respawned on the same ingest queue with
//!    sessions rebuilt cold, and the death is counted per shard
//!    (`panicked` / `restarted`) instead of poisoning
//!    [`Engine::shutdown`].

use crate::fault::FaultPlan;
use crate::metrics::{LatencyHistogram, MetricsSnapshot, ShardMetrics};
use crate::queue::{IngestQueue, OverloadPolicy};
use crate::registry::{Gatekeeper, ModelRegistry, SwapRejected};
use crate::shard::{run_shard, Ingest, Prediction, SequenceServing, ShardContext};
use crossbeam::channel::{self, Receiver, Sender};
use lumos5g::persist::PersistError;
use lumos5g::TrainedRegressor;
use lumos5g::{FeatureSet, FeatureSpec};
use lumos5g_sim::Record;
use parking_lot::Mutex;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine sizing and behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Worker shards (≥ 1). UEs are hash-partitioned across them.
    pub shards: usize,
    /// Bounded ingest-queue capacity per shard.
    pub queue_capacity: usize,
    /// What to do when a shard queue is full.
    pub policy: OverloadPolicy,
    /// Per-call model time budget: a `predict_one` slower than this is
    /// answered by the harmonic fallback instead (tagged `degraded`).
    /// `None` (the default) disables the clock entirely, keeping the
    /// fault-free hot path free of `Instant::now` calls.
    pub predict_budget: Option<Duration>,
    /// When the served model is a Seq2Seq: how many already-queued records
    /// a shard may answer with one batched decoder call (capped at one
    /// record per UE per batch). Responses are bit-identical for any value;
    /// larger batches amortize weight-matrix traffic. Ignored for
    /// single-row families.
    pub decode_batch: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            queue_capacity: 1024,
            policy: OverloadPolicy::Block,
            predict_budget: None,
            decode_batch: 8,
        }
    }
}

/// Why a record was refused at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// `throughput_mbps` is NaN or infinite.
    NonFiniteThroughput,
    /// LTE RSRP or NR SS-RSRP is NaN or infinite.
    NonFiniteSignal,
    /// Latitude or longitude is NaN or infinite.
    NonFiniteCoords,
    /// GPS accuracy is non-finite, negative, or beyond any plausible
    /// sensor output (> [`MAX_GPS_ACCURACY_M`]).
    AbsurdGpsAccuracy,
    /// `throughput_mbps` is finite but negative — impossible telemetry
    /// that would corrupt session windows, harmonic fallbacks and the
    /// online MAE if admitted.
    NegativeThroughput,
}

/// GPS accuracy ceiling: a reported accuracy radius beyond 10 km is sensor
/// garbage, not a usable fix.
pub const MAX_GPS_ACCURACY_M: f64 = 10_000.0;

impl RejectReason {
    /// Number of reasons (for fixed-size counters).
    pub const COUNT: usize = 5;

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        match self {
            RejectReason::NonFiniteThroughput => 0,
            RejectReason::NonFiniteSignal => 1,
            RejectReason::NonFiniteCoords => 2,
            RejectReason::AbsurdGpsAccuracy => 3,
            RejectReason::NegativeThroughput => 4,
        }
    }

    /// All reasons, in `index` order.
    pub fn all() -> [RejectReason; Self::COUNT] {
        [
            RejectReason::NonFiniteThroughput,
            RejectReason::NonFiniteSignal,
            RejectReason::NonFiniteCoords,
            RejectReason::AbsurdGpsAccuracy,
            RejectReason::NegativeThroughput,
        ]
    }
}

/// Validate one record at the engine front door.
pub fn admit(record: &Record) -> Result<(), RejectReason> {
    if !record.throughput_mbps.is_finite() {
        return Err(RejectReason::NonFiniteThroughput);
    }
    if record.throughput_mbps < 0.0 {
        return Err(RejectReason::NegativeThroughput);
    }
    if !record.lte_rsrp_dbm.is_finite() || !record.nr_ssrsrp_dbm.is_finite() {
        return Err(RejectReason::NonFiniteSignal);
    }
    if !record.lat.is_finite() || !record.lon.is_finite() {
        return Err(RejectReason::NonFiniteCoords);
    }
    if !record.gps_accuracy_m.is_finite()
        || record.gps_accuracy_m < 0.0
        || record.gps_accuracy_m > MAX_GPS_ACCURACY_M
    {
        return Err(RejectReason::AbsurdGpsAccuracy);
    }
    Ok(())
}

/// Outcome of [`Engine::offer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Routed to a shard; exactly one response will be emitted (unless a
    /// `Deadline` policy sheds it as stale at dequeue).
    Accepted,
    /// Dropped by the overload policy (or the shard is gone); counted in
    /// `shed`.
    Shed,
    /// Refused by admission control; counted in `rejected`.
    Rejected(RejectReason),
}

#[derive(Debug, Default)]
struct AdmissionMetrics {
    rejected: [AtomicU64; RejectReason::COUNT],
}

impl AdmissionMetrics {
    fn count(&self, reason: RejectReason) {
        self.rejected[reason.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn totals(&self) -> [u64; RejectReason::COUNT] {
        let mut out = [0; RejectReason::COUNT];
        for (o, c) in out.iter_mut().zip(&self.rejected) {
            *o = c.load(Ordering::Relaxed);
        }
        out
    }
}

#[derive(Debug, Default)]
struct SwapMetrics {
    rejected: [AtomicU64; SwapRejected::COUNT],
}

impl SwapMetrics {
    fn count(&self, reason: SwapRejected) {
        self.rejected[reason.index()].fetch_add(1, Ordering::Relaxed);
    }

    fn totals(&self) -> [u64; SwapRejected::COUNT] {
        let mut out = [0; SwapRejected::COUNT];
        for (o, c) in out.iter_mut().zip(&self.rejected) {
            *o = c.load(Ordering::Relaxed);
        }
        out
    }
}

/// Final aggregate report returned by [`Engine::shutdown`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Per-shard final snapshots.
    pub shards: Vec<MetricsSnapshot>,
    /// Records ingested across shards.
    pub processed: u64,
    /// Predictions emitted across shards.
    pub predictions: u64,
    /// Records shed at the front door.
    pub shed: u64,
    /// Records shed at dequeue by the `Deadline` staleness budget.
    pub shed_stale: u64,
    /// Records refused by admission control.
    pub rejected: u64,
    /// Admission rejections broken down by [`RejectReason`] `index()`.
    pub rejected_by: [u64; RejectReason::COUNT],
    /// Candidate models refused by the [`Gatekeeper`] over the engine's
    /// lifetime.
    pub swap_rejected: u64,
    /// Gate refusals broken down by [`SwapRejected`] `index()`.
    pub swap_rejected_by: [u64; SwapRejected::COUNT],
    /// Poison records quarantined by per-record panic isolation.
    pub quarantined: u64,
    /// Responses served by the harmonic fallback predictor.
    pub fallbacks: u64,
    /// Worker-thread deaths across shards.
    pub panicked: u64,
    /// Supervisor respawns across shards.
    pub restarted: u64,
    /// Aggregate p50 end-to-end latency, ns.
    pub p50_ns: u64,
    /// Aggregate p95 end-to-end latency, ns.
    pub p95_ns: u64,
    /// Aggregate p99 end-to-end latency, ns.
    pub p99_ns: u64,
    /// Online mean absolute next-second error, Mbps.
    pub mae_mbps: Option<f64>,
}

/// Everything needed to (re)spawn one shard's worker thread.
struct ShardRuntime {
    shard_id: usize,
    ctx: ShardContext,
    registry: Arc<ModelRegistry>,
    rx: Receiver<Ingest>,
    out: Sender<Prediction>,
    metrics: Arc<ShardMetrics>,
}

fn spawn_worker(rt: &ShardRuntime) -> JoinHandle<()> {
    let shard_id = rt.shard_id;
    let ctx = rt.ctx.clone();
    let registry = rt.registry.clone();
    let rx = rt.rx.clone();
    let out = rt.out.clone();
    let metrics = rt.metrics.clone();
    std::thread::Builder::new()
        .name(format!("serve-shard-{shard_id}"))
        .spawn(move || run_shard(shard_id, ctx, registry, rx, out, metrics))
        .expect("spawn shard worker")
}

/// How often the supervisor polls worker liveness. A dead shard's queue
/// backs up for at most about this long before the respawn drains it.
const SUPERVISOR_POLL: Duration = Duration::from_millis(1);

/// Supervise the shard workers until every one of them exits *normally*
/// (ingest disconnected and drained, i.e. after [`Engine::shutdown`] drops
/// the queues). A worker that dies — `join` returns `Err` — is counted and
/// respawned on the same ingest queue; its sessions are rebuilt cold from
/// the stream. Responses buffered in the channel are never lost, and
/// records queued behind the death are served by the replacement.
fn supervise(mut slots: Vec<(ShardRuntime, Option<JoinHandle<()>>)>) {
    loop {
        let mut alive = 0usize;
        for (rt, handle) in slots.iter_mut() {
            let finished = handle.as_ref().is_some_and(|h| h.is_finished());
            if finished {
                let joined = handle.take().expect("handle present").join();
                if joined.is_err() {
                    rt.metrics.panicked.fetch_add(1, Ordering::Relaxed);
                    rt.metrics.restarted.fetch_add(1, Ordering::Relaxed);
                    *handle = Some(spawn_worker(rt));
                }
            }
            if handle.is_some() {
                alive += 1;
            }
        }
        if alive == 0 {
            return; // every worker exited cleanly
        }
        std::thread::sleep(SUPERVISOR_POLL);
    }
}

struct ShardHandle {
    queue: IngestQueue<Ingest>,
    metrics: Arc<ShardMetrics>,
}

/// A running serving engine. See the crate docs for the architecture.
pub struct Engine {
    shards: Vec<ShardHandle>,
    registry: Arc<ModelRegistry>,
    admission: AdmissionMetrics,
    gatekeeper: Mutex<Option<Gatekeeper>>,
    swaps: SwapMetrics,
    supervisor: JoinHandle<()>,
    responses: Receiver<Prediction>,
}

impl Engine {
    /// Start the engine serving `model` under `cfg`.
    ///
    /// The feature spec is taken from the model itself so the serving path
    /// can never disagree with training; feature-free models (harmonic
    /// mean) fall back to the location-only spec for window sizing.
    pub fn start(model: TrainedRegressor, cfg: EngineConfig) -> Engine {
        Self::start_with_registry(Arc::new(ModelRegistry::new(model)), cfg)
    }

    /// Start the engine from an existing registry — the cold-start path:
    /// `ModelRegistry::load_dir` restores a saved model (version number and
    /// all) and the engine serves it with zero retraining, bit-identical to
    /// the engine that saved it.
    pub fn start_with_registry(registry: Arc<ModelRegistry>, cfg: EngineConfig) -> Engine {
        Self::start_with_faults(registry, cfg, None)
    }

    /// Start the engine with a deterministic [`FaultPlan`] installed
    /// (chaos testing). A `None` plan — or one with all-zero rates — leaves
    /// the engine bit-identical to [`Self::start_with_registry`].
    pub fn start_with_faults(
        registry: Arc<ModelRegistry>,
        cfg: EngineConfig,
        faults: Option<Arc<FaultPlan>>,
    ) -> Engine {
        let spec = registry
            .current()
            .regressor
            .spec()
            .copied()
            .unwrap_or_else(|| FeatureSpec::new(FeatureSet::L));
        // Sequence-serving mode is fixed at engine start from the initial
        // model, like the spec: hot swaps must keep the model family.
        let seq = registry
            .current()
            .regressor
            .seq2seq_params()
            .map(|p| SequenceServing {
                input_len: p.input_len,
                batch: cfg.decode_batch.max(1),
            });
        let ctx = ShardContext {
            spec,
            stale_after: cfg.policy.stale_after(),
            predict_budget: cfg.predict_budget,
            faults,
            seq,
        };
        let (out_tx, out_rx) = channel::unbounded();
        let nshards = cfg.shards.max(1);
        let mut shards = Vec::with_capacity(nshards);
        let mut slots = Vec::with_capacity(nshards);
        for shard_id in 0..nshards {
            let (tx, rx) = channel::bounded(cfg.queue_capacity.max(1));
            let metrics = Arc::new(ShardMetrics::new());
            let rt = ShardRuntime {
                shard_id,
                ctx: ctx.clone(),
                registry: registry.clone(),
                rx,
                out: out_tx.clone(),
                metrics: metrics.clone(),
            };
            let worker = spawn_worker(&rt);
            slots.push((rt, Some(worker)));
            shards.push(ShardHandle {
                queue: IngestQueue::new(tx, cfg.policy),
                metrics,
            });
        }
        // The workers (and the supervisor's respawn runtimes) hold the only
        // output senders: the response stream disconnects exactly when the
        // last worker has exited and supervision ended.
        drop(out_tx);
        let supervisor = std::thread::Builder::new()
            .name("serve-supervisor".into())
            .spawn(move || supervise(slots))
            .expect("spawn supervisor");
        Engine {
            shards,
            registry,
            admission: AdmissionMetrics::default(),
            gatekeeper: Mutex::new(None),
            swaps: SwapMetrics::default(),
            supervisor,
            responses: out_rx,
        }
    }

    /// Install (or replace) the validation gate for hot swaps. The
    /// incumbent MAE baseline is seeded from the currently served model,
    /// so the very first [`Self::guarded_swap`] is already held to the
    /// serving model's golden-slice quality.
    pub fn install_gatekeeper(&self, mut gatekeeper: Gatekeeper) {
        gatekeeper.seed_incumbent(&self.registry.current().regressor);
        *self.gatekeeper.lock() = Some(gatekeeper);
    }

    /// Hot-swap `candidate` in through the validation gate.
    ///
    /// With a [`Gatekeeper`] installed, the candidate first replays the
    /// golden slice: a panic, any non-finite prediction, or an MAE beyond
    /// the gate's tolerance refuses the swap with a typed [`SwapRejected`]
    /// reason — counted in [`EngineReport::swap_rejected_by`] — and the
    /// incumbent keeps serving, untouched. Without a gatekeeper this is
    /// exactly [`ModelRegistry::swap`]. Returns the new version on success.
    pub fn guarded_swap(&self, candidate: TrainedRegressor) -> Result<u64, SwapRejected> {
        let mut gate = self.gatekeeper.lock();
        if let Some(gk) = gate.as_mut() {
            if let Err(reason) = gk.admit(&candidate) {
                self.swaps.count(reason);
                return Err(reason);
            }
        }
        Ok(self.registry.swap(candidate))
    }

    /// Roll the served model back to the newest durable generation on disk
    /// below the currently served one (written by [`ModelRegistry::store`]).
    ///
    /// The restored model is published as a *new* version — shards always
    /// move forward — and, when a gatekeeper is installed, re-seeds the
    /// incumbent MAE baseline so subsequent swaps are gated against the
    /// restored generation. Returns `(published_version, restored_generation)`.
    pub fn rollback_model(&self, dir: &Path) -> Result<(u64, u64), PersistError> {
        let current = self.registry.version();
        let (model, generation) = ModelRegistry::load_generation_below(dir, current)?;
        let mut gate = self.gatekeeper.lock();
        if let Some(gk) = gate.as_mut() {
            gk.set_incumbent_mae(gk.score(&model).ok());
        }
        let version = self.registry.swap(model);
        Ok((version, generation))
    }

    /// Candidate models refused by the gate so far, by [`SwapRejected`]
    /// `index()`.
    pub fn swap_rejected_by_reason(&self) -> [u64; SwapRejected::COUNT] {
        self.swaps.totals()
    }

    /// The model registry (hot-swap entry point).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Shards running.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, ue: u64) -> usize {
        // SplitMix64 finalizer: avalanche the UE id so sequential ids
        // spread evenly across shards.
        let mut z = ue.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % self.shards.len() as u64) as usize
    }

    /// Offer one record for `ue`, reporting exactly what happened to it:
    /// admission-validated, then routed to the UE's shard under the
    /// overload policy.
    pub fn offer(&self, ue: u64, record: Record) -> SubmitOutcome {
        if let Err(reason) = admit(&record) {
            self.admission.count(reason);
            return SubmitOutcome::Rejected(reason);
        }
        let shard = self.shard_of(ue);
        if self.shards[shard].queue.push(Ingest {
            ue,
            record,
            enqueued: Instant::now(),
        }) {
            SubmitOutcome::Accepted
        } else {
            SubmitOutcome::Shed
        }
    }

    /// Submit one record for `ue`. Returns `false` when the record was not
    /// accepted (shed under [`OverloadPolicy::Shed`], or rejected by
    /// admission control — use [`Self::offer`] to distinguish).
    pub fn submit(&self, ue: u64, record: Record) -> bool {
        matches!(self.offer(ue, record), SubmitOutcome::Accepted)
    }

    /// The response stream (one [`Prediction`] per accepted record).
    pub fn responses(&self) -> &Receiver<Prediction> {
        &self.responses
    }

    /// Point-in-time per-shard snapshots (counters + queue-depth gauges).
    pub fn snapshot(&self) -> Vec<MetricsSnapshot> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.metrics.snapshot(i, s.queue.depth()))
            .collect()
    }

    /// Records refused by admission control so far, by reason index.
    pub fn rejected_by_reason(&self) -> [u64; RejectReason::COUNT] {
        self.admission.totals()
    }

    /// Stop ingest, drain the workers and return the final report.
    ///
    /// Never panics on a dead shard: workers that died mid-run were already
    /// respawned by the supervisor and their deaths are reported in the
    /// per-shard `panicked` / `restarted` counters. Buffered responses
    /// remain readable on the receiver returned inside the tuple until it
    /// is dropped.
    pub fn shutdown(self) -> (EngineReport, Receiver<Prediction>) {
        let Engine {
            shards,
            registry: _,
            admission,
            gatekeeper: _,
            swaps,
            supervisor,
            responses,
        } = self;
        let agg = LatencyHistogram::new();
        let mut shed = 0;
        // Dropping each queue disconnects that shard's ingest channel; the
        // worker (or its supervised replacement) drains what is buffered
        // and exits.
        let mut shard_metrics = Vec::with_capacity(shards.len());
        for s in shards {
            shed += s.queue.shed_count();
            drop(s.queue);
            shard_metrics.push(s.metrics);
        }
        // The supervisor returns once every worker has exited normally —
        // respawning any that die during the final drain, so even a panic
        // in the last record cannot lose the records queued behind it.
        supervisor.join().expect("supervisor never panics");
        let mut snapshots = Vec::with_capacity(shard_metrics.len());
        let mut err_n = 0u64;
        let mut err_milli_sum = 0u64;
        for (i, metrics) in shard_metrics.iter().enumerate() {
            agg.merge(&metrics.latency);
            err_n += metrics.err_count.load(Ordering::Relaxed);
            err_milli_sum += metrics.abs_err_milli_sum.load(Ordering::Relaxed);
            snapshots.push(metrics.snapshot(i, 0));
        }
        let sum = |f: fn(&MetricsSnapshot) -> u64| snapshots.iter().map(f).sum::<u64>();
        let rejected_by = admission.totals();
        let swap_rejected_by = swaps.totals();
        let report = EngineReport {
            processed: sum(|s| s.processed),
            predictions: sum(|s| s.predictions),
            shed,
            shed_stale: sum(|s| s.shed_stale),
            rejected: rejected_by.iter().sum(),
            rejected_by,
            swap_rejected: swap_rejected_by.iter().sum(),
            swap_rejected_by,
            quarantined: sum(|s| s.quarantined),
            fallbacks: sum(|s| s.fallbacks),
            panicked: sum(|s| s.panicked),
            restarted: sum(|s| s.restarted),
            p50_ns: agg.quantile_ns(0.50),
            p95_ns: agg.quantile_ns(0.95),
            p99_ns: agg.quantile_ns(0.99),
            mae_mbps: if err_n > 0 {
                Some(err_milli_sum as f64 / 1000.0 / err_n as f64)
            } else {
                None
            },
            shards: snapshots,
        };
        (report, responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos5g_sim::{Activity, Record};

    fn rec(pass: u32, t: u32, thpt: f64) -> Record {
        Record {
            area: 1,
            pass_id: pass,
            trajectory: 0,
            t,
            lat: 44.88,
            lon: -93.20,
            gps_accuracy_m: 2.0,
            activity: Activity::Walking,
            moving_speed_mps: 1.4,
            compass_deg: 90.0,
            throughput_mbps: thpt,
            on_5g: true,
            cell_id: 2,
            lte_rsrp_dbm: -95.0,
            nr_ssrsrp_dbm: -80.0,
            horizontal_handoff: false,
            vertical_handoff: false,
            panel_distance_m: 50.0,
            theta_p_deg: 30.0,
            theta_m_deg: 180.0,
            pixel_x: 1000,
            pixel_y: 2000,
            snapped_x_m: 1.0,
            snapped_y_m: 2.0,
            true_x_m: 1.0,
            true_y_m: 2.0,
            true_speed_mps: 1.4,
        }
    }

    #[test]
    fn engine_answers_every_submitted_record() {
        let engine = Engine::start(
            TrainedRegressor::Harmonic { window: 5 },
            EngineConfig {
                shards: 3,
                queue_capacity: 8,
                policy: OverloadPolicy::Block,
                ..Default::default()
            },
        );
        for ue in 0..20u64 {
            for t in 0..5 {
                assert!(engine.submit(ue, rec(ue as u32, t, 100.0)));
            }
        }
        let (report, responses) = engine.shutdown();
        assert_eq!(report.processed, 100);
        assert_eq!(report.shed, 0);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.panicked, 0);
        assert_eq!(responses.iter().count(), 100);
    }

    #[test]
    fn ue_affinity_is_stable_and_spread() {
        let engine = Engine::start(
            TrainedRegressor::Harmonic { window: 5 },
            EngineConfig {
                shards: 4,
                ..Default::default()
            },
        );
        let mut used = [false; 4];
        for ue in 0..64u64 {
            let s = engine.shard_of(ue);
            assert_eq!(s, engine.shard_of(ue), "routing must be deterministic");
            used[s] = true;
        }
        assert!(
            used.iter().all(|&u| u),
            "64 UEs left a shard empty: {used:?}"
        );
        let (report, _rx) = engine.shutdown();
        assert_eq!(report.processed, 0);
    }

    #[test]
    fn shed_policy_counts_overflow() {
        // One shard, tiny queue, no consumer until shutdown: the worker
        // thread drains at its own pace, so flooding must shed.
        let engine = Engine::start(
            TrainedRegressor::Harmonic { window: 5 },
            EngineConfig {
                shards: 1,
                queue_capacity: 1,
                policy: OverloadPolicy::Shed,
                ..Default::default()
            },
        );
        let mut accepted = 0u64;
        for t in 0..20_000 {
            if engine.submit(1, rec(1, t, 100.0)) {
                accepted += 1;
            }
        }
        let (report, responses) = engine.shutdown();
        assert_eq!(report.processed, accepted);
        assert_eq!(report.shed, 20_000 - accepted);
        assert_eq!(responses.iter().count() as u64, accepted);
    }

    #[test]
    fn admission_control_rejects_malformed_records() {
        let engine = Engine::start(
            TrainedRegressor::Harmonic { window: 5 },
            EngineConfig {
                shards: 1,
                ..Default::default()
            },
        );
        let mut bad_thpt = rec(1, 0, 100.0);
        bad_thpt.throughput_mbps = f64::NAN;
        let mut bad_rsrp = rec(1, 1, 100.0);
        bad_rsrp.nr_ssrsrp_dbm = f64::NEG_INFINITY;
        let mut bad_coord = rec(1, 2, 100.0);
        bad_coord.lon = f64::NAN;
        let mut bad_gps = rec(1, 3, 100.0);
        bad_gps.gps_accuracy_m = 1e7;
        let neg_thpt = rec(1, 4, -25.0);
        assert_eq!(
            engine.offer(1, bad_thpt),
            SubmitOutcome::Rejected(RejectReason::NonFiniteThroughput)
        );
        assert_eq!(
            engine.offer(1, bad_rsrp),
            SubmitOutcome::Rejected(RejectReason::NonFiniteSignal)
        );
        assert_eq!(
            engine.offer(1, bad_coord),
            SubmitOutcome::Rejected(RejectReason::NonFiniteCoords)
        );
        assert_eq!(
            engine.offer(1, bad_gps),
            SubmitOutcome::Rejected(RejectReason::AbsurdGpsAccuracy)
        );
        assert_eq!(
            engine.offer(1, neg_thpt),
            SubmitOutcome::Rejected(RejectReason::NegativeThroughput)
        );
        assert_eq!(engine.offer(1, rec(1, 5, 100.0)), SubmitOutcome::Accepted);
        assert_eq!(engine.rejected_by_reason(), [1, 1, 1, 1, 1]);
        let (report, responses) = engine.shutdown();
        assert_eq!(report.rejected, 5);
        assert_eq!(report.rejected_by, [1, 1, 1, 1, 1]);
        assert_eq!(report.processed, 1, "rejected records never reach a shard");
        assert_eq!(responses.iter().count(), 1);
    }

    /// Regression: a finite-but-negative throughput used to pass admission
    /// and reach the shards, where it corrupted harmonic fallbacks (whose
    /// epsilon clamp assumes non-negative rates) and the online MAE. A zero
    /// throughput (an outage second) must still be admitted.
    #[test]
    fn negative_throughput_is_rejected_but_zero_is_admitted() {
        let engine = Engine::start(
            TrainedRegressor::Harmonic { window: 5 },
            EngineConfig {
                shards: 1,
                ..Default::default()
            },
        );
        assert_eq!(
            engine.offer(1, rec(1, 0, -0.001)),
            SubmitOutcome::Rejected(RejectReason::NegativeThroughput)
        );
        assert_eq!(
            engine.offer(1, rec(1, 0, f64::NEG_INFINITY)),
            SubmitOutcome::Rejected(RejectReason::NonFiniteThroughput),
            "non-finite keeps its own reason"
        );
        assert_eq!(engine.offer(1, rec(1, 0, 0.0)), SubmitOutcome::Accepted);
        assert_eq!(engine.offer(1, rec(1, 1, 425.5)), SubmitOutcome::Accepted);
        let (report, responses) = engine.shutdown();
        assert_eq!(report.processed, 2);
        assert_eq!(report.rejected, 2);
        let got: Vec<_> = responses.iter().collect();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|p| p.measured_mbps >= 0.0));
    }

    #[test]
    fn supervisor_respawns_killed_workers_without_losing_responses() {
        let mut plan = FaultPlan::new(1);
        plan.kill_bp = 10_000; // every record kills its worker after answering
        let engine = Engine::start_with_faults(
            Arc::new(ModelRegistry::new(TrainedRegressor::Harmonic { window: 5 })),
            EngineConfig {
                shards: 1,
                queue_capacity: 1,
                policy: OverloadPolicy::Block,
                ..Default::default()
            },
            Some(Arc::new(plan)),
        );
        // With capacity 1 and a worker dying per record, submits block on a
        // dead shard until the supervisor respawns it — progress proves
        // supervision, not luck.
        for t in 0..5 {
            assert!(engine.submit(7, rec(1, t, 100.0)));
        }
        let (report, responses) = engine.shutdown();
        assert_eq!(report.processed, 5);
        assert_eq!(report.panicked, 5);
        assert_eq!(report.restarted, 5);
        let got: Vec<_> = responses.iter().collect();
        assert_eq!(got.len(), 5, "every record answered across 5 worker deaths");
        // Sessions rebuild cold after each kill, so ordering is preserved.
        let ts: Vec<u32> = got.iter().map(|p| p.t).collect();
        assert_eq!(ts, vec![0, 1, 2, 3, 4]);
    }

    fn golden_dataset(n: u32) -> lumos5g_sim::Dataset {
        lumos5g_sim::Dataset::new(
            (0..n)
                .map(|t| rec(1, t, 60.0 + (t % 7) as f64 * 12.0))
                .collect(),
        )
    }

    fn train_gbdt(set: FeatureSet, ds: &lumos5g_sim::Dataset) -> TrainedRegressor {
        lumos5g::Lumos5G::new(set, lumos5g::ModelKind::Gdbt(lumos5g::quick_gbdt()))
            .fit_regression(ds)
            .expect("gbdt trains")
    }

    #[test]
    fn guarded_swap_without_gatekeeper_is_a_plain_swap() {
        let engine = Engine::start(
            TrainedRegressor::Harmonic { window: 5 },
            EngineConfig {
                shards: 1,
                ..Default::default()
            },
        );
        assert_eq!(
            engine.guarded_swap(TrainedRegressor::Harmonic { window: 7 }),
            Ok(2)
        );
        let (report, _rx) = engine.shutdown();
        assert_eq!(report.swap_rejected, 0);
    }

    /// The gate's three failure modes, end to end: a candidate whose every
    /// prediction is NaN (GDBT trained on NaN targets), a candidate that
    /// panics on the golden slice (trees referencing feature indices the
    /// swapped-in narrower spec no longer provides), and a healthy
    /// candidate that passes. Rejections are typed, counted, and leave the
    /// incumbent serving.
    #[test]
    fn gatekeeper_rejects_nan_and_panicking_candidates_with_typed_reasons() {
        let engine = Engine::start(
            TrainedRegressor::Harmonic { window: 5 },
            EngineConfig {
                shards: 1,
                ..Default::default()
            },
        );
        engine.install_gatekeeper(Gatekeeper::new(golden_dataset(40), 1.5));

        // NaN candidate: boosting from NaN targets yields a NaN base score,
        // so every prediction is NaN — deterministically. (Built below the
        // validating framework API, the way a buggy retraining pipeline
        // would.)
        let xs = vec![vec![1000.0, 2000.0]; 20];
        let ys = vec![f64::NAN; 20];
        let nan_candidate = TrainedRegressor::Gdbt {
            model: lumos5g_ml::GbdtRegressor::fit(&xs, &ys, &lumos5g::quick_gbdt()),
            spec: FeatureSpec::new(FeatureSet::L),
        };
        assert_eq!(
            engine.guarded_swap(nan_candidate),
            Err(SwapRejected::NonFinite)
        );

        // Panic candidate: trained on the wide LMC rows (its splits use
        // throughput-history features at indices ≥ 2), then re-labelled
        // with the 2-dim L spec — golden replay indexes out of bounds.
        let wide = train_gbdt(FeatureSet::LMC, &golden_dataset(60));
        let TrainedRegressor::Gdbt { model, .. } = wide else {
            panic!("trained a GDBT");
        };
        let panic_candidate = TrainedRegressor::Gdbt {
            model,
            spec: FeatureSpec::new(FeatureSet::L),
        };
        assert_eq!(
            engine.guarded_swap(panic_candidate),
            Err(SwapRejected::Panicked)
        );

        // Both rejections left version 1 serving, typed and counted.
        assert_eq!(engine.registry().version(), 1);
        let mut expect = [0u64; SwapRejected::COUNT];
        expect[SwapRejected::Panicked.index()] = 1;
        expect[SwapRejected::NonFinite.index()] = 1;
        assert_eq!(engine.swap_rejected_by_reason(), expect);

        // A healthy candidate still clears the gate.
        assert_eq!(
            engine.guarded_swap(TrainedRegressor::Harmonic { window: 5 }),
            Ok(2)
        );
        let (report, _rx) = engine.shutdown();
        assert_eq!(report.swap_rejected, 2);
        assert_eq!(report.swap_rejected_by, expect);
    }

    #[test]
    fn mae_regressions_are_refused_against_the_seeded_incumbent() {
        let engine = Engine::start(
            TrainedRegressor::Gdbt {
                model: match train_gbdt(FeatureSet::L, &golden_dataset(60)) {
                    TrainedRegressor::Gdbt { model, .. } => model,
                    _ => unreachable!(),
                },
                spec: FeatureSpec::new(FeatureSet::L),
            },
            EngineConfig {
                shards: 1,
                ..Default::default()
            },
        );
        // The incumbent GDBT was trained on the golden slice itself, so its
        // golden MAE is tiny; a harmonic-mean candidate cannot compete.
        engine.install_gatekeeper(Gatekeeper::new(golden_dataset(60), 1.1));
        assert_eq!(
            engine.guarded_swap(TrainedRegressor::Harmonic { window: 5 }),
            Err(SwapRejected::MaeRegression)
        );
        assert_eq!(engine.registry().version(), 1);
        let (report, _rx) = engine.shutdown();
        assert_eq!(report.swap_rejected, 1);
        assert_eq!(
            report.swap_rejected_by[SwapRejected::MaeRegression.index()],
            1
        );
    }

    /// `rollback_model` restores the previous on-disk generation and the
    /// restored model serves bit-identically to a fresh engine running the
    /// same model.
    #[test]
    fn rollback_restores_the_prior_generation_bit_identically() {
        let dir = std::env::temp_dir().join(format!("l5gm-engine-rollback-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let engine = Engine::start(
            train_gbdt(FeatureSet::L, &golden_dataset(60)),
            EngineConfig {
                shards: 1,
                ..Default::default()
            },
        );
        engine.registry().store(&dir).unwrap(); // gen 1: the GDBT
        assert_eq!(
            engine.guarded_swap(TrainedRegressor::Harmonic { window: 9 }),
            Ok(2)
        );
        engine.registry().store(&dir).unwrap(); // gen 2: the bad harmonic

        let (version, generation) = engine.rollback_model(&dir).unwrap();
        assert_eq!(generation, 1, "restored the previous durable generation");
        assert_eq!(version, 3, "published as a new version, never backwards");
        assert!(matches!(
            *engine.registry().current().regressor,
            TrainedRegressor::Gdbt { .. }
        ));

        // The rolled-back engine answers a fresh UE bit-identically to a
        // reference engine started on an identically retrained model
        // (training is deterministic, and the checkpoint codec round-trips
        // bit-exactly).
        let reference = Engine::start(
            train_gbdt(FeatureSet::L, &golden_dataset(60)),
            EngineConfig {
                shards: 1,
                ..Default::default()
            },
        );
        for t in 0..12 {
            assert!(engine.submit(42, rec(2, t, 40.0 + 7.0 * t as f64)));
            assert!(reference.submit(42, rec(2, t, 40.0 + 7.0 * t as f64)));
        }
        let (_, rolled) = engine.shutdown();
        let (_, fresh) = reference.shutdown();
        let bits = |rx: Receiver<Prediction>| -> Vec<Option<u64>> {
            rx.iter()
                .filter(|p| p.ue == 42)
                .map(|p| p.predicted_mbps.map(f64::to_bits))
                .collect()
        };
        let rolled_bits = bits(rolled);
        assert!(
            rolled_bits.iter().any(|b| b.is_some()),
            "the restored GDBT must actually predict"
        );
        assert_eq!(rolled_bits, bits(fresh));

        // A rollback with no earlier durable generation is a typed error.
        let engine2 = Engine::start(
            TrainedRegressor::Harmonic { window: 3 },
            EngineConfig {
                shards: 1,
                ..Default::default()
            },
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        assert!(engine2.rollback_model(&dir).is_err());
        engine2.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deadline_policy_reports_shed_stale() {
        // A generous budget: nothing real gets shed, but the policy plumbs
        // through to the shard and the report.
        let engine = Engine::start(
            TrainedRegressor::Harmonic { window: 5 },
            EngineConfig {
                shards: 2,
                queue_capacity: 64,
                policy: OverloadPolicy::Deadline {
                    max_age: Duration::from_secs(3600),
                },
                ..Default::default()
            },
        );
        for t in 0..50 {
            assert!(engine.submit(3, rec(1, t, 100.0)));
        }
        let (report, responses) = engine.shutdown();
        assert_eq!(report.shed_stale, 0);
        assert_eq!(report.processed, 50);
        assert_eq!(responses.iter().count(), 50);
    }
}
