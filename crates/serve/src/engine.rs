//! The serving engine: shard pool, UE-affinity routing, lifecycle and
//! aggregate reporting.

use crate::metrics::{LatencyHistogram, MetricsSnapshot, ShardMetrics};
use crate::queue::{IngestQueue, OverloadPolicy};
use crate::registry::ModelRegistry;
use crate::shard::{run_shard, Ingest, Prediction};
use crossbeam::channel::{self, Receiver};
use lumos5g::{FeatureSet, FeatureSpec, TrainedRegressor};
use lumos5g_sim::Record;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Engine sizing and behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Worker shards (≥ 1). UEs are hash-partitioned across them.
    pub shards: usize,
    /// Bounded ingest-queue capacity per shard.
    pub queue_capacity: usize,
    /// What to do when a shard queue is full.
    pub policy: OverloadPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            shards: 4,
            queue_capacity: 1024,
            policy: OverloadPolicy::Block,
        }
    }
}

/// Final aggregate report returned by [`Engine::shutdown`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineReport {
    /// Per-shard final snapshots.
    pub shards: Vec<MetricsSnapshot>,
    /// Records ingested across shards.
    pub processed: u64,
    /// Predictions emitted across shards.
    pub predictions: u64,
    /// Records shed at the front door.
    pub shed: u64,
    /// Aggregate p50 end-to-end latency, ns.
    pub p50_ns: u64,
    /// Aggregate p95 end-to-end latency, ns.
    pub p95_ns: u64,
    /// Aggregate p99 end-to-end latency, ns.
    pub p99_ns: u64,
    /// Online mean absolute next-second error, Mbps.
    pub mae_mbps: Option<f64>,
}

struct ShardHandle {
    queue: IngestQueue<Ingest>,
    metrics: Arc<ShardMetrics>,
    worker: JoinHandle<()>,
}

/// A running serving engine. See the crate docs for the architecture.
pub struct Engine {
    shards: Vec<ShardHandle>,
    registry: Arc<ModelRegistry>,
    responses: Receiver<Prediction>,
}

impl Engine {
    /// Start the engine serving `model` under `cfg`.
    ///
    /// The feature spec is taken from the model itself so the serving path
    /// can never disagree with training; feature-free models (harmonic
    /// mean) fall back to the location-only spec for window sizing.
    pub fn start(model: TrainedRegressor, cfg: EngineConfig) -> Engine {
        Self::start_with_registry(Arc::new(ModelRegistry::new(model)), cfg)
    }

    /// Start the engine from an existing registry — the cold-start path:
    /// `ModelRegistry::load_dir` restores a saved model (version number and
    /// all) and the engine serves it with zero retraining, bit-identical to
    /// the engine that saved it.
    pub fn start_with_registry(registry: Arc<ModelRegistry>, cfg: EngineConfig) -> Engine {
        let spec = registry
            .current()
            .regressor
            .spec()
            .copied()
            .unwrap_or_else(|| FeatureSpec::new(FeatureSet::L));
        let (out_tx, out_rx) = channel::unbounded();
        let nshards = cfg.shards.max(1);
        let mut shards = Vec::with_capacity(nshards);
        for shard_id in 0..nshards {
            let (tx, rx) = channel::bounded(cfg.queue_capacity.max(1));
            let metrics = Arc::new(ShardMetrics::new());
            let worker = {
                let registry = registry.clone();
                let out = out_tx.clone();
                let metrics = metrics.clone();
                std::thread::Builder::new()
                    .name(format!("serve-shard-{shard_id}"))
                    .spawn(move || run_shard(shard_id, spec, registry, rx, out, metrics))
                    .expect("spawn shard worker")
            };
            shards.push(ShardHandle {
                queue: IngestQueue::new(tx, cfg.policy),
                metrics,
                worker,
            });
        }
        drop(out_tx); // shards hold the only senders
        Engine {
            shards,
            registry,
            responses: out_rx,
        }
    }

    /// The model registry (hot-swap entry point).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Shards running.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, ue: u64) -> usize {
        // SplitMix64 finalizer: avalanche the UE id so sequential ids
        // spread evenly across shards.
        let mut z = ue.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ((z ^ (z >> 31)) % self.shards.len() as u64) as usize
    }

    /// Submit one record for `ue`. Returns `false` when the record was shed
    /// under [`OverloadPolicy::Shed`].
    pub fn submit(&self, ue: u64, record: Record) -> bool {
        let shard = self.shard_of(ue);
        self.shards[shard].queue.push(Ingest {
            ue,
            record,
            enqueued: Instant::now(),
        })
    }

    /// The response stream (one [`Prediction`] per accepted record).
    pub fn responses(&self) -> &Receiver<Prediction> {
        &self.responses
    }

    /// Point-in-time per-shard snapshots (counters + queue-depth gauges).
    pub fn snapshot(&self) -> Vec<MetricsSnapshot> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.metrics.snapshot(i, s.queue.depth()))
            .collect()
    }

    /// Stop ingest, drain the workers and return the final report.
    ///
    /// Buffered responses remain readable on the receiver returned inside
    /// the tuple until it is dropped.
    pub fn shutdown(self) -> (EngineReport, Receiver<Prediction>) {
        let Engine {
            shards,
            registry: _,
            responses,
        } = self;
        let mut snapshots = Vec::with_capacity(shards.len());
        let agg = LatencyHistogram::new();
        let mut shed = 0;
        // Dropping each queue disconnects that shard's ingest channel; the
        // worker drains what is buffered and exits.
        let mut workers = Vec::with_capacity(shards.len());
        for (i, s) in shards.into_iter().enumerate() {
            shed += s.queue.shed_count();
            drop(s.queue);
            workers.push((i, s.metrics, s.worker));
        }
        let mut err_n = 0u64;
        let mut err_milli_sum = 0u64;
        for (i, metrics, worker) in workers {
            worker.join().expect("shard worker panicked");
            agg.merge(&metrics.latency);
            err_n += metrics.err_count.load(std::sync::atomic::Ordering::Relaxed);
            err_milli_sum += metrics
                .abs_err_milli_sum
                .load(std::sync::atomic::Ordering::Relaxed);
            snapshots.push(metrics.snapshot(i, 0));
        }
        let processed = snapshots.iter().map(|s| s.processed).sum();
        let predictions = snapshots.iter().map(|s| s.predictions).sum();
        let report = EngineReport {
            processed,
            predictions,
            shed,
            p50_ns: agg.quantile_ns(0.50),
            p95_ns: agg.quantile_ns(0.95),
            p99_ns: agg.quantile_ns(0.99),
            mae_mbps: if err_n > 0 {
                Some(err_milli_sum as f64 / 1000.0 / err_n as f64)
            } else {
                None
            },
            shards: snapshots,
        };
        (report, responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos5g_sim::{Activity, Record};

    fn rec(pass: u32, t: u32, thpt: f64) -> Record {
        Record {
            area: 1,
            pass_id: pass,
            trajectory: 0,
            t,
            lat: 44.88,
            lon: -93.20,
            gps_accuracy_m: 2.0,
            activity: Activity::Walking,
            moving_speed_mps: 1.4,
            compass_deg: 90.0,
            throughput_mbps: thpt,
            on_5g: true,
            cell_id: 2,
            lte_rsrp_dbm: -95.0,
            nr_ssrsrp_dbm: -80.0,
            horizontal_handoff: false,
            vertical_handoff: false,
            panel_distance_m: 50.0,
            theta_p_deg: 30.0,
            theta_m_deg: 180.0,
            pixel_x: 1000,
            pixel_y: 2000,
            snapped_x_m: 1.0,
            snapped_y_m: 2.0,
            true_x_m: 1.0,
            true_y_m: 2.0,
            true_speed_mps: 1.4,
        }
    }

    #[test]
    fn engine_answers_every_submitted_record() {
        let engine = Engine::start(
            TrainedRegressor::Harmonic { window: 5 },
            EngineConfig {
                shards: 3,
                queue_capacity: 8,
                policy: OverloadPolicy::Block,
            },
        );
        for ue in 0..20u64 {
            for t in 0..5 {
                assert!(engine.submit(ue, rec(ue as u32, t, 100.0)));
            }
        }
        let (report, responses) = engine.shutdown();
        assert_eq!(report.processed, 100);
        assert_eq!(report.shed, 0);
        assert_eq!(responses.iter().count(), 100);
    }

    #[test]
    fn ue_affinity_is_stable_and_spread() {
        let engine = Engine::start(
            TrainedRegressor::Harmonic { window: 5 },
            EngineConfig {
                shards: 4,
                ..Default::default()
            },
        );
        let mut used = [false; 4];
        for ue in 0..64u64 {
            let s = engine.shard_of(ue);
            assert_eq!(s, engine.shard_of(ue), "routing must be deterministic");
            used[s] = true;
        }
        assert!(
            used.iter().all(|&u| u),
            "64 UEs left a shard empty: {used:?}"
        );
        let (report, _rx) = engine.shutdown();
        assert_eq!(report.processed, 0);
    }

    #[test]
    fn shed_policy_counts_overflow() {
        // One shard, tiny queue, no consumer until shutdown: the worker
        // thread drains at its own pace, so flooding must shed.
        let engine = Engine::start(
            TrainedRegressor::Harmonic { window: 5 },
            EngineConfig {
                shards: 1,
                queue_capacity: 1,
                policy: OverloadPolicy::Shed,
            },
        );
        let mut accepted = 0u64;
        for t in 0..20_000 {
            if engine.submit(1, rec(1, t, 100.0)) {
                accepted += 1;
            }
        }
        let (report, responses) = engine.shutdown();
        assert_eq!(report.processed, accepted);
        assert_eq!(report.shed, 20_000 - accepted);
        assert_eq!(responses.iter().count() as u64, accepted);
    }
}
