//! Deterministic fault injection for chaos-testing the serving engine.
//!
//! Real mmWave telemetry is hostile: records arrive malformed, models can
//! be poisoned by bad retrains, and worker threads can die mid-stream. A
//! [`FaultPlan`] reproduces all of that *deterministically*: every fault
//! decision is a pure function of the plan's seed and the identity of the
//! record being served (`(ue, pass_id, t)` for in-shard faults, the replay
//! event index for source corruption). Two runs with the same seed inject
//! the exact same faults at the exact same records, regardless of shard
//! count or thread interleaving — which is what lets `tests/chaos.rs`
//! assert exact `panicked`/`restarted`/`fallbacks`/`rejected` counts.
//!
//! Fault taxonomy (rates in basis points, i.e. per 10 000 records):
//!
//! | fault          | where it bites                 | engine defense        |
//! |----------------|--------------------------------|-----------------------|
//! | `corrupt`      | record mutated at the source   | admission control     |
//! | `poison`       | panic inside session/extract   | quarantine + respond  |
//! | `predict panic`| `predict_one` unwinds          | harmonic fallback     |
//! | `predict nan`  | `predict_one` returns NaN      | harmonic fallback     |
//! | `predict slow` | `predict_one` blows the budget | harmonic fallback     |
//! | `kill`         | worker thread dies             | supervisor respawn    |

use lumos5g_sim::Record;

/// Basis-point denominator: rates are "records per 10 000".
pub const BP_SCALE: u64 = 10_000;

/// Stable identity of one in-flight record, used to key fault decisions so
/// they survive re-sharding and thread interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordKey {
    /// UE the record belongs to.
    pub ue: u64,
    /// Measurement pass.
    pub pass_id: u32,
    /// Second within the pass.
    pub t: u32,
}

impl RecordKey {
    /// Key for a record routed as `ue`.
    pub fn of(ue: u64, record: &Record) -> Self {
        RecordKey {
            ue,
            pass_id: record.pass_id,
            t: record.t,
        }
    }

    fn mixed(&self) -> u64 {
        splitmix(
            self.ue
                ^ (((self.pass_id as u64) << 32) | self.t as u64)
                    .wrapping_mul(0xA24B_AED4_963E_E407),
        )
    }
}

/// What the injector does to the model call for one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictFault {
    /// No fault: the model runs untouched.
    None,
    /// `predict_one` panics (a poisoned model).
    Panic,
    /// `predict_one` returns NaN (a silently broken model).
    Nan,
    /// `predict_one` exceeds the per-call time budget (a stuck model).
    Slow,
}

/// The full fault decision for one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordFault {
    /// Fault applied around the model call.
    pub predict: PredictFault,
    /// Panic inside session update / feature extraction (the record itself
    /// is poison): the shard must quarantine it and keep serving.
    pub poison: bool,
    /// Kill the worker thread after this record is answered: the engine
    /// supervisor must respawn the shard.
    pub kill_worker: bool,
}

impl RecordFault {
    /// The no-fault decision.
    pub const NONE: RecordFault = RecordFault {
        predict: PredictFault::None,
        poison: false,
        kill_worker: false,
    };
}

/// How a source record is corrupted before submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Throughput becomes NaN.
    NanThroughput,
    /// NR SS-RSRP becomes NaN.
    NanRsrp,
    /// Latitude becomes infinite.
    InfiniteCoord,
    /// GPS accuracy becomes an absurd 10 000 km.
    AbsurdGpsAccuracy,
}

/// A seeded, deterministic fault-injection plan.
///
/// All rates default to zero; [`FaultPlan::seeded`] picks a sustained-chaos
/// mix. A plan with all-zero rates is exactly inert: the engine behaves
/// bit-identically to running without one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    /// `predict_one` panic rate, basis points.
    pub predict_panic_bp: u32,
    /// `predict_one` NaN rate, basis points.
    pub predict_nan_bp: u32,
    /// `predict_one` over-budget rate, basis points.
    pub predict_slow_bp: u32,
    /// Poison-record (session/extract panic) rate, basis points.
    pub poison_bp: u32,
    /// Worker-kill rate, basis points.
    pub kill_bp: u32,
    /// Source-corruption rate, basis points.
    pub corrupt_bp: u32,
}

// Distinct salts so the per-record rolls for each fault type are
// independent draws from the same seed.
const SALT_PREDICT: u64 = 0x7065_7264_6963_7401;
const SALT_POISON: u64 = 0x706f_6973_6f6e_5f02;
const SALT_KILL: u64 = 0x6b69_6c6c_5f77_6b03;
const SALT_CORRUPT: u64 = 0x636f_7272_7570_7404;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An inert plan (all rates zero) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            predict_panic_bp: 0,
            predict_nan_bp: 0,
            predict_slow_bp: 0,
            poison_bp: 0,
            kill_bp: 0,
            corrupt_bp: 0,
        }
    }

    /// The standard sustained-chaos mix used by `serve_bench --chaos` and
    /// the chaos test suite: ~0.3 % model panics, ~0.3 % NaN predictions,
    /// ~0.2 % over-budget calls, ~0.1 % poison records, ~0.02 % worker
    /// kills and ~0.5 % corrupt source records.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            predict_panic_bp: 30,
            predict_nan_bp: 30,
            predict_slow_bp: 20,
            poison_bp: 10,
            kill_bp: 2,
            corrupt_bp: 50,
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A uniform roll in `0..BP_SCALE` for `key` under `salt`.
    fn roll(&self, salt: u64, mixed_key: u64) -> u64 {
        splitmix(self.seed ^ splitmix(salt) ^ mixed_key) % BP_SCALE
    }

    /// The fault decision for one in-shard record. Pure: same plan + same
    /// key → same decision, on any shard, in any run.
    pub fn fault_for(&self, key: RecordKey) -> RecordFault {
        let mixed = key.mixed();
        let poison = self.roll(SALT_POISON, mixed) < self.poison_bp as u64;
        let kill_worker = self.roll(SALT_KILL, mixed) < self.kill_bp as u64;
        // One roll splits across the three predict faults so their rates
        // never overlap on a single record.
        let p = self.roll(SALT_PREDICT, mixed);
        let (a, b, c) = (
            self.predict_panic_bp as u64,
            self.predict_nan_bp as u64,
            self.predict_slow_bp as u64,
        );
        let predict = if p < a {
            PredictFault::Panic
        } else if p < a + b {
            PredictFault::Nan
        } else if p < a + b + c {
            PredictFault::Slow
        } else {
            PredictFault::None
        };
        RecordFault {
            predict,
            poison,
            kill_worker,
        }
    }

    /// The corruption (if any) applied to the source record at replay
    /// position `event_index`.
    pub fn corruption_at(&self, event_index: u64) -> Option<Corruption> {
        if self.corrupt_bp == 0 {
            return None;
        }
        let mixed = splitmix(event_index.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        if self.roll(SALT_CORRUPT, mixed) >= self.corrupt_bp as u64 {
            return None;
        }
        Some(match splitmix(mixed ^ self.seed) % 4 {
            0 => Corruption::NanThroughput,
            1 => Corruption::NanRsrp,
            2 => Corruption::InfiniteCoord,
            _ => Corruption::AbsurdGpsAccuracy,
        })
    }

    /// Corrupt `record` in place per [`Self::corruption_at`]; returns true
    /// when a corruption was applied.
    pub fn corrupt_record(&self, event_index: u64, record: &mut Record) -> bool {
        match self.corruption_at(event_index) {
            None => false,
            Some(Corruption::NanThroughput) => {
                record.throughput_mbps = f64::NAN;
                true
            }
            Some(Corruption::NanRsrp) => {
                record.nr_ssrsrp_dbm = f64::NAN;
                true
            }
            Some(Corruption::InfiniteCoord) => {
                record.lat = f64::INFINITY;
                true
            }
            Some(Corruption::AbsurdGpsAccuracy) => {
                record.gps_accuracy_m = 1e7;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(ue: u64, pass_id: u32, t: u32) -> RecordKey {
        RecordKey { ue, pass_id, t }
    }

    #[test]
    fn decisions_are_deterministic_for_a_seed() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        for ue in 0..50 {
            for t in 0..200 {
                let k = key(ue, 3, t);
                assert_eq!(a.fault_for(k), b.fault_for(k));
            }
        }
        for i in 0..10_000u64 {
            assert_eq!(a.corruption_at(i), b.corruption_at(i));
        }
    }

    #[test]
    fn different_seeds_disagree() {
        let a = FaultPlan::seeded(1);
        let b = FaultPlan::seeded(2);
        let mut same = 0;
        let mut total = 0;
        for ue in 0..20 {
            for t in 0..500 {
                let k = key(ue, 1, t);
                total += 1;
                if a.fault_for(k) == b.fault_for(k) {
                    same += 1;
                }
            }
        }
        // Faults are rare, so most records agree on "no fault" — but the
        // injected sets must not be identical.
        assert!(same < total, "seeds 1 and 2 injected identical faults");
    }

    #[test]
    fn inert_plan_injects_nothing() {
        let p = FaultPlan::new(7);
        for ue in 0..20 {
            for t in 0..500 {
                assert_eq!(p.fault_for(key(ue, 1, t)), RecordFault::NONE);
            }
        }
        for i in 0..5_000u64 {
            assert_eq!(p.corruption_at(i), None);
        }
    }

    #[test]
    fn seeded_rates_land_near_target() {
        let p = FaultPlan::seeded(9);
        let n = 200_000u64;
        let mut panics = 0u64;
        let mut kills = 0u64;
        let mut corrupt = 0u64;
        for i in 0..n {
            let f = p.fault_for(key(i % 64, (i / 64) as u32, i as u32));
            if f.predict == PredictFault::Panic {
                panics += 1;
            }
            if f.kill_worker {
                kills += 1;
            }
            if p.corruption_at(i).is_some() {
                corrupt += 1;
            }
        }
        let bp = |c: u64| c * BP_SCALE / n;
        assert!(
            (15..=45).contains(&bp(panics)),
            "panic rate {} bp",
            bp(panics)
        );
        assert!(bp(kills) <= 6, "kill rate {} bp", bp(kills));
        assert!(
            (30..=75).contains(&bp(corrupt)),
            "corrupt rate {} bp",
            bp(corrupt)
        );
    }

    #[test]
    fn corrupt_record_produces_inadmissible_values() {
        let p = FaultPlan::seeded(11);
        let mut kinds = std::collections::HashSet::new();
        for i in 0..50_000u64 {
            if let Some(c) = p.corruption_at(i) {
                kinds.insert(format!("{c:?}"));
            }
        }
        // All four corruption modes appear over a long stream.
        assert_eq!(kinds.len(), 4, "kinds seen: {kinds:?}");
    }
}
