//! Per-UE session state: the sliding record window that feeds the `C`
//! feature group, plus connection/staleness bookkeeping.

use lumos5g_sim::Record;
use std::collections::VecDeque;

/// A pending one-step-ahead prediction awaiting its ground truth (the next
/// second's measured throughput), used for online error tracking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingPrediction {
    /// Pass the prediction was made in.
    pub pass_id: u32,
    /// Second the prediction was made at (it predicts `t + 1`).
    pub t: u32,
    /// Predicted next-second throughput, Mbps.
    pub predicted_mbps: f64,
}

/// Streaming state for one UE.
///
/// The window only ever holds records from one contiguous run of seconds of
/// one pass — exactly the invariant `FeatureSpec::extract` enforces offline
/// via its history guard. Discontinuities (new pass, missing seconds,
/// reordered arrivals) reset the window instead of feeding the model a
/// spliced history.
#[derive(Debug)]
pub struct Session {
    window: VecDeque<Record>,
    capacity: usize,
    /// Extracted feature vectors for Seq2Seq serving, one per contiguous
    /// second, oldest first. Empty unless the engine serves a sequence
    /// model (`feature_capacity > 0`).
    features: VecDeque<Vec<f64>>,
    feature_capacity: usize,
    /// Serving cell of the newest record (1000 = LTE macro).
    pub last_cell: u32,
    /// Whether the UE was on 5G NR at the newest record.
    pub on_5g: bool,
    /// Newest second observed.
    pub last_t: Option<u32>,
    /// Prediction awaiting next-second ground truth.
    pub pending: Option<PendingPrediction>,
    /// Times the window was reset by a discontinuity.
    pub resets: u64,
}

impl Session {
    /// New session retaining at most `capacity` records (use
    /// `FeatureSpec::required_window()`).
    pub fn new(capacity: usize) -> Self {
        Session::for_sequences(capacity, 0)
    }

    /// New session that additionally retains the last `input_len` extracted
    /// feature vectors — the encoder history a Seq2Seq model consumes. Pass
    /// `input_len == 0` for single-row families (no feature history kept).
    pub fn for_sequences(capacity: usize, input_len: usize) -> Self {
        Session {
            window: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            features: VecDeque::with_capacity(input_len),
            feature_capacity: input_len,
            last_cell: 1000,
            on_5g: false,
            last_t: None,
            pending: None,
            resets: 0,
        }
    }

    /// Ingest one record, maintaining the contiguity invariant.
    ///
    /// Returns the absolute error of the previously pending prediction when
    /// this record delivers its ground truth (same pass, `t` exactly one
    /// ahead), for the shard's error tracker.
    pub fn push(&mut self, record: Record) -> Option<f64> {
        // `checked_add`: at `t == u32::MAX` the next-second test must read
        // as a discontinuity (wrap → window reset), not overflow-panic in
        // debug builds.
        let truth_err = match self.pending.take() {
            Some(p) if p.pass_id == record.pass_id && p.t.checked_add(1) == Some(record.t) => {
                Some((p.predicted_mbps - record.throughput_mbps).abs())
            }
            _ => None,
        };

        let contiguous = match self.window.back() {
            Some(prev) => prev.pass_id == record.pass_id && prev.t.checked_add(1) == Some(record.t),
            None => true,
        };
        if !contiguous {
            self.window.clear();
            // A spliced record window would already be rejected by the
            // extractor, but the feature history must reset with it: its
            // entries map to consecutive seconds of one pass, and a gap
            // would silently misalign the encoder input.
            self.features.clear();
            self.resets += 1;
        }
        self.last_cell = record.cell_id;
        self.on_5g = record.on_5g;
        self.last_t = Some(record.t);
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(record);
        truth_err
    }

    /// The current window, oldest first (contiguous slice).
    pub fn window(&mut self) -> &[Record] {
        self.window.make_contiguous()
    }

    /// Harmonic mean of the windowed throughputs — the session-local
    /// fallback predictor (FESTIVE/MPC-style) used when the served model
    /// panics, returns non-finite, or blows its time budget. Same epsilon
    /// clamp and oldest-to-newest summation order as
    /// `lumos5g_ml::HarmonicMeanPredictor`, so the degraded path is as
    /// deterministic as the healthy one. `None` only while the window is
    /// empty.
    pub fn harmonic_estimate(&self) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let inv_sum: f64 = self
            .window
            .iter()
            .map(|r| 1.0 / r.throughput_mbps.max(1e-6))
            .sum();
        Some(self.window.len() as f64 / inv_sum)
    }

    /// Append one extracted feature vector to the sequence history.
    ///
    /// Call exactly once per record whose window admitted an extraction;
    /// `push` clears the history on any discontinuity, so consecutive
    /// entries always describe consecutive seconds — the online analogue of
    /// the offline sliding windows `build_sequences` emits.
    pub fn record_features(&mut self, features: Vec<f64>) {
        if self.feature_capacity == 0 {
            return;
        }
        if self.features.len() == self.feature_capacity {
            self.features.pop_front();
        }
        self.features.push_back(features);
    }

    /// The retained feature history, oldest first (contiguous slice).
    pub fn feature_history(&mut self) -> &[Vec<f64>] {
        self.features.make_contiguous()
    }

    /// Feature vectors currently retained.
    pub fn feature_len(&self) -> usize {
        self.features.len()
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// True once the window can satisfy a spec needing `required` records.
    pub fn is_warm(&self, required: usize) -> bool {
        self.window.len() >= required
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumos5g_sim::Activity;

    fn rec(pass: u32, t: u32, thpt: f64) -> Record {
        Record {
            area: 1,
            pass_id: pass,
            trajectory: 0,
            t,
            lat: 44.88,
            lon: -93.20,
            gps_accuracy_m: 2.0,
            activity: Activity::Walking,
            moving_speed_mps: 1.4,
            compass_deg: 90.0,
            throughput_mbps: thpt,
            on_5g: true,
            cell_id: 2,
            lte_rsrp_dbm: -95.0,
            nr_ssrsrp_dbm: -80.0,
            horizontal_handoff: false,
            vertical_handoff: false,
            panel_distance_m: 50.0,
            theta_p_deg: 30.0,
            theta_m_deg: 180.0,
            pixel_x: 1000,
            pixel_y: 2000,
            snapped_x_m: 1.0,
            snapped_y_m: 2.0,
            true_x_m: 1.0,
            true_y_m: 2.0,
            true_speed_mps: 1.4,
        }
    }

    #[test]
    fn window_is_bounded_and_ordered() {
        let mut s = Session::new(3);
        for t in 0..5 {
            s.push(rec(1, t, t as f64));
        }
        let w: Vec<u32> = s.window().iter().map(|r| r.t).collect();
        assert_eq!(w, vec![2, 3, 4]);
    }

    #[test]
    fn pass_change_resets_window() {
        let mut s = Session::new(4);
        s.push(rec(1, 10, 1.0));
        s.push(rec(1, 11, 2.0));
        s.push(rec(2, 0, 3.0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.resets, 1);
    }

    #[test]
    fn time_gap_resets_window() {
        let mut s = Session::new(4);
        s.push(rec(1, 10, 1.0));
        s.push(rec(1, 12, 2.0)); // second 11 lost
        assert_eq!(s.len(), 1);
        assert_eq!(s.resets, 1);
    }

    #[test]
    fn pending_prediction_matches_next_second_only() {
        let mut s = Session::new(4);
        s.push(rec(1, 10, 1.0));
        s.pending = Some(PendingPrediction {
            pass_id: 1,
            t: 10,
            predicted_mbps: 500.0,
        });
        let err = s.push(rec(1, 11, 480.0));
        assert_eq!(err, Some(20.0));
        // A stale pending (gap) never matches.
        s.pending = Some(PendingPrediction {
            pass_id: 1,
            t: 11,
            predicted_mbps: 500.0,
        });
        assert_eq!(s.push(rec(1, 13, 480.0)), None);
    }

    #[test]
    fn t_at_u32_max_resets_instead_of_overflowing() {
        let mut s = Session::new(4);
        s.push(rec(1, u32::MAX - 1, 1.0));
        s.push(rec(1, u32::MAX, 2.0));
        assert_eq!(s.len(), 2, "MAX-1 → MAX is contiguous");
        // A wrap to t=0 must read as a discontinuity, not a debug panic.
        s.pending = Some(PendingPrediction {
            pass_id: 1,
            t: u32::MAX,
            predicted_mbps: 100.0,
        });
        assert_eq!(
            s.push(rec(1, 0, 3.0)),
            None,
            "wrapped t never settles truth"
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.resets, 1);
    }

    #[test]
    fn harmonic_estimate_tracks_the_window() {
        let mut s = Session::new(5);
        assert_eq!(s.harmonic_estimate(), None);
        s.push(rec(1, 0, 100.0));
        s.push(rec(1, 1, 300.0));
        // HM(100, 300) = 2 / (1/100 + 1/300) = 150.
        let hm = s.harmonic_estimate().unwrap();
        assert!((hm - 150.0).abs() < 1e-9, "hm = {hm}");
        // Outage seconds are epsilon-clamped, never NaN/inf.
        s.push(rec(1, 2, 0.0));
        let hm = s.harmonic_estimate().unwrap();
        assert!(hm.is_finite() && hm >= 0.0);
    }

    #[test]
    fn feature_history_is_bounded_and_resets_on_discontinuity() {
        let mut s = Session::for_sequences(4, 3);
        for t in 0..5 {
            s.push(rec(1, t, 100.0));
            s.record_features(vec![t as f64]);
        }
        assert_eq!(s.feature_len(), 3);
        let hist: Vec<f64> = s.feature_history().iter().map(|v| v[0]).collect();
        assert_eq!(hist, vec![2.0, 3.0, 4.0]);
        // A time gap clears the feature history along with the window.
        s.push(rec(1, 7, 100.0));
        assert_eq!(s.feature_len(), 0);
        assert_eq!(s.resets, 1);
        // ... and a pass change does too.
        s.record_features(vec![7.0]);
        s.push(rec(2, 0, 100.0));
        assert_eq!(s.feature_len(), 0);
    }

    #[test]
    fn single_row_sessions_never_retain_features() {
        let mut s = Session::new(4);
        s.push(rec(1, 0, 100.0));
        s.record_features(vec![1.0, 2.0]);
        assert_eq!(s.feature_len(), 0);
        assert!(s.feature_history().is_empty());
    }

    #[test]
    fn connection_state_tracks_newest_record() {
        let mut s = Session::new(2);
        let mut r = rec(1, 0, 1.0);
        r.cell_id = 1000;
        r.on_5g = false;
        s.push(r);
        assert!(!s.on_5g);
        assert_eq!(s.last_cell, 1000);
        s.push(rec(1, 1, 2.0));
        assert!(s.on_5g);
        assert_eq!(s.last_cell, 2);
    }
}
