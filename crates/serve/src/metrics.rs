//! Lock-free serving metrics: per-shard counters, log-bucketed latency
//! histograms and online prediction-error tracking.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two octave (≈ ±6 % value resolution).
const SUBBUCKETS: usize = 8;
/// Octaves covered: 2^0 .. 2^63 nanoseconds.
const OCTAVES: usize = 64;

/// A fixed-size log-bucketed histogram of nanosecond latencies.
///
/// Recording is a single relaxed atomic increment, so shards can share one
/// histogram (or keep their own and merge at snapshot time). Quantiles are
/// read from the bucket boundaries — accurate to one sub-bucket (~6 %),
/// plenty for p50/p95/p99 reporting.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("mean_ns", &self.mean_ns())
            .finish()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..OCTAVES * SUBBUCKETS)
                .map(|_| AtomicU64::new(0))
                .collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        let v = ns.max(1);
        let octave = 63 - v.leading_zeros() as usize;
        let frac = if octave >= 3 {
            ((v >> (octave - 3)) & 0x7) as usize
        } else {
            // Values < 8 ns sit in the low octaves where the sub-bucket
            // shift would underflow; linear within the octave is exact.
            (v as usize) & 0x7
        };
        octave * SUBBUCKETS + frac
    }

    /// Representative (upper-edge) value of a bucket, ns.
    fn bucket_value(idx: usize) -> u64 {
        let octave = idx / SUBBUCKETS;
        let frac = (idx % SUBBUCKETS) as u64;
        if octave >= 3 {
            (1u64 << octave) + ((frac + 1) << (octave - 3))
        } else {
            frac + 1
        }
    }

    /// Record one latency.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency, ns (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`), ns. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_value(i);
            }
        }
        Self::bucket_value(OCTAVES * SUBBUCKETS - 1)
    }

    /// Fold another histogram into this one (for cross-shard aggregation).
    pub fn merge(&self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter().zip(&other.buckets) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Counters owned by one shard worker.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Records ingested.
    pub processed: AtomicU64,
    /// Predictions emitted (warm sessions).
    pub predictions: AtomicU64,
    /// Records absorbed while a session was still warming up.
    pub warmups: AtomicU64,
    /// Session-window resets caused by stream discontinuities.
    pub resets: AtomicU64,
    /// End-to-end latency (enqueue → prediction emitted).
    pub latency: LatencyHistogram,
    /// Sum of |predicted − measured| next-second errors, milli-Mbps
    /// fixed-point (atomic f64 without portable intrinsics).
    pub abs_err_milli_sum: AtomicU64,
    /// Errors accumulated into [`Self::abs_err_milli_sum`].
    pub err_count: AtomicU64,
}

impl ShardMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Track one realized next-second absolute error, Mbps.
    pub fn record_error(&self, abs_err_mbps: f64) {
        let milli = (abs_err_mbps * 1000.0).round().max(0.0) as u64;
        self.abs_err_milli_sum.fetch_add(milli, Ordering::Relaxed);
        self.err_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Mean absolute next-second error so far, Mbps (None before any truth
    /// arrived).
    pub fn mae_mbps(&self) -> Option<f64> {
        let n = self.err_count.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        Some(self.abs_err_milli_sum.load(Ordering::Relaxed) as f64 / 1000.0 / n as f64)
    }
}

/// A point-in-time view of one shard for operator reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Records ingested.
    pub processed: u64,
    /// Predictions emitted.
    pub predictions: u64,
    /// Warm-up records (no prediction possible yet).
    pub warmups: u64,
    /// Window resets.
    pub resets: u64,
    /// Ingest-queue depth at snapshot time.
    pub queue_depth: usize,
    /// Median latency, ns.
    pub p50_ns: u64,
    /// 95th-percentile latency, ns.
    pub p95_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
    /// Online mean absolute error, Mbps.
    pub mae_mbps: Option<f64>,
}

impl ShardMetrics {
    /// Snapshot this shard's counters.
    pub fn snapshot(&self, shard: usize, queue_depth: usize) -> MetricsSnapshot {
        MetricsSnapshot {
            shard,
            processed: self.processed.load(Ordering::Relaxed),
            predictions: self.predictions.load(Ordering::Relaxed),
            warmups: self.warmups.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            queue_depth,
            p50_ns: self.latency.quantile_ns(0.50),
            p95_ns: self.latency.quantile_ns(0.95),
            p99_ns: self.latency.quantile_ns(0.99),
            mae_mbps: self.mae_mbps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record(ns);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        // Log-bucketed: one sub-bucket (~12.5 %) of slack either side.
        assert!((400..=640).contains(&p50), "p50 = {p50}");
        assert!((900..=1152).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        assert_eq!(h.mean_ns(), 500);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for _ in 0..10 {
            a.record(100);
            b.record(10_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 20);
        assert!(a.quantile_ns(0.25) <= 128);
        assert!(a.quantile_ns(0.95) >= 8_192);
    }

    #[test]
    fn error_tracking_reports_mae() {
        let m = ShardMetrics::new();
        assert_eq!(m.mae_mbps(), None);
        m.record_error(100.0);
        m.record_error(50.0);
        let mae = m.mae_mbps().unwrap();
        assert!((mae - 75.0).abs() < 1e-9, "mae = {mae}");
    }

    #[test]
    fn tiny_latencies_do_not_panic() {
        let h = LatencyHistogram::new();
        for ns in 0..16 {
            h.record(ns);
        }
        assert_eq!(h.count(), 16);
        assert!(h.quantile_ns(1.0) >= 8);
    }
}
