//! Lock-free serving metrics: per-shard counters, log-bucketed latency
//! histograms and online prediction-error tracking.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two octave (≈ ±6 % value resolution).
const SUBBUCKETS: usize = 8;
/// Values `1..=LINEAR_MAX` ns get one exact bucket each; the sub-bucket
/// shift `v >> (octave - 3)` only makes sense once an octave holds at least
/// `SUBBUCKETS` distinct values, i.e. from octave 4 (values ≥ 16) up.
const LINEAR_MAX: u64 = 15;
/// First octave that is sub-bucketed (values `16..=31`).
const FIRST_OCTAVE: usize = 4;
/// Sub-bucketed octaves: 2^4 .. 2^63 nanoseconds.
const OCTAVES: usize = 64 - FIRST_OCTAVE;
/// Total bucket count: 15 linear + 60 octaves × 8 sub-buckets.
const NBUCKETS: usize = LINEAR_MAX as usize + OCTAVES * SUBBUCKETS;

/// A fixed-size log-bucketed histogram of nanosecond latencies.
///
/// Recording is a single relaxed atomic increment, so shards can share one
/// histogram (or keep their own and merge at snapshot time). Quantiles are
/// read from the bucket boundaries — accurate to one sub-bucket (~6 %),
/// plenty for p50/p95/p99 reporting.
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count())
            .field("mean_ns", &self.mean_ns())
            .finish()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    fn bucket_of(ns: u64) -> usize {
        let v = ns.max(1);
        if v <= LINEAR_MAX {
            // One exact bucket per value — the old `(v as usize) & 0x7`
            // fallback folded octaves 0–3 onto each other (e.g. 1 ns and
            // 9 ns shared a bucket) and disagreed with `bucket_value`.
            return (v - 1) as usize;
        }
        let octave = 63 - v.leading_zeros() as usize;
        let frac = ((v >> (octave - 3)) & 0x7) as usize;
        LINEAR_MAX as usize + (octave - FIRST_OCTAVE) * SUBBUCKETS + frac
    }

    /// Inclusive upper edge of a bucket, ns: the largest value that
    /// `bucket_of` maps to `idx` (so `bucket_of(bucket_value(idx)) == idx`
    /// for every index, and edges strictly increase).
    fn bucket_value(idx: usize) -> u64 {
        if idx < LINEAR_MAX as usize {
            return idx as u64 + 1;
        }
        let rest = idx - LINEAR_MAX as usize;
        let octave = FIRST_OCTAVE + rest / SUBBUCKETS;
        let frac = (rest % SUBBUCKETS) as u64;
        // Written so the top bucket (octave 63, frac 7) lands exactly on
        // u64::MAX instead of overflowing: 2^o − 1 + (f+1)·2^(o−3).
        ((1u64 << octave) - 1) + ((frac + 1) << (octave - 3))
    }

    /// Record one latency.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency, ns (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Approximate `q`-quantile (`0.0 ..= 1.0`), ns. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_value(i);
            }
        }
        Self::bucket_value(NBUCKETS - 1)
    }

    /// Fold another histogram into this one (for cross-shard aggregation).
    pub fn merge(&self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter().zip(&other.buckets) {
            a.fetch_add(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Counters owned by one shard worker.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Records ingested.
    pub processed: AtomicU64,
    /// Predictions emitted (warm sessions).
    pub predictions: AtomicU64,
    /// Records absorbed while a session was still warming up.
    pub warmups: AtomicU64,
    /// Session-window resets caused by stream discontinuities.
    pub resets: AtomicU64,
    /// Poison records whose processing panicked inside the shard's
    /// per-record isolation (the record is quarantined, the session rebuilt
    /// cold, and a degraded response still emitted).
    pub quarantined: AtomicU64,
    /// Responses served by the session-local harmonic fallback because the
    /// model panicked, returned non-finite, or blew its time budget.
    pub fallbacks: AtomicU64,
    /// Records shed at dequeue for exceeding the
    /// [`OverloadPolicy::Deadline`](crate::queue::OverloadPolicy::Deadline)
    /// staleness budget.
    pub shed_stale: AtomicU64,
    /// Times this shard's worker thread died (panic escaped the per-record
    /// isolation, or an injected kill). Incremented by the engine
    /// supervisor.
    pub panicked: AtomicU64,
    /// Times the supervisor respawned this shard's worker (sessions rebuilt
    /// cold).
    pub restarted: AtomicU64,
    /// End-to-end latency (enqueue → prediction emitted).
    pub latency: LatencyHistogram,
    /// Sum of |predicted − measured| next-second errors, milli-Mbps
    /// fixed-point (atomic f64 without portable intrinsics).
    pub abs_err_milli_sum: AtomicU64,
    /// Errors accumulated into [`Self::abs_err_milli_sum`].
    pub err_count: AtomicU64,
}

impl ShardMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Track one realized next-second absolute error, Mbps.
    pub fn record_error(&self, abs_err_mbps: f64) {
        let milli = (abs_err_mbps * 1000.0).round().max(0.0) as u64;
        self.abs_err_milli_sum.fetch_add(milli, Ordering::Relaxed);
        self.err_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Mean absolute next-second error so far, Mbps (None before any truth
    /// arrived).
    pub fn mae_mbps(&self) -> Option<f64> {
        let n = self.err_count.load(Ordering::Relaxed);
        if n == 0 {
            return None;
        }
        Some(self.abs_err_milli_sum.load(Ordering::Relaxed) as f64 / 1000.0 / n as f64)
    }
}

/// A point-in-time view of one shard for operator reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Shard index.
    pub shard: usize,
    /// Records ingested.
    pub processed: u64,
    /// Predictions emitted.
    pub predictions: u64,
    /// Warm-up records (no prediction possible yet).
    pub warmups: u64,
    /// Window resets.
    pub resets: u64,
    /// Poison records quarantined by per-record panic isolation.
    pub quarantined: u64,
    /// Responses served by the harmonic fallback predictor.
    pub fallbacks: u64,
    /// Records shed at dequeue by the `Deadline` staleness budget.
    pub shed_stale: u64,
    /// Worker-thread deaths on this shard.
    pub panicked: u64,
    /// Supervisor respawns of this shard's worker.
    pub restarted: u64,
    /// Ingest-queue depth at snapshot time.
    pub queue_depth: usize,
    /// Median latency, ns.
    pub p50_ns: u64,
    /// 95th-percentile latency, ns.
    pub p95_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
    /// Online mean absolute error, Mbps.
    pub mae_mbps: Option<f64>,
}

impl ShardMetrics {
    /// Snapshot this shard's counters.
    pub fn snapshot(&self, shard: usize, queue_depth: usize) -> MetricsSnapshot {
        MetricsSnapshot {
            shard,
            processed: self.processed.load(Ordering::Relaxed),
            predictions: self.predictions.load(Ordering::Relaxed),
            warmups: self.warmups.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            shed_stale: self.shed_stale.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            restarted: self.restarted.load(Ordering::Relaxed),
            queue_depth,
            p50_ns: self.latency.quantile_ns(0.50),
            p95_ns: self.latency.quantile_ns(0.95),
            p99_ns: self.latency.quantile_ns(0.99),
            mae_mbps: self.mae_mbps(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = LatencyHistogram::new();
        for ns in 1..=1000u64 {
            h.record(ns);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_ns(0.50);
        let p99 = h.quantile_ns(0.99);
        // Log-bucketed: one sub-bucket (~12.5 %) of slack either side.
        assert!((400..=640).contains(&p50), "p50 = {p50}");
        assert!((900..=1152).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99);
        assert_eq!(h.mean_ns(), 500);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for _ in 0..10 {
            a.record(100);
            b.record(10_000);
        }
        a.merge(&b);
        assert_eq!(a.count(), 20);
        assert!(a.quantile_ns(0.25) <= 128);
        assert!(a.quantile_ns(0.95) >= 8_192);
    }

    #[test]
    fn error_tracking_reports_mae() {
        let m = ShardMetrics::new();
        assert_eq!(m.mae_mbps(), None);
        m.record_error(100.0);
        m.record_error(50.0);
        let mae = m.mae_mbps().unwrap();
        assert!((mae - 75.0).abs() < 1e-9, "mae = {mae}");
    }

    #[test]
    fn tiny_latencies_do_not_panic() {
        let h = LatencyHistogram::new();
        for ns in 0..16 {
            h.record(ns);
        }
        assert_eq!(h.count(), 16);
        assert!(h.quantile_ns(1.0) >= 8);
    }

    #[test]
    fn bucket_edges_strictly_increase_and_are_consistent() {
        let mut prev = 0u64;
        for idx in 0..NBUCKETS {
            let edge = LatencyHistogram::bucket_value(idx);
            assert!(edge > prev, "bucket {idx}: edge {edge} after {prev}");
            // The inclusive upper edge must map back to its own bucket.
            assert_eq!(LatencyHistogram::bucket_of(edge), idx);
            prev = edge;
        }
        assert_eq!(LatencyHistogram::bucket_value(NBUCKETS - 1), u64::MAX);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), NBUCKETS - 1);
    }

    #[test]
    fn bucket_of_is_monotone_and_exact_at_low_values() {
        // Every value up to 64 must land in a bucket whose inclusive edge
        // is ≥ the value, and bucket indices must never go backwards.
        let mut prev_idx = 0;
        for v in 1..=64u64 {
            let idx = LatencyHistogram::bucket_of(v);
            assert!(idx >= prev_idx, "bucket_of({v}) = {idx} < {prev_idx}");
            assert!(LatencyHistogram::bucket_value(idx) >= v);
            prev_idx = idx;
        }
        // The old low-octave fallback collapsed 1 ns and 9 ns together;
        // sub-16 values now get one exact bucket each.
        for v in 1..=LINEAR_MAX {
            assert_eq!(
                LatencyHistogram::bucket_value(LatencyHistogram::bucket_of(v)),
                v
            );
        }
    }
}
