//! Shard worker: owns the sessions of the UEs hashed to it and turns each
//! incoming record into (at most) one prediction.

use crate::metrics::ShardMetrics;
use crate::registry::ModelRegistry;
use crate::session::{PendingPrediction, Session};
use crossbeam::channel::{Receiver, Sender};
use lumos5g::FeatureSpec;
use lumos5g_sim::Record;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// One unit of ingest work.
#[derive(Debug)]
pub struct Ingest {
    /// UE identity (routing key).
    pub ue: u64,
    /// The 1 Hz sample.
    pub record: Record,
    /// When the record entered the engine (for end-to-end latency).
    pub enqueued: Instant,
}

/// One response — every ingested record produces exactly one.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// UE the response belongs to.
    pub ue: u64,
    /// Pass of the triggering record.
    pub pass_id: u32,
    /// Second of the triggering record (the prediction targets `t + 1`).
    pub t: u32,
    /// Shard that served it.
    pub shard: usize,
    /// Model generation that produced it.
    pub model_version: u64,
    /// Predicted next-second throughput, Mbps (`None` while the session
    /// window is still warming up).
    pub predicted_mbps: Option<f64>,
    /// Measured throughput of the triggering record (echoed for
    /// closed-loop consumers).
    pub measured_mbps: f64,
    /// Enqueue-to-emit latency, ns.
    pub latency_ns: u64,
}

/// Run one shard worker until its ingest channel disconnects.
///
/// Per record: update the UE's session window, settle any pending
/// prediction against the newly measured throughput, extract features via
/// [`FeatureSpec::extract_latest`] and predict via
/// `TrainedRegressor::predict_one` on the registry's current model — the
/// exact offline code paths, which is what makes serving bit-exact.
pub fn run_shard(
    shard: usize,
    spec: FeatureSpec,
    registry: Arc<ModelRegistry>,
    rx: Receiver<Ingest>,
    out: Sender<Prediction>,
    metrics: Arc<ShardMetrics>,
) {
    let required = spec.required_window();
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    for msg in rx.iter() {
        let Ingest {
            ue,
            record,
            enqueued,
        } = msg;
        let session = sessions.entry(ue).or_insert_with(|| Session::new(required));
        let resets_before = session.resets;
        if let Some(err) = session.push(record) {
            metrics.record_error(err);
        }
        metrics
            .resets
            .fetch_add(session.resets - resets_before, Ordering::Relaxed);
        metrics.processed.fetch_add(1, Ordering::Relaxed);

        let model = registry.current();
        let newest = session
            .window()
            .last()
            .expect("window non-empty after push");
        let (pass_id, t, measured) = (newest.pass_id, newest.t, newest.throughput_mbps);
        let predicted = spec
            .extract_latest(session.window())
            .and_then(|x| model.regressor.predict_one(&x));
        match predicted {
            Some(y) => {
                session.pending = Some(PendingPrediction {
                    pass_id,
                    t,
                    predicted_mbps: y,
                });
                metrics.predictions.fetch_add(1, Ordering::Relaxed);
            }
            None => {
                metrics.warmups.fetch_add(1, Ordering::Relaxed);
            }
        }
        let latency_ns = enqueued.elapsed().as_nanos() as u64;
        metrics.latency.record(latency_ns);
        if out
            .send(Prediction {
                ue,
                pass_id,
                t,
                shard,
                model_version: model.version,
                predicted_mbps: predicted,
                measured_mbps: measured,
                latency_ns,
            })
            .is_err()
        {
            // Consumer went away: keep draining so producers never block
            // on a dead shard, but stop emitting.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel;
    use lumos5g::{FeatureSet, TrainedRegressor};
    use lumos5g_sim::{Activity, Record};

    fn rec(ue_pass: u32, t: u32, thpt: f64) -> Record {
        Record {
            area: 1,
            pass_id: ue_pass,
            trajectory: 0,
            t,
            lat: 44.88,
            lon: -93.20,
            gps_accuracy_m: 2.0,
            activity: Activity::Walking,
            moving_speed_mps: 1.4,
            compass_deg: 90.0,
            throughput_mbps: thpt,
            on_5g: true,
            cell_id: 2,
            lte_rsrp_dbm: -95.0,
            nr_ssrsrp_dbm: -80.0,
            horizontal_handoff: false,
            vertical_handoff: false,
            panel_distance_m: 50.0,
            theta_p_deg: 30.0,
            theta_m_deg: 180.0,
            pixel_x: 1000,
            pixel_y: 2000,
            snapped_x_m: 1.0,
            snapped_y_m: 2.0,
            true_x_m: 1.0,
            true_y_m: 2.0,
            true_speed_mps: 1.4,
        }
    }

    /// Harmonic has no single-row form → predict_one is None → the shard
    /// must still answer every record (as a warm-up/None response).
    #[test]
    fn every_record_gets_exactly_one_response() {
        let spec = FeatureSpec::new(FeatureSet::LM);
        let registry = Arc::new(ModelRegistry::new(TrainedRegressor::Harmonic { window: 5 }));
        let metrics = Arc::new(ShardMetrics::new());
        let (tx, rx) = channel::bounded(16);
        let (out_tx, out_rx) = channel::unbounded();
        let m = metrics.clone();
        let worker = std::thread::spawn(move || run_shard(0, spec, registry, rx, out_tx, m));
        for t in 0..10 {
            tx.send(Ingest {
                ue: 7,
                record: rec(1, t, 100.0),
                enqueued: Instant::now(),
            })
            .unwrap();
        }
        drop(tx);
        worker.join().unwrap();
        let responses: Vec<Prediction> = out_rx.iter().collect();
        assert_eq!(responses.len(), 10);
        assert!(responses.iter().all(|p| p.predicted_mbps.is_none()));
        assert!(responses.iter().all(|p| p.model_version == 1));
        assert_eq!(metrics.warmups.load(Ordering::Relaxed), 10);
        assert_eq!(metrics.latency.count(), 10);
        // Responses for one UE arrive in ingest order.
        let ts: Vec<u32> = responses.iter().map(|p| p.t).collect();
        assert_eq!(ts, (0..10).collect::<Vec<_>>());
    }
}
