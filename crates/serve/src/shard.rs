//! Shard worker: owns the sessions of the UEs hashed to it and turns each
//! incoming record into (at most) one prediction.
//!
//! The worker is fault-isolated at two levels. Around the model call, a
//! fallback chain guarantees a finite answer: if `predict_one` panics,
//! returns non-finite, or exceeds the configured time budget, the response
//! is served from the session-local harmonic-mean predictor and tagged
//! `degraded`. Around the whole record, `catch_unwind` quarantines poison
//! records — a panic in session update or feature extraction discards the
//! (possibly torn) session, counts the record as quarantined, and still
//! emits a degraded response instead of taking the worker down. A panic
//! that escapes both layers kills the thread; the engine supervisor
//! respawns it (see `engine.rs`).

use crate::fault::{FaultPlan, PredictFault, RecordFault, RecordKey};
use crate::metrics::ShardMetrics;
use crate::registry::ModelRegistry;
use crate::session::{PendingPrediction, Session};
use crossbeam::channel::{Receiver, Sender};
use lumos5g::FeatureSpec;
use lumos5g_sim::Record;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One unit of ingest work.
#[derive(Debug)]
pub struct Ingest {
    /// UE identity (routing key).
    pub ue: u64,
    /// The 1 Hz sample.
    pub record: Record,
    /// When the record entered the engine (for end-to-end latency).
    pub enqueued: Instant,
}

/// One response — every ingested record produces exactly one (unless the
/// `Deadline` policy shed it as stale at dequeue).
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// UE the response belongs to.
    pub ue: u64,
    /// Pass of the triggering record.
    pub pass_id: u32,
    /// Second of the triggering record (the prediction targets `t + 1`).
    pub t: u32,
    /// Shard that served it.
    pub shard: usize,
    /// Model generation that produced it.
    pub model_version: u64,
    /// Predicted next-second throughput, Mbps (`None` while the session
    /// window is still warming up). Always finite when `Some`.
    pub predicted_mbps: Option<f64>,
    /// Measured throughput of the triggering record (echoed for
    /// closed-loop consumers).
    pub measured_mbps: f64,
    /// Enqueue-to-emit latency, ns.
    pub latency_ns: u64,
    /// Full k-step-ahead horizon when a sequence model (Seq2Seq) served
    /// this response; `horizon_mbps[0]` equals `predicted_mbps`. `None` for
    /// single-row families, warm-ups and degraded responses. Every entry is
    /// finite when `Some`.
    pub horizon_mbps: Option<Vec<f64>>,
    /// True when this response was served on a degraded path: the model
    /// call failed (panic / non-finite / over budget) and the harmonic
    /// fallback answered, or the record was quarantined.
    pub degraded: bool,
}

/// Sequence-serving shard configuration, present when the engine serves a
/// Seq2Seq model (see `EngineConfig::decode_batch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequenceServing {
    /// Encoder history length the served model was trained with
    /// (`Seq2SeqParams::input_len`).
    pub input_len: usize,
    /// Maximum records answered per batched model call.
    pub batch: usize,
}

/// Per-worker serving context: everything a shard needs besides its
/// channels, bundled so the engine supervisor can respawn a worker with
/// the exact configuration the dead one had.
#[derive(Debug, Clone)]
pub struct ShardContext {
    /// Feature spec the served models were trained with.
    pub spec: FeatureSpec,
    /// Dequeue-side staleness budget (from [`crate::OverloadPolicy::Deadline`]).
    pub stale_after: Option<Duration>,
    /// Per-call model time budget; a slower `predict_one` falls back to the
    /// harmonic predictor. `None` disables the clock entirely (no
    /// `Instant::now` on the hot path).
    pub predict_budget: Option<Duration>,
    /// Deterministic fault injection (chaos testing); `None` in production.
    pub faults: Option<Arc<FaultPlan>>,
    /// Sequence-serving mode: `Some` when the served model predicts from a
    /// feature-vector history (Seq2Seq). `None` serves single-row families
    /// on the unbatched path.
    pub seq: Option<SequenceServing>,
}

impl ShardContext {
    /// A plain production context: no deadline, no budget, no faults,
    /// single-row serving.
    pub fn new(spec: FeatureSpec) -> Self {
        ShardContext {
            spec,
            stale_after: None,
            predict_budget: None,
            faults: None,
            seq: None,
        }
    }
}

/// How one record's prediction was produced.
struct StepOutcome {
    predicted: Option<f64>,
    degraded: bool,
    fallback: bool,
    horizon: Option<Vec<f64>>,
    model_version: u64,
}

/// Run one shard worker until its ingest channel disconnects.
///
/// Per record: update the UE's session window, settle any pending
/// prediction against the newly measured throughput, extract features via
/// [`FeatureSpec::extract_latest`] and predict via
/// `TrainedRegressor::predict_one` on the registry's current model — the
/// exact offline code paths, which is what makes fault-free serving
/// bit-exact.
pub fn run_shard(
    shard: usize,
    ctx: ShardContext,
    registry: Arc<ModelRegistry>,
    rx: Receiver<Ingest>,
    out: Sender<Prediction>,
    metrics: Arc<ShardMetrics>,
) {
    if let Some(seq) = ctx.seq {
        return run_shard_sequence(shard, ctx, seq, registry, rx, out, metrics);
    }
    let required = ctx.spec.required_window();
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    for msg in rx.iter() {
        let Ingest {
            ue,
            record,
            enqueued,
        } = msg;
        if let Some(max_age) = ctx.stale_after {
            if enqueued.elapsed() > max_age {
                metrics.shed_stale.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        }
        // Identity and ground truth captured up front, so a panic anywhere
        // in processing can still be answered (and `window().last()` is no
        // longer a panic risk).
        let (pass_id, t, measured) = (record.pass_id, record.t, record.throughput_mbps);
        let fault = match &ctx.faults {
            Some(plan) => plan.fault_for(RecordKey::of(ue, &record)),
            None => RecordFault::NONE,
        };
        metrics.processed.fetch_add(1, Ordering::Relaxed);

        let step = panic::catch_unwind(AssertUnwindSafe(|| {
            if fault.poison {
                panic!("chaos: injected poison record (ue {ue} pass {pass_id} t {t})");
            }
            let session = sessions.entry(ue).or_insert_with(|| Session::new(required));
            let resets_before = session.resets;
            if let Some(err) = session.push(record) {
                metrics.record_error(err);
            }
            metrics
                .resets
                .fetch_add(session.resets - resets_before, Ordering::Relaxed);

            let model = registry.current();
            let x = ctx.spec.extract_latest(session.window());
            let outcome = predict_step(
                &model.regressor,
                x,
                session,
                fault.predict,
                ctx.predict_budget,
            );
            if let Some(y) = outcome.0 {
                session.pending = Some(PendingPrediction {
                    pass_id,
                    t,
                    predicted_mbps: y,
                });
            }
            StepOutcome {
                predicted: outcome.0,
                degraded: outcome.1,
                fallback: outcome.1,
                horizon: None,
                model_version: model.version,
            }
        }));
        let outcome = match step {
            Ok(o) => o,
            Err(_) => {
                // Poison record: the session may be torn mid-update — drop
                // it so the UE rebuilds cold — quarantine the record, and
                // still answer (degraded, no prediction).
                sessions.remove(&ue);
                metrics.quarantined.fetch_add(1, Ordering::Relaxed);
                StepOutcome {
                    predicted: None,
                    degraded: true,
                    fallback: false,
                    horizon: None,
                    model_version: registry.current().version,
                }
            }
        };
        match outcome.predicted {
            Some(_) => {
                metrics.predictions.fetch_add(1, Ordering::Relaxed);
            }
            None if !outcome.degraded => {
                metrics.warmups.fetch_add(1, Ordering::Relaxed);
            }
            None => {} // quarantined: counted above
        }
        if outcome.fallback {
            metrics.fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        let latency_ns = enqueued.elapsed().as_nanos() as u64;
        metrics.latency.record(latency_ns);
        if out
            .send(Prediction {
                ue,
                pass_id,
                t,
                shard,
                model_version: outcome.model_version,
                predicted_mbps: outcome.predicted,
                measured_mbps: measured,
                latency_ns,
                horizon_mbps: outcome.horizon,
                degraded: outcome.degraded,
            })
            .is_err()
        {
            // Consumer went away: keep draining so producers never block
            // on a dead shard, but stop emitting.
        }
        if fault.kill_worker {
            // Injected *after* the response, so supervision is exercised
            // without violating one-response-per-accepted-record.
            panic!("chaos: injected worker kill on shard {shard} (ue {ue} pass {pass_id} t {t})");
        }
    }
}

/// What phase 1 (session update + feature extraction) decided for one
/// dequeued record, before the shared model call.
enum LaneState {
    /// Panic during session update/extraction: answered degraded-with-None.
    Quarantined,
    /// Not enough contiguous history yet for an encoder input.
    Warmup,
    /// An injected predict fault diverts this lane straight to the
    /// harmonic fallback, never into the shared batch call.
    Fallback,
    /// A snapshot of the session's encoder history, ready to decode.
    Ready(Vec<Vec<f64>>),
}

/// One dequeued record flowing through a batched dispatch.
struct Lane {
    ue: u64,
    pass_id: u32,
    t: u32,
    measured: f64,
    enqueued: Instant,
    state: LaneState,
}

fn fallback_by_ue(sessions: &HashMap<u64, Session>, ue: u64) -> (Option<f64>, bool) {
    (sessions.get(&ue).and_then(|s| s.harmonic_estimate()), true)
}

/// Run one shard worker in sequence-serving mode until ingest disconnects.
///
/// Differs from the single-record loop in two ways. First, each UE session
/// additionally accumulates the per-second feature vectors a Seq2Seq
/// encoder consumes, reset together with the record window on any
/// discontinuity — so a warm session's history is exactly one of the
/// sliding windows `build_sequences` emits offline. Second, the shard
/// opportunistically drains up to `seq.batch` already-queued records per
/// dispatch and answers them with one batched `predict_sequence_batch`
/// call. The drain is capped at one record per UE: a UE's prediction must
/// settle against its next record before that record is served, so a
/// same-UE follow-up is carried into the next dispatch. Together with the
/// bit-exact batched kernels underneath, that makes every response — and
/// the online MAE — identical for any `decode_batch`, including 1.
///
/// The fallback chain matches the single-record path, applied per batch
/// where the model call is shared: a panicking or over-budget batch call,
/// or a lane whose horizon comes back empty/non-finite, answers from that
/// session's harmonic estimate and is tagged `degraded`.
fn run_shard_sequence(
    shard: usize,
    ctx: ShardContext,
    seq: SequenceServing,
    registry: Arc<ModelRegistry>,
    rx: Receiver<Ingest>,
    out: Sender<Prediction>,
    metrics: Arc<ShardMetrics>,
) {
    let required = ctx.spec.required_window();
    let input_len = seq.input_len.max(1);
    let batch_cap = seq.batch.max(1);
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    let mut carry: Option<Ingest> = None;
    // An armed worker kill waiting for a safe point: the panic must not
    // fire while a drained-but-unanswered carry record is in hand, or that
    // record would vanish from both the queue and the batch.
    let mut pending_kill: Option<(u64, u32, u32)> = None;
    loop {
        // Block for the first record, then drain whatever is already queued
        // up to the batch cap (one record per UE). A worker about to die
        // serves only the carried record, so the final batch cannot strand
        // a fresh carry of its own.
        let first = match carry.take() {
            Some(msg) => msg,
            None => match rx.recv() {
                Ok(msg) => msg,
                Err(_) => return, // ingest disconnected and drained
            },
        };
        let mut batch = vec![first];
        while pending_kill.is_none() && batch.len() < batch_cap && carry.is_none() {
            match rx.try_recv() {
                Ok(msg) if batch.iter().any(|b| b.ue == msg.ue) => carry = Some(msg),
                Ok(msg) => batch.push(msg),
                // Empty: serve what we have. Disconnected: the next recv
                // exits after this final batch is answered.
                Err(_) => break,
            }
        }

        // Phase 1, in dequeue order: session update, feature extraction,
        // per-record panic isolation — everything except the model call.
        let mut lanes: Vec<Lane> = Vec::with_capacity(batch.len());
        for msg in batch {
            let Ingest {
                ue,
                record,
                enqueued,
            } = msg;
            if let Some(max_age) = ctx.stale_after {
                if enqueued.elapsed() > max_age {
                    metrics.shed_stale.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
            let (pass_id, t, measured) = (record.pass_id, record.t, record.throughput_mbps);
            let fault = match &ctx.faults {
                Some(plan) => plan.fault_for(RecordKey::of(ue, &record)),
                None => RecordFault::NONE,
            };
            metrics.processed.fetch_add(1, Ordering::Relaxed);
            if fault.kill_worker {
                pending_kill = Some((ue, pass_id, t));
            }
            let state = panic::catch_unwind(AssertUnwindSafe(|| {
                if fault.poison {
                    panic!("chaos: injected poison record (ue {ue} pass {pass_id} t {t})");
                }
                let session = sessions
                    .entry(ue)
                    .or_insert_with(|| Session::for_sequences(required, input_len));
                let resets_before = session.resets;
                if let Some(err) = session.push(record) {
                    metrics.record_error(err);
                }
                metrics
                    .resets
                    .fetch_add(session.resets - resets_before, Ordering::Relaxed);
                if let Some(x) = ctx.spec.extract_latest(session.window()) {
                    session.record_features(x);
                }
                if session.feature_len() < input_len {
                    LaneState::Warmup
                } else if fault.predict != PredictFault::None {
                    LaneState::Fallback
                } else {
                    LaneState::Ready(session.feature_history().to_vec())
                }
            }));
            let state = state.unwrap_or_else(|_| {
                sessions.remove(&ue);
                metrics.quarantined.fetch_add(1, Ordering::Relaxed);
                LaneState::Quarantined
            });
            lanes.push(Lane {
                ue,
                pass_id,
                t,
                measured,
                enqueued,
                state,
            });
        }

        // Phase 2: one model fetch and at most one batched decode for the
        // whole dispatch.
        let model = registry.current();
        let ready: Vec<usize> = lanes
            .iter()
            .enumerate()
            .filter_map(|(i, l)| matches!(l.state, LaneState::Ready(_)).then_some(i))
            .collect();
        let mut horizons: Vec<Option<Vec<f64>>> = vec![None; lanes.len()];
        let mut no_sequence_form = false;
        if !ready.is_empty() {
            let histories: Vec<&[Vec<f64>]> = ready
                .iter()
                .map(|&i| match &lanes[i].state {
                    LaneState::Ready(h) => h.as_slice(),
                    _ => unreachable!("filtered to ready lanes"),
                })
                .collect();
            let started = ctx.predict_budget.map(|_| Instant::now());
            let raw = panic::catch_unwind(AssertUnwindSafe(|| {
                model.regressor.predict_sequence_batch(&histories)
            }));
            match raw {
                Ok(Some(decoded)) => {
                    let over_budget = match (ctx.predict_budget, started) {
                        (Some(budget), Some(started)) => started.elapsed() > budget,
                        _ => false,
                    };
                    // Over budget: leave every slot None so all ready lanes
                    // fall back (the call was shared, so is the verdict).
                    if !over_budget {
                        for (&slot, h) in ready.iter().zip(decoded) {
                            horizons[slot] = Some(h);
                        }
                    }
                }
                // A hot-swapped model with no sequence form (e.g. harmonic
                // mean): answer like a warm-up, exactly as the single-record
                // path does for families without a single-row form.
                Ok(None) => no_sequence_form = true,
                Err(_) => {} // model panicked: every ready lane falls back
            }
        }

        // Emit in dequeue order.
        for (idx, lane) in lanes.into_iter().enumerate() {
            let outcome = match lane.state {
                LaneState::Quarantined => StepOutcome {
                    predicted: None,
                    degraded: true,
                    fallback: false,
                    horizon: None,
                    model_version: model.version,
                },
                LaneState::Warmup => StepOutcome {
                    predicted: None,
                    degraded: false,
                    fallback: false,
                    horizon: None,
                    model_version: model.version,
                },
                LaneState::Fallback => {
                    let (predicted, degraded) = fallback_by_ue(&sessions, lane.ue);
                    StepOutcome {
                        predicted,
                        degraded,
                        fallback: true,
                        horizon: None,
                        model_version: model.version,
                    }
                }
                LaneState::Ready(_) => match horizons[idx].take() {
                    Some(h) if !h.is_empty() && h.iter().all(|v| v.is_finite()) => StepOutcome {
                        predicted: Some(h[0]),
                        degraded: false,
                        fallback: false,
                        horizon: Some(h),
                        model_version: model.version,
                    },
                    None if no_sequence_form => StepOutcome {
                        predicted: None,
                        degraded: false,
                        fallback: false,
                        horizon: None,
                        model_version: model.version,
                    },
                    // Failed/over-budget batch call, or an empty or
                    // non-finite horizon for this lane.
                    _ => {
                        let (predicted, degraded) = fallback_by_ue(&sessions, lane.ue);
                        StepOutcome {
                            predicted,
                            degraded,
                            fallback: true,
                            horizon: None,
                            model_version: model.version,
                        }
                    }
                },
            };
            if let Some(y) = outcome.predicted {
                if let Some(session) = sessions.get_mut(&lane.ue) {
                    session.pending = Some(PendingPrediction {
                        pass_id: lane.pass_id,
                        t: lane.t,
                        predicted_mbps: y,
                    });
                }
                metrics.predictions.fetch_add(1, Ordering::Relaxed);
            } else if !outcome.degraded {
                metrics.warmups.fetch_add(1, Ordering::Relaxed);
            }
            if outcome.fallback {
                metrics.fallbacks.fetch_add(1, Ordering::Relaxed);
            }
            let latency_ns = lane.enqueued.elapsed().as_nanos() as u64;
            metrics.latency.record(latency_ns);
            let _ = out.send(Prediction {
                ue: lane.ue,
                pass_id: lane.pass_id,
                t: lane.t,
                shard,
                model_version: outcome.model_version,
                predicted_mbps: outcome.predicted,
                measured_mbps: lane.measured,
                latency_ns,
                horizon_mbps: outcome.horizon,
                degraded: outcome.degraded,
            });
        }
        if let Some((ue, pass_id, t)) = pending_kill {
            // Injected *after* the batch is answered, so supervision is
            // exercised without violating one-response-per-accepted-record.
            // A carried record was already dequeued and would be lost with
            // this worker: loop once more to answer it (alone), then die.
            if carry.is_none() {
                panic!(
                    "chaos: injected worker kill on shard {shard} (ue {ue} pass {pass_id} t {t})"
                );
            }
        }
    }
}

/// The fallback chain around one model call.
///
/// Returns `(prediction, degraded)`:
/// * healthy model, finite output, within budget → `(Some(y), false)` —
///   bit-identical to the pre-fault-tolerance engine;
/// * no feature row yet (warm-up) or a family with no single-row form →
///   `(None, false)`;
/// * model panicked / returned non-finite / blew the budget → the
///   session-local harmonic estimate, `(Some(hm), true)` — never a dropped
///   response, never a NaN.
fn predict_step(
    model: &lumos5g::TrainedRegressor,
    x: Option<Vec<f64>>,
    session: &Session,
    fault: PredictFault,
    budget: Option<Duration>,
) -> (Option<f64>, bool) {
    let Some(x) = x else {
        return (None, false); // warm-up: expected, not degraded
    };
    // An injected Slow fault models a predict call that would have blown
    // any budget: the (discarded) model output is never computed.
    if fault == PredictFault::Slow {
        return fallback(session);
    }
    let started = budget.map(|_| Instant::now());
    let raw = panic::catch_unwind(AssertUnwindSafe(|| {
        if fault == PredictFault::Panic {
            panic!("chaos: injected model panic");
        }
        let y = model.predict_one(&x);
        match fault {
            PredictFault::Nan => y.map(|_| f64::NAN),
            _ => y,
        }
    }));
    match raw {
        Ok(Some(y)) if y.is_finite() => {
            if let (Some(budget), Some(started)) = (budget, started) {
                if started.elapsed() > budget {
                    return fallback(session);
                }
            }
            (Some(y), false)
        }
        Ok(Some(_nonfinite)) => fallback(session),
        Ok(None) => (None, false), // family has no single-row form
        Err(_) => fallback(session),
    }
}

fn fallback(session: &Session) -> (Option<f64>, bool) {
    (session.harmonic_estimate(), true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel;
    use lumos5g::{FeatureSet, TrainedRegressor};
    use lumos5g_sim::{Activity, Record};

    fn rec(ue_pass: u32, t: u32, thpt: f64) -> Record {
        Record {
            area: 1,
            pass_id: ue_pass,
            trajectory: 0,
            t,
            lat: 44.88,
            lon: -93.20,
            gps_accuracy_m: 2.0,
            activity: Activity::Walking,
            moving_speed_mps: 1.4,
            compass_deg: 90.0,
            throughput_mbps: thpt,
            on_5g: true,
            cell_id: 2,
            lte_rsrp_dbm: -95.0,
            nr_ssrsrp_dbm: -80.0,
            horizontal_handoff: false,
            vertical_handoff: false,
            panel_distance_m: 50.0,
            theta_p_deg: 30.0,
            theta_m_deg: 180.0,
            pixel_x: 1000,
            pixel_y: 2000,
            snapped_x_m: 1.0,
            snapped_y_m: 2.0,
            true_x_m: 1.0,
            true_y_m: 2.0,
            true_speed_mps: 1.4,
        }
    }

    fn harmonic_registry() -> Arc<ModelRegistry> {
        Arc::new(ModelRegistry::new(TrainedRegressor::Harmonic { window: 5 }))
    }

    /// Harmonic has no single-row form → predict_one is None → the shard
    /// must still answer every record (as a warm-up/None response).
    #[test]
    fn every_record_gets_exactly_one_response() {
        let ctx = ShardContext::new(FeatureSpec::new(FeatureSet::LM));
        let metrics = Arc::new(ShardMetrics::new());
        let (tx, rx) = channel::bounded(16);
        let (out_tx, out_rx) = channel::unbounded();
        let m = metrics.clone();
        let registry = harmonic_registry();
        let worker = std::thread::spawn(move || run_shard(0, ctx, registry, rx, out_tx, m));
        for t in 0..10 {
            tx.send(Ingest {
                ue: 7,
                record: rec(1, t, 100.0),
                enqueued: Instant::now(),
            })
            .unwrap();
        }
        drop(tx);
        worker.join().unwrap();
        let responses: Vec<Prediction> = out_rx.iter().collect();
        assert_eq!(responses.len(), 10);
        assert!(responses.iter().all(|p| p.predicted_mbps.is_none()));
        assert!(responses.iter().all(|p| !p.degraded));
        assert!(responses.iter().all(|p| p.model_version == 1));
        assert_eq!(metrics.warmups.load(Ordering::Relaxed), 10);
        assert_eq!(metrics.latency.count(), 10);
        // Responses for one UE arrive in ingest order.
        let ts: Vec<u32> = responses.iter().map(|p| p.t).collect();
        assert_eq!(ts, (0..10).collect::<Vec<_>>());
    }

    /// Sequence mode with a model that has no sequence form: ready lanes
    /// answer like warm-ups, and the batched drain still produces exactly
    /// one in-order response per record and UE.
    #[test]
    fn sequence_mode_answers_every_record_for_formless_models() {
        let mut ctx = ShardContext::new(FeatureSpec::new(FeatureSet::LM));
        ctx.seq = Some(SequenceServing {
            input_len: 3,
            batch: 4,
        });
        let metrics = Arc::new(ShardMetrics::new());
        let (tx, rx) = channel::bounded(64);
        let (out_tx, out_rx) = channel::unbounded();
        let m = metrics.clone();
        let registry = harmonic_registry();
        let worker = std::thread::spawn(move || run_shard(0, ctx, registry, rx, out_tx, m));
        // Two interleaved UEs so batches mix lanes and exercise the
        // one-record-per-UE carry rule.
        for t in 0..10 {
            for ue in [3u64, 8u64] {
                tx.send(Ingest {
                    ue,
                    record: rec(ue as u32, t, 100.0),
                    enqueued: Instant::now(),
                })
                .unwrap();
            }
        }
        drop(tx);
        worker.join().unwrap();
        let responses: Vec<Prediction> = out_rx.iter().collect();
        assert_eq!(responses.len(), 20);
        assert!(responses.iter().all(|p| p.predicted_mbps.is_none()));
        assert!(responses.iter().all(|p| p.horizon_mbps.is_none()));
        assert!(responses.iter().all(|p| !p.degraded));
        assert_eq!(metrics.warmups.load(Ordering::Relaxed), 20);
        assert_eq!(metrics.processed.load(Ordering::Relaxed), 20);
        for ue in [3u64, 8u64] {
            let ts: Vec<u32> = responses
                .iter()
                .filter(|p| p.ue == ue)
                .map(|p| p.t)
                .collect();
            assert_eq!(ts, (0..10).collect::<Vec<_>>(), "ue {ue} out of order");
        }
    }

    /// Dropping the output receiver mid-run must flip the worker into
    /// drain-without-emit: it keeps consuming (so producers never block on
    /// a dead consumer) and exits cleanly when ingest disconnects.
    #[test]
    fn dropped_output_receiver_drains_without_emitting() {
        let ctx = ShardContext::new(FeatureSpec::new(FeatureSet::LM));
        let metrics = Arc::new(ShardMetrics::new());
        let (tx, rx) = channel::bounded(64);
        let (out_tx, out_rx) = channel::unbounded();
        let m = metrics.clone();
        let registry = harmonic_registry();
        let worker = std::thread::spawn(move || run_shard(0, ctx, registry, rx, out_tx, m));
        for t in 0..5 {
            tx.send(Ingest {
                ue: 1,
                record: rec(1, t, 100.0),
                enqueued: Instant::now(),
            })
            .unwrap();
        }
        // Wait for the first responses, then kill the consumer mid-run.
        for _ in 0..5 {
            out_rx.recv().unwrap();
        }
        drop(out_rx);
        for t in 5..40 {
            tx.send(Ingest {
                ue: 1,
                record: rec(1, t, 100.0),
                enqueued: Instant::now(),
            })
            .unwrap();
        }
        drop(tx);
        worker.join().expect("worker must survive a dead consumer");
        assert_eq!(metrics.processed.load(Ordering::Relaxed), 40);
        assert_eq!(metrics.latency.count(), 40);
    }

    /// Records older than the Deadline staleness budget are shed at
    /// dequeue: counted, never answered.
    #[test]
    fn deadline_sheds_stale_records_at_dequeue() {
        let mut ctx = ShardContext::new(FeatureSpec::new(FeatureSet::LM));
        ctx.stale_after = Some(Duration::from_secs(60));
        let metrics = Arc::new(ShardMetrics::new());
        let (tx, rx) = channel::bounded(16);
        let (out_tx, out_rx) = channel::unbounded();
        let m = metrics.clone();
        let registry = harmonic_registry();
        let worker = std::thread::spawn(move || run_shard(0, ctx, registry, rx, out_tx, m));
        let ancient = Instant::now() - Duration::from_secs(3600);
        for t in 0..4 {
            tx.send(Ingest {
                ue: 1,
                record: rec(1, t, 100.0),
                enqueued: ancient,
            })
            .unwrap();
        }
        for t in 4..7 {
            tx.send(Ingest {
                ue: 1,
                record: rec(1, t, 100.0),
                enqueued: Instant::now(),
            })
            .unwrap();
        }
        drop(tx);
        worker.join().unwrap();
        let responses: Vec<Prediction> = out_rx.iter().collect();
        assert_eq!(responses.len(), 3, "only fresh records are answered");
        assert_eq!(metrics.shed_stale.load(Ordering::Relaxed), 4);
        assert_eq!(metrics.processed.load(Ordering::Relaxed), 3);
        // The stale records never touched the session: t=4..7 starts cold.
        assert_eq!(responses[0].t, 4);
    }

    /// A poison record (injected session/extract panic) is quarantined:
    /// counted, answered degraded-with-None, session rebuilt cold — and the
    /// worker keeps serving.
    #[test]
    fn poison_record_is_quarantined_not_fatal() {
        let mut ctx = ShardContext::new(FeatureSpec::new(FeatureSet::LM));
        let mut plan = FaultPlan::new(5);
        plan.poison_bp = 10_000; // every record is poison
        ctx.faults = Some(Arc::new(plan));
        let metrics = Arc::new(ShardMetrics::new());
        let (tx, rx) = channel::bounded(16);
        let (out_tx, out_rx) = channel::unbounded();
        let m = metrics.clone();
        let registry = harmonic_registry();
        let worker = std::thread::spawn(move || run_shard(0, ctx, registry, rx, out_tx, m));
        for t in 0..6 {
            tx.send(Ingest {
                ue: 9,
                record: rec(1, t, 100.0),
                enqueued: Instant::now(),
            })
            .unwrap();
        }
        drop(tx);
        worker
            .join()
            .expect("poison records must not kill the worker");
        let responses: Vec<Prediction> = out_rx.iter().collect();
        assert_eq!(responses.len(), 6, "quarantined records still answer");
        assert!(responses.iter().all(|p| p.degraded));
        assert!(responses.iter().all(|p| p.predicted_mbps.is_none()));
        assert_eq!(metrics.quarantined.load(Ordering::Relaxed), 6);
        assert_eq!(metrics.processed.load(Ordering::Relaxed), 6);
    }
}
