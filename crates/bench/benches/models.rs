//! Criterion benchmarks of the ML substrate: training and inference costs
//! of the paper's models (GDBT is the "light-weight" choice — §5.2 — these
//! benches quantify that claim against Seq2Seq and the baselines).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lumos5g_ml::{
    GbdtConfig, GbdtRegressor, KnnRegressor, OrdinaryKriging, RandomForestRegressor, Seq2Seq,
    Seq2SeqConfig,
};
use std::hint::black_box;
use std::time::Duration;

/// Fast Criterion profile: these benches document relative costs, not
/// publication-grade timings; keep `cargo bench --workspace` minutes-scale.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
}

/// Deterministic synthetic tabular problem: 1 000 rows × 8 features.
fn tabular() -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = 1_000;
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..8)
                .map(|j| ((i * 37 + j * 101) % 257) as f64 / 257.0)
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 800.0 * x[0] + 400.0 * x[1] * x[2] - 300.0 * x[3] + 50.0 * x[7])
        .collect();
    (xs, ys)
}

fn bench_gbdt(c: &mut Criterion) {
    let (xs, ys) = tabular();
    let cfg = GbdtConfig {
        n_estimators: 50,
        max_depth: 5,
        learning_rate: 0.1,
        min_samples_leaf: 5,
        subsample: 0.8,
        seed: 0,
    };
    c.bench_function("gbdt_train_1k_rows_50_trees", |b| {
        b.iter(|| GbdtRegressor::fit(black_box(&xs), black_box(&ys), &cfg))
    });
    let model = GbdtRegressor::fit(&xs, &ys, &cfg);
    c.bench_function("gbdt_predict_row", |b| {
        b.iter(|| model.predict_row(black_box(&xs[13])))
    });
}

fn bench_forest_knn(c: &mut Criterion) {
    let (xs, ys) = tabular();
    let fcfg = lumos5g_ml::forest::ForestConfig {
        n_trees: 30,
        ..Default::default()
    };
    c.bench_function("rf_train_1k_rows_30_trees", |b| {
        b.iter(|| RandomForestRegressor::fit(black_box(&xs), black_box(&ys), &fcfg))
    });
    let knn = KnnRegressor::fit(&xs, &ys, 5);
    c.bench_function("knn_predict_row_1k_train", |b| {
        b.iter(|| knn.predict_row(black_box(&xs[7])))
    });
}

fn bench_kriging(c: &mut Criterion) {
    let pts: Vec<[f64; 2]> = (0..400)
        .map(|i| [(i % 20) as f64 * 5.0, (i / 20) as f64 * 5.0])
        .collect();
    let vals: Vec<f64> = pts
        .iter()
        .map(|p| (p[0] / 17.0).sin() * 500.0 + 700.0)
        .collect();
    c.bench_function("kriging_fit_400_points", |b| {
        b.iter(|| OrdinaryKriging::fit(black_box(&pts), black_box(&vals), 16))
    });
    let ok = OrdinaryKriging::fit(&pts, &vals, 16);
    c.bench_function("kriging_predict_point", |b| {
        b.iter(|| ok.predict(black_box(42.5), black_box(61.5)))
    });
}

fn bench_seq2seq(c: &mut Criterion) {
    let cfg = Seq2SeqConfig {
        input_dim: 6,
        hidden: 32,
        layers: 2,
        horizon: 10,
        epochs: 1,
        batch_size: 16,
        lr: 3e-3,
        teacher_forcing: 0.7,
        clip_norm: 5.0,
        seed: 0,
    };
    let model = Seq2Seq::new(cfg);
    let input: Vec<Vec<f64>> = (0..20)
        .map(|t| (0..6).map(|j| ((t * 7 + j) % 11) as f64 / 11.0).collect())
        .collect();
    c.bench_function("seq2seq_inference_20in_10out_h32", |b| {
        b.iter(|| model.predict(black_box(&input)))
    });

    let inputs: Vec<Vec<Vec<f64>>> = (0..32).map(|_| input.clone()).collect();
    let targets: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64 / 32.0; 10]).collect();
    c.bench_function("seq2seq_train_epoch_32_samples", |b| {
        b.iter_batched(
            || Seq2Seq::new(cfg),
            |mut m| m.train(black_box(&inputs), black_box(&targets)),
            BatchSize::LargeInput,
        )
    });
}

fn bench_kdtree(c: &mut Criterion) {
    let pts: Vec<Vec<f64>> = (0..10_000)
        .map(|i| vec![((i * 48271) % 9973) as f64, ((i * 16807) % 7919) as f64])
        .collect();
    c.bench_function("kdtree_build_10k_2d", |b| {
        b.iter_batched(
            || pts.clone(),
            lumos5g_ml::kdtree::KdTree::build,
            BatchSize::LargeInput,
        )
    });
    let tree = lumos5g_ml::kdtree::KdTree::build(pts);
    c.bench_function("kdtree_knn16_10k_2d", |b| {
        b.iter(|| tree.knn(black_box(&[4321.0, 1234.0]), 16))
    });
}

fn bench_abr(c: &mut Criterion) {
    use lumos5g::abr::{simulate_session, PlayerConfig, Predictor};
    let trace: Vec<f64> = (0..600)
        .map(|i| if (i / 30) % 2 == 0 { 1_500.0 } else { 120.0 })
        .collect();
    c.bench_function("abr_session_600s_harmonic", |b| {
        b.iter(|| {
            simulate_session(
                black_box(&trace),
                &Predictor::Harmonic { window: 5 },
                &PlayerConfig::default(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_gbdt,
    bench_forest_knn,
    bench_kriging,
    bench_seq2seq,
    bench_kdtree,
    bench_abr
}
criterion_main!(benches);
