//! Criterion benchmarks of the statistics substrate — these run hundreds of
//! thousands of times in the §4 pairwise analyses, so their cost matters.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos5g_stats::htest::{
    anderson_darling_normality, dagostino_pearson, levene_test, welch_t_test, LeveneCenter,
};
use lumos5g_stats::{spearman, Ecdf};
use std::hint::black_box;
use std::time::Duration;

/// Fast Criterion profile: these benches document relative costs, not
/// publication-grade timings; keep `cargo bench --workspace` minutes-scale.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
}

fn samples(n: usize, seed: u64) -> Vec<f64> {
    // Deterministic pseudo-random data (LCG), adequate for timing.
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0
        })
        .collect()
}

fn bench_tests(c: &mut Criterion) {
    let a = samples(50, 1);
    let b = samples(50, 2);
    c.bench_function("welch_t_test_50v50", |bench| {
        bench.iter(|| welch_t_test(black_box(&a), black_box(&b)))
    });
    c.bench_function("levene_50v50", |bench| {
        bench.iter(|| levene_test(black_box(&[&a, &b]), LeveneCenter::Median))
    });
    let big = samples(200, 3);
    c.bench_function("dagostino_pearson_200", |bench| {
        bench.iter(|| dagostino_pearson(black_box(&big)))
    });
    c.bench_function("anderson_darling_200", |bench| {
        bench.iter(|| anderson_darling_normality(black_box(&big)))
    });
}

fn bench_correlation(c: &mut Criterion) {
    let a = samples(100, 4);
    let b = samples(100, 5);
    c.bench_function("spearman_100", |bench| {
        bench.iter(|| spearman(black_box(&a), black_box(&b)))
    });
}

fn bench_ecdf(c: &mut Criterion) {
    let xs = samples(10_000, 6);
    c.bench_function("ecdf_build_10k", |bench| {
        bench.iter(|| Ecdf::new(black_box(&xs)))
    });
    let e = Ecdf::new(&xs).unwrap();
    c.bench_function("ecdf_eval", |bench| bench.iter(|| e.eval(black_box(42.0))));
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_tests, bench_correlation, bench_ecdf
}
criterion_main!(benches);
