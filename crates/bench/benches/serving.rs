//! Criterion benchmarks of the serving hot path: per-record session
//! update + feature extraction + single-row prediction, and the full
//! sharded engine closed loop.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos5g::{quick_gbdt, FeatureSet, Lumos5G, ModelKind, TrainedRegressor};
use lumos5g_serve::{Engine, EngineConfig, OverloadPolicy, ReplaySource, Session};
use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig, Dataset};
use std::hint::black_box;
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
}

fn campaign() -> Dataset {
    let area = airport(7);
    let cfg = CampaignConfig {
        passes_per_trajectory: 2,
        max_duration_s: 150,
        base_seed: 7,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    quality::apply(&raw, &area.frame, &Default::default()).0
}

fn train(data: &Dataset, set: FeatureSet) -> TrainedRegressor {
    Lumos5G::new(set, ModelKind::Gdbt(quick_gbdt()))
        .fit_regression(data)
        .unwrap()
}

fn bench_hot_path(c: &mut Criterion) {
    let data = campaign();
    let model = train(&data, FeatureSet::LMC);
    let spec = *model.spec().unwrap();
    let records: Vec<_> = data.records.iter().take(256).cloned().collect();

    c.bench_function("serve_session_update_extract_predict", |b| {
        let mut session = Session::new(spec.required_window());
        let mut i = 0;
        b.iter(|| {
            session.push(records[i % records.len()].clone());
            i += 1;
            let y = spec
                .extract_latest(session.window())
                .and_then(|x| model.predict_one(&x));
            black_box(y)
        })
    });

    let lm = train(&data, FeatureSet::LM);
    let lm_spec = *lm.spec().unwrap();
    let x = lm_spec.extract(&records, 0).unwrap();
    c.bench_function("serve_predict_one_gdbt_lm", |b| {
        b.iter(|| black_box(lm.predict_one(black_box(&x))))
    });
}

fn bench_engine_closed_loop(c: &mut Criterion) {
    let data = campaign();
    let src = ReplaySource::from_dataset(&data, 16);
    let events = src.len() as u64;
    let model = train(&data, FeatureSet::LM);
    c.bench_function("serve_engine_4_shards_full_replay", |b| {
        b.iter(|| {
            let engine = Engine::start(
                model.clone(),
                EngineConfig {
                    shards: 4,
                    queue_capacity: 1024,
                    policy: OverloadPolicy::Block,
                    ..Default::default()
                },
            );
            let rx = engine.responses().clone();
            let consumer = std::thread::spawn(move || rx.iter().count() as u64);
            src.run(&engine, 0.0);
            let (report, responses) = engine.shutdown();
            drop(responses);
            assert_eq!(consumer.join().unwrap(), events);
            black_box(report)
        })
    });
}

criterion_group! {
    name = serving;
    config = quick();
    targets = bench_hot_path, bench_engine_closed_loop
}
criterion_main!(serving);
