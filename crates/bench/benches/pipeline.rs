//! Criterion benchmarks of the end-to-end data path: one simulated
//! measurement pass, the §3.1 quality pipeline, and feature extraction —
//! i.e. the cost of producing one paper-dataset row.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos5g::features::{FeatureSet, FeatureSpec};
use lumos5g::tabular::build_tabular;
use lumos5g_sim::{airport, quality, run_campaign, run_pass, CampaignConfig};
use std::hint::black_box;
use std::time::Duration;

/// Fast Criterion profile: these benches document relative costs, not
/// publication-grade timings; keep `cargo bench --workspace` minutes-scale.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
}

fn bench_pass(c: &mut Criterion) {
    let area = airport(1);
    let cfg = CampaignConfig {
        passes_per_trajectory: 1,
        max_duration_s: 300,
        ..Default::default()
    };
    c.bench_function("run_pass_300s_airport", |b| {
        b.iter(|| run_pass(black_box(&area), 0, &cfg, 0, 42))
    });
}

fn bench_quality(c: &mut Criterion) {
    let area = airport(1);
    let cfg = CampaignConfig {
        passes_per_trajectory: 3,
        max_duration_s: 300,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    c.bench_function("quality_pipeline_apply", |b| {
        b.iter(|| quality::apply(black_box(&raw), &area.frame, &Default::default()))
    });
}

fn bench_features(c: &mut Criterion) {
    let area = airport(1);
    let cfg = CampaignConfig {
        passes_per_trajectory: 3,
        max_duration_s: 300,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    let (data, _) = quality::apply(&raw, &area.frame, &Default::default());
    for set in [FeatureSet::L, FeatureSet::TM, FeatureSet::TMC] {
        let spec = FeatureSpec::new(set);
        c.bench_function(
            &format!("build_tabular_{}", set.label().replace('+', "")),
            |b| b.iter(|| build_tabular(black_box(&data), &spec)),
        );
    }
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_pass, bench_quality, bench_features
}
criterion_main!(benches);
