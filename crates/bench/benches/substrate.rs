//! Criterion benchmarks of the physical substrates: radio-field sampling,
//! LoS queries, the TCP fluid model and the geometry primitives. These
//! bound the cost of one simulated measurement second.

use criterion::{criterion_group, criterion_main, Criterion};
use lumos5g_geo::{LatLon, PanelPose, Point2};
use lumos5g_net::{BulkSession, TcpConfig};
use lumos5g_radio::{TransportMode, UeState};
use lumos5g_sim::airport;
use std::hint::black_box;
use std::time::Duration;

/// Fast Criterion profile: these benches document relative costs, not
/// publication-grade timings; keep `cargo bench --workspace` minutes-scale.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300))
}

fn bench_radio(c: &mut Criterion) {
    let area = airport(1);
    let ue = UeState {
        pos: Point2::new(3.0, 140.0),
        heading_deg: 10.0,
        speed_mps: 1.4,
        mode: TransportMode::Walking,
    };
    c.bench_function("radio_field_evaluate_2_panels", |b| {
        b.iter(|| area.field.evaluate(black_box(&ue), black_box(-1.5)))
    });
    c.bench_function("radio_los_query_3_obstacles", |b| {
        b.iter(|| {
            area.field
                .obstacles
                .penetration_loss_db(black_box(Point2::new(0.0, 60.0)), black_box(ue.pos))
        })
    });
    c.bench_function("shadow_field_sample", |b| {
        b.iter(|| area.field.shadow.sample_db(black_box(ue.pos)))
    });
}

fn bench_tcp(c: &mut Criterion) {
    c.bench_function("tcp_step_second_8_conns", |b| {
        let mut s = BulkSession::new(TcpConfig::iperf_default(), 3);
        b.iter(|| s.step_second(black_box(1_500.0)))
    });
}

fn bench_geo(c: &mut Criterion) {
    let p = LatLon::new(44.9778, -93.2650);
    c.bench_function("pixelize_zoom17", |b| b.iter(|| black_box(p).to_pixel(17)));
    let pose = PanelPose::new(Point2::new(0.0, 60.0), 0.0);
    c.bench_function("theta_p_theta_m", |b| {
        b.iter(|| {
            let tp = lumos5g_geo::positional_angle_deg(black_box(&pose), Point2::new(5.0, 130.0));
            let tm = lumos5g_geo::mobility_angle_deg(black_box(&pose), 187.0);
            (tp, tm)
        })
    });
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_radio, bench_tcp, bench_geo
}
criterion_main!(benches);
