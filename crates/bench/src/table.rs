//! Minimal fixed-width table rendering for the repro binaries, mirroring the
//! rows/columns of the paper's tables so outputs can be compared side by
//! side, plus CSV persistence under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Accumulates rows and renders both an aligned text table and a CSV file.
#[derive(Debug, Clone)]
pub struct TableWriter {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        TableWriter {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; cells are taken as already-formatted strings.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
    }

    /// Render the aligned text table.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "=== {} ===", self.title);
        let mut line = String::new();
        for (head, w) in self.header.iter().zip(widths.iter().copied()) {
            let _ = write!(line, "{head:<w$}  ");
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for i in 0..ncol {
                let _ = write!(line, "{:<w$}  ", row[i], w = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Persist as CSV at `path`, creating parent directories.
    pub fn save_csv(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            let _ = writeln!(out, "{}", escaped.join(","));
        }
        fs::write(path, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableWriter::new("demo", &["a", "long_header"]);
        t.row(&["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("long_header"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_row() {
        let mut t = TableWriter::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TableWriter::new("demo", &["a"]);
        t.row(&["x,y".into()]);
        let dir = std::env::temp_dir().join("lumos5g_table_test");
        let path = dir.join("t.csv");
        t.save_csv(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"x,y\""));
        let _ = std::fs::remove_dir_all(dir);
    }
}
