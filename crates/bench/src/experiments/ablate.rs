//! Ablation studies for the design choices DESIGN.md calls out.

use super::context::Context;
use super::results_dir;
use crate::table::TableWriter;
use lumos5g::features::{FeatureSet, FeatureSpec};
use lumos5g::prelude::*;
use lumos5g::tabular::build_tabular;
use lumos5g_ml::{train_test_split, GbdtConfig, GbdtRegressor};
use lumos5g_net::{BulkSession, TcpConfig};
use lumos5g_sim::{quality, run_campaign, CampaignConfig, MobilityMode};
use std::fmt::Write as _;

/// §3.1 ablation: 1 vs 8 parallel TCP connections on a saturated link.
pub fn tcp_conns(_ctx: &mut Context) -> String {
    let mut t = TableWriter::new(
        "Ablation: parallel TCP connections vs goodput on a 2 Gbps link",
        &["connections", "steady goodput (Mbps)", "utilization %"],
    );
    for conns in [1usize, 2, 4, 8, 16] {
        let cfg = TcpConfig {
            connections: conns,
            ..TcpConfig::iperf_default()
        };
        let mut s = BulkSession::new(cfg, 7);
        for _ in 0..10 {
            s.step_second(2_000.0);
        }
        let mut acc = 0.0;
        for _ in 0..30 {
            acc += s.step_second(2_000.0);
        }
        let g = acc / 30.0;
        t.row(&[
            format!("{conns}"),
            format!("{g:.0}"),
            format!("{:.1}", g / 2_000.0 * 100.0),
        ]);
    }
    let _ = t.save_csv(&results_dir().join("ablate_tcp_conns.csv"));
    t.render()
}

/// §3.1 ablation: pixelization zoom level vs prediction error.
///
/// Re-runs the L-feature GDBT with coordinates pixelized at different zoom
/// levels (and raw noisy GPS as the no-pixelization extreme).
pub fn pixelization(ctx: &mut Context) -> String {
    let area = ctx.airport_area();
    let cfg = CampaignConfig {
        passes_per_trajectory: ctx.scale.passes(),
        mode: MobilityMode::walking(),
        base_seed: ctx.seed ^ 0x77,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);

    let gbdt = ctx.scale.gbdt();
    let mut t = TableWriter::new(
        "Ablation: pixelization zoom level vs GDBT(L) MAE (Airport)",
        &["coordinates", "MAE (Mbps)", "RMSE (Mbps)"],
    );
    for (label, zoom) in [
        ("raw noisy GPS", None),
        ("zoom 14 (~9 m px)", Some(14u8)),
        ("zoom 17 (~1 m px, paper)", Some(17)),
        ("zoom 20 (~0.1 m px)", Some(20)),
    ] {
        let data = match zoom {
            None => {
                // Skip pixelization: snapped == raw reported position.
                let (mut d, _) = quality::apply(&raw, &area.frame, &Default::default());
                for r in &mut d.records {
                    let p = area.frame.to_local(lumos5g_geo::LatLon::new(r.lat, r.lon));
                    // Use raw local coords in place of pixel indices.
                    r.pixel_x = (p.x * 10.0) as i64;
                    r.pixel_y = (p.y * 10.0) as i64;
                }
                d
            }
            Some(z) => {
                let qc = quality::QualityConfig {
                    zoom: z,
                    ..Default::default()
                };
                quality::apply(&raw, &area.frame, &qc).0
            }
        };
        let out = regression_eval(&data, FeatureSet::L, &ModelKind::Gdbt(gbdt), 1).expect("eval");
        t.row(&[
            label.into(),
            format!("{:.0}", out.mae),
            format!("{:.0}", out.rmse),
        ]);
    }
    let _ = t.save_csv(&results_dir().join("ablate_pixelization.csv"));
    t.render()
}

/// Congestion-control ablation: CUBIC (Linux default, what the paper's
/// iPerf ran) vs Reno AIMD across link rates — CUBIC's faster ramp matters
/// on the high-BDP mmWave path.
pub fn congestion_control(_ctx: &mut Context) -> String {
    use lumos5g_net::CongestionControl;
    let mut t = TableWriter::new(
        "Ablation: congestion control vs utilization (8 conns, 30 s steady)",
        &["capacity (Mbps)", "CUBIC goodput", "Reno goodput"],
    );
    for cap in [200.0f64, 800.0, 2_000.0] {
        let run = |cc: CongestionControl| -> f64 {
            let cfg = TcpConfig {
                cc,
                ..TcpConfig::iperf_default()
            };
            let mut s = BulkSession::new(cfg, 21);
            for _ in 0..10 {
                s.step_second(cap);
            }
            (0..30).map(|_| s.step_second(cap)).sum::<f64>() / 30.0
        };
        t.row(&[
            format!("{cap:.0}"),
            format!("{:.0}", run(CongestionControl::Cubic)),
            format!("{:.0}", run(CongestionControl::Reno)),
        ]);
    }
    let _ = t.save_csv(&results_dir().join("ablate_congestion_control.csv"));
    t.render()
}

/// §6.1 ablation: GDBT hyperparameters (estimators × depth).
pub fn gbdt_size(ctx: &mut Context) -> String {
    let data = ctx.airport_walk();
    let spec = FeatureSpec::new(FeatureSet::LM);
    let td = build_tabular(&data, &spec);
    let (tr, te) = train_test_split(td.len(), 0.7, 1);
    let train = td.select(&tr);
    let test = td.select(&te);

    let mut t = TableWriter::new(
        "Ablation: GDBT size vs MAE (Airport, L+M)",
        &["estimators", "depth", "lr", "MAE (Mbps)"],
    );
    for (n, depth, lr) in [
        (50usize, 4usize, 0.2),
        (200, 6, 0.1),
        (500, 6, 0.05),
        (1000, 8, 0.02),
    ] {
        let cfg = GbdtConfig {
            n_estimators: n,
            max_depth: depth,
            learning_rate: lr,
            min_samples_leaf: 5,
            subsample: 0.8,
            seed: 0,
        };
        let model = GbdtRegressor::fit(&train.xs, &train.ys, &cfg);
        let mae = lumos5g_ml::mae(&test.ys, &model.predict(&test.xs));
        t.row(&[
            format!("{n}"),
            format!("{depth}"),
            format!("{lr}"),
            format!("{mae:.0}"),
        ]);
    }
    let _ = t.save_csv(&results_dir().join("ablate_gbdt_size.csv"));
    t.render()
}

/// Early-stopping study: validation-monitored GDBT vs fixed round counts.
pub fn early_stopping(ctx: &mut Context) -> String {
    let data = ctx.airport_walk();
    let spec = FeatureSpec::new(FeatureSet::LM);
    let td = build_tabular(&data, &spec);
    let (tr, te) = train_test_split(td.len(), 0.7, 1);
    // Carve a validation fold out of the training split.
    let val: Vec<usize> = tr.iter().copied().step_by(5).collect();
    let fit: Vec<usize> = tr.iter().copied().filter(|i| !val.contains(i)).collect();
    let train = td.select(&fit);
    let valid = td.select(&val);
    let test = td.select(&te);

    let cfg = GbdtConfig {
        n_estimators: 600,
        max_depth: 6,
        learning_rate: 0.08,
        min_samples_leaf: 5,
        subsample: 0.8,
        seed: 0,
    };
    let (model, curve) =
        GbdtRegressor::fit_with_validation(&train.xs, &train.ys, &valid.xs, &valid.ys, &cfg, 25);
    let mae_es = lumos5g_ml::mae(&test.ys, &model.predict(&test.xs));

    let mut t = TableWriter::new(
        "Ablation: GDBT early stopping (validation-monitored) vs fixed rounds",
        &["variant", "trees", "test MAE (Mbps)"],
    );
    t.row(&[
        "early stopping (patience 25)".into(),
        format!("{}", model.n_trees()),
        format!("{mae_es:.0}"),
    ]);
    for n in [50usize, 200, 600] {
        let m = GbdtRegressor::fit(
            &train.xs,
            &train.ys,
            &GbdtConfig {
                n_estimators: n,
                ..cfg
            },
        );
        let mae = lumos5g_ml::mae(&test.ys, &m.predict(&test.xs));
        t.row(&[
            format!("fixed {n} rounds"),
            format!("{n}"),
            format!("{mae:.0}"),
        ]);
    }
    let _ = t.save_csv(&results_dir().join("ablate_early_stopping.csv"));
    format!(
        "{}\nvalidation RMSE curve: start {:.0} → best {:.0} Mbps over {} rounds\n",
        t.render(),
        curve.first().copied().unwrap_or(f64::NAN),
        curve.iter().cloned().fold(f64::INFINITY, f64::min),
        curve.len()
    )
}

/// §5.2 ablation: Seq2Seq history length.
pub fn seq2seq_history(ctx: &mut Context) -> String {
    let data = ctx.airport_walk();
    let mut t = TableWriter::new(
        "Ablation: Seq2Seq input history length vs MAE (Airport, L+M)",
        &["input_len", "MAE (Mbps)", "RMSE (Mbps)"],
    );
    for input_len in [5usize, 10, 20] {
        let mut p = ctx.scale.seq2seq();
        p.input_len = input_len;
        let out = regression_eval(&data, FeatureSet::LM, &ModelKind::Seq2Seq(p), 1);
        match out {
            Ok(o) => t.row(&[
                format!("{input_len}"),
                format!("{:.0}", o.mae),
                format!("{:.0}", o.rmse),
            ]),
            Err(e) => t.row(&[format!("{input_len}"), e.clone(), e]),
        }
    }
    let _ = t.save_csv(&results_dir().join("ablate_seq2seq_history.csv"));
    t.render()
}

/// Handoff-hysteresis ablation: margin vs handoff rate and throughput
/// variability.
pub fn hysteresis(ctx: &mut Context) -> String {
    let area = ctx.intersection_area();
    let mut t = TableWriter::new(
        "Ablation: handoff hysteresis vs handoff rate / throughput CV (Intersection)",
        &[
            "hysteresis (dB)",
            "horiz. HO / min",
            "vert. HO / min",
            "mean thpt",
            "CV %",
        ],
    );
    for hyst in [0.0f64, 1.5, 3.0, 6.0, 9.0] {
        let cfg = CampaignConfig {
            passes_per_trajectory: 2,
            mode: MobilityMode::walking(),
            base_seed: ctx.seed ^ 0x99,
            bad_gps_fraction: 0.0,
            handoff: lumos5g_net::HandoffConfig {
                hysteresis_db: hyst,
                ..Default::default()
            },
            ..Default::default()
        };
        let ds = run_campaign(&area, &cfg);
        let n = ds.len() as f64;
        let h: usize = ds.records.iter().filter(|r| r.horizontal_handoff).count();
        let v: usize = ds.records.iter().filter(|r| r.vertical_handoff).count();
        let thpt: Vec<f64> = ds.records.iter().map(|r| r.throughput_mbps).collect();
        let mean = lumos5g_stats::mean(&thpt).expect("non-empty");
        let cv = lumos5g_stats::coefficient_of_variation(&thpt).expect("non-empty");
        t.row(&[
            format!("{hyst}"),
            format!("{:.2}", h as f64 / n * 60.0),
            format!("{:.2}", v as f64 / n * 60.0),
            format!("{mean:.0}"),
            format!("{:.0}", cv * 100.0),
        ]);
    }
    let _ = t.save_csv(&results_dir().join("ablate_hysteresis.csv"));
    t.render()
}

/// Run every ablation.
pub fn all(ctx: &mut Context) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", tcp_conns(ctx));
    let _ = writeln!(out, "{}", congestion_control(ctx));
    let _ = writeln!(out, "{}", pixelization(ctx));
    let _ = writeln!(out, "{}", gbdt_size(ctx));
    let _ = writeln!(out, "{}", early_stopping(ctx));
    let _ = writeln!(out, "{}", seq2seq_history(ctx));
    let _ = writeln!(out, "{}", hysteresis(ctx));
    out
}
