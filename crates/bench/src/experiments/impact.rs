//! §4 impact-factor analysis experiments: Tables 4, 5, 10 and Figs 6–14,
//! 17–21.

use super::context::Context;
use super::results_dir;
use crate::table::TableWriter;
use lumos5g::prelude::*;
use lumos5g_geo::GridIndex;
use lumos5g_sim::{congestion, Dataset};
use lumos5g_stats as stats;
use lumos5g_stats::htest;
use std::fmt::Write as _;

/// Throughput sample groups per grid cell, keeping cells with ≥ `min`
/// samples.
fn cell_groups(data: &Dataset, min: usize) -> Vec<Vec<f64>> {
    data.throughput_by_cell(&GridIndex::paper_map_grid())
        .into_values()
        .filter(|v| v.len() >= min)
        .collect()
}

/// Same, conditioned on the heading octant (the §4.2 direction treatment).
fn cell_dir_groups(data: &Dataset, min: usize) -> Vec<Vec<f64>> {
    data.throughput_by_cell_and_direction(&GridIndex::paper_map_grid())
        .into_values()
        .filter(|v| v.len() >= min)
        .collect()
}

/// Linear resample of a trace to `n` points (for pairwise Spearman between
/// passes of different durations).
fn resample(trace: &[f64], n: usize) -> Vec<f64> {
    assert!(n >= 2 && trace.len() >= 2);
    (0..n)
        .map(|i| {
            let pos = i as f64 / (n - 1) as f64 * (trace.len() - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            trace[lo] + (pos - lo as f64) * (trace[hi] - trace[lo])
        })
        .collect()
}

/// Per-cell CV statistics: (mean%, std%, fraction ≥ 50%).
fn cv_stats(groups: &[Vec<f64>]) -> (f64, f64, f64) {
    let cvs: Vec<f64> = groups
        .iter()
        .filter_map(|g| stats::coefficient_of_variation(g).ok())
        .map(|cv| cv * 100.0)
        .collect();
    if cvs.is_empty() {
        return (f64::NAN, f64::NAN, f64::NAN);
    }
    let mean = stats::mean(&cvs).expect("non-empty");
    let std = stats::std_dev(&cvs).unwrap_or(0.0);
    let frac = cvs.iter().filter(|&&c| c >= 50.0).count() as f64 / cvs.len() as f64;
    (mean, std, frac)
}

/// Fraction of cells whose samples pass either normality test at α = 0.001
/// (the paper's criterion).
fn normality_fraction(groups: &[Vec<f64>]) -> f64 {
    let eligible: Vec<&Vec<f64>> = groups.iter().filter(|g| g.len() >= 20).collect();
    if eligible.is_empty() {
        return f64::NAN;
    }
    let normal = eligible
        .iter()
        .filter(|g| htest::passes_either_normality(g, 0.001))
        .count();
    normal as f64 / eligible.len() as f64
}

/// Circular mean heading of a pass, degrees.
fn mean_heading(data: &Dataset, traj: u32, pass: u32) -> f64 {
    let (mut s, mut c, mut n) = (0.0, 0.0, 0usize);
    for r in &data.records {
        if r.trajectory == traj && r.pass_id == pass {
            let rad = r.compass_deg.to_radians();
            s += rad.sin();
            c += rad.cos();
            n += 1;
        }
    }
    if n == 0 {
        return f64::NAN;
    }
    lumos5g_geo::normalize_deg(s.atan2(c).to_degrees())
}

/// Mean ± std of pairwise Spearman coefficients between trace pairs.
/// `same_direction = true` pairs passes whose mean headings agree (< 45°
/// apart — NB with NB); `false` pairs opposite headings (> 135° apart —
/// NB with SB), matching the §4.2 grouping.
fn spearman_pairs(data: &Dataset, same_direction: bool, max_pairs: usize) -> (f64, f64, usize) {
    let traces = data.traces();
    let mut keys: Vec<&(u32, u32)> = traces.keys().collect();
    keys.sort();
    let headings: Vec<f64> = keys
        .iter()
        .map(|&&(traj, pass)| mean_heading(data, traj, pass))
        .collect();
    let mut rhos = Vec::new();
    'outer: for (a_idx, &ka) in keys.iter().enumerate() {
        for (b_off, &kb) in keys.iter().enumerate().skip(a_idx + 1) {
            let diff = lumos5g_geo::signed_delta_deg(headings[a_idx], headings[b_off]).abs();
            let matches = if same_direction {
                diff < 45.0
            } else {
                diff > 135.0
            };
            if !matches {
                continue;
            }
            let (ta, tb) = (&traces[ka], &traces[kb]);
            if ta.len() < 20 || tb.len() < 20 {
                continue;
            }
            let n = 100;
            // Opposite-direction passes cover the path in reverse; compare
            // them in raw time order, as the paper's traces do.
            if let Ok(r) = stats::spearman(&resample(ta, n), &resample(tb, n)) {
                rhos.push(r.rho);
            }
            if rhos.len() >= max_pairs {
                break 'outer;
            }
        }
    }
    if rhos.is_empty() {
        return (f64::NAN, f64::NAN, 0);
    }
    (
        stats::mean(&rhos).expect("non-empty"),
        stats::std_dev(&rhos).unwrap_or(0.0),
        rhos.len(),
    )
}

/// Percentage of cell pairs with significantly different means (Welch) and
/// variances (Brown–Forsythe) at α = 0.1 over a bounded pair sample.
fn pairwise_fractions(groups: &[Vec<f64>], max_pairs: usize) -> (f64, f64, usize) {
    let mut t_sig = 0usize;
    let mut l_sig = 0usize;
    let mut n_pairs = 0usize;
    let stride = ((groups.len() * groups.len().saturating_sub(1) / 2) / max_pairs).max(1);
    let mut counter = 0usize;
    for i in 0..groups.len() {
        for j in (i + 1)..groups.len() {
            counter += 1;
            if !counter.is_multiple_of(stride) {
                continue;
            }
            if let Ok(r) = htest::welch_t_test(&groups[i], &groups[j]) {
                n_pairs += 1;
                if r.p_value < 0.1 {
                    t_sig += 1;
                }
                if let Ok(lr) =
                    htest::levene_test(&[&groups[i], &groups[j]], htest::LeveneCenter::Median)
                {
                    if lr.p_value < 0.1 {
                        l_sig += 1;
                    }
                }
            }
        }
    }
    if n_pairs == 0 {
        return (f64::NAN, f64::NAN, 0);
    }
    (
        t_sig as f64 / n_pairs as f64,
        l_sig as f64 / n_pairs as f64,
        n_pairs,
    )
}

/// Table 4 (Airport) and Table 10 (Intersection): factor analysis with and
/// without mobility conditioning.
pub fn table4(ctx: &mut Context) -> String {
    let mut out = String::new();
    for (label, data, file) in [
        (
            "Airport (indoor) — Table 4",
            ctx.airport_walk(),
            "table4_airport.csv",
        ),
        (
            "Intersection (outdoor) — Table 10",
            ctx.intersection_walk(),
            "table10_intersection.csv",
        ),
    ] {
        let plain = cell_groups(&data, 10);
        let dir = cell_dir_groups(&data, 10);
        let (cv_m, cv_s, _) = cv_stats(&plain);
        let (cvd_m, cvd_s, _) = cv_stats(&dir);
        let norm = normality_fraction(&plain);
        let norm_d = normality_fraction(&dir);
        let (sp_x, sp_xs, _) = spearman_pairs(&data, false, 400);
        let (sp_s, sp_ss, _) = spearman_pairs(&data, true, 400);

        let knn = &ModelKind::Knn { k: 5 };
        let rf = &ModelKind::RandomForest(Default::default());
        let r_l_knn = regression_eval(&data, FeatureSet::L, knn, 1).expect("eval");
        let r_l_rf = regression_eval(&data, FeatureSet::L, rf, 1).expect("eval");
        let r_m_knn = regression_eval(&data, FeatureSet::LTM, knn, 1).expect("eval");
        let r_m_rf = regression_eval(&data, FeatureSet::LTM, rf, 1).expect("eval");

        let mut t = TableWriter::new(
            label,
            &[
                "factors", "CV mean%", "CV std%", "normal%", "spearman", "sp std", "KNN MAE",
                "KNN RMSE", "RF MAE", "RF RMSE",
            ],
        );
        t.row(&[
            "(1) Geolocation".into(),
            format!("{cv_m:.2}"),
            format!("{cv_s:.2}"),
            format!("{:.2}", norm * 100.0),
            format!("{sp_x:.3}"),
            format!("{sp_xs:.2}"),
            format!("{:.0}", r_l_knn.mae),
            format!("{:.0}", r_l_knn.rmse),
            format!("{:.0}", r_l_rf.mae),
            format!("{:.0}", r_l_rf.rmse),
        ]);
        t.row(&[
            "(2) Mobility + (1)".into(),
            format!("{cvd_m:.2}"),
            format!("{cvd_s:.2}"),
            format!("{:.2}", norm_d * 100.0),
            format!("{sp_s:.3}"),
            format!("{sp_ss:.2}"),
            format!("{:.0}", r_m_knn.mae),
            format!("{:.0}", r_m_knn.rmse),
            format!("{:.0}", r_m_rf.mae),
            format!("{:.0}", r_m_rf.rmse),
        ]);
        let _ = t.save_csv(&results_dir().join(file));
        let _ = writeln!(out, "{}", t.render());
    }
    out
}

/// Table 5: percentage of geolocation pairs whose throughput differs
/// significantly (pairwise t-test / Levene, p < 0.1), indoor and outdoor.
pub fn table5(ctx: &mut Context) -> String {
    let indoor = cell_groups(&ctx.airport_walk(), 8);
    let outdoor = cell_groups(&ctx.intersection_walk(), 8);
    let (ti, li, ni) = pairwise_fractions(&indoor, 20_000);
    let (to, lo, no) = pairwise_fractions(&outdoor, 20_000);
    let mut t = TableWriter::new(
        "Table 5: % of geolocation pairs with significantly different throughput (p < 0.1)",
        &["test", "Indoor %", "Outdoor %", "pairs (in/out)"],
    );
    t.row(&[
        "Pairwise t-test".into(),
        format!("{:.2}", ti * 100.0),
        format!("{:.2}", to * 100.0),
        format!("{ni}/{no}"),
    ]);
    t.row(&[
        "Pairwise Levene test".into(),
        format!("{:.2}", li * 100.0),
        format!("{:.2}", lo * 100.0),
        format!("{ni}/{no}"),
    ]);
    let _ = t.save_csv(&results_dir().join("table5.csv"));
    t.render()
}

/// Fig 6: 2 m-grid throughput maps for Airport (indoor) and Intersection
/// (outdoor), as ASCII + CSV.
pub fn fig6(ctx: &mut Context) -> String {
    let mut out = String::new();
    for (label, data, file) in [
        (
            "Fig 6a: Airport (indoor) throughput map",
            ctx.airport_walk(),
            "fig6_airport_map.csv",
        ),
        (
            "Fig 6b: Intersection (outdoor) throughput map",
            ctx.intersection_walk(),
            "fig6_intersection_map.csv",
        ),
    ] {
        let map = ThroughputMap::from_dataset(&data);
        let _ = std::fs::create_dir_all(results_dir());
        let _ = std::fs::write(results_dir().join(file), map.to_csv());
        let _ = write!(
            out,
            "=== {label} ===\ncells: {}  buckets <60Mbps: {:.0}%  >1Gbps: {:.0}%\n{}\n",
            map.len(),
            map.bucket_fraction(0) * 100.0,
            map.bucket_fraction(5) * 100.0,
            map.to_ascii()
        );
    }
    out
}

/// Fig 7: CDFs of pairwise t-test p-values and per-cell CV (Airport).
pub fn fig7(ctx: &mut Context) -> String {
    let groups = cell_groups(&ctx.airport_walk(), 8);
    // p-value sample.
    let mut pvals = Vec::new();
    for i in 0..groups.len().min(150) {
        for j in (i + 1)..groups.len().min(150) {
            if let Ok(r) = htest::welch_t_test(&groups[i], &groups[j]) {
                pvals.push(r.p_value);
            }
        }
    }
    let cvs: Vec<f64> = groups
        .iter()
        .filter_map(|g| stats::coefficient_of_variation(g).ok())
        .map(|c| c * 100.0)
        .collect();
    let p_ecdf = stats::Ecdf::new(&pvals).expect("p-values");
    let cv_ecdf = stats::Ecdf::new(&cvs).expect("cvs");

    let mut csv = String::from("kind,x,cdf\n");
    for (x, f) in p_ecdf.curve(60) {
        let _ = writeln!(csv, "pvalue,{x:.4},{f:.4}");
    }
    for (x, f) in cv_ecdf.curve(60) {
        let _ = writeln!(csv, "cv_percent,{x:.2},{f:.4}");
    }
    let _ = std::fs::create_dir_all(results_dir());
    let _ = std::fs::write(results_dir().join("fig7_cdfs.csv"), csv);

    format!(
        "=== Fig 7: throughput similarity & variability (Airport) ===\n\
         pairs tested: {}   share with p < 0.1: {:.1}%\n\
         cells: {}   share with CV >= 50%: {:.1}%   median CV: {:.1}%\n",
        p_ecdf.len(),
        p_ecdf.eval(0.1) * 100.0,
        cvs.len(),
        cv_ecdf.fraction_at_least(50.0) * 100.0,
        stats::median(&cvs).unwrap_or(f64::NAN)
    )
}

/// Shared θm binning (Figs 8 and 18).
fn theta_m_table(data: &Dataset, panel_filter: Option<u32>, title: &str, file: &str) -> String {
    let mut t = TableWriter::new(title, &["theta_m bin", "n", "q1", "median", "q3", "mean"]);
    for bin in 0..12 {
        let lo = bin as f64 * 30.0;
        let hi = lo + 30.0;
        let vals: Vec<f64> = data
            .records
            .iter()
            .filter(|r| r.on_5g)
            .filter(|r| panel_filter.is_none_or(|p| r.cell_id == p))
            .filter(|r| r.theta_m_deg >= lo && r.theta_m_deg < hi)
            .map(|r| r.throughput_mbps)
            .collect();
        if vals.len() < 10 {
            continue;
        }
        let s = stats::Summary::of(&vals).expect("non-empty");
        t.row(&[
            format!("[{lo:.0},{hi:.0})"),
            format!("{}", s.n),
            format!("{:.0}", s.q1),
            format!("{:.0}", s.median),
            format!("{:.0}", s.q3),
            format!("{:.0}", s.mean),
        ]);
    }
    let _ = t.save_csv(&results_dir().join(file));
    t.render()
}

/// Fig 8: throughput vs UE-panel mobility angle θm (Airport, all panels).
pub fn fig8(ctx: &mut Context) -> String {
    let data = ctx.airport_walk();
    theta_m_table(
        &data,
        None,
        "Fig 8: throughput by mobility angle θm (Airport)",
        "fig8_theta_m.csv",
    )
}

/// Fig 18: θm effect split by panel (Airport south=1, north=2).
pub fn fig18(ctx: &mut Context) -> String {
    let data = ctx.airport_walk();
    let south = theta_m_table(
        &data,
        Some(1),
        "Fig 18a: θm vs throughput — South panel",
        "fig18_south.csv",
    );
    let north = theta_m_table(
        &data,
        Some(2),
        "Fig 18b: θm vs throughput — North panel",
        "fig18_north.csv",
    );
    format!("{south}\n{north}")
}

/// Fig 9: NB vs SB throughput maps at the Airport.
pub fn fig9(ctx: &mut Context) -> String {
    let data = ctx.airport_walk();
    let mut out = String::new();
    for (traj, label, file) in [
        (0u32, "Fig 9a: NB (north-bound)", "fig9_nb_map.csv"),
        (1u32, "Fig 9b: SB (south-bound)", "fig9_sb_map.csv"),
    ] {
        let sub = data.by_trajectory(traj);
        let map = ThroughputMap::from_dataset(&sub);
        let _ = std::fs::create_dir_all(results_dir());
        let _ = std::fs::write(results_dir().join(file), map.to_csv());
        let _ = write!(
            out,
            "=== {label} ===\ncells: {}  mean of cell means: {:.0} Mbps\n{}\n",
            map.len(),
            map.cells().map(|(_, s)| s.mean).sum::<f64>() / map.len().max(1) as f64,
            map.to_ascii()
        );
    }
    out
}

/// Fig 10: Spearman coefficients grouped by direction.
pub fn fig10(ctx: &mut Context) -> String {
    let data = ctx.airport_walk();
    let (same_m, same_s, same_n) = spearman_pairs(&data, true, 600);
    let (cross_m, cross_s, cross_n) = spearman_pairs(&data, false, 600);
    let mut t = TableWriter::new(
        "Fig 10: pairwise Spearman of throughput traces (Airport)",
        &["grouping", "pairs", "mean rho", "std"],
    );
    t.row(&[
        "same direction (NB–NB / SB–SB)".into(),
        format!("{same_n}"),
        format!("{same_m:.3}"),
        format!("{same_s:.3}"),
    ]);
    t.row(&[
        "opposite directions (NB–SB)".into(),
        format!("{cross_n}"),
        format!("{cross_m:.3}"),
        format!("{cross_s:.3}"),
    ]);
    let _ = t.save_csv(&results_dir().join("fig10_spearman.csv"));
    t.render()
}

/// Fig 11: throughput vs UE–panel distance per Airport panel.
pub fn fig11(ctx: &mut Context) -> String {
    let data = ctx.airport_walk();
    let mut out = String::new();
    for (panel, label, file) in [
        (2u32, "Fig 11a: North panel", "fig11_north.csv"),
        (1u32, "Fig 11b: South panel", "fig11_south.csv"),
    ] {
        let mut t = TableWriter::new(
            &format!("{label}: throughput vs distance"),
            &["distance bin (m)", "n", "q1", "median", "q3", "mean"],
        );
        for bin in 0..20 {
            let lo = bin as f64 * 15.0;
            let hi = lo + 15.0;
            let vals: Vec<f64> = data
                .records
                .iter()
                .filter(|r| r.on_5g && r.cell_id == panel)
                .filter(|r| r.panel_distance_m >= lo && r.panel_distance_m < hi)
                .map(|r| r.throughput_mbps)
                .collect();
            if vals.len() < 10 {
                continue;
            }
            let s = stats::Summary::of(&vals).expect("non-empty");
            t.row(&[
                format!("[{lo:.0},{hi:.0})"),
                format!("{}", s.n),
                format!("{:.0}", s.q1),
                format!("{:.0}", s.median),
                format!("{:.0}", s.q3),
                format!("{:.0}", s.mean),
            ]);
        }
        let _ = t.save_csv(&results_dir().join(file));
        let _ = writeln!(out, "{}", t.render());
    }
    out
}

/// Fig 13: positional-angle sector × distance band (Airport south panel).
pub fn fig13(ctx: &mut Context) -> String {
    let data = ctx.airport_walk();
    let mut t = TableWriter::new(
        "Fig 13: throughput by positional sector × distance (South panel)",
        &["sector", "<25m", "25-50m", "50-100m", ">=100m"],
    );
    let sector_of = |theta: f64| lumos5g_geo::PositionSector::from_theta_p(theta);
    for sector in [
        lumos5g_geo::PositionSector::Front,
        lumos5g_geo::PositionSector::Right,
        lumos5g_geo::PositionSector::Back,
        lumos5g_geo::PositionSector::Left,
    ] {
        let mut cells = Vec::new();
        for band in 0..4 {
            let (lo, hi) = match band {
                0 => (0.0, 25.0),
                1 => (25.0, 50.0),
                2 => (50.0, 100.0),
                _ => (100.0, f64::INFINITY),
            };
            let vals: Vec<f64> = data
                .records
                .iter()
                .filter(|r| r.on_5g && r.cell_id == 1)
                .filter(|r| sector_of(r.theta_p_deg) == sector)
                .filter(|r| r.panel_distance_m >= lo && r.panel_distance_m < hi)
                .map(|r| r.throughput_mbps)
                .collect();
            cells.push(if vals.len() >= 5 {
                format!(
                    "{:.0} (n={})",
                    stats::mean(&vals).expect("non-empty"),
                    vals.len()
                )
            } else {
                "-".into()
            });
        }
        t.row(&[
            sector.label().to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
        ]);
    }
    let _ = t.save_csv(&results_dir().join("fig13_sectors.csv"));
    t.render()
}

/// Fig 14: throughput vs ground speed, driving vs walking (Loop).
pub fn fig14(ctx: &mut Context) -> String {
    let walk = ctx.loop_walk();
    let drive = ctx.loop_drive();
    let mut out = String::new();

    let mut t = TableWriter::new(
        "Fig 14a: driving — throughput by speed (5 km/h bins)",
        &["speed (km/h)", "n", "median", "p90", "max"],
    );
    for bin in 0..9 {
        let lo = bin as f64 * 5.0;
        let hi = lo + 5.0;
        let vals: Vec<f64> = drive
            .records
            .iter()
            .filter(|r| {
                let kmh = r.true_speed_mps * 3.6;
                kmh >= lo && kmh < hi
            })
            .map(|r| r.throughput_mbps)
            .collect();
        if vals.len() < 10 {
            continue;
        }
        t.row(&[
            format!("[{lo:.0},{hi:.0})"),
            format!("{}", vals.len()),
            format!("{:.0}", stats::median(&vals).expect("non-empty")),
            format!("{:.0}", stats::quantile(&vals, 0.9).expect("non-empty")),
            format!("{:.0}", vals.iter().cloned().fold(0.0, f64::max)),
        ]);
    }
    let _ = t.save_csv(&results_dir().join("fig14a_driving.csv"));
    let _ = writeln!(out, "{}", t.render());

    let mut t = TableWriter::new(
        "Fig 14b: walking vs driving — median throughput by speed (1 km/h bins)",
        &[
            "speed (km/h)",
            "walk n",
            "walk median",
            "drive n",
            "drive median",
        ],
    );
    for bin in 0..8 {
        let lo = bin as f64;
        let hi = lo + 1.0;
        let grab = |d: &Dataset| -> Vec<f64> {
            d.records
                .iter()
                .filter(|r| {
                    let kmh = r.true_speed_mps * 3.6;
                    kmh >= lo && kmh < hi
                })
                .map(|r| r.throughput_mbps)
                .collect()
        };
        let w = grab(&walk);
        let d = grab(&drive);
        t.row(&[
            format!("[{lo:.0},{hi:.0})"),
            format!("{}", w.len()),
            if w.len() >= 10 {
                format!("{:.0}", stats::median(&w).expect("non-empty"))
            } else {
                "-".into()
            },
            format!("{}", d.len()),
            if d.len() >= 10 {
                format!("{:.0}", stats::median(&d).expect("non-empty"))
            } else {
                "-".into()
            },
        ]);
    }
    let _ = t.save_csv(&results_dir().join("fig14b_walk_vs_drive.csv"));
    let _ = writeln!(out, "{}", t.render());
    out
}

/// Fig 17: extended normality / Levene results, indoor vs outdoor.
pub fn fig17(ctx: &mut Context) -> String {
    let indoor = cell_groups(&ctx.airport_walk(), 8);
    let outdoor = cell_groups(&ctx.intersection_walk(), 8);
    let (_, li, _) = pairwise_fractions(&indoor, 20_000);
    let (_, lo, _) = pairwise_fractions(&outdoor, 20_000);
    let mut t = TableWriter::new(
        "Fig 17: normality (α = 0.001) & Levene (α = 0.1), indoor vs outdoor",
        &["metric", "Indoor (Airport)", "Outdoor (Intersection)"],
    );
    t.row(&[
        "% cells NOT normal".into(),
        format!("{:.1}%", (1.0 - normality_fraction(&indoor)) * 100.0),
        format!("{:.1}%", (1.0 - normality_fraction(&outdoor)) * 100.0),
    ]);
    t.row(&[
        "% pairs with different variances".into(),
        format!("{:.1}%", li * 100.0),
        format!("{:.1}%", lo * 100.0),
    ]);
    let _ = t.save_csv(&results_dir().join("fig17.csv"));
    t.render()
}

/// Figs 19–20 (App A.1.2): deltas from conditioning on mobility direction.
pub fn fig19_20(ctx: &mut Context) -> String {
    let mut out = String::new();
    for (label, data, file) in [
        ("Fig 19: Airport", ctx.airport_walk(), "fig19_airport.csv"),
        (
            "Fig 20: Intersection",
            ctx.intersection_walk(),
            "fig20_intersection.csv",
        ),
    ] {
        let plain = cell_groups(&data, 10);
        let dir = cell_dir_groups(&data, 10);
        let (_, _, cv50_plain) = cv_stats(&plain);
        let (_, _, cv50_dir) = cv_stats(&dir);
        let (t_plain, _, _) = pairwise_fractions(&plain, 10_000);
        let (t_dir, _, _) = pairwise_fractions(&dir, 10_000);
        let mut t = TableWriter::new(
            &format!("{label}: effect of conditioning on mobility direction"),
            &["metric", "direction ignored", "direction accounted"],
        );
        t.row(&[
            "% cells normal (α=0.001)".into(),
            format!("{:.1}%", normality_fraction(&plain) * 100.0),
            format!("{:.1}%", normality_fraction(&dir) * 100.0),
        ]);
        t.row(&[
            "% cells with CV >= 50%".into(),
            format!("{:.1}%", cv50_plain * 100.0),
            format!("{:.1}%", cv50_dir * 100.0),
        ]);
        t.row(&[
            "% pairs t-test significant".into(),
            format!("{:.1}%", t_plain * 100.0),
            format!("{:.1}%", t_dir * 100.0),
        ]);
        let _ = t.save_csv(&results_dir().join(file));
        let _ = writeln!(out, "{}", t.render());
    }
    out
}

/// Fig 21 (App A.1.4): staggered multi-UE congestion.
pub fn fig21(ctx: &mut Context) -> String {
    let area = ctx.airport_area();
    let cfg = congestion::CongestionConfig::default();
    let timelines = congestion::run_congestion_experiment(&area, &cfg);

    let mut csv = String::from("t,ue1,ue2,ue3,ue4\n");
    for t in 0..cfg.total_s as usize {
        let cells: Vec<String> = timelines
            .iter()
            .map(|tl| tl[t].map_or(String::new(), |v| format!("{v:.0}")))
            .collect();
        let _ = writeln!(csv, "{t},{}", cells.join(","));
    }
    let _ = std::fs::create_dir_all(results_dir());
    let _ = std::fs::write(results_dir().join("fig21_congestion.csv"), csv);

    let window_mean = |tl: &[Option<f64>], a: usize, b: usize| -> f64 {
        let v: Vec<f64> = tl[a..b].iter().filter_map(|x| *x).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let solo = window_mean(&timelines[0], 20, 55);
    let duo = window_mean(&timelines[0], 80, 115);
    let trio = window_mean(&timelines[0], 140, 175);
    let quad = window_mean(&timelines[0], 200, 235);
    format!(
        "=== Fig 21: multi-UE contention (UE1 goodput by active-UE count) ===\n\
         1 UE : {solo:.0} Mbps\n2 UEs: {duo:.0} Mbps ({:.2}x)\n\
         3 UEs: {trio:.0} Mbps ({:.2}x)\n4 UEs: {quad:.0} Mbps ({:.2}x)\n",
        duo / solo,
        trio / solo,
        quad / solo
    )
}
