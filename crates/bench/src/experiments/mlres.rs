//! §6 evaluation experiments: Tables 7–9, Figs 16, 22, 23, the §6.2
//! transferability analysis and the App A.4 4G-vs-5G comparison.

use super::context::Context;
use super::results_dir;
use crate::table::TableWriter;
use lumos5g::features::FeatureSpec;
use lumos5g::prelude::*;
use lumos5g::tabular::build_tabular;
use lumos5g::transfer::panel_transfer;
use lumos5g_ml::dataset::TargetScaler;
use lumos5g_ml::{train_test_split, Seq2Seq, Seq2SeqConfig, StandardScaler};
use lumos5g_sim::Dataset;
use std::fmt::Write as _;

/// The per-area datasets of Tables 7/8, in the paper's column order.
fn areas(ctx: &mut Context) -> Vec<(&'static str, Dataset, bool)> {
    vec![
        ("4-way Intersection", ctx.intersection_walk(), true),
        ("1300m Loop", ctx.loop_all(), false),
        ("Airport", ctx.airport_walk(), true),
    ]
}

/// Global dataset appropriate for a feature set: T-based sets can only use
/// areas with known panel locations (paper: "all areas with known 5G panel
/// locations").
fn global_for(ctx: &mut Context, set: FeatureSet) -> Dataset {
    ctx.global(!set.needs_panels())
}

const TABLE_SETS: [FeatureSet; 5] = [
    FeatureSet::L,
    FeatureSet::LM,
    FeatureSet::TM,
    FeatureSet::LMC,
    FeatureSet::TMC,
];

/// Which of the two headline tables to render.
#[derive(Clone, Copy, PartialEq)]
enum Headline {
    Classification,
    Regression,
}

/// Shared driver for Tables 7 and 8 (one trained model feeds both; results
/// are cached in the context so running both tables trains each model once).
fn headline_table(ctx: &mut Context, which: Headline) -> String {
    let gbdt = ModelKind::Gdbt(ctx.scale.gbdt());
    let s2s = ModelKind::Seq2Seq(ctx.scale.seq2seq());
    let mut header = vec!["feature set".to_string()];
    let area_list = areas(ctx);
    for (name, _, _) in &area_list {
        header.push(format!("{name} GDBT"));
        header.push(format!("{name} S2S"));
    }
    header.push("Global GDBT".into());
    header.push("Global S2S".into());
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let (title, file) = match which {
        Headline::Classification => (
            "Table 7: classification (wF1|low-recall)",
            "table7_classification.csv",
        ),
        Headline::Regression => (
            "Table 8: regression (MAE|RMSE, Mbps)",
            "table8_regression.csv",
        ),
    };
    let mut t = TableWriter::new(title, &hdr);

    let fmt = |out: Result<
        (
            lumos5g::eval::RegressionOutcome,
            lumos5g::eval::ClassificationOutcome,
        ),
        String,
    >|
     -> String {
        match out {
            Ok((reg, clf)) => match which {
                Headline::Classification => format!("{:.2}|{:.2}", clf.weighted_f1, clf.low_recall),
                Headline::Regression => format!("{:.0}|{:.0}", reg.mae, reg.rmse),
            },
            Err(_) => "err".into(),
        }
    };

    for set in TABLE_SETS {
        let mut row = vec![set.label().to_string()];
        for (name, data, panels_known) in &area_list {
            for model in [&gbdt, &s2s] {
                row.push(if set.needs_panels() && !panels_known {
                    "-".into()
                } else {
                    fmt(ctx.eval_cached(name, data, set, model))
                });
            }
        }
        let g = global_for(ctx, set);
        let gkey = if set.needs_panels() {
            "global_t"
        } else {
            "global"
        };
        for model in [&gbdt, &s2s] {
            row.push(fmt(ctx.eval_cached(gkey, &g, set, model)));
        }
        t.row(&row);
    }
    let _ = t.save_csv(&results_dir().join(file));
    t.render()
}

/// Table 7: classification — weighted-F1 | low-class recall per area ×
/// feature set × {GDBT, Seq2Seq}.
pub fn table7(ctx: &mut Context) -> String {
    headline_table(ctx, Headline::Classification)
}

/// Table 8: regression — MAE | RMSE per area × feature set × model.
pub fn table8(ctx: &mut Context) -> String {
    headline_table(ctx, Headline::Regression)
}

/// Table 9: Global comparison with baselines (regression + classification).
pub fn table9(ctx: &mut Context) -> String {
    let models: Vec<(&str, ModelKind)> = vec![
        ("KNN", ModelKind::Knn { k: 5 }),
        ("RF", ModelKind::RandomForest(Default::default())),
        ("OK", ModelKind::Kriging { neighbors: 16 }),
        ("GDBT", ModelKind::Gdbt(ctx.scale.gbdt())),
        ("Seq2Seq", ModelKind::Seq2Seq(ctx.scale.seq2seq())),
    ];
    let mut out = String::new();

    let mut t_reg = TableWriter::new(
        "Table 9 (regression, Global): MAE|RMSE",
        &["feature set", "KNN", "RF", "OK", "GDBT", "Seq2Seq"],
    );
    let mut t_clf = TableWriter::new(
        "Table 9 (classification, Global): weighted-F1",
        &["feature set", "KNN", "RF", "OK", "GDBT", "Seq2Seq"],
    );
    for set in TABLE_SETS {
        let g = global_for(ctx, set);
        let gkey = if set.needs_panels() {
            "global_t"
        } else {
            "global"
        };
        let mut row_reg = vec![set.label().to_string()];
        let mut row_clf = vec![set.label().to_string()];
        for (name, model) in &models {
            // Kriging is location-interpolation only (Table 9's "NA").
            if *name == "OK" && set != FeatureSet::L {
                row_reg.push("NA".into());
                row_clf.push("NA".into());
                continue;
            }
            match ctx.eval_cached(gkey, &g, set, model) {
                Ok((reg, clf)) => {
                    row_reg.push(format!("{:.0}|{:.0}", reg.mae, reg.rmse));
                    row_clf.push(format!("{:.2}", clf.weighted_f1));
                }
                Err(_) => {
                    row_reg.push("err".into());
                    row_clf.push("err".into());
                }
            }
        }
        t_reg.row(&row_reg);
        t_clf.row(&row_clf);
    }
    let _ = t_reg.save_csv(&results_dir().join("table9_regression.csv"));
    let _ = writeln!(out, "{}", t_reg.render());
    let _ = t_clf.save_csv(&results_dir().join("table9_classification.csv"));
    let _ = writeln!(out, "{}", t_clf.render());

    // History-based Harmonic Mean (bottom block of Table 9).
    let g = ctx.global(true);
    let hm = ModelKind::HarmonicMean { window: 5 };
    let reg = regression_eval(&g, FeatureSet::L, &hm, 1).expect("hm eval");
    let clf = classification_eval(&g, FeatureSet::L, &hm, 1).expect("hm eval");
    let _ = writeln!(
        out,
        "Harmonic Mean (past throughput): MAE {:.0} | RMSE {:.0} | wF1 {:.2}",
        reg.mae, reg.rmse, clf.weighted_f1
    );
    out
}

/// Fig 16: sample regression traces with ±200 Mbps bands (Global, L+M+C).
pub fn fig16(ctx: &mut Context) -> String {
    let g = ctx.global(true);
    let spec = FeatureSpec::new(FeatureSet::LMC);
    let td = build_tabular(&g, &spec);
    let (tr, te) = train_test_split(td.len(), 0.7, 1);
    let train = td.select(&tr);
    let test = td.select(&te.iter().copied().take(300).collect::<Vec<_>>());

    let gbdt = ctx.gbdt_or_load(
        "fig16_gdbt_lmc",
        FeatureSet::LMC,
        &ctx.scale.gbdt(),
        &train.xs,
        &train.ys,
    );
    let pred = gbdt.predict(&test.xs);

    let mut csv = String::from("idx,truth,gdbt\n");
    for (i, (t, p)) in test.ys.iter().zip(&pred).enumerate() {
        let _ = writeln!(csv, "{i},{t:.0},{p:.0}");
    }
    let _ = std::fs::create_dir_all(results_dir());
    let _ = std::fs::write(results_dir().join("fig16_regression_traces.csv"), csv);

    let within: usize = test
        .ys
        .iter()
        .zip(&pred)
        .filter(|(t, p)| (*t - *p).abs() <= 200.0)
        .count();
    format!(
        "=== Fig 16: GDBT L+M+C sample predictions (Global) ===\n\
         test samples plotted: {}   within ±200 Mbps band: {:.1}%\n\
         (per-sample series in results/fig16_regression_traces.csv)\n",
        test.ys.len(),
        within as f64 / test.ys.len() as f64 * 100.0
    )
}

/// Fig 22: GDBT global feature importance per feature-group combination.
pub fn fig22(ctx: &mut Context) -> String {
    let mut out = String::new();
    let gbdt = ctx.scale.gbdt();
    for set in [
        FeatureSet::L,
        FeatureSet::LM,
        FeatureSet::TM,
        FeatureSet::LMC,
        FeatureSet::TMC,
    ] {
        let g = global_for(ctx, set);
        let spec = FeatureSpec::new(set);
        let td = build_tabular(&g, &spec);
        // Importance estimates stabilize long before the full dataset size;
        // cap training rows to keep the sweep fast.
        let cap = 20_000.min(td.len());
        let idx: Vec<usize> = (0..cap).map(|k| k * td.len() / cap).collect();
        let sub = td.select(&idx);
        let model = ctx.gbdt_or_load(
            &format!("fig22_gdbt_{}", set.label()),
            set,
            &gbdt,
            &sub.xs,
            &sub.ys,
        );
        let imp: Vec<(String, f64)> = spec
            .feature_names()
            .into_iter()
            .zip(model.feature_importance())
            .collect();
        let mut t = TableWriter::new(
            &format!("Fig 22: feature importance — {}", set.label()),
            &["feature", "importance %"],
        );
        let mut sorted = imp.clone();
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
        for (name, v) in sorted {
            t.row(&[name, format!("{:.1}", v * 100.0)]);
        }
        let _ = t.save_csv(&results_dir().join(format!(
            "fig22_importance_{}.csv",
            set.label().replace('+', "")
        )));
        let _ = writeln!(out, "{}", t.render());
    }
    out
}

/// Fig 23: per-area baseline comparison (weighted-F1).
pub fn fig23(ctx: &mut Context) -> String {
    let gbdt = ModelKind::Gdbt(ctx.scale.gbdt());
    let s2s = ModelKind::Seq2Seq(ctx.scale.seq2seq());
    let models: Vec<(&str, FeatureSet, ModelKind)> = vec![
        (
            "OK (L)",
            FeatureSet::L,
            ModelKind::Kriging { neighbors: 16 },
        ),
        ("KNN (L)", FeatureSet::L, ModelKind::Knn { k: 5 }),
        (
            "RF (L)",
            FeatureSet::L,
            ModelKind::RandomForest(Default::default()),
        ),
        ("GDBT (L+M)", FeatureSet::LM, gbdt.clone()),
        ("GDBT (L+M+C)", FeatureSet::LMC, gbdt),
        ("Seq2Seq (L+M)", FeatureSet::LM, s2s.clone()),
        ("Seq2Seq (L+M+C)", FeatureSet::LMC, s2s),
    ];
    let mut t = TableWriter::new(
        "Fig 23: weighted-F1 per area, Lumos5G vs baselines",
        &["model", "Intersection", "Airport", "Loop"],
    );
    let datasets = [ctx.intersection_walk(), ctx.airport_walk(), ctx.loop_all()];
    let keys = ["4-way Intersection", "Airport", "1300m Loop"];
    for (name, set, model) in models {
        let mut row = vec![name.to_string()];
        for (key, data) in keys.iter().zip(&datasets) {
            row.push(match ctx.eval_cached(key, data, set, &model) {
                Ok((_, o)) => format!("{:.2}", o.weighted_f1),
                Err(_) => "err".into(),
            });
        }
        t.row(&row);
    }
    let _ = t.save_csv(&results_dir().join("fig23_baselines_per_area.csv"));
    t.render()
}

/// §6.2 transferability: T+M GDBT trained on the Airport North panel,
/// tested on the South panel.
pub fn transfer(ctx: &mut Context) -> String {
    let data = ctx.airport_walk();
    let gbdt = ctx.scale.gbdt();
    // North panel has id 2, South id 1 (see `lumos5g_sim::airport`).
    let r = panel_transfer(&data, 2, 1, &gbdt, 25.0).expect("transfer eval");
    let control = panel_transfer(&data, 1, 1, &gbdt, 25.0)
        .map(|c| c.overall_f1)
        .unwrap_or(f64::NAN);
    let mut t = TableWriter::new(
        "Transferability (§6.2): T+M model, train North → test South",
        &["metric", "value"],
    );
    t.row(&["overall weighted-F1".into(), format!("{:.2}", r.overall_f1)]);
    t.row(&[
        format!("weighted-F1 within {:.0} m", r.near_radius_m),
        format!("{:.2}", r.near_f1),
    ]);
    t.row(&["test samples".into(), format!("{}", r.n_test)]);
    t.row(&["near-field samples".into(), format!("{}", r.n_near)]);
    t.row(&["same-panel control wF1".into(), format!("{control:.2}")]);
    let _ = t.save_csv(&results_dir().join("transfer.csv"));
    t.render()
}

/// App A.4: 4G vs 5G predictability with location-only models.
///
/// The 4G side is the same walk with throughput replaced by the LTE model
/// at each true position — the "second phone on 4G" of the paper's setup.
pub fn a4(ctx: &mut Context) -> String {
    let area = ctx.loop_area();
    let five_g = ctx.loop_walk();
    // Derive the 4G trace: same positions/passes, LTE throughput.
    let mut four_g = five_g.clone();
    let mut fading = lumos5g_radio::FastFading::new(0x46, 0.8, 1.2);
    for r in &mut four_g.records {
        let pos = lumos5g_geo::Point2::new(r.true_x_m, r.true_y_m);
        r.throughput_mbps = area.lte.throughput_mbps(pos, fading.next_db());
        r.on_5g = false;
    }

    let run = |data: &Dataset, model: &ModelKind| -> f64 {
        regression_eval(data, FeatureSet::L, model, 1)
            .map(|o| o.mae)
            .unwrap_or(f64::NAN)
    };
    let knn = ModelKind::Knn { k: 5 };
    let ok = ModelKind::Kriging { neighbors: 16 };
    let rf = ModelKind::RandomForest(Default::default());

    let mut t = TableWriter::new(
        "App A.4: location-only MAE on 4G vs 5G traces (Loop, walking)",
        &["model", "4G MAE (Mbps)", "5G MAE (Mbps)", "ratio 5G/4G"],
    );
    for (name, model) in [("KNN", &knn), ("OK", &ok), ("RF", &rf)] {
        let m4 = run(&four_g, model);
        let m5 = run(&five_g, model);
        t.row(&[
            name.into(),
            format!("{m4:.1}"),
            format!("{m5:.1}"),
            format!("{:.1}x", m5 / m4),
        ]);
    }
    let _ = t.save_csv(&results_dir().join("a4_4g_vs_5g.csv"));
    t.render()
}

/// Extension: the "throughput map as a model" (Fig 3c) — hierarchical
/// cell/direction lookup vs the learned models, per area.
pub fn map_model(ctx: &mut Context) -> String {
    use lumos5g::map_model::map_model_eval;
    let gbdt = ModelKind::Gdbt(ctx.scale.gbdt());
    let mut t = TableWriter::new(
        "Extension: map-lookup predictor vs GDBT (MAE, Mbps; pass-level split)",
        &["area", "map (dir-blind)", "map (dir-aware)", "GDBT L+M"],
    );
    for (name, data) in [
        ("Intersection", ctx.intersection_walk()),
        ("Airport", ctx.airport_walk()),
        ("Loop", ctx.loop_all()),
    ] {
        let blind = map_model_eval(&data, false, 1).map(|(m, _, _)| m);
        let aware = map_model_eval(&data, true, 1).map(|(m, _, _)| m);
        let learned = ctx
            .eval_cached(name, &data, FeatureSet::LM, &gbdt)
            .map(|(r, _)| r.mae);
        let f = |v: Result<f64, String>| v.map_or("err".into(), |m| format!("{m:.0}"));
        t.row(&[name.into(), f(blind), f(aware), f(learned)]);
    }
    let _ = t.save_csv(&results_dir().join("map_model.csv"));
    t.render()
}

/// §8.1 extension: sensitivity of the models to inaccuracies in input
/// feature values (the paper lists this as future work).
///
/// Train GDBT L+M on clean features, then evaluate with extra sensor noise
/// injected at inference time: GPS position noise (reflected through
/// re-pixelization) and compass noise.
pub fn sensitivity(ctx: &mut Context) -> String {
    use lumos5g_geo::normalize_deg;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let data = ctx.airport_walk();
    let area = ctx.airport_area();
    let spec = FeatureSpec::new(FeatureSet::LM);
    let td = build_tabular(&data, &spec);
    let (tr, te) = train_test_split(td.len(), 0.7, 1);
    let train = td.select(&tr);
    let model = ctx.gbdt_or_load(
        "sensitivity_gdbt_lm",
        FeatureSet::LM,
        &ctx.scale.gbdt(),
        &train.xs,
        &train.ys,
    );

    // Re-derive noisy test records rather than perturbing extracted
    // features, so pixelization reacts to position noise realistically.
    let mut t = TableWriter::new(
        "Extension (§8.1): GDBT L+M MAE under inference-time sensor noise",
        &[
            "extra GPS σ (m)",
            "extra compass σ (°)",
            "MAE (Mbps)",
            "vs clean",
        ],
    );
    let mut clean_mae = None;
    for (gps_sigma, compass_sigma) in [
        (0.0, 0.0),
        (2.0, 0.0),
        (5.0, 0.0),
        (10.0, 0.0),
        (0.0, 15.0),
        (0.0, 45.0),
        (5.0, 15.0),
        (10.0, 45.0),
    ] {
        let mut rng =
            StdRng::seed_from_u64(0xFEED ^ (gps_sigma as u64) << 8 ^ compass_sigma as u64);
        let gauss = move |rng: &mut StdRng| -> f64 {
            let u1: f64 = rng.gen::<f64>().max(1e-300);
            let u2: f64 = rng.gen();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let mut noisy = data.clone();
        for r in &mut noisy.records {
            if gps_sigma > 0.0 {
                let p = lumos5g_geo::Point2::new(
                    r.snapped_x_m + gps_sigma * gauss(&mut rng),
                    r.snapped_y_m + gps_sigma * gauss(&mut rng),
                );
                let px = area.frame.to_latlon(p).to_pixel(lumos5g_geo::ZOOM_PAPER);
                let snapped = area.frame.to_local(px.center_latlon());
                r.pixel_x = px.x;
                r.pixel_y = px.y;
                r.snapped_x_m = snapped.x;
                r.snapped_y_m = snapped.y;
            }
            if compass_sigma > 0.0 {
                r.compass_deg = normalize_deg(r.compass_deg + compass_sigma * gauss(&mut rng));
            }
        }
        let ntd = build_tabular(&noisy, &spec);
        let test = ntd.select(&te);
        let mae = lumos5g_ml::mae(&test.ys, &model.predict(&test.xs));
        if clean_mae.is_none() {
            clean_mae = Some(mae);
        }
        t.row(&[
            format!("{gps_sigma}"),
            format!("{compass_sigma}"),
            format!("{mae:.0}"),
            format!("{:+.0}%", (mae / clean_mae.expect("set") - 1.0) * 100.0),
        ]);
    }
    let _ = t.save_csv(&results_dir().join("sensitivity.csv"));
    t.render()
}

/// §8.1 extension: temporal generalizability — train on one campaign, test
/// on a later one over the same area (same environment, fresh passes), and
/// on a "seasonal" variant whose environment gained foliage obstacles.
pub fn temporal(ctx: &mut Context) -> String {
    use lumos5g_radio::Obstacle;
    use lumos5g_sim::{quality, run_campaign, CampaignConfig, MobilityMode};

    let gbdt = ctx.scale.gbdt();
    let area = ctx.airport_area();
    let campaign = |area: &lumos5g_sim::Area, seed: u64| {
        let cfg = CampaignConfig {
            passes_per_trajectory: ctx.scale.passes(),
            mode: MobilityMode::walking(),
            base_seed: seed,
            bad_gps_fraction: 0.0,
            max_duration_s: 500,
            ..Default::default()
        };
        let raw = run_campaign(area, &cfg);
        quality::apply(&raw, &area.frame, &Default::default()).0
    };

    let month1 = campaign(&area, 0xD1);
    let month2 = campaign(&area, 0xD2);

    // Seasonal variant: summer foliage appears along the corridor. The
    // campaign seed matches `month2` so the comparison isolates the
    // environment change from pass-to-pass randomness.
    let mut seasonal_area = area.clone();
    for (min, max) in [
        ((-7.0, 80.0), (0.0, 110.0)),
        ((0.5, 150.0), (8.0, 185.0)),
        ((-8.0, 250.0), (-1.0, 285.0)),
    ] {
        seasonal_area.field.obstacles.push(Obstacle::Aabb {
            min: lumos5g_geo::Point2::new(min.0, min.1),
            max: lumos5g_geo::Point2::new(max.0, max.1),
            loss_db: 12.0,
        });
    }
    let season = campaign(&seasonal_area, 0xD2);

    let spec = FeatureSpec::new(FeatureSet::LM);
    let tr = build_tabular(&month1, &spec);
    let model = ctx.gbdt_or_load("temporal_gdbt_lm", FeatureSet::LM, &gbdt, &tr.xs, &tr.ys);
    let eval = |d: &Dataset| -> (f64, f64) {
        let td = build_tabular(d, &spec);
        let p = model.predict(&td.xs);
        (lumos5g_ml::mae(&td.ys, &p), lumos5g_ml::rmse(&td.ys, &p))
    };

    let (m_self, r_self) = eval(&month1);
    let (m_next, r_next) = eval(&month2);
    let (m_seas, r_seas) = eval(&season);
    let mut t = TableWriter::new(
        "Extension (§8.1): temporal generalizability of a GDBT L+M model (Airport)",
        &["test campaign", "MAE (Mbps)", "RMSE (Mbps)"],
    );
    t.row(&[
        "same campaign (in-sample)".into(),
        format!("{m_self:.0}"),
        format!("{r_self:.0}"),
    ]);
    t.row(&[
        "later campaign, same environment".into(),
        format!("{m_next:.0}"),
        format!("{r_next:.0}"),
    ]);
    t.row(&[
        "later campaign + seasonal foliage".into(),
        format!("{m_seas:.0}"),
        format!("{r_seas:.0}"),
    ]);
    let _ = t.save_csv(&results_dir().join("temporal.csv"));
    t.render()
}

/// Long-horizon Seq2Seq demo: MAE per future step (extension of Fig 15/16,
/// "arbitrary length of the predicted output sequence").
pub fn horizon(ctx: &mut Context) -> String {
    let data = ctx.airport_walk();
    let spec = FeatureSpec::new(FeatureSet::LM);
    let p = ctx.scale.seq2seq();
    let sd = lumos5g::tabular::build_sequences(&data, &spec, p.input_len, p.horizon, p.stride);
    if sd.len() < 40 {
        return "horizon: not enough sequences".into();
    }
    let (tr, te) = train_test_split(sd.len(), 0.7, 1);
    let train = sd.select(&tr);
    let test = sd.select(&te);

    let flat: Vec<Vec<f64>> = train.inputs.iter().flatten().cloned().collect();
    let xs = StandardScaler::fit(&flat);
    let ally: Vec<f64> = train.targets.iter().flatten().copied().collect();
    let ys = TargetScaler::fit(&ally);
    let tin: Vec<Vec<Vec<f64>>> = train
        .inputs
        .iter()
        .map(|s| s.iter().map(|x| xs.transform_row(x)).collect())
        .collect();
    let ttg: Vec<Vec<f64>> = train
        .targets
        .iter()
        .map(|t| t.iter().map(|&y| ys.transform(y)).collect())
        .collect();
    let mut model = Seq2Seq::new(Seq2SeqConfig {
        input_dim: spec.dim(),
        hidden: p.hidden,
        layers: p.layers,
        horizon: p.horizon,
        epochs: p.epochs,
        batch_size: p.batch_size,
        lr: p.lr,
        teacher_forcing: 0.7,
        clip_norm: 5.0,
        seed: p.seed,
    });
    ctx.train_seq2seq(
        "horizon_s2s",
        &mut model,
        &tin,
        &ttg,
        p.val_fraction,
        p.patience,
    );

    let mut abs_err = vec![0.0f64; p.horizon];
    let mut n = 0usize;
    for (input, target) in test.inputs.iter().zip(&test.targets) {
        let scaled: Vec<Vec<f64>> = input.iter().map(|x| xs.transform_row(x)).collect();
        let out = model.predict(&scaled);
        for (k, (&t, &o)) in target.iter().zip(&out).enumerate() {
            abs_err[k] += (t - ys.inverse(o)).abs();
        }
        n += 1;
    }
    let mut t = TableWriter::new(
        "Seq2Seq multi-step horizon: MAE per future step (Airport, L+M)",
        &["step (s ahead)", "MAE (Mbps)"],
    );
    for (k, e) in abs_err.iter().enumerate() {
        t.row(&[format!("{}", k + 1), format!("{:.0}", e / n as f64)]);
    }
    let _ = t.save_csv(&results_dir().join("horizon_mae.csv"));
    t.render()
}
