//! Experiment implementations — one module cluster per group of paper
//! artifacts. See DESIGN.md for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured numbers.

pub mod ablate;
pub mod context;
pub mod impact;
pub mod mlres;

use std::path::PathBuf;

/// Directory where experiment CSVs land.
pub fn results_dir() -> PathBuf {
    PathBuf::from("results")
}
