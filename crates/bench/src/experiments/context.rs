//! Shared experiment context: lazily simulates and caches the per-area
//! datasets so that running `repro all` builds each campaign exactly once.

use lumos5g::eval::{eval_both, ClassificationOutcome, RegressionOutcome};
use lumos5g::features::{FeatureSet, FeatureSpec};
use lumos5g::persist::{self, TrainingCheckpoint};
use lumos5g::predictor::{ModelKind, Seq2SeqParams, TrainedRegressor};
use lumos5g_ml::{GbdtConfig, GbdtRegressor, Seq2Seq};
use lumos5g_sim::{
    airport, intersection, loop_area, quality, run_campaign, Area, CampaignConfig, Dataset,
    MobilityMode,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Experiment scale: trades fidelity for wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke runs (CI).
    Quick,
    /// Minutes-scale default; enough data for stable statistics.
    Std,
    /// Paper-scale campaign sizes and model hyperparameters (hours).
    Paper,
}

impl Scale {
    /// Parse from CLI text.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "std" => Some(Scale::Std),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Walking passes per trajectory.
    pub fn passes(self) -> usize {
        match self {
            Scale::Quick => 4,
            Scale::Std => 12,
            Scale::Paper => 30,
        }
    }

    /// GDBT hyperparameters.
    pub fn gbdt(self) -> GbdtConfig {
        match self {
            Scale::Quick => GbdtConfig {
                n_estimators: 60,
                max_depth: 4,
                learning_rate: 0.15,
                min_samples_leaf: 5,
                subsample: 0.8,
                seed: 0,
            },
            Scale::Std => GbdtConfig {
                n_estimators: 150,
                max_depth: 6,
                learning_rate: 0.12,
                min_samples_leaf: 5,
                subsample: 0.8,
                seed: 0,
            },
            Scale::Paper => GbdtConfig::paper_scale(),
        }
    }

    /// Seq2Seq hyperparameters.
    pub fn seq2seq(self) -> Seq2SeqParams {
        match self {
            Scale::Quick => Seq2SeqParams {
                input_len: 10,
                horizon: 5,
                hidden: 16,
                layers: 2,
                epochs: 4,
                batch_size: 64,
                lr: 5e-3,
                stride: 4,
                seed: 0,
                val_fraction: 0.0,
                patience: 0,
            },
            // Std trains longer than before (the 10-epoch budget underfit);
            // the validation gate stops it once held-out loss stalls.
            Scale::Std => Seq2SeqParams {
                input_len: 10,
                horizon: 5,
                hidden: 24,
                layers: 2,
                epochs: 30,
                batch_size: 64,
                lr: 5e-3,
                stride: 4,
                seed: 0,
                val_fraction: 0.2,
                patience: 3,
            },
            Scale::Paper => Seq2SeqParams {
                input_len: 20,
                horizon: 20,
                hidden: 128,
                layers: 2,
                epochs: 2000,
                batch_size: 256,
                lr: 1e-3,
                stride: 1,
                seed: 0,
                val_fraction: 0.1,
                patience: 20,
            },
        }
    }
}

/// Where `repro` persists fitted experiment models (`--save-models` /
/// `--load-models`): each experiment writes `{key}.l5gm` under `dir`.
#[derive(Debug, Clone)]
pub struct ModelStore {
    /// Directory holding `{key}.l5gm` files.
    pub dir: PathBuf,
    /// `true` → cold start: load saved models instead of refitting.
    pub load: bool,
}

/// Crash-safe training checkpoints (`repro --checkpoint-every N`): every
/// experiment that trains a GDBT or Seq2Seq model writes its full training
/// state to `dir/{key}.ckpt.l5gm` through the atomic persist writer every
/// `every` rounds/epochs; a later run with `resume` picks the training up
/// from the last durable checkpoint and converges bit-identically to an
/// uninterrupted run.
#[derive(Debug)]
pub struct CheckpointPlan {
    /// Directory holding `{key}.ckpt.l5gm` files.
    pub dir: PathBuf,
    /// Checkpoint cadence in boosting rounds / training epochs (0 = never
    /// write, which still allows `resume`).
    pub every: usize,
    /// `true` → restore matching checkpoints before training.
    pub resume: bool,
    /// Crash injection: abort the process (exit 137, as SIGKILL would)
    /// right after the Nth checkpoint write. Used by the crash-resume CI
    /// smoke; `None` in normal operation.
    pub die_after: Option<u64>,
    written: AtomicU64,
}

impl CheckpointPlan {
    /// A plan writing every `every` units under `dir`.
    pub fn new(dir: PathBuf, every: usize, resume: bool, die_after: Option<u64>) -> Self {
        CheckpointPlan {
            dir,
            every,
            resume,
            die_after,
            written: AtomicU64::new(0),
        }
    }

    /// Count one durable checkpoint write; honours `die_after` by exiting
    /// with status 137 (the wait status a SIGKILL produces) so crash tests
    /// can interrupt training at an exact, reproducible point.
    fn note_write(&self, key: &str, rounds: usize) {
        let n = self.written.fetch_add(1, Ordering::SeqCst) + 1;
        eprintln!("    checkpointed {key} at {rounds} units (write #{n})");
        if let Some(limit) = self.die_after {
            if n >= limit {
                eprintln!("    --die-after-checkpoints {limit} reached: simulating SIGKILL");
                std::process::exit(137);
            }
        }
    }
}

/// Lazily built simulation datasets shared across experiments.
pub struct Context {
    /// Chosen scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Optional model persistence (None → always fit in memory).
    pub models: Option<ModelStore>,
    /// Optional crash-safe training checkpoints (None → train straight
    /// through).
    pub checkpoints: Option<CheckpointPlan>,
    areas: Option<(Area, Area, Area)>,
    intersection_walk: Option<Dataset>,
    airport_walk: Option<Dataset>,
    loop_walk: Option<Dataset>,
    loop_drive: Option<Dataset>,
    #[allow(clippy::type_complexity)]
    eval_cache: HashMap<String, Result<(RegressionOutcome, ClassificationOutcome), String>>,
}

impl Context {
    /// Fresh context.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Context {
            scale,
            seed,
            models: None,
            checkpoints: None,
            areas: None,
            intersection_walk: None,
            airport_walk: None,
            loop_walk: None,
            loop_drive: None,
            eval_cache: HashMap::new(),
        }
    }

    /// Fit a GDBT regressor — or, when [`Self::models`] is configured,
    /// save it after fitting (`load == false`) or load the saved model
    /// instead of refitting (`load == true`). Loaded models are
    /// bit-identical to the ones saved, so experiment outputs don't change
    /// across a save/load cycle. A missing or mismatched file degrades to
    /// an in-memory refit with a warning rather than aborting the run.
    pub fn gbdt_or_load(
        &self,
        key: &str,
        set: FeatureSet,
        cfg: &GbdtConfig,
        xs: &[Vec<f64>],
        ys: &[f64],
    ) -> GbdtRegressor {
        let Some(store) = &self.models else {
            return self.fit_gbdt(key, cfg, xs, ys);
        };
        let path = store.dir.join(format!("{key}.l5gm"));
        if store.load {
            match persist::load_regressor(&path) {
                Ok(TrainedRegressor::Gdbt { model, .. }) => {
                    eprintln!("    loaded {key} from {} (no refit)", path.display());
                    return model;
                }
                Ok(_) => eprintln!("    {} is not a GDBT model; refitting", path.display()),
                Err(e) => eprintln!("    cannot load {}: {e}; refitting", path.display()),
            }
        }
        let model = self.fit_gbdt(key, cfg, xs, ys);
        if !store.load {
            let wrapped = TrainedRegressor::Gdbt {
                model: model.clone(),
                spec: FeatureSpec::new(set),
            };
            match persist::save_regressor(&wrapped, &path) {
                Ok(()) => eprintln!("    saved {key} to {}", path.display()),
                Err(e) => eprintln!("    cannot save {}: {e}", path.display()),
            }
        }
        model
    }

    /// Fit a GDBT under the checkpoint plan (when one is configured):
    /// resume from `{key}.ckpt.l5gm` if asked, then checkpoint the boosting
    /// state atomically every `every` rounds. Interrupting anywhere and
    /// re-running with `resume` converges bit-identically to an
    /// uninterrupted fit.
    fn fit_gbdt(&self, key: &str, cfg: &GbdtConfig, xs: &[Vec<f64>], ys: &[f64]) -> GbdtRegressor {
        let Some(plan) = &self.checkpoints else {
            return GbdtRegressor::fit(xs, ys, cfg);
        };
        let path = plan.dir.join(format!("{key}.ckpt.l5gm"));
        let resume = if plan.resume {
            match persist::load_checkpoint(&path) {
                Ok(TrainingCheckpoint::Gdbt(ck)) if ck.cfg == *cfg && ck.n_rows == xs.len() => {
                    eprintln!(
                        "    resuming {key} from {} ({} rounds done)",
                        path.display(),
                        ck.rounds_done
                    );
                    Some(ck)
                }
                Ok(TrainingCheckpoint::Gdbt(_)) => {
                    eprintln!(
                        "    checkpoint {} is for a different run; training from scratch",
                        path.display()
                    );
                    None
                }
                Ok(_) => {
                    eprintln!(
                        "    {} is not a GDBT checkpoint; training from scratch",
                        path.display()
                    );
                    None
                }
                Err(e) => {
                    eprintln!(
                        "    no resumable checkpoint at {}: {e}; training from scratch",
                        path.display()
                    );
                    None
                }
            }
        } else {
            None
        };
        if plan.every > 0 {
            std::fs::create_dir_all(&plan.dir).ok();
        }
        GbdtRegressor::fit_resumable(xs, ys, cfg, resume, plan.every, |ck| {
            match persist::save_checkpoint(&TrainingCheckpoint::Gdbt(ck.clone()), &path) {
                Ok(()) => plan.note_write(key, ck.rounds_done),
                Err(e) => eprintln!("    cannot checkpoint {}: {e}", path.display()),
            }
        })
    }

    /// Train a Seq2Seq model under the checkpoint plan (when one is
    /// configured), mirroring [`Self::fit_gbdt`]: epoch state — weights,
    /// Adam moments, best-validation snapshot — checkpoints atomically to
    /// `{key}.ckpt.l5gm` every `every` epochs, and `resume` restores it.
    /// Returns the per-epoch training losses.
    pub fn train_seq2seq(
        &self,
        key: &str,
        model: &mut Seq2Seq,
        inputs: &[Vec<Vec<f64>>],
        targets: &[Vec<f64>],
        val_fraction: f64,
        patience: usize,
    ) -> Vec<f64> {
        let Some(plan) = &self.checkpoints else {
            return model.train_resumable(inputs, targets, val_fraction, patience, None, 0, |_| {});
        };
        let path = plan.dir.join(format!("{key}.ckpt.l5gm"));
        let resume = if plan.resume {
            match persist::load_checkpoint(&path) {
                Ok(TrainingCheckpoint::Seq2Seq(st))
                    if st.resumes(model, inputs.len(), val_fraction, patience) =>
                {
                    eprintln!(
                        "    resuming {key} from {} ({} epochs done)",
                        path.display(),
                        st.epochs_done()
                    );
                    Some(*st)
                }
                Ok(TrainingCheckpoint::Seq2Seq(_)) => {
                    eprintln!(
                        "    checkpoint {} is for a different run; training from scratch",
                        path.display()
                    );
                    None
                }
                Ok(_) => {
                    eprintln!(
                        "    {} is not a Seq2Seq checkpoint; training from scratch",
                        path.display()
                    );
                    None
                }
                Err(e) => {
                    eprintln!(
                        "    no resumable checkpoint at {}: {e}; training from scratch",
                        path.display()
                    );
                    None
                }
            }
        } else {
            None
        };
        if plan.every > 0 {
            std::fs::create_dir_all(&plan.dir).ok();
        }
        model.train_resumable(
            inputs,
            targets,
            val_fraction,
            patience,
            resume,
            plan.every,
            |st| match persist::save_checkpoint(
                &TrainingCheckpoint::Seq2Seq(Box::new(st.clone())),
                &path,
            ) {
                Ok(()) => plan.note_write(key, st.epochs_done()),
                Err(e) => eprintln!("    cannot checkpoint {}: {e}", path.display()),
            },
        )
    }

    /// Run (or fetch from cache) the regression + classification evaluation
    /// of `model` on `data` under `set`. `data_key` must uniquely identify
    /// the dataset (e.g. "airport_walk").
    #[allow(clippy::type_complexity)]
    pub fn eval_cached(
        &mut self,
        data_key: &str,
        data: &Dataset,
        set: FeatureSet,
        model: &ModelKind,
    ) -> Result<(RegressionOutcome, ClassificationOutcome), String> {
        let model_key = match model {
            ModelKind::Gdbt(_) => "gdbt".to_string(),
            ModelKind::Seq2Seq(p) => format!("s2s{}", p.input_len),
            ModelKind::Knn { k } => format!("knn{k}"),
            ModelKind::RandomForest(_) => "rf".to_string(),
            ModelKind::Kriging { neighbors } => format!("ok{neighbors}"),
            ModelKind::HarmonicMean { window } => format!("hm{window}"),
        };
        let key = format!("{data_key}|{}|{model_key}", set.label());
        if let Some(hit) = self.eval_cache.get(&key) {
            return hit.clone();
        }
        let out = eval_both(data, set, model, 1);
        self.eval_cache.insert(key, out.clone());
        out
    }

    fn areas(&mut self) -> &(Area, Area, Area) {
        let seed = self.seed;
        self.areas
            .get_or_insert_with(|| (intersection(seed), airport(seed), loop_area(seed)))
    }

    /// The Intersection area.
    pub fn intersection_area(&mut self) -> Area {
        self.areas().0.clone()
    }

    /// The Airport area.
    pub fn airport_area(&mut self) -> Area {
        self.areas().1.clone()
    }

    /// The Loop area.
    pub fn loop_area(&mut self) -> Area {
        self.areas().2.clone()
    }

    fn campaign(&self, area: &Area, mode: MobilityMode, passes: usize, seed: u64) -> Dataset {
        let cfg = CampaignConfig {
            passes_per_trajectory: passes,
            mode,
            base_seed: seed,
            gps_sigma_m: 2.2,
            bad_gps_fraction: 0.06,
            max_duration_s: 1200,
            handoff: Default::default(),
            logger: Default::default(),
        };
        let raw = run_campaign(area, &cfg);
        quality::apply(&raw, &area.frame, &Default::default()).0
    }

    /// Cleaned walking dataset for the Intersection.
    pub fn intersection_walk(&mut self) -> Dataset {
        if self.intersection_walk.is_none() {
            let area = self.intersection_area();
            // Double the base pass count so per-(cell, direction) groups
            // reach the n ≥ 20 needed by the normality tests.
            let passes = self.scale.passes() * 2;
            let ds = self.campaign(&area, MobilityMode::walking(), passes, self.seed ^ 0x11);
            self.intersection_walk = Some(ds);
        }
        self.intersection_walk.clone().expect("just built")
    }

    /// Cleaned walking dataset for the Airport.
    pub fn airport_walk(&mut self) -> Dataset {
        if self.airport_walk.is_none() {
            let area = self.airport_area();
            // Airport trajectories are walked the most in the paper (30+);
            // give it 3× the base pass count for per-cell statistics.
            let passes = self.scale.passes() * 3;
            let ds = self.campaign(&area, MobilityMode::walking(), passes, self.seed ^ 0x22);
            self.airport_walk = Some(ds);
        }
        self.airport_walk.clone().expect("just built")
    }

    /// Cleaned walking dataset for the Loop.
    pub fn loop_walk(&mut self) -> Dataset {
        if self.loop_walk.is_none() {
            let area = self.loop_area();
            let passes = (self.scale.passes() / 2).max(2);
            let ds = self.campaign(&area, MobilityMode::walking(), passes, self.seed ^ 0x33);
            self.loop_walk = Some(ds);
        }
        self.loop_walk.clone().expect("just built")
    }

    /// Cleaned driving dataset for the Loop.
    pub fn loop_drive(&mut self) -> Dataset {
        if self.loop_drive.is_none() {
            let area = self.loop_area();
            let passes = (self.scale.passes() / 2).max(2);
            let ds = self.campaign(&area, MobilityMode::driving(), passes, self.seed ^ 0x44);
            self.loop_drive = Some(ds);
        }
        self.loop_drive.clone().expect("just built")
    }

    /// Loop walking + driving combined (the paper's Loop dataset).
    pub fn loop_all(&mut self) -> Dataset {
        let mut d = self.loop_walk();
        let mut drive = self.loop_drive();
        // Re-key driving passes so ids don't collide with walking passes.
        let offset = d
            .records
            .iter()
            .map(|r| r.pass_id)
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        for r in &mut drive.records {
            r.pass_id += offset;
        }
        d.extend(drive);
        d
    }

    /// The Global dataset: all areas with known panel locations combined
    /// (Intersection + Airport), as in §6.2's "Global" column for T-feature
    /// comparability; pass `include_loop = true` for the L-feature variant.
    pub fn global(&mut self, include_loop: bool) -> Dataset {
        let mut d = self.intersection_walk();
        let mut next_area_offset = 100_000u32;
        for mut part in [
            Some(self.airport_walk()),
            if include_loop {
                Some(self.loop_all())
            } else {
                None
            },
        ]
        .into_iter()
        .flatten()
        {
            for r in &mut part.records {
                r.pass_id += next_area_offset;
                r.trajectory += next_area_offset;
            }
            next_area_offset += 100_000;
            d.extend(part);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_are_cached() {
        let mut ctx = Context::new(Scale::Quick, 1);
        let a = ctx.airport_walk();
        let b = ctx.airport_walk();
        assert_eq!(a.len(), b.len());
        assert!(!a.is_empty());
    }

    #[test]
    fn loop_all_merges_modes_without_pass_collisions() {
        let mut ctx = Context::new(Scale::Quick, 1);
        let all = ctx.loop_all();
        let walk = ctx.loop_walk();
        let drive = ctx.loop_drive();
        assert_eq!(all.len(), walk.len() + drive.len());
        use std::collections::HashSet;
        let walk_passes: HashSet<u32> = walk.records.iter().map(|r| r.pass_id).collect();
        let all_passes: HashSet<u32> = all.records.iter().map(|r| r.pass_id).collect();
        assert!(all_passes.len() > walk_passes.len());
    }

    #[test]
    fn global_spans_multiple_areas() {
        let mut ctx = Context::new(Scale::Quick, 1);
        let g = ctx.global(false);
        use std::collections::HashSet;
        let areas: HashSet<u8> = g.records.iter().map(|r| r.area).collect();
        assert!(areas.contains(&0) && areas.contains(&1));
    }

    #[test]
    fn gbdt_models_round_trip_through_the_store() {
        let dir = std::env::temp_dir().join(format!("l5gm-ctx-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let xs: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 3.0 * r[0] - r[1]).collect();
        let cfg = Scale::Quick.gbdt();

        let mut ctx = Context::new(Scale::Quick, 1);
        ctx.models = Some(ModelStore {
            dir: dir.clone(),
            load: false,
        });
        let fitted = ctx.gbdt_or_load("ctx_test_gdbt", FeatureSet::L, &cfg, &xs, &ys);
        assert!(dir.join("ctx_test_gdbt.l5gm").exists());

        ctx.models = Some(ModelStore {
            dir: dir.clone(),
            load: true,
        });
        let loaded = ctx.gbdt_or_load("ctx_test_gdbt", FeatureSet::L, &cfg, &xs, &ys);
        for (a, b) in fitted.predict(&xs).iter().zip(&loaded.predict(&xs)) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("std"), Some(Scale::Std));
        assert_eq!(Scale::parse("nope"), None);
    }
}
