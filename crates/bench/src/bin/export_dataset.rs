//! Export the simulated measurement campaign as a CSV dataset, mirroring
//! the public Lumos5G dataset release (<https://lumos5g.umn.edu>).
//!
//! ```text
//! cargo run --release -p lumos5g-bench --bin export_dataset -- [--scale quick|std|paper] [--seed N] [--out DIR]
//! ```
//!
//! Writes one CSV per (area, mobility-mode) campaign plus a combined file.

use lumos5g_bench::experiments::context::{Context, Scale};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Std;
    let mut seed = 42u64;
    let mut out = PathBuf::from("results/dataset");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .expect("--scale quick|std|paper");
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).expect("--seed N");
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).expect("--out DIR"));
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }

    let mut ctx = Context::new(scale, seed);
    std::fs::create_dir_all(&out).expect("create output dir");

    let parts = [
        ("intersection_walk.csv", ctx.intersection_walk()),
        ("airport_walk.csv", ctx.airport_walk()),
        ("loop_walk.csv", ctx.loop_walk()),
        ("loop_drive.csv", ctx.loop_drive()),
    ];
    let mut total = 0usize;
    for (name, ds) in &parts {
        ds.save_csv(&out.join(name)).expect("write CSV");
        println!("{name}: {} records", ds.len());
        total += ds.len();
    }
    let combined = ctx.global(true);
    combined
        .save_csv(&out.join("global.csv"))
        .expect("write CSV");
    println!("global.csv: {} records", combined.len());
    println!("total per-area records: {total}  →  {}", out.display());
}
