//! Closed-loop load benchmark of the sharded serving engine.
//!
//! ```text
//! cargo run --release -p lumos5g-bench --bin serve_bench -- \
//!     [--shards N] [--ues N] [--rounds N] [--seed N] [--quick] \
//!     [--save-models DIR] [--load-models DIR]
//! ```
//!
//! Simulates a campaign, trains a GDBT (L+M) regressor, replays the
//! campaign as a multi-UE 1 Hz stream at maximum speed through the engine,
//! and reports sustained predictions/sec plus end-to-end tail latency.
//! Results are printed and saved to `results/serving.csv` /
//! `results/serving_shards.csv`.
//!
//! `--save-models DIR` writes the served model to `DIR/model-v1.l5gm`;
//! `--load-models DIR` cold-starts from the highest version saved there
//! and skips training entirely — the loaded model is bit-identical.

use lumos5g::{quick_gbdt, FeatureSet, Lumos5G, ModelKind};
use lumos5g_bench::TableWriter;
use lumos5g_serve::{Engine, EngineConfig, ModelRegistry, OverloadPolicy, ReplaySource};
use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "usage: serve_bench [--shards N] [--ues N] [--rounds N] [--seed N] \
                     [--quick] [--save-models DIR] [--load-models DIR]";

struct Args {
    shards: usize,
    ues: usize,
    rounds: usize,
    seed: u64,
    quick: bool,
    save_models: Option<PathBuf>,
    load_models: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        shards: 4,
        ues: 64,
        rounds: 8,
        seed: 42,
        quick: false,
        save_models: None,
        load_models: None,
    };
    fn numeric(argv: &[String], i: usize, name: &str) -> u64 {
        argv.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric value");
            eprintln!("{USAGE}");
            std::process::exit(2);
        })
    }
    fn dir(argv: &[String], i: usize, name: &str) -> PathBuf {
        argv.get(i).map(PathBuf::from).unwrap_or_else(|| {
            eprintln!("{name} needs a directory path");
            eprintln!("{USAGE}");
            std::process::exit(2);
        })
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--shards" => {
                i += 1;
                args.shards = numeric(&argv, i, "--shards") as usize;
            }
            "--ues" => {
                i += 1;
                args.ues = numeric(&argv, i, "--ues") as usize;
            }
            "--rounds" => {
                i += 1;
                args.rounds = numeric(&argv, i, "--rounds") as usize;
            }
            "--seed" => {
                i += 1;
                args.seed = numeric(&argv, i, "--seed");
            }
            "--quick" => args.quick = true,
            "--save-models" => {
                i += 1;
                args.save_models = Some(dir(&argv, i, "--save-models"));
            }
            "--load-models" => {
                i += 1;
                args.load_models = Some(dir(&argv, i, "--load-models"));
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // The engine clamps to >= 1 shard; mirror that here so the report
    // shows the effective configuration.
    args.shards = args.shards.max(1);
    args.ues = args.ues.max(1);
    args
}

fn main() {
    let args = parse_args();
    let (passes, duration, rounds) = if args.quick {
        (2, 120, 2.min(args.rounds))
    } else {
        (4, 300, args.rounds)
    };

    eprintln!("simulating campaign (airport, {passes} passes/trajectory)...");
    let area = airport(args.seed);
    let cfg = CampaignConfig {
        passes_per_trajectory: passes,
        max_duration_s: duration,
        base_seed: args.seed,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    let (data, _) = quality::apply(&raw, &area.frame, &Default::default());

    let registry = match &args.load_models {
        Some(load_dir) => {
            eprintln!("cold start: loading model from {}...", load_dir.display());
            let registry = ModelRegistry::load_dir(load_dir).unwrap_or_else(|e| {
                eprintln!("failed to load models from {}: {e}", load_dir.display());
                std::process::exit(2);
            });
            eprintln!(
                "serving saved model v{} (no retraining)",
                registry.version()
            );
            registry
        }
        None => {
            eprintln!("training GDBT (L+M) on {} records...", data.len());
            let model = Lumos5G::new(FeatureSet::LM, ModelKind::Gdbt(quick_gbdt()))
                .fit_regression(&data)
                .expect("training failed");
            ModelRegistry::new(model)
        }
    };
    if let Some(save_dir) = &args.save_models {
        let path = registry.store(save_dir).unwrap_or_else(|e| {
            eprintln!("failed to save model to {}: {e}", save_dir.display());
            std::process::exit(2);
        });
        eprintln!("saved model to {}", path.display());
    }

    let src = ReplaySource::from_dataset(&data, args.ues);
    eprintln!(
        "replaying {} events x {} rounds over {} UEs into {} shards...",
        src.len(),
        rounds,
        src.ues(),
        args.shards
    );

    let engine = Engine::start_with_registry(
        Arc::new(registry),
        EngineConfig {
            shards: args.shards,
            queue_capacity: 1024,
            policy: OverloadPolicy::Block,
        },
    );
    // Closed loop: drain responses concurrently so the engine never stalls
    // on its (unbounded) output.
    let rx = engine.responses().clone();
    let consumer = std::thread::spawn(move || {
        let mut n = 0u64;
        while rx.recv().is_ok() {
            n += 1;
        }
        n
    });

    let start = Instant::now();
    let mut submitted = 0u64;
    for _ in 0..rounds {
        let stats = src.run(&engine, 0.0);
        submitted += stats.submitted;
    }
    let (report, responses) = engine.shutdown();
    drop(responses);
    let consumed = consumer.join().unwrap();
    let wall = start.elapsed();

    assert_eq!(report.processed, submitted, "engine dropped records");
    assert_eq!(consumed, submitted, "responses were lost");
    let preds_per_sec = report.processed as f64 / wall.as_secs_f64();

    let us = |ns: u64| format!("{:.1}", ns as f64 / 1000.0);
    let mut shard_table = TableWriter::new(
        "Serving engine: per-shard breakdown",
        &[
            "shard",
            "processed",
            "predictions",
            "warmups",
            "resets",
            "p50_us",
            "p95_us",
            "p99_us",
        ],
    );
    for s in &report.shards {
        shard_table.row(&[
            s.shard.to_string(),
            s.processed.to_string(),
            s.predictions.to_string(),
            s.warmups.to_string(),
            s.resets.to_string(),
            us(s.p50_ns),
            us(s.p95_ns),
            us(s.p99_ns),
        ]);
    }
    shard_table.print();

    let mut summary = TableWriter::new(
        "Serving engine: sustained closed-loop throughput (GDBT L+M)",
        &[
            "shards",
            "ues",
            "records",
            "preds_per_sec",
            "p50_us",
            "p95_us",
            "p99_us",
            "online_mae_mbps",
        ],
    );
    summary.row(&[
        args.shards.to_string(),
        args.ues.to_string(),
        report.processed.to_string(),
        format!("{preds_per_sec:.0}"),
        us(report.p50_ns),
        us(report.p95_ns),
        us(report.p99_ns),
        report
            .mae_mbps
            .map(|m| format!("{m:.1}"))
            .unwrap_or_else(|| "-".into()),
    ]);
    summary.print();

    summary
        .save_csv(Path::new("results/serving.csv"))
        .expect("write results/serving.csv");
    shard_table
        .save_csv(Path::new("results/serving_shards.csv"))
        .expect("write results/serving_shards.csv");
    eprintln!("saved results/serving.csv and results/serving_shards.csv");

    if preds_per_sec < 100_000.0 && !args.quick {
        eprintln!("WARNING: below the 100k predictions/sec target ({preds_per_sec:.0}/s)");
        std::process::exit(1);
    }
}
