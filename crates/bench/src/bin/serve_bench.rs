//! Closed-loop load benchmark of the sharded serving engine.
//!
//! ```text
//! cargo run --release -p lumos5g-bench --bin serve_bench -- \
//!     [--shards N] [--ues N] [--rounds N] [--seed N] [--quick] \
//!     [--save-models DIR] [--load-models DIR] [--chaos SEED]
//! ```
//!
//! Simulates a campaign, trains a GDBT (L+M) regressor, replays the
//! campaign as a multi-UE 1 Hz stream at maximum speed through the engine,
//! and reports sustained predictions/sec plus end-to-end tail latency.
//! Results are printed and saved to `results/serving.csv` /
//! `results/serving_shards.csv`.
//!
//! `--save-models DIR` writes the served model to `DIR/model-v1.l5gm`;
//! `--load-models DIR` cold-starts from the highest version saved there
//! and skips training entirely — the loaded model is bit-identical.
//!
//! `--chaos SEED` installs a deterministic `FaultPlan`: source records are
//! corrupted, models panic / emit NaN / blow their budget, and workers are
//! killed mid-stream, all keyed off SEED. The bench then asserts the
//! fault-tolerance contract: every accepted record is answered exactly
//! once, no response carries a non-finite prediction, and the online MAE
//! stays finite.

use lumos5g::{quick_gbdt, FeatureSet, Lumos5G, ModelKind};
use lumos5g_bench::TableWriter;
use lumos5g_serve::{Engine, EngineConfig, FaultPlan, ModelRegistry, OverloadPolicy, ReplaySource};
use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "usage: serve_bench [--shards N] [--ues N] [--rounds N] [--seed N] \
                     [--quick] [--save-models DIR] [--load-models DIR] [--chaos SEED]";

struct Args {
    shards: usize,
    ues: usize,
    rounds: usize,
    seed: u64,
    quick: bool,
    save_models: Option<PathBuf>,
    load_models: Option<PathBuf>,
    chaos: Option<u64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        shards: 4,
        ues: 64,
        rounds: 8,
        seed: 42,
        quick: false,
        save_models: None,
        load_models: None,
        chaos: None,
    };
    fn numeric(argv: &[String], i: usize, name: &str) -> u64 {
        argv.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric value");
            eprintln!("{USAGE}");
            std::process::exit(2);
        })
    }
    fn dir(argv: &[String], i: usize, name: &str) -> PathBuf {
        argv.get(i).map(PathBuf::from).unwrap_or_else(|| {
            eprintln!("{name} needs a directory path");
            eprintln!("{USAGE}");
            std::process::exit(2);
        })
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--shards" => {
                i += 1;
                args.shards = numeric(&argv, i, "--shards") as usize;
            }
            "--ues" => {
                i += 1;
                args.ues = numeric(&argv, i, "--ues") as usize;
            }
            "--rounds" => {
                i += 1;
                args.rounds = numeric(&argv, i, "--rounds") as usize;
            }
            "--seed" => {
                i += 1;
                args.seed = numeric(&argv, i, "--seed");
            }
            "--quick" => args.quick = true,
            "--save-models" => {
                i += 1;
                args.save_models = Some(dir(&argv, i, "--save-models"));
            }
            "--load-models" => {
                i += 1;
                args.load_models = Some(dir(&argv, i, "--load-models"));
            }
            "--chaos" => {
                i += 1;
                args.chaos = Some(numeric(&argv, i, "--chaos"));
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // The engine clamps to >= 1 shard; mirror that here so the report
    // shows the effective configuration.
    args.shards = args.shards.max(1);
    args.ues = args.ues.max(1);
    args
}

fn main() {
    let args = parse_args();
    let (passes, duration, rounds) = if args.quick {
        (2, 120, 2.min(args.rounds))
    } else {
        (4, 300, args.rounds)
    };

    eprintln!("simulating campaign (airport, {passes} passes/trajectory)...");
    let area = airport(args.seed);
    let cfg = CampaignConfig {
        passes_per_trajectory: passes,
        max_duration_s: duration,
        base_seed: args.seed,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    let (data, _) = quality::apply(&raw, &area.frame, &Default::default());

    let registry = match &args.load_models {
        Some(load_dir) => {
            eprintln!("cold start: loading model from {}...", load_dir.display());
            let registry = ModelRegistry::load_dir(load_dir).unwrap_or_else(|e| {
                eprintln!("failed to load models from {}: {e}", load_dir.display());
                std::process::exit(2);
            });
            eprintln!(
                "serving saved model v{} (no retraining)",
                registry.version()
            );
            registry
        }
        None => {
            eprintln!("training GDBT (L+M) on {} records...", data.len());
            let model = Lumos5G::new(FeatureSet::LM, ModelKind::Gdbt(quick_gbdt()))
                .fit_regression(&data)
                .expect("training failed");
            ModelRegistry::new(model)
        }
    };
    if let Some(save_dir) = &args.save_models {
        let path = registry.store(save_dir).unwrap_or_else(|e| {
            eprintln!("failed to save model to {}: {e}", save_dir.display());
            std::process::exit(2);
        });
        eprintln!("saved model to {}", path.display());
    }

    let plan = args.chaos.map(|seed| Arc::new(FaultPlan::seeded(seed)));
    let mut src = ReplaySource::from_dataset(&data, args.ues);
    if let Some(plan) = &plan {
        eprintln!(
            "chaos mode (seed {}): corrupting source records and injecting model/worker faults",
            plan.seed()
        );
        src = src.corrupted(plan);
    }
    eprintln!(
        "replaying {} events x {} rounds over {} UEs into {} shards...",
        src.len(),
        rounds,
        src.ues(),
        args.shards
    );

    let engine = Engine::start_with_faults(
        Arc::new(registry),
        EngineConfig {
            shards: args.shards,
            queue_capacity: 1024,
            policy: OverloadPolicy::Block,
            predict_budget: None,
        },
        plan.clone(),
    );
    // Closed loop: drain responses concurrently so the engine never stalls
    // on its (unbounded) output.
    let rx = engine.responses().clone();
    let consumer = std::thread::spawn(move || {
        let mut n = 0u64;
        while rx.recv().is_ok() {
            n += 1;
        }
        n
    });

    let start = Instant::now();
    let mut submitted = 0u64;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for _ in 0..rounds {
        let stats = src.run(&engine, 0.0);
        submitted += stats.submitted;
        accepted += stats.accepted;
        rejected += stats.rejected;
    }
    let (report, responses) = engine.shutdown();
    drop(responses);
    let consumed = consumer.join().unwrap();
    let wall = start.elapsed();

    // The fault-tolerance contract: every accepted record is answered
    // exactly once, even under sustained chaos.
    assert_eq!(
        accepted + rejected,
        submitted,
        "submission tallies disagree"
    );
    assert_eq!(report.processed, accepted, "engine dropped records");
    assert_eq!(consumed, accepted, "responses were lost");
    assert_eq!(report.rejected, rejected, "admission counters disagree");
    if let Some(mae) = report.mae_mbps {
        assert!(mae.is_finite(), "online MAE went non-finite: {mae}");
    }
    let preds_per_sec = report.processed as f64 / wall.as_secs_f64();

    let us = |ns: u64| format!("{:.1}", ns as f64 / 1000.0);
    let mut shard_table = TableWriter::new(
        "Serving engine: per-shard breakdown",
        &[
            "shard",
            "processed",
            "predictions",
            "warmups",
            "resets",
            "quarantined",
            "fallbacks",
            "panicked",
            "restarted",
            "p50_us",
            "p95_us",
            "p99_us",
        ],
    );
    for s in &report.shards {
        shard_table.row(&[
            s.shard.to_string(),
            s.processed.to_string(),
            s.predictions.to_string(),
            s.warmups.to_string(),
            s.resets.to_string(),
            s.quarantined.to_string(),
            s.fallbacks.to_string(),
            s.panicked.to_string(),
            s.restarted.to_string(),
            us(s.p50_ns),
            us(s.p95_ns),
            us(s.p99_ns),
        ]);
    }
    shard_table.print();

    if args.chaos.is_some() {
        let mut chaos_table = TableWriter::new(
            "Chaos run: fault-tolerance counters (zero lost responses asserted)",
            &[
                "accepted",
                "rejected",
                "quarantined",
                "fallbacks",
                "panicked",
                "restarted",
                "degraded_ppm",
            ],
        );
        let degraded = report.quarantined + report.fallbacks;
        chaos_table.row(&[
            accepted.to_string(),
            rejected.to_string(),
            report.quarantined.to_string(),
            report.fallbacks.to_string(),
            report.panicked.to_string(),
            report.restarted.to_string(),
            format!("{}", degraded * 1_000_000 / accepted.max(1)),
        ]);
        chaos_table.print();
        chaos_table
            .save_csv(Path::new("results/serving_chaos.csv"))
            .expect("write results/serving_chaos.csv");
    }

    let mut summary = TableWriter::new(
        "Serving engine: sustained closed-loop throughput (GDBT L+M)",
        &[
            "shards",
            "ues",
            "records",
            "preds_per_sec",
            "p50_us",
            "p95_us",
            "p99_us",
            "online_mae_mbps",
        ],
    );
    summary.row(&[
        args.shards.to_string(),
        args.ues.to_string(),
        report.processed.to_string(),
        format!("{preds_per_sec:.0}"),
        us(report.p50_ns),
        us(report.p95_ns),
        us(report.p99_ns),
        report
            .mae_mbps
            .map(|m| format!("{m:.1}"))
            .unwrap_or_else(|| "-".into()),
    ]);
    summary.print();

    // Chaos-run throughput is not the headline number: keep the committed
    // fault-free artifacts intact and save only the chaos counters above.
    if args.chaos.is_none() {
        summary
            .save_csv(Path::new("results/serving.csv"))
            .expect("write results/serving.csv");
        shard_table
            .save_csv(Path::new("results/serving_shards.csv"))
            .expect("write results/serving_shards.csv");
        eprintln!("saved results/serving.csv and results/serving_shards.csv");
    }

    // Supervisor respawns and fallback work make the throughput target
    // meaningless under chaos; the contract assertions above are the gate.
    if preds_per_sec < 100_000.0 && !args.quick && args.chaos.is_none() {
        eprintln!("WARNING: below the 100k predictions/sec target ({preds_per_sec:.0}/s)");
        std::process::exit(1);
    }
}
