//! Closed-loop load benchmark of the sharded serving engine.
//!
//! ```text
//! cargo run --release -p lumos5g-bench --bin serve_bench -- \
//!     [--model gdbt|seq2seq] [--shards N] [--ues N] [--rounds N] [--seed N] \
//!     [--quick] [--decode-batch N] [--save-models DIR] [--load-models DIR] \
//!     [--chaos SEED]
//! ```
//!
//! Simulates a campaign, trains the selected model (GDBT L+M by default,
//! `--model seq2seq` for the LSTM encoder–decoder), replays the campaign as
//! a multi-UE 1 Hz stream at maximum speed through the engine, and reports
//! sustained predictions/sec plus end-to-end tail latency. Results are
//! printed and saved to `results/serving.csv` / `results/serving_shards.csv`.
//!
//! With `--model seq2seq`, shards serve full k-step horizons through the
//! batched decoder (`--decode-batch`, default 8, bit-identical for any
//! value), and the bench additionally sweeps the offline batched decoder
//! over batch sizes 1–16, appending one row per batch size; at batch ≥ 8
//! the decoder must sustain ≥ 2x the unbatched rate (gated like the
//! 100k predictions/sec GDBT target, full runs only).
//!
//! `--save-models DIR` writes the served model to `DIR/model-v1.l5gm`;
//! `--load-models DIR` cold-starts from the highest version saved there
//! and skips training entirely — the loaded model is bit-identical. Both
//! families use the same `.l5gm` format.
//!
//! `--chaos SEED` installs a deterministic `FaultPlan`: source records are
//! corrupted, models panic / emit NaN / blow their budget, and workers are
//! killed mid-stream, all keyed off SEED. The bench then asserts the
//! fault-tolerance contract: every accepted record is answered exactly
//! once, no response carries a non-finite prediction, and the online MAE
//! stays finite.
//!
//! `--golden N` holds the last N campaign records out as a golden replay
//! slice and installs a validation `Gatekeeper` on the engine. After the
//! replay the bench offers the gate a NaN-emitting candidate (asserted
//! rejected with a typed reason) and a healthy one (asserted admitted),
//! and — when `--save-models` is also given — rolls the engine back to the
//! prior on-disk generation. This is the gated-swap smoke used by CI.

use lumos5g::{quick_gbdt, FeatureSet, FeatureSpec, Lumos5G, ModelKind, Seq2SeqParams};
use lumos5g_bench::TableWriter;
use lumos5g_serve::{
    Engine, EngineConfig, FaultPlan, Gatekeeper, ModelRegistry, OverloadPolicy, ReplaySource,
    SwapRejected,
};
use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig, Dataset};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "usage: serve_bench [--model gdbt|seq2seq] [--shards N] [--ues N] \
                     [--rounds N] [--seed N] [--quick] [--decode-batch N] \
                     [--save-models DIR] [--load-models DIR] [--chaos SEED] \
                     [--golden N]";

#[derive(Clone, Copy, PartialEq, Eq)]
enum ModelChoice {
    Gdbt,
    Seq2Seq,
}

impl ModelChoice {
    fn name(self) -> &'static str {
        match self {
            ModelChoice::Gdbt => "gdbt",
            ModelChoice::Seq2Seq => "seq2seq",
        }
    }
}

struct Args {
    model: ModelChoice,
    shards: usize,
    ues: usize,
    rounds: usize,
    seed: u64,
    quick: bool,
    decode_batch: usize,
    save_models: Option<PathBuf>,
    load_models: Option<PathBuf>,
    chaos: Option<u64>,
    golden: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        model: ModelChoice::Gdbt,
        shards: 4,
        ues: 64,
        rounds: 8,
        seed: 42,
        quick: false,
        decode_batch: 8,
        save_models: None,
        load_models: None,
        chaos: None,
        golden: 0,
    };
    fn numeric(argv: &[String], i: usize, name: &str) -> u64 {
        argv.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("{name} needs a numeric value");
            eprintln!("{USAGE}");
            std::process::exit(2);
        })
    }
    fn dir(argv: &[String], i: usize, name: &str) -> PathBuf {
        argv.get(i).map(PathBuf::from).unwrap_or_else(|| {
            eprintln!("{name} needs a directory path");
            eprintln!("{USAGE}");
            std::process::exit(2);
        })
    }
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--model" => {
                i += 1;
                args.model = match argv.get(i).map(String::as_str) {
                    Some("gdbt") => ModelChoice::Gdbt,
                    Some("seq2seq") => ModelChoice::Seq2Seq,
                    _ => {
                        eprintln!("--model needs gdbt or seq2seq");
                        eprintln!("{USAGE}");
                        std::process::exit(2);
                    }
                };
            }
            "--decode-batch" => {
                i += 1;
                args.decode_batch = (numeric(&argv, i, "--decode-batch") as usize).max(1);
            }
            "--shards" => {
                i += 1;
                args.shards = numeric(&argv, i, "--shards") as usize;
            }
            "--ues" => {
                i += 1;
                args.ues = numeric(&argv, i, "--ues") as usize;
            }
            "--rounds" => {
                i += 1;
                args.rounds = numeric(&argv, i, "--rounds") as usize;
            }
            "--seed" => {
                i += 1;
                args.seed = numeric(&argv, i, "--seed");
            }
            "--quick" => args.quick = true,
            "--save-models" => {
                i += 1;
                args.save_models = Some(dir(&argv, i, "--save-models"));
            }
            "--load-models" => {
                i += 1;
                args.load_models = Some(dir(&argv, i, "--load-models"));
            }
            "--chaos" => {
                i += 1;
                args.chaos = Some(numeric(&argv, i, "--chaos"));
            }
            "--golden" => {
                i += 1;
                args.golden = numeric(&argv, i, "--golden") as usize;
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // The engine clamps to >= 1 shard; mirror that here so the report
    // shows the effective configuration.
    args.shards = args.shards.max(1);
    args.ues = args.ues.max(1);
    args
}

/// Seq2Seq shape for the serving benchmark: hidden 96 keeps the per-step
/// weight working set (~1.8 MB of f64) larger than a typical L2, which is
/// exactly the regime batched decoding is built for — each weight tile is
/// loaded once per step and reused across every lane.
fn bench_seq2seq(seed: u64, quick: bool) -> Seq2SeqParams {
    Seq2SeqParams {
        input_len: 10,
        horizon: 5,
        hidden: 96,
        layers: 2,
        epochs: if quick { 2 } else { 3 },
        batch_size: 64,
        lr: 3e-3,
        stride: if quick { 2 } else { 4 },
        seed,
        val_fraction: 0.0,
        patience: 0,
    }
}

fn main() {
    let args = parse_args();
    let (passes, duration, rounds) = if args.quick {
        (2, 120, 2.min(args.rounds))
    } else {
        (4, 300, args.rounds)
    };

    eprintln!("simulating campaign (airport, {passes} passes/trajectory)...");
    let area = airport(args.seed);
    let cfg = CampaignConfig {
        passes_per_trajectory: passes,
        max_duration_s: duration,
        base_seed: args.seed,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    let (data, _) = quality::apply(&raw, &area.frame, &Default::default());

    let registry = match &args.load_models {
        Some(load_dir) => {
            eprintln!("cold start: loading model from {}...", load_dir.display());
            let registry = ModelRegistry::load_dir(load_dir).unwrap_or_else(|e| {
                eprintln!("failed to load models from {}: {e}", load_dir.display());
                std::process::exit(2);
            });
            eprintln!(
                "serving saved model v{} (no retraining)",
                registry.version()
            );
            registry
        }
        None => {
            let kind = match args.model {
                ModelChoice::Gdbt => ModelKind::Gdbt(quick_gbdt()),
                ModelChoice::Seq2Seq => ModelKind::Seq2Seq(bench_seq2seq(args.seed, args.quick)),
            };
            eprintln!(
                "training {} (L+M) on {} records...",
                args.model.name(),
                data.len()
            );
            let model = Lumos5G::new(FeatureSet::LM, kind)
                .fit_regression(&data)
                .expect("training failed");
            ModelRegistry::new(model)
        }
    };
    if let Some(save_dir) = &args.save_models {
        let path = registry.store(save_dir).unwrap_or_else(|e| {
            eprintln!("failed to save model to {}: {e}", save_dir.display());
            std::process::exit(2);
        });
        eprintln!("saved model to {}", path.display());
    }

    let plan = args.chaos.map(|seed| Arc::new(FaultPlan::seeded(seed)));
    let mut src = ReplaySource::from_dataset(&data, args.ues);
    if let Some(plan) = &plan {
        eprintln!(
            "chaos mode (seed {}): corrupting source records and injecting model/worker faults",
            plan.seed()
        );
        src = src.corrupted(plan);
    }
    eprintln!(
        "replaying {} events x {} rounds over {} UEs into {} shards...",
        src.len(),
        rounds,
        src.ues(),
        args.shards
    );

    let registry = Arc::new(registry);
    let engine = Engine::start_with_faults(
        registry.clone(),
        EngineConfig {
            shards: args.shards,
            queue_capacity: 1024,
            policy: OverloadPolicy::Block,
            predict_budget: None,
            decode_batch: args.decode_batch,
        },
        plan.clone(),
    );
    // Validation gate: the last `--golden` records become the replay slice
    // every swap candidate must survive. Tolerance 1.25 allows a candidate
    // up to 25 % worse than the incumbent on the golden MAE.
    const GOLDEN_TOLERANCE: f64 = 1.25;
    if args.golden > 0 {
        let n = args.golden.min(data.len());
        let slice = Dataset::new(data.records[data.len() - n..].to_vec());
        engine.install_gatekeeper(Gatekeeper::new(slice, GOLDEN_TOLERANCE));
        eprintln!(
            "gatekeeper installed: {n}-record golden slice, tolerance {GOLDEN_TOLERANCE:.2}x"
        );
    }
    // Closed loop: drain responses concurrently so the engine never stalls
    // on its (unbounded) output. The consumer also audits the sequence
    // contract: every served horizon is finite and starts at the response's
    // one-step prediction.
    let rx = engine.responses().clone();
    let consumer = std::thread::spawn(move || {
        let (mut n, mut with_horizon) = (0u64, 0u64);
        while let Ok(p) = rx.recv() {
            n += 1;
            if let Some(h) = &p.horizon_mbps {
                with_horizon += 1;
                assert!(
                    h.iter().all(|v| v.is_finite()),
                    "non-finite horizon served: {h:?}"
                );
                assert_eq!(p.predicted_mbps, h.first().copied(), "horizon[0] mismatch");
            }
        }
        (n, with_horizon)
    });

    let start = Instant::now();
    let mut submitted = 0u64;
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for _ in 0..rounds {
        let stats = src.run(&engine, 0.0);
        submitted += stats.submitted;
        accepted += stats.accepted;
        rejected += stats.rejected;
    }

    // Gated-swap smoke: offer the gate a NaN-emitting candidate — built
    // below the validating training API, the way a buggy retraining
    // pipeline would produce one — and assert the typed rejection; then
    // re-offer the serving model itself and assert admission. With
    // `--save-models` the admitted generation is persisted and the engine
    // rolled back to its on-disk predecessor.
    if args.golden > 0 {
        let nan_candidate = lumos5g::TrainedRegressor::Gdbt {
            model: lumos5g_ml::GbdtRegressor::fit(
                &vec![vec![1000.0, 2000.0]; 20],
                &[f64::NAN; 20],
                &quick_gbdt(),
            ),
            spec: FeatureSpec::new(FeatureSet::L),
        };
        match engine.guarded_swap(nan_candidate) {
            Err(SwapRejected::NonFinite) => {
                eprintln!(
                    "gate refused the NaN candidate ({})",
                    SwapRejected::NonFinite
                )
            }
            other => panic!("NaN candidate must be refused as NonFinite, got {other:?}"),
        }
        let healthy = registry.current().regressor.as_ref().clone();
        let admitted = engine
            .guarded_swap(healthy)
            .expect("healthy candidate passes its own golden replay");
        eprintln!("gate admitted the healthy candidate as v{admitted}");
        if let Some(save_dir) = &args.save_models {
            let path = registry
                .store(save_dir)
                .expect("store the admitted generation");
            eprintln!("saved admitted generation to {}", path.display());
            let (version, generation) = engine
                .rollback_model(save_dir)
                .expect("roll back to the prior on-disk generation");
            assert!(
                generation < admitted,
                "rollback must restore an older generation"
            );
            eprintln!("rolled back to generation {generation}, serving as v{version}");
        }
    }

    let (report, responses) = engine.shutdown();
    drop(responses);
    let (consumed, with_horizon) = consumer.join().unwrap();
    let wall = start.elapsed();

    // The fault-tolerance contract: every accepted record is answered
    // exactly once, even under sustained chaos.
    assert_eq!(
        accepted + rejected,
        submitted,
        "submission tallies disagree"
    );
    assert_eq!(report.processed, accepted, "engine dropped records");
    assert_eq!(consumed, accepted, "responses were lost");
    assert_eq!(report.rejected, rejected, "admission counters disagree");
    if let Some(mae) = report.mae_mbps {
        assert!(mae.is_finite(), "online MAE went non-finite: {mae}");
    }
    // The gate's refusals must surface typed in the engine report.
    if args.golden > 0 {
        assert_eq!(report.swap_rejected, 1, "exactly one candidate was refused");
        assert_eq!(
            report.swap_rejected_by[SwapRejected::NonFinite.index()],
            1,
            "the refusal is typed NonFinite"
        );
        eprintln!(
            "gate report: {} refused ({} non-finite)",
            report.swap_rejected,
            report.swap_rejected_by[SwapRejected::NonFinite.index()]
        );
    }
    // Fault-free sequence serving must actually produce horizons (warm-ups
    // aside) — a silently formless model would otherwise pass every count.
    if args.model == ModelChoice::Seq2Seq && args.chaos.is_none() {
        assert!(
            with_horizon > 0,
            "seq2seq run served no horizon-bearing responses"
        );
        assert_eq!(report.panicked, 0, "fault-free run had worker deaths");
    }
    let preds_per_sec = report.processed as f64 / wall.as_secs_f64();

    let us = |ns: u64| format!("{:.1}", ns as f64 / 1000.0);
    let mut shard_table = TableWriter::new(
        "Serving engine: per-shard breakdown",
        &[
            "shard",
            "processed",
            "predictions",
            "warmups",
            "resets",
            "quarantined",
            "fallbacks",
            "panicked",
            "restarted",
            "p50_us",
            "p95_us",
            "p99_us",
        ],
    );
    for s in &report.shards {
        shard_table.row(&[
            s.shard.to_string(),
            s.processed.to_string(),
            s.predictions.to_string(),
            s.warmups.to_string(),
            s.resets.to_string(),
            s.quarantined.to_string(),
            s.fallbacks.to_string(),
            s.panicked.to_string(),
            s.restarted.to_string(),
            us(s.p50_ns),
            us(s.p95_ns),
            us(s.p99_ns),
        ]);
    }
    shard_table.print();

    if args.chaos.is_some() {
        let mut chaos_table = TableWriter::new(
            "Chaos run: fault-tolerance counters (zero lost responses asserted)",
            &[
                "accepted",
                "rejected",
                "quarantined",
                "fallbacks",
                "panicked",
                "restarted",
                "degraded_ppm",
            ],
        );
        let degraded = report.quarantined + report.fallbacks;
        chaos_table.row(&[
            accepted.to_string(),
            rejected.to_string(),
            report.quarantined.to_string(),
            report.fallbacks.to_string(),
            report.panicked.to_string(),
            report.restarted.to_string(),
            format!("{}", degraded * 1_000_000 / accepted.max(1)),
        ]);
        chaos_table.print();
        chaos_table
            .save_csv(Path::new("results/serving_chaos.csv"))
            .expect("write results/serving_chaos.csv");
    }

    let mut summary = TableWriter::new(
        "Serving engine: sustained closed-loop throughput",
        &[
            "model",
            "shards",
            "ues",
            "records",
            "decode_batch",
            "preds_per_sec",
            "p50_us",
            "p95_us",
            "p99_us",
            "online_mae_mbps",
        ],
    );
    let engine_batch = match args.model {
        ModelChoice::Gdbt => "-".to_string(),
        ModelChoice::Seq2Seq => args.decode_batch.to_string(),
    };
    summary.row(&[
        args.model.name().to_string(),
        args.shards.to_string(),
        args.ues.to_string(),
        report.processed.to_string(),
        engine_batch,
        format!("{preds_per_sec:.0}"),
        us(report.p50_ns),
        us(report.p95_ns),
        us(report.p99_ns),
        report
            .mae_mbps
            .map(|m| format!("{m:.1}"))
            .unwrap_or_else(|| "-".into()),
    ]);

    // Offline batched-decoder sweep: the same histories decoded at batch
    // sizes 1..16, one summary row per size. Output is bit-identical across
    // sizes (asserted by the workspace `serving` test); this measures the
    // weight-reuse payoff alone.
    let mut decoder_speedup: Option<f64> = None;
    if args.model == ModelChoice::Seq2Seq && args.chaos.is_none() {
        let served = registry.current();
        let params = *served
            .regressor
            .seq2seq_params()
            .expect("seq2seq run serves a seq2seq model");
        let spec = *served.regressor.spec().expect("seq2seq model has a spec");
        let seqs = lumos5g::build_sequences(&data, &spec, params.input_len, 1, params.stride);
        let cap = if args.quick { 512 } else { 2048 };
        let histories: Vec<&[Vec<f64>]> =
            seqs.inputs.iter().take(cap).map(|h| h.as_slice()).collect();
        assert!(!histories.is_empty(), "campaign produced no sequences");
        // Warm pass so first-touch page faults don't bill to batch=1.
        served
            .regressor
            .predict_sequence_batch(&histories[..histories.len().min(32)])
            .expect("decoder warm-up failed");
        let mut rate_b1 = 0.0f64;
        let mut rate_b8_plus = 0.0f64;
        for batch in [1usize, 2, 4, 8, 16] {
            let started = Instant::now();
            for chunk in histories.chunks(batch) {
                served
                    .regressor
                    .predict_sequence_batch(chunk)
                    .expect("batched decode failed");
            }
            let rate = histories.len() as f64 / started.elapsed().as_secs_f64();
            if batch == 1 {
                rate_b1 = rate;
            }
            if batch >= 8 {
                rate_b8_plus = rate_b8_plus.max(rate);
            }
            summary.row(&[
                "seq2seq-decode".to_string(),
                "-".to_string(),
                "-".to_string(),
                histories.len().to_string(),
                batch.to_string(),
                format!("{rate:.0}"),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
        let speedup = rate_b8_plus / rate_b1.max(1e-9);
        eprintln!("batched decoder speedup at batch>=8: {speedup:.2}x over batch=1");
        decoder_speedup = Some(speedup);
    }
    summary.print();

    // Chaos-run throughput is not the headline number: keep the committed
    // fault-free artifacts intact and save only the chaos counters above.
    if args.chaos.is_none() {
        summary
            .save_csv(Path::new("results/serving.csv"))
            .expect("write results/serving.csv");
        shard_table
            .save_csv(Path::new("results/serving_shards.csv"))
            .expect("write results/serving_shards.csv");
        eprintln!("saved results/serving.csv and results/serving_shards.csv");
    }

    // Supervisor respawns and fallback work make the throughput targets
    // meaningless under chaos, and quick runs are smoke tests; the contract
    // assertions above are the gate there.
    if !args.quick && args.chaos.is_none() {
        if args.model == ModelChoice::Gdbt && preds_per_sec < 100_000.0 {
            eprintln!("WARNING: below the 100k predictions/sec target ({preds_per_sec:.0}/s)");
            std::process::exit(1);
        }
        if let Some(speedup) = decoder_speedup {
            if speedup < 2.0 {
                eprintln!("WARNING: batched decoder below the 2x target ({speedup:.2}x)");
                std::process::exit(1);
            }
        }
    }
}
