//! Reproduction harness: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p lumos5g-bench --bin repro -- <experiment> [--scale quick|std|paper] [--seed N]
//! cargo run --release -p lumos5g-bench --bin repro -- all
//! ```
//!
//! Outputs are printed and saved as CSV under `results/`. See DESIGN.md for
//! the experiment index and EXPERIMENTS.md for paper-vs-measured numbers.
//!
//! `--save-models DIR` persists each experiment's fitted GDBT model as
//! `DIR/{experiment_key}.l5gm`; a later run with `--load-models DIR` skips
//! those fits and produces bit-identical outputs from the saved models.
//!
//! `--checkpoint-every N` makes every GDBT / Seq2Seq fit write its full
//! training state atomically to `--ckpt-dir` (default
//! `results/checkpoints`) every N boosting rounds / epochs; after a crash,
//! rerunning with `--resume` picks training up from the last durable
//! checkpoint and produces bit-identical models. `--die-after-checkpoints
//! N` aborts the process (exit 137, like a SIGKILL) right after the Nth
//! checkpoint write, for crash-recovery testing.

use lumos5g_bench::experiments::context::{CheckpointPlan, Context, ModelStore, Scale};
use lumos5g_bench::experiments::{ablate, impact, mlres};
use std::path::PathBuf;

type Runner = fn(&mut Context) -> String;

const EXPERIMENTS: &[(&str, &str, Runner)] = &[
    (
        "table4",
        "Tables 4 & 10: factor analysis (CV/normality/Spearman/KNN/RF)",
        impact::table4,
    ),
    (
        "table5",
        "Table 5: pairwise t-test / Levene across geolocations",
        impact::table5,
    ),
    (
        "fig6",
        "Fig 6: indoor/outdoor throughput maps",
        impact::fig6,
    ),
    ("fig7", "Fig 7: p-value and CV CDFs", impact::fig7),
    (
        "fig8",
        "Fig 8: throughput by mobility angle θm",
        impact::fig8,
    ),
    ("fig9", "Fig 9: NB vs SB maps", impact::fig9),
    (
        "fig10",
        "Fig 10: Spearman by direction grouping",
        impact::fig10,
    ),
    (
        "fig11",
        "Fig 11: throughput vs UE-panel distance",
        impact::fig11,
    ),
    (
        "fig13",
        "Fig 13: positional sector × distance",
        impact::fig13,
    ),
    (
        "fig14",
        "Fig 14: throughput vs speed, walk vs drive",
        impact::fig14,
    ),
    (
        "fig16",
        "Fig 16: sample regression traces ±200 Mbps",
        mlres::fig16,
    ),
    ("fig17", "Fig 17: extended normality/Levene", impact::fig17),
    ("fig18", "Fig 18: θm per panel", impact::fig18),
    (
        "fig19",
        "Figs 19-20: direction conditioning deltas",
        impact::fig19_20,
    ),
    (
        "fig21",
        "Fig 21: staggered multi-UE congestion",
        impact::fig21,
    ),
    ("fig22", "Fig 22: GDBT feature importance", mlres::fig22),
    (
        "fig23",
        "Fig 23: per-area baseline comparison",
        mlres::fig23,
    ),
    ("table7", "Table 7: classification results", mlres::table7),
    ("table8", "Table 8: regression results", mlres::table8),
    (
        "table9",
        "Table 9: Global baseline comparison",
        mlres::table9,
    ),
    (
        "transfer",
        "§6.2: cross-panel transferability",
        mlres::transfer,
    ),
    ("a4", "App A.4: 4G vs 5G predictability", mlres::a4),
    (
        "horizon",
        "Extension: Seq2Seq multi-step horizon MAE",
        mlres::horizon,
    ),
    (
        "mapmodel",
        "Extension: throughput-map-as-a-model vs GDBT",
        mlres::map_model,
    ),
    (
        "sensitivity",
        "Extension (§8.1): model sensitivity to sensor noise",
        mlres::sensitivity,
    ),
    (
        "temporal",
        "Extension (§8.1): temporal generalizability",
        mlres::temporal,
    ),
    (
        "ablate",
        "Ablations: TCP conns, pixelization, GDBT size, history, hysteresis",
        ablate::all,
    ),
];

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment|all|list> [--scale quick|std|paper] [--seed N] \
         [--save-models DIR] [--load-models DIR] \
         [--checkpoint-every N] [--ckpt-dir DIR] [--resume] \
         [--die-after-checkpoints N]\n"
    );
    eprintln!("experiments:");
    for (name, desc, _) in EXPERIMENTS {
        eprintln!("  {name:<10} {desc}");
    }
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut scale = Scale::Std;
    let mut seed = 42u64;
    let mut save_models: Option<PathBuf> = None;
    let mut load_models: Option<PathBuf> = None;
    let mut checkpoint_every = 0usize;
    let mut ckpt_dir = PathBuf::from("results/checkpoints");
    let mut resume = false;
    let mut die_after: Option<u64> = None;
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--save-models" => {
                i += 1;
                save_models = Some(args.get(i).map(PathBuf::from).unwrap_or_else(|| usage()));
            }
            "--load-models" => {
                i += 1;
                load_models = Some(args.get(i).map(PathBuf::from).unwrap_or_else(|| usage()));
            }
            "--checkpoint-every" => {
                i += 1;
                checkpoint_every = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--ckpt-dir" => {
                i += 1;
                ckpt_dir = args.get(i).map(PathBuf::from).unwrap_or_else(|| usage());
            }
            "--resume" => resume = true,
            "--die-after-checkpoints" => {
                i += 1;
                die_after = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if save_models.is_some() && load_models.is_some() {
        eprintln!("--save-models and --load-models are mutually exclusive\n");
        usage();
    }
    if targets.iter().any(|t| t == "list") {
        usage();
    }

    let run_all = targets.iter().any(|t| t == "all");
    let mut ctx = Context::new(scale, seed);
    ctx.models = match (save_models, load_models) {
        (Some(dir), _) => Some(ModelStore { dir, load: false }),
        (None, Some(dir)) => Some(ModelStore { dir, load: true }),
        (None, None) => None,
    };
    if checkpoint_every > 0 || resume || die_after.is_some() {
        ctx.checkpoints = Some(CheckpointPlan::new(
            ckpt_dir,
            checkpoint_every,
            resume,
            die_after,
        ));
    }
    let mut ran = 0;
    for (name, desc, runner) in EXPERIMENTS {
        if run_all || targets.iter().any(|t| t == name) {
            eprintln!("--- running {name}: {desc} (scale {scale:?}, seed {seed})");
            let started = std::time::Instant::now();
            let output = runner(&mut ctx);
            println!("{output}");
            eprintln!(
                "--- {name} done in {:.1}s\n",
                started.elapsed().as_secs_f64()
            );
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!("unknown experiment(s): {targets:?}\n");
        usage();
    }
}
