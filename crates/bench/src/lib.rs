//! Support library for the reproduction harness.
//!
//! The interesting entry points are the binaries:
//! - `src/bin/repro.rs` — regenerates every table and figure of the paper
//!   (see DESIGN.md for the experiment index).
//! - `benches/` — Criterion micro-benchmarks of the substrates.

pub mod experiments;
pub mod table;

pub use experiments::context::{Context, Scale};
pub use table::TableWriter;
