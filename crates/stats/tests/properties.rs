//! Property-based tests of the statistics substrate.

use lumos5g_stats::dist::{chi2_cdf, f_cdf, normal_cdf, normal_quantile, student_t_cdf};
use lumos5g_stats::htest::{welch_t_test, LeveneCenter};
use lumos5g_stats::special::{beta_inc, gamma_p, gamma_q};
use lumos5g_stats::{correlation, descriptive, htest};
use proptest::prelude::*;

proptest! {
    #[test]
    fn mean_is_within_min_max(xs in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let m = descriptive::mean(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    #[test]
    fn variance_is_nonnegative(xs in prop::collection::vec(-1e5f64..1e5, 2..100)) {
        prop_assert!(descriptive::variance(&xs).unwrap() >= 0.0);
    }

    #[test]
    fn quantiles_are_monotone(
        xs in prop::collection::vec(-1e5f64..1e5, 2..60),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = descriptive::quantile(&xs, lo).unwrap();
        let b = descriptive::quantile(&xs, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn translation_shifts_mean_not_variance(
        xs in prop::collection::vec(-1e4f64..1e4, 2..50),
        shift in -1e4f64..1e4,
    ) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let dm = descriptive::mean(&shifted).unwrap() - descriptive::mean(&xs).unwrap();
        prop_assert!((dm - shift).abs() < 1e-6);
        let dv = descriptive::variance(&shifted).unwrap() - descriptive::variance(&xs).unwrap();
        prop_assert!(dv.abs() < 1e-4 * descriptive::variance(&xs).unwrap().max(1.0));
    }

    #[test]
    fn normal_cdf_monotone(z1 in -6.0f64..6.0, z2 in -6.0f64..6.0) {
        let (lo, hi) = if z1 <= z2 { (z1, z2) } else { (z2, z1) };
        prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
    }

    #[test]
    fn normal_quantile_is_inverse(p in 0.001f64..0.999) {
        prop_assert!((normal_cdf(normal_quantile(p)) - p).abs() < 1e-8);
    }

    #[test]
    fn student_t_approaches_normal(z in -4.0f64..4.0) {
        // Large df → t CDF ≈ normal CDF.
        let t = student_t_cdf(z, 1e6);
        prop_assert!((t - normal_cdf(z)).abs() < 1e-3);
    }

    #[test]
    fn gamma_pq_complement(a in 0.1f64..50.0, x in 0.0f64..100.0) {
        prop_assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn beta_inc_bounded_and_monotone(a in 0.2f64..20.0, b in 0.2f64..20.0, x1 in 0.0f64..1.0, x2 in 0.0f64..1.0) {
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        let il = beta_inc(a, b, lo);
        let ih = beta_inc(a, b, hi);
        prop_assert!((0.0..=1.0).contains(&il));
        prop_assert!(il <= ih + 1e-10);
    }

    #[test]
    fn chi2_and_f_cdfs_bounded(x in 0.0f64..200.0, k in 1.0f64..50.0, d2 in 1.0f64..50.0) {
        prop_assert!((0.0..=1.0).contains(&chi2_cdf(x, k)));
        prop_assert!((0.0..=1.0).contains(&f_cdf(x, k, d2)));
    }

    #[test]
    fn welch_p_value_in_unit_interval(
        a in prop::collection::vec(-100.0f64..100.0, 3..40),
        b in prop::collection::vec(-100.0f64..100.0, 3..40),
    ) {
        if let Ok(r) = welch_t_test(&a, &b) {
            prop_assert!((0.0..=1.0).contains(&r.p_value));
        }
    }

    #[test]
    fn welch_is_antisymmetric(
        a in prop::collection::vec(-100.0f64..100.0, 3..30),
        b in prop::collection::vec(-100.0f64..100.0, 3..30),
    ) {
        if let (Ok(r1), Ok(r2)) = (welch_t_test(&a, &b), welch_t_test(&b, &a)) {
            prop_assert!((r1.statistic + r2.statistic).abs() < 1e-9);
            prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        }
    }

    #[test]
    fn levene_invariant_to_group_translation(
        a in prop::collection::vec(-50.0f64..50.0, 5..30),
        b in prop::collection::vec(-50.0f64..50.0, 5..30),
        shift in -100.0f64..100.0,
    ) {
        let b2: Vec<f64> = b.iter().map(|x| x + shift).collect();
        if let (Ok(r1), Ok(r2)) = (
            htest::levene_test(&[&a, &b], LeveneCenter::Median),
            htest::levene_test(&[&a, &b2], LeveneCenter::Median),
        ) {
            // Levene tests variances; translating one group changes nothing.
            prop_assert!((r1.statistic - r2.statistic).abs() < 1e-6 * (1.0 + r1.statistic));
        }
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(
        (xs, ys) in (5usize..40).prop_flat_map(|n| (
            prop::collection::vec(0.001f64..1e3, n),
            prop::collection::vec(0.001f64..1e3, n),
        )),
    ) {
        // Skip degenerate constant vectors.
        prop_assume!(xs.iter().any(|&v| (v - xs[0]).abs() > 1e-9));
        prop_assume!(ys.iter().any(|&v| (v - ys[0]).abs() > 1e-9));
        let r1 = correlation::spearman(&xs, &ys).unwrap().rho;
        let xs_log: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
        let ys_cub: Vec<f64> = ys.iter().map(|y| y * y * y).collect();
        let r2 = correlation::spearman(&xs_log, &ys_cub).unwrap().rho;
        prop_assert!((r1 - r2).abs() < 1e-9);
    }

    #[test]
    fn ranks_are_a_permutation_sum(xs in prop::collection::vec(-1e4f64..1e4, 1..50)) {
        let ranks = correlation::average_ranks(&xs);
        let n = xs.len() as f64;
        let expected = n * (n + 1.0) / 2.0;
        let total: f64 = ranks.iter().sum();
        prop_assert!((total - expected).abs() < 1e-6);
    }
}
