//! Nonparametric bootstrap confidence intervals.
//!
//! The repro harness reports point estimates per table cell; bootstrap CIs
//! quantify how much of a paper-vs-measured gap is just sampling noise.

use crate::{Result, StatsError};

/// A two-sided percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level (e.g. 0.95).
    pub level: f64,
}

/// Percentile-bootstrap CI for an arbitrary statistic.
///
/// `stat` is evaluated on `resamples` with-replacement resamples of `xs`;
/// the interval spans the `(1−level)/2` and `1−(1−level)/2` quantiles.
/// A small deterministic xorshift generator keeps the crate free of
/// external dependencies and results reproducible per seed.
pub fn bootstrap_ci(
    xs: &[f64],
    stat: impl Fn(&[f64]) -> f64,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval> {
    if xs.len() < 2 {
        return Err(StatsError::TooFewSamples {
            needed: 2,
            got: xs.len(),
        });
    }
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidParameter("level must be in (0,1)"));
    }
    if resamples < 10 {
        return Err(StatsError::InvalidParameter("need at least 10 resamples"));
    }

    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };

    let n = xs.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; n];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = xs[(next() % n as u64) as usize];
        }
        stats.push(stat(&buf));
    }
    stats.sort_by(|a, b| a.partial_cmp(b).expect("finite statistic"));
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((resamples as f64 * alpha) as usize).min(resamples - 1);
    let hi_idx = ((resamples as f64 * (1.0 - alpha)) as usize).min(resamples - 1);
    Ok(ConfidenceInterval {
        estimate: stat(xs),
        lo: stats[lo_idx],
        hi: stats[hi_idx],
        level,
    })
}

/// Bootstrap CI of the mean — the common case.
pub fn bootstrap_mean_ci(
    xs: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
) -> Result<ConfidenceInterval> {
    bootstrap_ci(
        xs,
        |s| s.iter().sum::<f64>() / s.len() as f64,
        resamples,
        level,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ci_contains_the_estimate() {
        let xs: Vec<f64> = (0..200).map(|i| (i % 17) as f64).collect();
        let ci = bootstrap_mean_ci(&xs, 500, 0.95, 1).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi, "{ci:?}");
    }

    #[test]
    fn ci_narrows_with_more_data() {
        let small: Vec<f64> = (0..20).map(|i| (i % 7) as f64 * 10.0).collect();
        let big: Vec<f64> = (0..2000).map(|i| (i % 7) as f64 * 10.0).collect();
        let ci_s = bootstrap_mean_ci(&small, 500, 0.95, 2).unwrap();
        let ci_b = bootstrap_mean_ci(&big, 500, 0.95, 2).unwrap();
        assert!(ci_b.hi - ci_b.lo < ci_s.hi - ci_s.lo);
    }

    #[test]
    fn constant_data_gives_degenerate_interval() {
        let xs = vec![5.0; 50];
        let ci = bootstrap_mean_ci(&xs, 100, 0.9, 3).unwrap();
        assert_eq!(ci.lo, 5.0);
        assert_eq!(ci.hi, 5.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let a = bootstrap_mean_ci(&xs, 200, 0.95, 7).unwrap();
        let b = bootstrap_mean_ci(&xs, 200, 0.95, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn custom_statistic_works() {
        let xs: Vec<f64> = (1..=101).map(|i| i as f64).collect();
        let ci = bootstrap_ci(
            &xs,
            |s| crate::descriptive::median(s).expect("non-empty"),
            300,
            0.9,
            4,
        )
        .unwrap();
        assert!((ci.estimate - 51.0).abs() < 1e-9);
        assert!(ci.lo >= 1.0 && ci.hi <= 101.0);
    }

    #[test]
    fn rejects_bad_parameters() {
        let xs = [1.0, 2.0, 3.0];
        assert!(bootstrap_mean_ci(&xs[..1], 100, 0.95, 1).is_err());
        assert!(bootstrap_mean_ci(&xs, 5, 0.95, 1).is_err());
        assert!(bootstrap_mean_ci(&xs, 100, 1.5, 1).is_err());
    }
}
