//! Special functions backing the distribution CDFs.
//!
//! Implementations follow the classical series / continued-fraction forms
//! (Numerical Recipes style) and are pinned against reference values in the
//! unit tests. All functions are pure and allocation-free.

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients). Accurate to ~1e-13 for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = COEFFS[0];
        for (i, &c) in COEFFS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction for
/// `x >= a + 1`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0");
    assert!(x >= 0.0, "gamma_p requires x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0");
    assert!(x >= 0.0, "gamma_q requires x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = f64::MIN_POSITIVE / EPS;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function, computed through the incomplete gamma identity
/// `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)`, with the upper-tail
/// path used directly to preserve precision for large `x`.
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        gamma_q(0.5, x * x)
    } else {
        1.0 + gamma_p(0.5, x * x)
    }
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction representation (Lentz's algorithm).
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "beta_inc requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the symmetry relation to keep the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)! for integer n.
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-11);
        assert!((ln_gamma(11.0) - (3_628_800.0f64).ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn erf_reference_values() {
        // Abramowitz & Stegun table values.
        assert!((erf(0.5) - 0.520_499_877_8).abs() < 1e-9);
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 1e-9);
        assert!((erf(2.0) - 0.995_322_265_0).abs() < 1e-9);
    }

    #[test]
    fn erf_is_odd() {
        assert!((erf(-1.3) + erf(1.3)).abs() < 1e-14);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.0, -0.3, 0.0, 0.7, 3.1] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &(a, x) in &[(0.5, 0.2), (2.0, 3.0), (10.0, 7.5), (3.5, 20.0)] {
            assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}
        for &x in &[0.1, 1.0, 4.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_inc_uniform_special_case() {
        // I_x(1, 1) = x
        for &x in &[0.0, 0.25, 0.5, 0.99, 1.0] {
            assert!((beta_inc(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_inc_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        let (a, b, x) = (2.5, 4.0, 0.3);
        assert!((beta_inc(a, b, x) - (1.0 - beta_inc(b, a, 1.0 - x))).abs() < 1e-12);
    }

    #[test]
    fn beta_inc_reference_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.5}(2, 3) = 0.6875 exactly.
        assert!((beta_inc(2.0, 2.0, 0.5) - 0.5).abs() < 1e-12);
        assert!((beta_inc(2.0, 3.0, 0.5) - 0.6875).abs() < 1e-12);
    }
}
