//! Hypothesis tests used by the paper's impact-factor analysis (§4, App A.1):
//! Welch's t-test and Levene's test for the pairwise geolocation comparisons
//! (Table 5, Fig 7a, Fig 17), and the D'Agostino–Pearson / Anderson–Darling
//! normality tests (Table 4, Fig 17).

use crate::descriptive::{kurtosis, mean, median, skewness, variance};
use crate::dist::{chi2_sf, f_sf, normal_cdf, student_t_two_sided_p};
use crate::{Result, StatsError};

/// Outcome of a hypothesis test: the statistic and its p-value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// Test statistic (t, W, K², A*², … depending on the test).
    pub statistic: f64,
    /// p-value under the test's null hypothesis.
    pub p_value: f64,
}

impl TestResult {
    /// True when the null hypothesis is rejected at significance `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Welch's unequal-variance t-test (two-sided).
///
/// Null hypothesis: the two samples have equal means. The paper uses this
/// pairwise across geolocation grid cells to show that ~70% of cell pairs
/// have significantly different mean throughput (Table 5).
pub fn welch_t_test(xs: &[f64], ys: &[f64]) -> Result<TestResult> {
    if xs.len() < 2 || ys.len() < 2 {
        return Err(StatsError::TooFewSamples {
            needed: 2,
            got: xs.len().min(ys.len()),
        });
    }
    let (mx, my) = (mean(xs)?, mean(ys)?);
    let (vx, vy) = (variance(xs)?, variance(ys)?);
    let (nx, ny) = (xs.len() as f64, ys.len() as f64);
    let se2 = vx / nx + vy / ny;
    if se2 == 0.0 {
        // Both samples constant: equal means ⇒ p = 1, different ⇒ p = 0.
        let p = if mx == my { 1.0 } else { 0.0 };
        return Ok(TestResult {
            statistic: if mx == my { 0.0 } else { f64::INFINITY },
            p_value: p,
        });
    }
    let t = (mx - my) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((vx / nx).powi(2) / (nx - 1.0) + (vy / ny).powi(2) / (ny - 1.0));
    Ok(TestResult {
        statistic: t,
        p_value: student_t_two_sided_p(t, df),
    })
}

/// Which center Levene's test subtracts before taking absolute deviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeveneCenter {
    /// Classic Levene (1960): deviations from the group mean.
    Mean,
    /// Brown–Forsythe (1974): deviations from the group median, more robust
    /// to heavy tails — what SciPy defaults to.
    Median,
}

/// Levene's test for equality of variances across `groups`.
///
/// Null hypothesis: all groups share the same variance. Used pairwise by the
/// paper to show that >60% of geolocation pairs differ in throughput
/// *variance* as well as mean (Table 5, Fig 17).
pub fn levene_test(groups: &[&[f64]], center: LeveneCenter) -> Result<TestResult> {
    let k = groups.len();
    if k < 2 {
        return Err(StatsError::TooFewSamples { needed: 2, got: k });
    }
    for g in groups {
        if g.len() < 2 {
            return Err(StatsError::TooFewSamples {
                needed: 2,
                got: g.len(),
            });
        }
    }
    let n_total: usize = groups.iter().map(|g| g.len()).sum();

    // Z_ij = |x_ij − center_i|
    let mut z_groups: Vec<Vec<f64>> = Vec::with_capacity(k);
    for g in groups {
        let c = match center {
            LeveneCenter::Mean => mean(g)?,
            LeveneCenter::Median => median(g)?,
        };
        z_groups.push(g.iter().map(|x| (x - c).abs()).collect());
    }
    let z_bar_i: Vec<f64> = z_groups.iter().map(|z| mean(z).unwrap()).collect();
    let z_bar = z_groups.iter().flatten().sum::<f64>() / n_total as f64;

    let numer: f64 = z_groups
        .iter()
        .zip(&z_bar_i)
        .map(|(z, &zi)| z.len() as f64 * (zi - z_bar).powi(2))
        .sum::<f64>()
        * (n_total - k) as f64;
    let denom: f64 = z_groups
        .iter()
        .zip(&z_bar_i)
        .map(|(z, &zi)| z.iter().map(|&zij| (zij - zi).powi(2)).sum::<f64>())
        .sum::<f64>()
        * (k - 1) as f64;

    if denom == 0.0 {
        // All within-group deviations identical ⇒ cannot reject.
        return Ok(TestResult {
            statistic: 0.0,
            p_value: 1.0,
        });
    }
    let w = numer / denom;
    Ok(TestResult {
        statistic: w,
        p_value: f_sf(w, (k - 1) as f64, (n_total - k) as f64),
    })
}

/// D'Agostino–Pearson K² omnibus normality test.
///
/// Combines a skewness z-test (D'Agostino 1970) and a kurtosis z-test
/// (Anscombe–Glynn 1983); `K² = z₁² + z₂² ~ χ²(2)` under normality. The paper
/// applies this per geolocation to show ~48% of indoor cells are non-normal
/// (Table 4). Requires `n >= 20` for the asymptotics to be reasonable.
pub fn dagostino_pearson(xs: &[f64]) -> Result<TestResult> {
    let n = xs.len();
    if n < 20 {
        return Err(StatsError::TooFewSamples { needed: 20, got: n });
    }
    let z1 = skew_test_z(xs)?;
    let z2 = kurtosis_test_z(xs)?;
    let k2 = z1 * z1 + z2 * z2;
    Ok(TestResult {
        statistic: k2,
        p_value: chi2_sf(k2, 2.0),
    })
}

/// Transformed skewness z-score (D'Agostino 1970), standard normal under H₀.
fn skew_test_z(xs: &[f64]) -> Result<f64> {
    let n = xs.len() as f64;
    let g1 = skewness(xs)?;
    let y = g1 * ((n + 1.0) * (n + 3.0) / (6.0 * (n - 2.0))).sqrt();
    let beta2 = 3.0 * (n * n + 27.0 * n - 70.0) * (n + 1.0) * (n + 3.0)
        / ((n - 2.0) * (n + 5.0) * (n + 7.0) * (n + 9.0));
    let w2 = -1.0 + (2.0 * (beta2 - 1.0)).sqrt();
    let delta = 1.0 / (0.5 * w2.ln()).sqrt();
    let alpha = (2.0 / (w2 - 1.0)).sqrt();
    let y_over = y / alpha;
    Ok(delta * (y_over + (y_over * y_over + 1.0).sqrt()).ln())
}

/// Transformed kurtosis z-score (Anscombe–Glynn 1983), standard normal under H₀.
fn kurtosis_test_z(xs: &[f64]) -> Result<f64> {
    let n = xs.len() as f64;
    let b2 = kurtosis(xs)?;
    let eb2 = 3.0 * (n - 1.0) / (n + 1.0);
    let vb2 = 24.0 * n * (n - 2.0) * (n - 3.0) / ((n + 1.0).powi(2) * (n + 3.0) * (n + 5.0));
    let x = (b2 - eb2) / vb2.sqrt();
    let sqrt_beta1 = 6.0 * (n * n - 5.0 * n + 2.0) / ((n + 7.0) * (n + 9.0))
        * (6.0 * (n + 3.0) * (n + 5.0) / (n * (n - 2.0) * (n - 3.0))).sqrt();
    let a = 6.0
        + 8.0 / sqrt_beta1 * (2.0 / sqrt_beta1 + (1.0 + 4.0 / (sqrt_beta1 * sqrt_beta1)).sqrt());
    let term = (1.0 - 2.0 / a) / (1.0 + x * (2.0 / (a - 4.0)).sqrt());
    let z = ((1.0 - 2.0 / (9.0 * a)) - term.cbrt()) / (2.0 / (9.0 * a)).sqrt();
    Ok(z)
}

/// Anderson–Darling test for normality with estimated mean and variance
/// ("case 4"), using Stephens' small-sample correction and D'Agostino's
/// p-value approximation.
pub fn anderson_darling_normality(xs: &[f64]) -> Result<TestResult> {
    let n = xs.len();
    if n < 8 {
        return Err(StatsError::TooFewSamples { needed: 8, got: n });
    }
    let m = mean(xs)?;
    let s = variance(xs)?.sqrt();
    if s == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    let mut z: Vec<f64> = xs.iter().map(|x| normal_cdf((x - m) / s)).collect();
    z.sort_by(|a, b| a.partial_cmp(b).expect("NaN in AD input"));
    // Clamp to avoid log(0) from extreme standardized values.
    for zi in &mut z {
        *zi = zi.clamp(1e-12, 1.0 - 1e-12);
    }
    let nf = n as f64;
    let mut a2 = 0.0;
    for i in 0..n {
        let w = (2 * i + 1) as f64;
        a2 += w * (z[i].ln() + (1.0 - z[n - 1 - i]).ln());
    }
    let a2 = -nf - a2 / nf;
    // Small-sample correction for estimated parameters.
    let a2_star = a2 * (1.0 + 0.75 / nf + 2.25 / (nf * nf));
    let p = if a2_star >= 0.6 {
        (1.2937 - 5.709 * a2_star + 0.0186 * a2_star * a2_star).exp()
    } else if a2_star >= 0.34 {
        (0.9177 - 4.279 * a2_star - 1.38 * a2_star * a2_star).exp()
    } else if a2_star >= 0.2 {
        1.0 - (-8.318 + 42.796 * a2_star - 59.938 * a2_star * a2_star).exp()
    } else {
        1.0 - (-13.436 + 101.14 * a2_star - 223.73 * a2_star * a2_star).exp()
    };
    Ok(TestResult {
        statistic: a2_star,
        p_value: p.clamp(0.0, 1.0),
    })
}

/// Paper-style normality check: a sample is "normal" if it passes **either**
/// D'Agostino–Pearson or Anderson–Darling at significance `alpha`
/// (§4.1: "We consider the measurements associated with a geolocation as
/// normal if they pass any of the two types").
pub fn passes_either_normality(xs: &[f64], alpha: f64) -> bool {
    let dp_ok = dagostino_pearson(xs).map(|r| !r.rejects_at(alpha));
    let ad_ok = anderson_darling_normality(xs).map(|r| !r.rejects_at(alpha));
    match (dp_ok, ad_ok) {
        (Ok(a), Ok(b)) => a || b,
        (Ok(a), Err(_)) => a,
        (Err(_), Ok(b)) => b,
        // Too few samples for both tests: treat as non-normal evidence-free.
        (Err(_), Err(_)) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-normal data via the inverse CDF of evenly spaced
    /// probabilities (a perfect normal sample in distributional terms).
    fn normal_scores(n: usize, mu: f64, sigma: f64) -> Vec<f64> {
        (1..=n)
            .map(|i| {
                let p = i as f64 / (n as f64 + 1.0);
                mu + sigma * crate::dist::normal_quantile(p)
            })
            .collect()
    }

    #[test]
    fn welch_identical_samples_have_p_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let r = welch_t_test(&xs, &xs).unwrap();
        assert!((r.statistic).abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn welch_detects_separated_means() {
        let xs: Vec<f64> = normal_scores(30, 0.0, 1.0);
        let ys: Vec<f64> = normal_scores(30, 5.0, 1.0);
        let r = welch_t_test(&xs, &ys).unwrap();
        assert!(r.p_value < 1e-6);
        assert!(r.statistic < 0.0); // mean(xs) < mean(ys)
    }

    #[test]
    fn welch_reference_against_scipy() {
        // Hand computation: means 3 and 6, variances 2.5 and 10 (n = 5 each)
        // ⇒ t = −3/√(0.5 + 2) = −1.897366…, Welch df = 2.5²/(0.0625 + 1) ≈ 5.882.
        let r = welch_t_test(&[1.0, 2.0, 3.0, 4.0, 5.0], &[2.0, 4.0, 6.0, 8.0, 10.0]).unwrap();
        assert!((r.statistic + 1.897_366_596).abs() < 1e-8);
        assert!(r.p_value > 0.09 && r.p_value < 0.13, "p = {}", r.p_value);
    }

    #[test]
    fn welch_requires_two_samples_each() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn levene_equal_variances_not_rejected() {
        let a = normal_scores(40, 0.0, 1.0);
        let b = normal_scores(40, 10.0, 1.0); // same spread, different mean
        let r = levene_test(&[&a, &b], LeveneCenter::Median).unwrap();
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn levene_detects_different_variances() {
        let a = normal_scores(40, 0.0, 1.0);
        let b = normal_scores(40, 0.0, 6.0);
        let r = levene_test(&[&a, &b], LeveneCenter::Median).unwrap();
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn levene_mean_center_matches_brown_forsythe_on_symmetric_data() {
        let a = normal_scores(50, 0.0, 1.0);
        let b = normal_scores(50, 0.0, 2.0);
        let rm = levene_test(&[&a, &b], LeveneCenter::Mean).unwrap();
        let rmed = levene_test(&[&a, &b], LeveneCenter::Median).unwrap();
        // Both should reject; statistics are close for symmetric data.
        assert!(rm.p_value < 0.05 && rmed.p_value < 0.05);
    }

    #[test]
    fn dagostino_accepts_normal_scores() {
        let xs = normal_scores(200, 3.0, 2.0);
        let r = dagostino_pearson(&xs).unwrap();
        assert!(r.p_value > 0.2, "p = {}", r.p_value);
    }

    #[test]
    fn dagostino_rejects_exponential_shape() {
        // Exponential quantiles are strongly skewed.
        let xs: Vec<f64> = (1..=200).map(|i| -(1.0 - i as f64 / 201.0).ln()).collect();
        let r = dagostino_pearson(&xs).unwrap();
        assert!(r.p_value < 1e-4, "p = {}", r.p_value);
    }

    #[test]
    fn dagostino_needs_twenty_samples() {
        assert!(dagostino_pearson(&[1.0; 10]).is_err());
    }

    #[test]
    fn anderson_darling_accepts_normal_scores() {
        let xs = normal_scores(100, -1.0, 0.5);
        let r = anderson_darling_normality(&xs).unwrap();
        assert!(r.p_value > 0.2, "p = {}", r.p_value);
    }

    #[test]
    fn anderson_darling_rejects_uniform_tails() {
        // Uniform data has truncated tails relative to a normal.
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let r = anderson_darling_normality(&xs).unwrap();
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn either_normality_matches_components() {
        let xs = normal_scores(100, 0.0, 1.0);
        assert!(passes_either_normality(&xs, 0.001));
        let expo: Vec<f64> = (1..=100).map(|i| -(1.0 - i as f64 / 101.0).ln()).collect();
        assert!(!passes_either_normality(&expo, 0.05));
    }
}
