//! Descriptive statistics: central tendency, dispersion and quantiles.
//!
//! The paper leans on the coefficient of variation (CV) to quantify how wildly
//! 5G throughput varies within a single geolocation (§4.1, Fig 7b), and on
//! box-plot style summaries for the speed analysis (Fig 14).

use crate::{Result, StatsError};

/// Arithmetic mean of `xs`.
///
/// Returns an error on empty input.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Unbiased sample variance (denominator `n - 1`).
pub fn variance(xs: &[f64]) -> Result<f64> {
    if xs.len() < 2 {
        return Err(StatsError::TooFewSamples {
            needed: 2,
            got: xs.len(),
        });
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / (xs.len() - 1) as f64)
}

/// Population variance (denominator `n`). Used by the normality tests, which
/// are defined in terms of biased central moments.
pub fn population_variance(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    Ok(ss / xs.len() as f64)
}

/// Unbiased sample standard deviation.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Coefficient of variation `std / |mean|`, as a *fraction* (multiply by 100
/// for the percentages the paper quotes, e.g. "CV ≥ 50%").
///
/// Errors if the mean is zero (CV undefined).
pub fn coefficient_of_variation(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    if m == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok(std_dev(xs)? / m.abs())
}

/// Central biased moment of order `k` about the mean.
pub fn central_moment(xs: &[f64], k: u32) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    let m = mean(xs)?;
    Ok(xs.iter().map(|x| (x - m).powi(k as i32)).sum::<f64>() / xs.len() as f64)
}

/// Biased sample skewness `g1 = m3 / m2^{3/2}`.
pub fn skewness(xs: &[f64]) -> Result<f64> {
    let m2 = central_moment(xs, 2)?;
    if m2 == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok(central_moment(xs, 3)? / m2.powf(1.5))
}

/// Biased sample kurtosis `g2 = m4 / m2^2` (not excess; normal ≈ 3).
pub fn kurtosis(xs: &[f64]) -> Result<f64> {
    let m2 = central_moment(xs, 2)?;
    if m2 == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok(central_moment(xs, 4)? / (m2 * m2))
}

/// Linear-interpolated quantile (type 7, the NumPy/R default).
///
/// `q` must lie in `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter("quantile must be in [0,1]"));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Ok(sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo]))
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Five-number box-plot summary plus mean and count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Minimum value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `n < 2`).
    pub std: f64,
}

impl Summary {
    /// Compute the summary over `xs`.
    pub fn of(xs: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        Ok(Summary {
            n: xs.len(),
            min: sorted[0],
            q1: quantile(xs, 0.25)?,
            median: quantile(xs, 0.5)?,
            q3: quantile(xs, 0.75)?,
            max: sorted[sorted.len() - 1],
            mean: mean(xs)?,
            std: if xs.len() >= 2 { std_dev(xs)? } else { 0.0 },
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    #[test]
    fn mean_of_simple_sequence() {
        assert!((mean(&[1.0, 2.0, 3.0, 4.0]).unwrap() - 2.5).abs() < EPS);
    }

    #[test]
    fn mean_rejects_empty() {
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn variance_matches_hand_computation() {
        // var([2,4,4,4,5,5,7,9]) sample = 32/7
        let v = variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((v - 32.0 / 7.0).abs() < EPS);
    }

    #[test]
    fn population_variance_uses_n_denominator() {
        let v = population_variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((v - 4.0).abs() < EPS);
    }

    #[test]
    fn cv_is_std_over_mean() {
        let xs = [10.0, 20.0, 30.0];
        let cv = coefficient_of_variation(&xs).unwrap();
        assert!((cv - 10.0 / 20.0).abs() < EPS);
    }

    #[test]
    fn cv_undefined_for_zero_mean() {
        assert_eq!(
            coefficient_of_variation(&[-1.0, 1.0]),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn quantile_endpoints_are_min_max() {
        let xs = [3.0, 1.0, 2.0];
        assert!((quantile(&xs, 0.0).unwrap() - 1.0).abs() < EPS);
        assert!((quantile(&xs, 1.0).unwrap() - 3.0).abs() < EPS);
    }

    #[test]
    fn quantile_interpolates_linearly() {
        // type-7 on [1,2,3,4]: q=0.5 -> 2.5
        assert!((quantile(&[1.0, 2.0, 3.0, 4.0], 0.5).unwrap() - 2.5).abs() < EPS);
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        assert!(quantile(&[1.0], 1.5).is_err());
    }

    #[test]
    fn median_odd_is_middle_element() {
        assert!((median(&[5.0, 1.0, 9.0]).unwrap() - 5.0).abs() < EPS);
    }

    #[test]
    fn skewness_of_symmetric_data_is_zero() {
        let s = skewness(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!(s.abs() < EPS);
    }

    #[test]
    fn kurtosis_of_two_point_mass_is_one() {
        // {−1, 1} repeated: m4/m2² = 1
        let k = kurtosis(&[-1.0, 1.0, -1.0, 1.0]).unwrap();
        assert!((k - 1.0).abs() < EPS);
    }

    #[test]
    fn summary_is_ordered() {
        let s = Summary::of(&[9.0, 1.0, 5.0, 3.0, 7.0]).unwrap();
        assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
        assert_eq!(s.n, 5);
    }
}
