//! Empirical CDFs and histograms for the paper's distribution plots
//! (Fig 7b CV CDF, Fig 10 Spearman CDFs, Fig 17).

use crate::{Result, StatsError};

/// An empirical cumulative distribution function over a sample.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from samples. Errors on empty input.
    pub fn new(xs: &[f64]) -> Result<Self> {
        if xs.is_empty() {
            return Err(StatsError::TooFewSamples { needed: 1, got: 0 });
        }
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ECDF input"));
        Ok(Ecdf { sorted })
    }

    /// `F(x) = P(X <= x)`, a right-continuous step function.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of elements <= x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples that are at least `x` (used for "CV ≥ 50%" style
    /// statements in §4.1).
    pub fn fraction_at_least(&self, x: f64) -> f64 {
        let below = self.sorted.partition_point(|&v| v < x);
        (self.sorted.len() - below) as f64 / self.sorted.len() as f64
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty samples.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluate the ECDF on an evenly spaced grid spanning the data range,
    /// returning `(x, F(x))` pairs — convenient for plotting/export.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        let lo = self.sorted[0];
        let hi = self.sorted[self.sorted.len() - 1];
        if points <= 1 || lo == hi {
            return vec![(lo, self.eval(lo))];
        }
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

/// Fixed-width histogram over a closed range.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    /// Samples below `lo` or above the top edge.
    pub outliers: u64,
}

impl Histogram {
    /// Create a histogram of `bins` equal-width bins covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if bins == 0 || hi <= lo {
            return Err(StatsError::InvalidParameter(
                "histogram requires hi > lo and bins > 0",
            ));
        }
        Ok(Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            outliers: 0,
        })
    }

    /// Insert one observation.
    pub fn add(&mut self, x: f64) {
        let idx = (x - self.lo) / self.width;
        if idx < 0.0 || idx >= self.counts.len() as f64 {
            self.outliers += 1;
        } else {
            self.counts[idx as usize] += 1;
        }
    }

    /// Insert many observations.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(low_edge, high_edge)` of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let lo = self.lo + self.width * i as f64;
        (lo, lo + self.width)
    }

    /// Total in-range count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecdf_step_values() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((e.eval(0.5) - 0.0).abs() < 1e-12);
        assert!((e.eval(1.0) - 0.25).abs() < 1e-12);
        assert!((e.eval(2.5) - 0.5).abs() < 1e-12);
        assert!((e.eval(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_fraction_at_least() {
        let e = Ecdf::new(&[0.2, 0.5, 0.5, 0.9]).unwrap();
        assert!((e.fraction_at_least(0.5) - 0.75).abs() < 1e-12);
        assert!((e.fraction_at_least(0.95) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_is_monotone() {
        let e = Ecdf::new(&[3.0, 1.0, 4.0, 1.0, 5.0]).unwrap();
        let curve = e.curve(20);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn histogram_counts_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        h.extend(&[0.5, 1.5, 2.5, 9.9, 10.0, -1.0]);
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.outliers, 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_rejects_bad_range() {
        assert!(Histogram::new(5.0, 5.0, 3).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn histogram_bin_edges() {
        let h = Histogram::new(0.0, 10.0, 5).unwrap();
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
        assert_eq!(h.bin_edges(4), (8.0, 10.0));
    }
}
