#![warn(missing_docs)]

//! # lumos5g-stats
//!
//! Statistics substrate for the Lumos5G reproduction.
//!
//! The paper's §4 impact-factor analysis relies on a toolbox of classical
//! statistics: coefficients of variation, normality tests
//! (D'Agostino–Pearson and Anderson–Darling), pairwise Welch t-tests and
//! Levene tests across geolocations, and Spearman rank correlation between
//! throughput traces. None of these are available offline in the approved
//! crate set, so this crate implements them from scratch with unit tests
//! pinned against published reference values.
//!
//! Layout:
//! - [`descriptive`]: means, variances, CV, quantiles, box-plot summaries.
//! - [`special`]: erf, log-gamma, regularized incomplete gamma/beta.
//! - [`dist`]: Normal, Student-t, chi-squared and F distribution CDFs.
//! - [`htest`]: Welch t-test, Levene / Brown–Forsythe, D'Agostino–Pearson,
//!   Anderson–Darling.
//! - [`correlation`]: Pearson and Spearman (tie-aware) correlation.
//! - [`ecdf`]: empirical CDFs and fixed-width histograms.

pub mod bootstrap;
pub mod correlation;
pub mod descriptive;
pub mod dist;
pub mod ecdf;
pub mod htest;
pub mod special;

pub use bootstrap::{bootstrap_ci, bootstrap_mean_ci, ConfidenceInterval};
pub use correlation::{pearson, spearman, SpearmanResult};
pub use descriptive::{
    coefficient_of_variation, mean, median, quantile, std_dev, variance, Summary,
};
pub use ecdf::{Ecdf, Histogram};
pub use htest::{
    anderson_darling_normality, dagostino_pearson, levene_test, welch_t_test, LeveneCenter,
    TestResult,
};

/// Errors produced by statistical routines on degenerate inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// The input slice was empty or shorter than the minimum the routine needs.
    TooFewSamples {
        /// Number of samples required.
        needed: usize,
        /// Number of samples supplied.
        got: usize,
    },
    /// A variance of zero (constant data) makes the requested statistic undefined.
    ZeroVariance,
    /// Two paired inputs had different lengths.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A parameter was outside its valid domain (e.g. quantile not in \[0,1\]).
    InvalidParameter(&'static str),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::TooFewSamples { needed, got } => {
                write!(f, "too few samples: needed {needed}, got {got}")
            }
            StatsError::ZeroVariance => write!(f, "zero variance makes the statistic undefined"),
            StatsError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StatsError>;
