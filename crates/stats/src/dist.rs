//! Distribution CDFs built on the special functions in [`crate::special`].
//!
//! Only what the hypothesis tests need: standard normal, Student-t,
//! chi-squared and Fisher F.

use crate::special::{beta_inc, erf, erfc, gamma_p, gamma_q};

/// Standard normal probability density function.
pub fn normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function Φ(z).
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Standard normal survival function `1 − Φ(z)`, precise in the far tail.
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Inverse standard normal CDF (Acklam's rational approximation refined with
/// one Halley step; |error| < 1e-12 over (0, 1)).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1)");
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Student-t CDF with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "student_t_cdf requires df > 0");
    let x = df / (df + t * t);
    let tail = 0.5 * beta_inc(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

/// Two-sided p-value for a t statistic: `P(|T| >= |t|)`.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "two-sided t p-value requires df > 0");
    beta_inc(df / 2.0, 0.5, df / (df + t * t))
}

/// Chi-squared CDF with `k` degrees of freedom.
pub fn chi2_cdf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "chi2_cdf requires k > 0");
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(k / 2.0, x / 2.0)
}

/// Chi-squared survival function `P(X >= x)`.
pub fn chi2_sf(x: f64, k: f64) -> f64 {
    assert!(k > 0.0, "chi2_sf requires k > 0");
    if x <= 0.0 {
        return 1.0;
    }
    gamma_q(k / 2.0, x / 2.0)
}

/// Fisher F CDF with `(d1, d2)` degrees of freedom.
pub fn f_cdf(x: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0, "f_cdf requires positive dof");
    if x <= 0.0 {
        return 0.0;
    }
    beta_inc(d1 / 2.0, d2 / 2.0, d1 * x / (d1 * x + d2))
}

/// Fisher F survival function `P(F >= x)`.
pub fn f_sf(x: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0, "f_sf requires positive dof");
    if x <= 0.0 {
        return 1.0;
    }
    beta_inc(d2 / 2.0, d1 / 2.0, d2 / (d1 * x + d2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((normal_cdf(1.96) - 0.975_002_104_9).abs() < 1e-8);
        assert!((normal_cdf(-1.0) - 0.158_655_253_9).abs() < 1e-9);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.3, 0.5, 0.84, 0.999] {
            let z = normal_quantile(p);
            assert!((normal_cdf(z) - p).abs() < 1e-10, "p = {p}");
        }
    }

    #[test]
    fn student_t_symmetric_at_zero() {
        assert!((student_t_cdf(0.0, 7.0) - 0.5).abs() < 1e-14);
    }

    #[test]
    fn student_t_reference_values() {
        // t(df=10) CDF at 1.812 ≈ 0.95 (critical value table).
        assert!((student_t_cdf(1.812, 10.0) - 0.95).abs() < 1e-3);
        // df=1 is Cauchy: CDF(1) = 0.75.
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-10);
    }

    #[test]
    fn student_t_two_sided_matches_tails() {
        let (t, df) = (2.3, 12.0);
        let p = student_t_two_sided_p(t, df);
        let manual = 2.0 * (1.0 - student_t_cdf(t, df));
        assert!((p - manual).abs() < 1e-12);
    }

    #[test]
    fn chi2_reference_values() {
        // χ²(2) CDF is 1 − e^{−x/2}.
        for &x in &[0.5, 2.0, 5.991] {
            assert!((chi2_cdf(x, 2.0) - (1.0 - (-x / 2.0f64).exp())).abs() < 1e-12);
        }
        // 95th percentile of χ²(2) is 5.991.
        assert!((chi2_sf(5.991, 2.0) - 0.05).abs() < 2e-4);
    }

    #[test]
    fn f_cdf_and_sf_complement() {
        for &(x, d1, d2) in &[(1.0, 3.0, 10.0), (2.5, 5.0, 20.0), (0.3, 1.0, 1.0)] {
            assert!((f_cdf(x, d1, d2) + f_sf(x, d1, d2) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn f_reference_value() {
        // F(1, d2) at x relates to t: F_{1,k}(t²) = 2·T_k(t) − 1.
        let t: f64 = 2.0;
        let k = 15.0;
        let lhs = f_cdf(t * t, 1.0, k);
        let rhs = 2.0 * student_t_cdf(t, k) - 1.0;
        assert!((lhs - rhs).abs() < 1e-10);
    }
}
