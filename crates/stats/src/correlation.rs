//! Pearson and Spearman correlation.
//!
//! The paper uses Spearman's rank correlation to show that throughput traces
//! walked in the *same* direction share a monotonic trend (ρ ≈ 0.61–0.74)
//! while traces in opposite directions do not (ρ ≈ 0.02) — §4.2, Fig 10.

use crate::dist::student_t_two_sided_p;
use crate::{Result, StatsError};

/// Pearson product-moment correlation coefficient.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(StatsError::TooFewSamples {
            needed: 2,
            got: xs.len(),
        });
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(StatsError::ZeroVariance);
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Result of a Spearman rank correlation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpearmanResult {
    /// Rank correlation coefficient ρ ∈ [−1, 1].
    pub rho: f64,
    /// Two-sided p-value from the t approximation
    /// `t = ρ·√((n−2)/(1−ρ²))` with `n − 2` degrees of freedom.
    pub p_value: f64,
}

/// Spearman rank correlation with average-rank tie handling.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<SpearmanResult> {
    if xs.len() != ys.len() {
        return Err(StatsError::LengthMismatch {
            left: xs.len(),
            right: ys.len(),
        });
    }
    if xs.len() < 3 {
        return Err(StatsError::TooFewSamples {
            needed: 3,
            got: xs.len(),
        });
    }
    let rx = average_ranks(xs);
    let ry = average_ranks(ys);
    let rho = pearson(&rx, &ry)?;
    let n = xs.len() as f64;
    let p_value = if rho.abs() >= 1.0 {
        0.0
    } else {
        let t = rho * ((n - 2.0) / (1.0 - rho * rho)).sqrt();
        student_t_two_sided_p(t, n - 2.0)
    };
    Ok(SpearmanResult { rho, p_value })
}

/// Assign fractional (average) ranks, 1-based, ties sharing the mean rank.
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j+1.
        let avg = (i + j + 2) as f64 / 2.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_rejects_constant_input() {
        assert_eq!(
            pearson(&[1.0, 1.0], &[1.0, 2.0]),
            Err(StatsError::ZeroVariance)
        );
    }

    #[test]
    fn ranks_handle_ties_with_averages() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 8.0, 27.0, 64.0, 125.0];
        let r = spearman(&xs, &ys).unwrap();
        assert!((r.rho - 1.0).abs() < 1e-12);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn spearman_reference_against_scipy() {
        // scipy.stats.spearmanr([1,2,3,4,5], [5,6,7,8,7]) -> rho = 0.8207...
        let r = spearman(&[1.0, 2.0, 3.0, 4.0, 5.0], &[5.0, 6.0, 7.0, 8.0, 7.0]).unwrap();
        assert!((r.rho - 0.820_782_681_6).abs() < 1e-8);
    }

    #[test]
    fn spearman_length_mismatch_is_error() {
        assert!(spearman(&[1.0, 2.0, 3.0], &[1.0, 2.0]).is_err());
    }
}
