//! Compass-circle arithmetic.
//!
//! All angles are in **degrees**. Azimuths/bearings follow the compass
//! convention the paper uses: 0° = North, 90° = East, increasing clockwise.

/// Normalize an angle to `[0, 360)`.
pub fn normalize_deg(a: f64) -> f64 {
    let r = a % 360.0;
    if r < 0.0 {
        r + 360.0
    } else {
        r
    }
}

/// Signed smallest rotation from `from` to `to`, in `(-180, 180]`.
pub fn signed_delta_deg(from: f64, to: f64) -> f64 {
    let d = normalize_deg(to - from);
    if d > 180.0 {
        d - 360.0
    } else {
        d
    }
}

/// Fold a full-circle angle onto `[0, 180]` (angular separation regardless of
/// side). Useful when only the magnitude of misalignment matters, e.g. for
/// antenna gain roll-off.
pub fn fold_angle_deg(a: f64) -> f64 {
    let n = normalize_deg(a);
    if n > 180.0 {
        360.0 - n
    } else {
        n
    }
}

/// Compass bearing from point `(x1, y1)` to `(x2, y2)` in a local
/// east-north frame (x = east meters, y = north meters).
///
/// Returns degrees in `[0, 360)`, 0° = North, clockwise positive.
pub fn bearing_deg(x1: f64, y1: f64, x2: f64, y2: f64) -> f64 {
    let dx = x2 - x1; // east
    let dy = y2 - y1; // north
    normalize_deg(dx.atan2(dy).to_degrees())
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn normalize_wraps_both_directions() {
        assert!((normalize_deg(370.0) - 10.0).abs() < EPS);
        assert!((normalize_deg(-10.0) - 350.0).abs() < EPS);
        assert!((normalize_deg(720.0)).abs() < EPS);
    }

    #[test]
    fn signed_delta_takes_short_way() {
        assert!((signed_delta_deg(350.0, 10.0) - 20.0).abs() < EPS);
        assert!((signed_delta_deg(10.0, 350.0) + 20.0).abs() < EPS);
        assert!((signed_delta_deg(0.0, 180.0) - 180.0).abs() < EPS);
    }

    #[test]
    fn fold_collapses_to_half_circle() {
        assert!((fold_angle_deg(270.0) - 90.0).abs() < EPS);
        assert!((fold_angle_deg(180.0) - 180.0).abs() < EPS);
        assert!((fold_angle_deg(-45.0) - 45.0).abs() < EPS);
    }

    #[test]
    fn bearing_cardinal_directions() {
        assert!((bearing_deg(0.0, 0.0, 0.0, 1.0) - 0.0).abs() < EPS); // north
        assert!((bearing_deg(0.0, 0.0, 1.0, 0.0) - 90.0).abs() < EPS); // east
        assert!((bearing_deg(0.0, 0.0, 0.0, -1.0) - 180.0).abs() < EPS); // south
        assert!((bearing_deg(0.0, 0.0, -1.0, 0.0) - 270.0).abs() < EPS); // west
    }

    #[test]
    fn bearing_diagonal() {
        assert!((bearing_deg(0.0, 0.0, 1.0, 1.0) - 45.0).abs() < EPS);
    }
}
