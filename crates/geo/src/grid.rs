//! Fixed-size square grids over the local plane.
//!
//! The throughput maps in Fig 6 aggregate samples per **2 m × 2 m** cell and
//! the per-geolocation statistics in §4.1 are computed per cell. `GridIndex`
//! maps local-plane points to integer cells; `GridCell` is the hashable key.

use crate::local::Point2;
use std::collections::HashMap;

/// Integer cell key of a square grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridCell {
    /// Column index (east).
    pub i: i64,
    /// Row index (north).
    pub j: i64,
}

/// A square binning of the local plane with a fixed cell size.
#[derive(Debug, Clone, Copy)]
pub struct GridIndex {
    cell_size_m: f64,
}

impl GridIndex {
    /// Grid with `cell_size_m`-meter cells. Panics if the size is not
    /// strictly positive (a programming error, not a data condition).
    pub fn new(cell_size_m: f64) -> Self {
        assert!(
            cell_size_m > 0.0 && cell_size_m.is_finite(),
            "grid cell size must be positive"
        );
        GridIndex { cell_size_m }
    }

    /// The paper's 2 m throughput-map grid.
    pub fn paper_map_grid() -> Self {
        GridIndex::new(2.0)
    }

    /// Cell size in meters.
    pub fn cell_size(&self) -> f64 {
        self.cell_size_m
    }

    /// Cell containing `p`.
    pub fn cell_of(&self, p: Point2) -> GridCell {
        GridCell {
            i: (p.x / self.cell_size_m).floor() as i64,
            j: (p.y / self.cell_size_m).floor() as i64,
        }
    }

    /// Center point of a cell.
    pub fn center_of(&self, c: GridCell) -> Point2 {
        Point2 {
            x: (c.i as f64 + 0.5) * self.cell_size_m,
            y: (c.j as f64 + 0.5) * self.cell_size_m,
        }
    }

    /// Group `(position, value)` samples by cell.
    pub fn group<I>(&self, samples: I) -> HashMap<GridCell, Vec<f64>>
    where
        I: IntoIterator<Item = (Point2, f64)>,
    {
        let mut map: HashMap<GridCell, Vec<f64>> = HashMap::new();
        for (p, v) in samples {
            map.entry(self.cell_of(p)).or_default().push(v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_in_same_cell_share_key() {
        let g = GridIndex::new(2.0);
        assert_eq!(
            g.cell_of(Point2::new(0.1, 0.1)),
            g.cell_of(Point2::new(1.9, 1.9))
        );
    }

    #[test]
    fn cell_boundaries_split() {
        let g = GridIndex::new(2.0);
        assert_ne!(
            g.cell_of(Point2::new(1.9, 0.0)),
            g.cell_of(Point2::new(2.1, 0.0))
        );
    }

    #[test]
    fn negative_coordinates_floor_correctly() {
        let g = GridIndex::new(2.0);
        assert_eq!(
            g.cell_of(Point2::new(-0.1, -0.1)),
            GridCell { i: -1, j: -1 }
        );
    }

    #[test]
    fn center_is_inside_cell() {
        let g = GridIndex::new(2.0);
        let c = GridCell { i: 3, j: -2 };
        let center = g.center_of(c);
        assert_eq!(g.cell_of(center), c);
    }

    #[test]
    fn group_collects_values_per_cell() {
        let g = GridIndex::new(2.0);
        let samples = vec![
            (Point2::new(0.5, 0.5), 1.0),
            (Point2::new(1.0, 1.0), 2.0),
            (Point2::new(3.0, 0.5), 9.0),
        ];
        let m = g.group(samples);
        assert_eq!(m.len(), 2);
        assert_eq!(m[&GridCell { i: 0, j: 0 }], vec![1.0, 2.0]);
        assert_eq!(m[&GridCell { i: 1, j: 0 }], vec![9.0]);
    }
}
