//! Local tangent-plane frame.
//!
//! All three measurement areas in the paper span at most ~1.5 km, so an
//! equirectangular east-north plane anchored at an area origin is accurate to
//! well under GPS noise (<< 1 cm over 1 km at mid latitudes). The simulator
//! and the geometric feature computations all work in this frame; WGS84 only
//! appears at the logging boundary.

use crate::coords::{LatLon, EARTH_RADIUS_M};

/// A point in a local east-north frame, meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// East offset from the frame origin, meters.
    pub x: f64,
    /// North offset from the frame origin, meters.
    pub y: f64,
}

impl Point2 {
    /// Construct from east/north meters.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Vector addition.
    pub fn add(self, dx: f64, dy: f64) -> Point2 {
        Point2 {
            x: self.x + dx,
            y: self.y + dy,
        }
    }

    /// Linear interpolation: `self + t · (other − self)`.
    pub fn lerp(self, other: Point2, t: f64) -> Point2 {
        Point2 {
            x: self.x + t * (other.x - self.x),
            y: self.y + t * (other.y - self.y),
        }
    }
}

/// An equirectangular local frame anchored at a WGS84 origin.
#[derive(Debug, Clone, Copy)]
pub struct LocalFrame {
    origin: LatLon,
    /// Meters per degree of longitude at the origin latitude.
    m_per_deg_lon: f64,
    /// Meters per degree of latitude.
    m_per_deg_lat: f64,
}

impl LocalFrame {
    /// Create a frame anchored at `origin`.
    pub fn new(origin: LatLon) -> Self {
        let m_per_deg_lat = std::f64::consts::PI * EARTH_RADIUS_M / 180.0;
        LocalFrame {
            origin,
            m_per_deg_lon: m_per_deg_lat * origin.lat.to_radians().cos(),
            m_per_deg_lat,
        }
    }

    /// The WGS84 anchor of this frame.
    pub fn origin(&self) -> LatLon {
        self.origin
    }

    /// WGS84 → local meters.
    pub fn to_local(&self, p: LatLon) -> Point2 {
        Point2 {
            x: (p.lon - self.origin.lon) * self.m_per_deg_lon,
            y: (p.lat - self.origin.lat) * self.m_per_deg_lat,
        }
    }

    /// Local meters → WGS84.
    pub fn to_latlon(&self, p: Point2) -> LatLon {
        LatLon::new(
            self.origin.lat + p.y / self.m_per_deg_lat,
            self.origin.lon + p.x / self.m_per_deg_lon,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mpls() -> LatLon {
        LatLon::new(44.9778, -93.2650)
    }

    #[test]
    fn roundtrip_is_exact() {
        let frame = LocalFrame::new(mpls());
        let p = Point2::new(123.4, -56.7);
        let back = frame.to_local(frame.to_latlon(p));
        assert!((back.x - p.x).abs() < 1e-9);
        assert!((back.y - p.y).abs() < 1e-9);
    }

    #[test]
    fn one_degree_latitude_is_about_111km() {
        let frame = LocalFrame::new(mpls());
        let p = frame.to_local(LatLon::new(45.9778, -93.2650));
        assert!((p.y - 111_319.49).abs() < 1.0);
        assert!(p.x.abs() < 1e-9);
    }

    #[test]
    fn longitude_scale_shrinks_with_latitude() {
        let frame = LocalFrame::new(mpls());
        let p = frame.to_local(LatLon::new(44.9778, -93.2550));
        // cos(44.98°) ≈ 0.7074 → ~787 m per 0.01°.
        assert!(p.x > 700.0 && p.x < 900.0, "x = {}", p.x);
    }

    #[test]
    fn distance_and_lerp() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        let mid = a.lerp(b, 0.5);
        assert!((mid.x - 1.5).abs() < 1e-12 && (mid.y - 2.0).abs() < 1e-12);
    }
}
