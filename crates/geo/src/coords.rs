//! WGS84 ↔ Web-Mercator pixel coordinates.
//!
//! The paper discretizes GPS fixes to the pixel grid defined by the Google
//! Maps JavaScript API at **zoom level 17**, where one pixel spans roughly
//! 0.99–1.19 m (§3.1). World coordinates use the standard 256×256 tile at
//! zoom 0; pixel coordinates at zoom `z` scale world coordinates by `2^z`.

use crate::local::{LocalFrame, Point2};

/// Zoom level used throughout the paper (≈1 m per pixel).
pub const ZOOM_PAPER: u8 = 17;

/// Mean Earth radius used by Web Mercator, meters.
pub const EARTH_RADIUS_M: f64 = 6_378_137.0;

/// A WGS84 geographic coordinate in degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatLon {
    /// Latitude in degrees, clamped to the Web-Mercator domain (±85.05°).
    pub lat: f64,
    /// Longitude in degrees in `[-180, 180]`.
    pub lon: f64,
}

impl LatLon {
    /// Create a coordinate; latitude is clamped to the Mercator-valid range.
    pub fn new(lat: f64, lon: f64) -> Self {
        LatLon {
            lat: lat.clamp(-85.051_128_78, 85.051_128_78),
            lon,
        }
    }

    /// Project to continuous world coordinates (zoom-0 256×256 square).
    pub fn to_world(self) -> (f64, f64) {
        let siny = (self.lat.to_radians()).sin().clamp(-0.9999, 0.9999);
        let x = 256.0 * (0.5 + self.lon / 360.0);
        let y = 256.0 * (0.5 - ((1.0 + siny) / (1.0 - siny)).ln() / (4.0 * std::f64::consts::PI));
        (x, y)
    }

    /// Discretize to integer pixel coordinates at zoom `zoom` — the paper's
    /// "pixelization" denoising step.
    pub fn to_pixel(self, zoom: u8) -> PixelCoord {
        let (wx, wy) = self.to_world();
        let scale = (1u64 << zoom) as f64;
        PixelCoord {
            x: (wx * scale).floor() as i64,
            y: (wy * scale).floor() as i64,
            zoom,
        }
    }

    /// Ground resolution (meters per pixel) at this latitude and `zoom`.
    pub fn meters_per_pixel(self, zoom: u8) -> f64 {
        let circumference = 2.0 * std::f64::consts::PI * EARTH_RADIUS_M;
        circumference * self.lat.to_radians().cos() / (256.0 * (1u64 << zoom) as f64)
    }

    /// Convert to local tangent-plane meters around `frame`'s origin.
    pub fn to_local(self, frame: &LocalFrame) -> Point2 {
        frame.to_local(self)
    }
}

/// An integer Google-Maps pixel coordinate at a given zoom level.
///
/// These are the `(X, Y)` geolocation coordinates used as the `L` feature
/// group (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PixelCoord {
    /// Pixel column (west → east).
    pub x: i64,
    /// Pixel row (north → south; Mercator Y grows southward).
    pub y: i64,
    /// Zoom level the pixel grid is defined at.
    pub zoom: u8,
}

impl PixelCoord {
    /// Center of this pixel back in WGS84.
    pub fn center_latlon(self) -> LatLon {
        let scale = (1u64 << self.zoom) as f64;
        let wx = (self.x as f64 + 0.5) / scale;
        let wy = (self.y as f64 + 0.5) / scale;
        let lon = (wx / 256.0 - 0.5) * 360.0;
        let n = std::f64::consts::PI * (1.0 - 2.0 * wy / 256.0);
        let lat = (n.sinh()).atan().to_degrees();
        LatLon::new(lat, lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minneapolis downtown, roughly where the paper's Loop area is.
    const MPLS: LatLon = LatLon {
        lat: 44.9778,
        lon: -93.2650,
    };

    #[test]
    fn world_origin_is_center() {
        let (x, y) = LatLon::new(0.0, 0.0).to_world();
        assert!((x - 128.0).abs() < 1e-9);
        assert!((y - 128.0).abs() < 1e-9);
    }

    #[test]
    fn world_x_scales_linearly_with_lon() {
        let (x, _) = LatLon::new(0.0, 90.0).to_world();
        assert!((x - 192.0).abs() < 1e-9);
        let (x, _) = LatLon::new(0.0, -180.0).to_world();
        assert!(x.abs() < 1e-9);
    }

    #[test]
    fn pixel_roundtrip_stays_within_one_pixel() {
        let px = MPLS.to_pixel(ZOOM_PAPER);
        let back = px.center_latlon();
        let res = MPLS.meters_per_pixel(ZOOM_PAPER);
        // Distance between original and pixel center must be < 1 pixel diagonal.
        let frame = LocalFrame::new(MPLS);
        let p = back.to_local(&frame);
        let d = (p.x * p.x + p.y * p.y).sqrt();
        assert!(d <= res * std::f64::consts::SQRT_2, "d = {d}, res = {res}");
    }

    #[test]
    fn zoom17_resolution_near_one_meter_at_equator() {
        let res = LatLon::new(0.0, 0.0).meters_per_pixel(17);
        // Paper/Google: 1.1943 m per pixel at the equator for zoom 17.
        assert!((res - 1.194_3).abs() < 1e-3, "res = {res}");
    }

    #[test]
    fn zoom17_resolution_sub_meter_in_minneapolis() {
        let res = MPLS.meters_per_pixel(17);
        assert!(res > 0.7 && res < 1.0, "res = {res}");
    }

    #[test]
    fn latitude_is_clamped_to_mercator_domain() {
        let p = LatLon::new(89.9, 0.0);
        assert!(p.lat < 85.06);
    }

    #[test]
    fn nearby_points_share_or_neighbor_pixels() {
        let a = MPLS;
        let frame = LocalFrame::new(a);
        let b = frame.to_latlon(Point2 { x: 0.4, y: 0.4 });
        let pa = a.to_pixel(ZOOM_PAPER);
        let pb = b.to_pixel(ZOOM_PAPER);
        assert!((pa.x - pb.x).abs() <= 1 && (pa.y - pb.y).abs() <= 1);
    }
}
