//! UE ↔ 5G-panel geometry: the tower-based feature group `T`.
//!
//! Per Fig 5 and §4.3–§4.5 of the paper:
//!
//! - **UE–panel distance**: Euclidean distance in the local plane.
//! - **Positional angle θp**: angle between the line normal to the panel's
//!   front face and the line from the panel to the UE. θp ≈ 0° means the UE
//!   is directly in front ("F"), θp ≈ 180° behind ("B"), with left/right
//!   sectors in between (Fig 12).
//! - **Mobility angle θm**: angle between the panel normal and the UE's
//!   trajectory. θm = 180° means the UE moves head-on toward the panel's
//!   face; θm = 0° means it moves in the same direction the panel faces
//!   (so a hand-held UE is shadowed by the user's body — §4.4).
//!
//! Both angles are reported on the full circle `[0°, 360°)` like the paper's
//! appendix bins (e.g. "[210°, 240°)"), with a folded `[0°, 180°]` variant
//! for magnitude-only uses.

use crate::angle::{bearing_deg, normalize_deg};
use crate::local::Point2;

/// Pose of a 5G mmWave panel: where it is and which way its face points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PanelPose {
    /// Panel position in the area's local frame, meters.
    pub position: Point2,
    /// Compass azimuth of the outward normal of the front face, degrees
    /// (0° = North, clockwise).
    pub azimuth_deg: f64,
}

impl PanelPose {
    /// Construct a pose, normalizing the azimuth to `[0, 360)`.
    pub fn new(position: Point2, azimuth_deg: f64) -> Self {
        PanelPose {
            position,
            azimuth_deg: normalize_deg(azimuth_deg),
        }
    }

    /// UE–panel distance in meters.
    pub fn distance_to(&self, ue: Point2) -> f64 {
        self.position.distance(ue)
    }
}

/// Positional angle θp ∈ [0°, 360°): bearing of the UE as seen from the
/// panel, measured from the panel's facing direction, clockwise.
pub fn positional_angle_deg(panel: &PanelPose, ue: Point2) -> f64 {
    let bearing_to_ue = bearing_deg(panel.position.x, panel.position.y, ue.x, ue.y);
    normalize_deg(bearing_to_ue - panel.azimuth_deg)
}

/// Mobility angle θm ∈ [0°, 360°): the UE's travel heading measured from the
/// panel's facing direction, clockwise. `ue_heading_deg` is the UE's compass
/// direction of travel.
///
/// θm = 0° ⇒ moving the same way the panel faces (walking away, body
/// blockage for a hand-held phone); θm = 180° ⇒ moving head-on toward the
/// panel's face.
pub fn mobility_angle_deg(panel: &PanelPose, ue_heading_deg: f64) -> f64 {
    normalize_deg(ue_heading_deg - panel.azimuth_deg)
}

/// Coarse position sector relative to the panel face (Fig 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PositionSector {
    /// In front of the panel (θp within ±45° of the normal).
    Front,
    /// To the panel's right (θp ∈ [45°, 135°)).
    Right,
    /// Behind the panel (θp within 180° ± 45°).
    Back,
    /// To the panel's left (θp ∈ [225°, 315°)).
    Left,
}

impl PositionSector {
    /// Classify a positional angle into the four Fig-12 sectors.
    pub fn from_theta_p(theta_p_deg: f64) -> Self {
        let a = normalize_deg(theta_p_deg);
        if !(45.0..315.0).contains(&a) {
            PositionSector::Front
        } else if a < 135.0 {
            PositionSector::Right
        } else if a < 225.0 {
            PositionSector::Back
        } else {
            PositionSector::Left
        }
    }

    /// One-letter label used in Fig 13 ("F", "L", "R", "B").
    pub fn label(self) -> &'static str {
        match self {
            PositionSector::Front => "F",
            PositionSector::Right => "R",
            PositionSector::Back => "B",
            PositionSector::Left => "L",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-9;

    /// Panel at the origin facing north.
    fn north_panel() -> PanelPose {
        PanelPose::new(Point2::new(0.0, 0.0), 0.0)
    }

    #[test]
    fn theta_p_zero_directly_in_front() {
        let p = north_panel();
        let ue = Point2::new(0.0, 50.0); // due north of a north-facing panel
        assert!(positional_angle_deg(&p, ue).abs() < EPS);
    }

    #[test]
    fn theta_p_180_directly_behind() {
        let p = north_panel();
        let ue = Point2::new(0.0, -50.0);
        assert!((positional_angle_deg(&p, ue) - 180.0).abs() < EPS);
    }

    #[test]
    fn theta_p_90_to_the_right() {
        let p = north_panel();
        let ue = Point2::new(50.0, 0.0); // due east
        assert!((positional_angle_deg(&p, ue) - 90.0).abs() < EPS);
    }

    #[test]
    fn theta_p_accounts_for_panel_azimuth() {
        // Panel facing east; UE due east ⇒ directly in front.
        let p = PanelPose::new(Point2::new(0.0, 0.0), 90.0);
        let ue = Point2::new(50.0, 0.0);
        assert!(positional_angle_deg(&p, ue).abs() < EPS);
    }

    #[test]
    fn theta_m_convention_matches_paper() {
        // Paper (Fig 8): θm = 180° when moving head-on toward the panel's
        // face. A north-facing panel is approached head-on by walking due
        // south (heading 180°).
        let p = north_panel();
        assert!((mobility_angle_deg(&p, 180.0) - 180.0).abs() < EPS);
        // θm = 0° when walking the same direction the panel faces (north):
        // the user's body then shadows the UE (§4.4).
        assert!(mobility_angle_deg(&p, 0.0).abs() < EPS);
    }

    #[test]
    fn theta_m_rotates_with_panel_azimuth() {
        // East-facing panel approached head-on by walking west (270°).
        let p = PanelPose::new(Point2::new(0.0, 0.0), 90.0);
        assert!((mobility_angle_deg(&p, 270.0) - 180.0).abs() < EPS);
    }

    #[test]
    fn sector_classification() {
        assert_eq!(PositionSector::from_theta_p(10.0), PositionSector::Front);
        assert_eq!(PositionSector::from_theta_p(350.0), PositionSector::Front);
        assert_eq!(PositionSector::from_theta_p(90.0), PositionSector::Right);
        assert_eq!(PositionSector::from_theta_p(180.0), PositionSector::Back);
        assert_eq!(PositionSector::from_theta_p(270.0), PositionSector::Left);
    }

    #[test]
    fn sector_labels() {
        assert_eq!(PositionSector::Front.label(), "F");
        assert_eq!(PositionSector::Back.label(), "B");
    }

    #[test]
    fn distance_matches_euclidean() {
        let p = PanelPose::new(Point2::new(1.0, 2.0), 45.0);
        assert!((p.distance_to(Point2::new(4.0, 6.0)) - 5.0).abs() < EPS);
    }
}
