//! Polylines with arc-length parameterization.
//!
//! Each measurement pass in the paper walks or drives a fixed trajectory
//! (Table 2: 12 intersection trajectories of 232–274 m, 2 airport
//! trajectories of 324–369 m, the 1300 m loop). The mobility models in
//! `lumos5g-sim` advance a distance-along-path coordinate each second and ask
//! the polyline for the position and heading there.

use crate::angle::bearing_deg;
use crate::local::Point2;

/// An open or closed polyline in the local plane.
#[derive(Debug, Clone)]
pub struct Polyline {
    points: Vec<Point2>,
    /// Cumulative arc length at each vertex; `cum[0] = 0`.
    cum: Vec<f64>,
}

impl Polyline {
    /// Build from at least two vertices. Zero-length segments are permitted
    /// but contribute nothing to the arc length.
    ///
    /// Panics on fewer than 2 points (a construction-time programming error).
    pub fn new(points: Vec<Point2>) -> Self {
        assert!(points.len() >= 2, "polyline needs at least two points");
        let mut cum = Vec::with_capacity(points.len());
        cum.push(0.0);
        for w in points.windows(2) {
            let last = *cum.last().expect("cum starts non-empty");
            cum.push(last + w[0].distance(w[1]));
        }
        Polyline { points, cum }
    }

    /// Closed version of the polyline: appends the first vertex at the end
    /// if not already closed (used for the 1300 m Loop area).
    pub fn closed(mut points: Vec<Point2>) -> Self {
        assert!(points.len() >= 2, "polyline needs at least two points");
        let first = points[0];
        let last = *points.last().expect("non-empty");
        if first.distance(last) > 1e-9 {
            points.push(first);
        }
        Polyline::new(points)
    }

    /// Total arc length in meters.
    pub fn length(&self) -> f64 {
        *self.cum.last().expect("cum non-empty")
    }

    /// The vertices.
    pub fn points(&self) -> &[Point2] {
        &self.points
    }

    /// Reverse direction (e.g. the Airport NB vs SB trajectories).
    pub fn reversed(&self) -> Polyline {
        let mut pts = self.points.clone();
        pts.reverse();
        Polyline::new(pts)
    }

    /// Position at arc length `s`, clamped to `[0, length]`.
    pub fn point_at(&self, s: f64) -> Point2 {
        let s = s.clamp(0.0, self.length());
        let idx = match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite arc length"))
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        if idx + 1 >= self.points.len() {
            return *self.points.last().expect("non-empty");
        }
        let seg_len = self.cum[idx + 1] - self.cum[idx];
        if seg_len <= 0.0 {
            return self.points[idx];
        }
        let t = (s - self.cum[idx]) / seg_len;
        self.points[idx].lerp(self.points[idx + 1], t)
    }

    /// Compass heading of travel at arc length `s` (degrees, 0° = North).
    ///
    /// Uses the containing segment's direction; at the exact end, the last
    /// segment's heading.
    pub fn heading_at(&self, s: f64) -> f64 {
        let s = s.clamp(0.0, self.length());
        let mut idx = match self
            .cum
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite arc length"))
        {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        if idx + 1 >= self.points.len() {
            idx = self.points.len() - 2;
        }
        // Skip zero-length segments.
        let mut a = self.points[idx];
        let mut b = self.points[idx + 1];
        let mut k = idx;
        while a.distance(b) <= 1e-12 && k + 2 < self.points.len() {
            k += 1;
            a = self.points[k];
            b = self.points[k + 1];
        }
        bearing_deg(a.x, a.y, b.x, b.y)
    }

    /// Sample the polyline every `step_m` meters (including both endpoints),
    /// returning `(arc_length, position, heading)` triples.
    pub fn sample_every(&self, step_m: f64) -> Vec<(f64, Point2, f64)> {
        assert!(step_m > 0.0, "sample step must be positive");
        let mut out = Vec::new();
        let mut s = 0.0;
        while s < self.length() {
            out.push((s, self.point_at(s), self.heading_at(s)));
            s += step_m;
        }
        out.push((
            self.length(),
            self.point_at(self.length()),
            self.heading_at(self.length()),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polyline {
        Polyline::new(vec![
            Point2::new(0.0, 0.0),
            Point2::new(0.0, 100.0),
            Point2::new(50.0, 100.0),
        ])
    }

    #[test]
    fn length_sums_segments() {
        assert!((l_shape().length() - 150.0).abs() < 1e-12);
    }

    #[test]
    fn point_at_interpolates() {
        let p = l_shape().point_at(50.0);
        assert!((p.x - 0.0).abs() < 1e-12 && (p.y - 50.0).abs() < 1e-12);
        let p = l_shape().point_at(125.0);
        assert!((p.x - 25.0).abs() < 1e-12 && (p.y - 100.0).abs() < 1e-12);
    }

    #[test]
    fn point_at_clamps() {
        let p = l_shape().point_at(-5.0);
        assert!((p.x).abs() < 1e-12 && (p.y).abs() < 1e-12);
        let p = l_shape().point_at(1e9);
        assert!((p.x - 50.0).abs() < 1e-12 && (p.y - 100.0).abs() < 1e-12);
    }

    #[test]
    fn heading_follows_segments() {
        let pl = l_shape();
        assert!((pl.heading_at(10.0) - 0.0).abs() < 1e-9); // north leg
        assert!((pl.heading_at(120.0) - 90.0).abs() < 1e-9); // east leg
    }

    #[test]
    fn reversed_heading_is_opposite() {
        let pl = l_shape();
        let rev = pl.reversed();
        // First leg of the reversal is the old last leg, walked west.
        assert!((rev.heading_at(10.0) - 270.0).abs() < 1e-9);
        assert!((rev.length() - pl.length()).abs() < 1e-12);
    }

    #[test]
    fn closed_loop_returns_to_start() {
        let pl = Polyline::closed(vec![
            Point2::new(0.0, 0.0),
            Point2::new(100.0, 0.0),
            Point2::new(100.0, 100.0),
            Point2::new(0.0, 100.0),
        ]);
        assert!((pl.length() - 400.0).abs() < 1e-12);
        let end = pl.point_at(pl.length());
        assert!(end.distance(Point2::new(0.0, 0.0)) < 1e-9);
    }

    #[test]
    fn sample_every_covers_endpoints() {
        let samples = l_shape().sample_every(40.0);
        assert!((samples[0].0 - 0.0).abs() < 1e-12);
        assert!((samples.last().unwrap().0 - 150.0).abs() < 1e-12);
        assert!(samples.len() >= 4);
    }
}
