#![warn(missing_docs)]

//! # lumos5g-geo
//!
//! Geospatial substrate for the Lumos5G reproduction.
//!
//! The paper's measurement methodology (§3.1) and feature engineering (§5.1)
//! are geometric at heart:
//!
//! - raw GPS fixes are **pixelized** to Google-Maps pixel coordinates at zoom
//!   level 17 (≈1 m spatial resolution) to denoise locations;
//! - throughput maps aggregate samples on a **2 m × 2 m grid** (Fig 6);
//! - the tower-based feature group `T` is built from the **UE–panel
//!   distance**, the **positional angle θp** and the **mobility angle θm**
//!   (Fig 5), all functions of UE position, UE heading and panel pose.
//!
//! This crate implements those primitives:
//! - [`coords`]: WGS84 ↔ Web-Mercator world/pixel coordinates per zoom level.
//! - [`local`]: a local tangent-plane frame in meters (areas are ≤ ~1.5 km).
//! - [`angle`]: azimuth/bearing arithmetic on the compass circle.
//! - [`panel`]: θp / θm / distance geometry between a UE and a 5G panel.
//! - [`grid`]: fixed-size square binning for throughput maps.
//! - [`trajectory`]: polylines with arc-length parameterization for walks.

pub mod angle;
pub mod coords;
pub mod grid;
pub mod local;
pub mod panel;
pub mod trajectory;

pub use angle::{bearing_deg, fold_angle_deg, normalize_deg, signed_delta_deg};
pub use coords::{LatLon, PixelCoord, ZOOM_PAPER};
pub use grid::{GridCell, GridIndex};
pub use local::{LocalFrame, Point2};
pub use panel::{mobility_angle_deg, positional_angle_deg, PanelPose, PositionSector};
pub use trajectory::Polyline;
