//! Property-based tests of the geospatial substrate.

use lumos5g_geo::{
    bearing_deg, fold_angle_deg, normalize_deg, signed_delta_deg, GridIndex, LatLon, LocalFrame,
    Point2, Polyline,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn signed_delta_is_antisymmetric(a in 0.0f64..360.0, b in 0.0f64..360.0) {
        let d1 = signed_delta_deg(a, b);
        let d2 = signed_delta_deg(b, a);
        // d1 = −d2, except the ±180 tie which both map to +180.
        if d1.abs() < 179.999 {
            prop_assert!((d1 + d2).abs() < 1e-9);
        }
    }

    #[test]
    fn delta_composition_consistent(a in 0.0f64..360.0, b in 0.0f64..360.0) {
        let d = signed_delta_deg(a, b);
        prop_assert!((normalize_deg(a + d) - normalize_deg(b)).abs() < 1e-9);
    }

    #[test]
    fn bearing_reverse_differs_by_180(
        x1 in -1e3f64..1e3, y1 in -1e3f64..1e3,
        x2 in -1e3f64..1e3, y2 in -1e3f64..1e3,
    ) {
        prop_assume!((x1 - x2).abs() > 1e-6 || (y1 - y2).abs() > 1e-6);
        let fwd = bearing_deg(x1, y1, x2, y2);
        let back = bearing_deg(x2, y2, x1, y1);
        prop_assert!((fold_angle_deg(fwd - back) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn mercator_world_coords_in_range(lat in -85.0f64..85.0, lon in -180.0f64..180.0) {
        let (x, y) = LatLon::new(lat, lon).to_world();
        prop_assert!((0.0..=256.0).contains(&x));
        prop_assert!((0.0..=256.0).contains(&y));
    }

    #[test]
    fn pixelization_is_idempotent(lat in 40.0f64..50.0, lon in -100.0f64..-80.0) {
        let p = LatLon::new(lat, lon);
        let px = p.to_pixel(17);
        let px2 = px.center_latlon().to_pixel(17);
        prop_assert_eq!(px, px2);
    }

    #[test]
    fn polyline_point_at_stays_near_vertex_hull(
        pts in prop::collection::vec((-500.0f64..500.0, -500.0f64..500.0), 2..10),
        s in 0.0f64..5000.0,
    ) {
        let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let pl = Polyline::new(points.clone());
        let p = pl.point_at(s);
        let min_x = pts.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let max_x = pts.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        let min_y = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let max_y = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p.x >= min_x - 1e-9 && p.x <= max_x + 1e-9);
        prop_assert!(p.y >= min_y - 1e-9 && p.y <= max_y + 1e-9);
    }

    #[test]
    fn polyline_length_at_least_endpoint_distance(
        pts in prop::collection::vec((-500.0f64..500.0, -500.0f64..500.0), 2..10),
    ) {
        let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let direct = points[0].distance(*points.last().unwrap());
        let pl = Polyline::new(points);
        prop_assert!(pl.length() + 1e-9 >= direct);
    }

    #[test]
    fn grid_neighbors_are_adjacent(
        x in -1e4f64..1e4, y in -1e4f64..1e4,
        dx in -1.9f64..1.9, dy in -1.9f64..1.9,
    ) {
        let g = GridIndex::new(2.0);
        let c1 = g.cell_of(Point2::new(x, y));
        let c2 = g.cell_of(Point2::new(x + dx, y + dy));
        prop_assert!((c1.i - c2.i).abs() <= 1 && (c1.j - c2.j).abs() <= 1);
    }

    #[test]
    fn local_frame_distance_matches_geodesic_scale(
        lat in 44.0f64..46.0,
        dx in -1000.0f64..1000.0,
        dy in -1000.0f64..1000.0,
    ) {
        // Converting two nearby local points through WGS84 and back must
        // preserve their separation to sub-millimeter.
        let frame = LocalFrame::new(LatLon::new(lat, -93.0));
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(dx, dy);
        let a2 = frame.to_local(frame.to_latlon(a));
        let b2 = frame.to_local(frame.to_latlon(b));
        prop_assert!((a2.distance(b2) - a.distance(b)).abs() < 1e-3);
    }
}
