//! Property-based tests of the ML substrate.

use lumos5g_ml::metrics::{mae, rmse, weighted_f1, ClassificationReport};
use lumos5g_ml::tree::{RegressionTree, TreeConfig};
use lumos5g_ml::{GbdtConfig, GbdtRegressor, HarmonicMeanPredictor, KnnRegressor};
use proptest::prelude::*;

/// Two equal-length f64 vectors.
fn paired_vecs() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1usize..50).prop_flat_map(|n| {
        (
            prop::collection::vec(-1e4f64..1e4, n),
            prop::collection::vec(-1e4f64..1e4, n),
        )
    })
}

/// Two equal-length label vectors over 3 classes.
fn paired_labels() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (2usize..60).prop_flat_map(|n| {
        (
            prop::collection::vec(0usize..3, n),
            prop::collection::vec(0usize..3, n),
        )
    })
}

proptest! {
    #[test]
    fn rmse_dominates_mae((t, p) in paired_vecs()) {
        prop_assert!(rmse(&t, &p) + 1e-9 >= mae(&t, &p));
    }

    #[test]
    fn f1_is_bounded((labels, preds) in paired_labels()) {
        let f1 = weighted_f1(&labels, &preds, 3);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&f1));
    }

    #[test]
    fn accuracy_one_iff_identical(labels in prop::collection::vec(0usize..3, 2..40)) {
        let r = ClassificationReport::from_labels(&labels, &labels, 3);
        prop_assert!((r.accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tree_prediction_within_target_range(
        ys in prop::collection::vec(-1e3f64..1e3, 4..60),
        probe in -2e3f64..2e3,
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let t = RegressionTree::fit(&xs, &ys, &TreeConfig::default());
        let p = t.predict_row(&[probe]);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Leaves are means of target subsets → predictions cannot leave the
        // target hull.
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn knn_prediction_within_target_range(
        ys in prop::collection::vec(-1e3f64..1e3, 3..40),
        probe in -100.0f64..100.0,
        k in 1usize..5,
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len()).map(|i| vec![i as f64]).collect();
        let m = KnnRegressor::fit(&xs, &ys, k);
        let p = m.predict_row(&[probe]);
        let lo = ys.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
    }

    #[test]
    fn harmonic_mean_below_arithmetic(
        vals in prop::collection::vec(0.1f64..1e4, 1..20),
    ) {
        let mut h = HarmonicMeanPredictor::new(vals.len());
        for &v in &vals {
            h.observe(v);
        }
        let hm = h.predict().unwrap();
        let am = vals.iter().sum::<f64>() / vals.len() as f64;
        prop_assert!(hm <= am + 1e-9, "HM {hm} > AM {am}");
        prop_assert!(hm > 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn gbdt_in_sample_error_shrinks_with_rounds(
        seed_vals in prop::collection::vec(-500.0f64..500.0, 30..60),
    ) {
        let xs: Vec<Vec<f64>> = (0..seed_vals.len()).map(|i| vec![i as f64]).collect();
        let small = GbdtConfig { n_estimators: 5, max_depth: 3, learning_rate: 0.3, min_samples_leaf: 2, subsample: 1.0, seed: 0 };
        let large = GbdtConfig { n_estimators: 80, ..small };
        let m_small = GbdtRegressor::fit(&xs, &seed_vals, &small);
        let m_large = GbdtRegressor::fit(&xs, &seed_vals, &large);
        let e_small = mae(&seed_vals, &m_small.predict(&xs));
        let e_large = mae(&seed_vals, &m_large.predict(&xs));
        prop_assert!(e_large <= e_small + 1e-6, "more rounds should not hurt training error: {e_small} -> {e_large}");
    }

    #[test]
    fn gbdt_importance_is_distribution(
        ys in prop::collection::vec(-500.0f64..500.0, 20..50),
    ) {
        let xs: Vec<Vec<f64>> = (0..ys.len())
            .map(|i| vec![i as f64, (i * 7 % 13) as f64])
            .collect();
        let cfg = GbdtConfig { n_estimators: 20, max_depth: 3, learning_rate: 0.2, min_samples_leaf: 2, subsample: 1.0, seed: 0 };
        let m = GbdtRegressor::fit(&xs, &ys, &cfg);
        let imp = m.feature_importance();
        prop_assert!(imp.iter().all(|&v| v >= 0.0));
        let total: f64 = imp.iter().sum();
        prop_assert!(total == 0.0 || (total - 1.0).abs() < 1e-9);
    }
}
