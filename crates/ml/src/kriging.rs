//! Ordinary Kriging (OK) — geospatial interpolation baseline.
//!
//! Chakraborty et al. \[26\] build spectrum maps this way; the paper runs OK
//! on the location-only feature group (it is *only* defined on coordinates,
//! hence the "NA" cells in Table 9) and shows it performs worst on 5G —
//! mmWave's obstruction-driven discontinuities break the spatial-correlation
//! assumption.
//!
//! Implementation: empirical semivariogram on binned lag distances, an
//! exponential model `γ(h) = nugget + psill·(1 − e^{−h/range})` fitted by
//! coarse grid search, and **local** ordinary kriging (the standard
//! practice) solving the `(k+1)×(k+1)` system over the `k` nearest
//! neighbours of each query point.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::linalg::Matrix;

/// Fitted exponential variogram parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variogram {
    /// Nugget (discontinuity at lag 0).
    pub nugget: f64,
    /// Partial sill (asymptotic variance above the nugget).
    pub psill: f64,
    /// Effective range parameter, same units as coordinates.
    pub range: f64,
}

impl Variogram {
    /// Model value at lag `h`.
    pub fn gamma(&self, h: f64) -> f64 {
        if h <= 0.0 {
            return 0.0;
        }
        self.nugget + self.psill * (1.0 - (-h / self.range).exp())
    }
}

/// Ordinary Kriging interpolator over 2-D sample points.
#[derive(Debug, Clone)]
pub struct OrdinaryKriging {
    points: Vec<[f64; 2]>,
    values: Vec<f64>,
    vario: Variogram,
    neighbors: usize,
    /// Spatial index for the local neighbourhood search.
    tree: crate::kdtree::KdTree,
}

impl OrdinaryKriging {
    /// Fit the variogram and store samples. `neighbors` points are used per
    /// prediction (16–32 is customary).
    pub fn fit(points: &[[f64; 2]], values: &[f64], neighbors: usize) -> Self {
        assert_eq!(points.len(), values.len(), "points/values length mismatch");
        assert!(points.len() >= 3, "kriging needs at least 3 samples");
        assert!(neighbors >= 2, "need at least 2 neighbors");
        let vario = fit_variogram(points, values);
        let tree = crate::kdtree::KdTree::build(points.iter().map(|p| p.to_vec()).collect());
        OrdinaryKriging {
            points: points.to_vec(),
            values: values.to_vec(),
            vario,
            neighbors: neighbors.min(points.len()),
            tree,
        }
    }

    /// The fitted variogram.
    pub fn variogram(&self) -> Variogram {
        self.vario
    }

    /// Serialize the fitted interpolator: variogram parameters, the sample
    /// matrix, and the neighbourhood size. The k-d tree is rebuilt on
    /// decode from the stored points (the same deterministic build `fit`
    /// runs), so a restored model predicts bit-identically.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.vario.nugget);
        w.put_f64(self.vario.psill);
        w.put_f64(self.vario.range);
        w.put_len(self.neighbors);
        w.put_len(self.points.len());
        for p in &self.points {
            w.put_f64(p[0]);
            w.put_f64(p[1]);
        }
        w.put_f64s(&self.values);
    }

    /// Deserialize a model written by [`Self::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let vario = Variogram {
            nugget: r.f64()?,
            psill: r.f64()?,
            range: r.f64()?,
        };
        let neighbors = r.len()?;
        let n = r.len()?;
        if r.remaining() < n.saturating_mul(16) {
            return Err(CodecError::UnexpectedEof {
                needed: n.saturating_mul(16),
                remaining: r.remaining(),
            });
        }
        let mut points = Vec::with_capacity(n);
        for _ in 0..n {
            points.push([r.f64()?, r.f64()?]);
        }
        let values = r.f64s()?;
        if values.len() != points.len() {
            return Err(CodecError::Invalid(format!(
                "kriging sample matrix is ragged: {} points, {} values",
                points.len(),
                values.len()
            )));
        }
        if points.len() < 3 {
            return Err(CodecError::Invalid(
                "kriging needs at least 3 stored samples".into(),
            ));
        }
        if neighbors < 2 || neighbors > points.len() {
            return Err(CodecError::Invalid(format!(
                "kriging neighbourhood {neighbors} out of range for {} samples",
                points.len()
            )));
        }
        let tree = crate::kdtree::KdTree::build(points.iter().map(|p| p.to_vec()).collect());
        Ok(OrdinaryKriging {
            points,
            values,
            vario,
            neighbors,
            tree,
        })
    }

    /// Predict the field at `(x, y)`.
    pub fn predict(&self, x: f64, y: f64) -> f64 {
        // k nearest samples via the spatial index.
        let nn = self.tree.knn(&[x, y], self.neighbors);

        // Exact hit: return the sample (kriging is an exact interpolator).
        if let Some(&i) = nn.iter().find(|&&i| {
            let p = self.points[i];
            (p[0] - x).powi(2) + (p[1] - y).powi(2) < 1e-18
        }) {
            return self.values[i];
        }

        // OK system: [Γ 1; 1ᵀ 0] [w; μ] = [γ; 1]
        let n = nn.len();
        let a = Matrix::from_fn(n + 1, n + 1, |r, c| {
            if r < n && c < n {
                let pi = self.points[nn[r]];
                let pj = self.points[nn[c]];
                let h = ((pi[0] - pj[0]).powi(2) + (pi[1] - pj[1]).powi(2)).sqrt();
                self.vario.gamma(h)
            } else if r == n && c == n {
                0.0
            } else {
                1.0
            }
        });
        let mut b = Vec::with_capacity(n + 1);
        for &i in &nn {
            let p = self.points[i];
            let h = ((p[0] - x).powi(2) + (p[1] - y).powi(2)).sqrt();
            b.push(self.vario.gamma(h));
        }
        b.push(1.0);

        match a.solve(&b) {
            Some(w) => nn.iter().zip(&w).map(|(&i, &wi)| wi * self.values[i]).sum(),
            // Singular system (e.g. coincident points): fall back to the
            // inverse-distance-free mean of the neighbours.
            None => nn.iter().map(|&i| self.values[i]).sum::<f64>() / n as f64,
        }
    }
}

/// Fit an exponential variogram to the empirical semivariogram by grid
/// search over (nugget, psill, range).
fn fit_variogram(points: &[[f64; 2]], values: &[f64]) -> Variogram {
    // Empirical semivariogram over ~12 lag bins, using a bounded random-ish
    // subsample of pairs for large n (deterministic stride).
    let n = points.len();
    let max_pairs = 200_000usize;
    let stride = ((n * (n - 1) / 2) / max_pairs).max(1);

    let mut max_d = 0.0f64;
    let mut pair_count = 0usize;
    let mut pairs: Vec<(f64, f64)> = Vec::new(); // (lag, half squared diff)
    'outer: for i in 0..n {
        for j in (i + 1)..n {
            pair_count += 1;
            if !pair_count.is_multiple_of(stride) {
                continue;
            }
            let dx = points[i][0] - points[j][0];
            let dy = points[i][1] - points[j][1];
            let d = (dx * dx + dy * dy).sqrt();
            let g = 0.5 * (values[i] - values[j]).powi(2);
            max_d = max_d.max(d);
            pairs.push((d, g));
            if pairs.len() > 2 * max_pairs {
                break 'outer;
            }
        }
    }
    if pairs.is_empty() || max_d == 0.0 {
        return Variogram {
            nugget: 0.0,
            psill: 1.0,
            range: 1.0,
        };
    }

    let bins = 12usize;
    // Use half the max distance (long lags are noisy and unbalanced).
    let cut = max_d * 0.5;
    let mut sums = vec![0.0; bins];
    let mut counts = vec![0usize; bins];
    for &(d, g) in &pairs {
        if d <= 0.0 || d > cut {
            continue;
        }
        let b = ((d / cut) * bins as f64) as usize;
        let b = b.min(bins - 1);
        sums[b] += g;
        counts[b] += 1;
    }
    let emp: Vec<(f64, f64)> = (0..bins)
        .filter(|&b| counts[b] > 0)
        .map(|b| {
            let mid = cut * (b as f64 + 0.5) / bins as f64;
            (mid, sums[b] / counts[b] as f64)
        })
        .collect();
    if emp.is_empty() {
        return Variogram {
            nugget: 0.0,
            psill: 1.0,
            range: cut.max(1.0),
        };
    }

    let sill_guess = emp.iter().map(|&(_, g)| g).fold(0.0, f64::max).max(1e-12);
    let mut best = Variogram {
        nugget: 0.0,
        psill: sill_guess,
        range: cut / 3.0,
    };
    let mut best_err = f64::INFINITY;
    for nug_frac in [0.0, 0.1, 0.25, 0.5] {
        for sill_frac in [0.5, 0.75, 1.0, 1.25] {
            for range_frac in [0.05, 0.1, 0.2, 0.35, 0.5, 0.8] {
                let v = Variogram {
                    nugget: nug_frac * sill_guess,
                    psill: (sill_frac * sill_guess - nug_frac * sill_guess).max(1e-9),
                    range: (range_frac * cut).max(1e-9),
                };
                let err: f64 = emp.iter().map(|&(h, g)| (v.gamma(h) - g).powi(2)).sum();
                if err < best_err {
                    best_err = err;
                    best = v;
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Smooth synthetic field with spatial correlation.
    fn field(x: f64, y: f64) -> f64 {
        (x / 20.0).sin() * 10.0 + (y / 15.0).cos() * 8.0 + 50.0
    }

    fn grid_samples() -> (Vec<[f64; 2]>, Vec<f64>) {
        let mut pts = Vec::new();
        let mut vals = Vec::new();
        for i in 0..15 {
            for j in 0..15 {
                let (x, y) = (i as f64 * 7.0, j as f64 * 7.0);
                pts.push([x, y]);
                vals.push(field(x, y));
            }
        }
        (pts, vals)
    }

    #[test]
    fn exact_interpolation_at_samples() {
        let (pts, vals) = grid_samples();
        let ok = OrdinaryKriging::fit(&pts, &vals, 16);
        for k in [0, 37, 111, 224] {
            let p = ok.predict(pts[k][0], pts[k][1]);
            assert!(
                (p - vals[k]).abs() < 1e-9,
                "at sample {k}: {p} vs {}",
                vals[k]
            );
        }
    }

    #[test]
    fn interpolates_smooth_field_well() {
        let (pts, vals) = grid_samples();
        let ok = OrdinaryKriging::fit(&pts, &vals, 16);
        let mut err = 0.0;
        let mut cnt = 0;
        for i in 0..14 {
            for j in 0..14 {
                let (x, y) = (i as f64 * 7.0 + 3.5, j as f64 * 7.0 + 3.5);
                err += (ok.predict(x, y) - field(x, y)).abs();
                cnt += 1;
            }
        }
        let mae = err / cnt as f64;
        assert!(mae < 1.0, "mae = {mae}");
    }

    #[test]
    fn discontinuous_field_interpolates_poorly() {
        // A hard step (like an mmWave obstruction shadow) defeats kriging at
        // the boundary — the paper's point about 5G.
        let mut pts = Vec::new();
        let mut vals = Vec::new();
        for i in 0..20 {
            for j in 0..5 {
                let (x, y) = (i as f64 * 5.0, j as f64 * 5.0);
                pts.push([x, y]);
                vals.push(if x < 50.0 { 1800.0 } else { 60.0 });
            }
        }
        let ok = OrdinaryKriging::fit(&pts, &vals, 16);
        // Query right at the cliff between samples at x=45 and x=50.
        let p = ok.predict(47.5, 10.0);
        let err_low = (p - 60.0).abs();
        let err_high = (p - 1800.0).abs();
        // Whatever it answers, it is far from one of the sides.
        assert!(err_low.min(err_high) > 200.0, "p = {p}");
    }

    #[test]
    fn variogram_gamma_is_monotone() {
        let v = Variogram {
            nugget: 0.5,
            psill: 2.0,
            range: 10.0,
        };
        let mut last = -1.0;
        for h in [0.1, 1.0, 5.0, 20.0, 100.0] {
            let g = v.gamma(h);
            assert!(g > last);
            last = g;
        }
        assert_eq!(v.gamma(0.0), 0.0);
    }

    #[test]
    fn codec_round_trip_is_bit_identical() {
        let (pts, vals) = grid_samples();
        let ok = OrdinaryKriging::fit(&pts, &vals, 16);
        let mut w = ByteWriter::new();
        ok.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let loaded = OrdinaryKriging::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(loaded.variogram(), ok.variogram());
        for i in 0..30 {
            let (x, y) = (i as f64 * 3.3 + 1.7, i as f64 * 2.9 + 0.3);
            assert_eq!(loaded.predict(x, y).to_bits(), ok.predict(x, y).to_bits());
        }
        // Every strict prefix fails cleanly.
        for cut in (0..bytes.len()).step_by(11).chain([bytes.len() - 1]) {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(OrdinaryKriging::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn fitted_range_reflects_field_scale() {
        let (pts, vals) = grid_samples();
        let ok = OrdinaryKriging::fit(&pts, &vals, 16);
        let v = ok.variogram();
        assert!(v.range > 0.0 && v.psill > 0.0);
    }
}
