//! Gradient-boosted decision trees (GDBT) — the paper's light-weight,
//! interpretable model family (§5.2).
//!
//! - [`GbdtRegressor`]: squared-loss boosting; each round fits a
//!   [`RegressionTree`] to the residuals via its (g, h) interface.
//! - [`GbdtClassifier`]: multiclass softmax boosting, one tree per class per
//!   round with Newton leaves (`−Σg/Σh`, `h = p(1−p)`).
//!
//! Both expose gain-based **global feature importance**, normalized to sum
//! to 100% like Fig 22.
//!
//! The paper's hyperparameters (8000 estimators, depth 8, learning rate
//! 0.01) are available via [`GbdtConfig::paper_scale`]; the default is a
//! laptop-scale equivalent (same bias/variance trade-off at ~25× less
//! compute: fewer, slightly stronger steps).

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::tree::{RegressionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Boosting hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Depth bound of each tree.
    pub max_depth: usize,
    /// Shrinkage.
    pub learning_rate: f64,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Row subsample fraction per tree (stochastic gradient boosting).
    pub subsample: f64,
    /// RNG seed for subsampling.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_estimators: 300,
            max_depth: 6,
            learning_rate: 0.1,
            min_samples_leaf: 5,
            subsample: 0.8,
            seed: 0,
        }
    }
}

impl GbdtConfig {
    /// The paper's §6.1 grid-search winner: 8000 estimators, depth 8,
    /// learning rate 0.01.
    pub fn paper_scale() -> Self {
        GbdtConfig {
            n_estimators: 8000,
            max_depth: 8,
            learning_rate: 0.01,
            min_samples_leaf: 5,
            subsample: 0.8,
            seed: 0,
        }
    }

    fn tree_config(&self) -> TreeConfig {
        TreeConfig {
            max_depth: self.max_depth,
            min_samples_leaf: self.min_samples_leaf,
            min_samples_split: self.min_samples_leaf * 2,
            max_features: None,
        }
    }
}

fn subsample_idx(n: usize, frac: f64, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    if frac >= 1.0 {
        return idx;
    }
    idx.shuffle(rng);
    idx.truncate(((n as f64) * frac).max(1.0) as usize);
    idx
}

/// Mid-boosting training snapshot — everything needed to resume a killed
/// run and converge **bit-identically** to the uninterrupted one.
///
/// `StdRng` is not serializable, so the checkpoint does not store raw RNG
/// state; instead [`GbdtRegressor::fit_resumable`] fast-forwards a fresh
/// seeded RNG by replaying the exact `subsample_idx` draws the completed
/// rounds consumed, which is deterministic and exact.
#[derive(Debug, Clone)]
pub struct GbdtCheckpoint {
    /// The configuration the run was started with; resume rejects any
    /// mismatch (a different config would silently diverge).
    pub cfg: GbdtConfig,
    /// Training-set size the run was started on (resume sanity check).
    pub n_rows: usize,
    /// Boosting rounds completed so far.
    pub rounds_done: usize,
    /// Base prediction (target mean).
    pub base: f64,
    /// Trees fitted so far, in boosting order.
    pub trees: Vec<RegressionTree>,
}

impl GbdtCheckpoint {
    /// Serialize the full training state.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.cfg.n_estimators);
        w.put_len(self.cfg.max_depth);
        w.put_f64(self.cfg.learning_rate);
        w.put_len(self.cfg.min_samples_leaf);
        w.put_f64(self.cfg.subsample);
        w.put_u64(self.cfg.seed);
        w.put_len(self.n_rows);
        w.put_len(self.rounds_done);
        w.put_f64(self.base);
        w.put_len(self.trees.len());
        for t in &self.trees {
            t.encode(w);
        }
    }

    /// Inverse of [`Self::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let cfg = GbdtConfig {
            n_estimators: r.len()?,
            max_depth: r.len()?,
            learning_rate: r.f64()?,
            min_samples_leaf: r.len()?,
            subsample: r.f64()?,
            seed: r.u64()?,
        };
        let n_rows = r.len()?;
        let rounds_done = r.len()?;
        let base = r.f64()?;
        let n_trees = r.len()?;
        if n_trees != rounds_done {
            return Err(CodecError::Invalid(format!(
                "checkpoint claims {rounds_done} rounds but stores {n_trees} trees"
            )));
        }
        let mut trees = Vec::with_capacity(n_trees.min(r.remaining()));
        for _ in 0..n_trees {
            trees.push(RegressionTree::decode(r)?);
        }
        Ok(GbdtCheckpoint {
            cfg,
            n_rows,
            rounds_done,
            base,
            trees,
        })
    }
}

/// Squared-loss gradient boosting machine.
#[derive(Debug, Clone)]
pub struct GbdtRegressor {
    base: f64,
    trees: Vec<RegressionTree>,
    lr: f64,
    n_features: usize,
}

impl GbdtRegressor {
    /// Fit on `(xs, ys)`.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], cfg: &GbdtConfig) -> Self {
        // Delegating keeps the resumable path bit-identical by construction:
        // there is only one boosting loop.
        Self::fit_resumable(xs, ys, cfg, None, 0, |_| {})
    }

    /// [`Self::fit`], with crash recovery: every `checkpoint_every` rounds
    /// (0 = never) the full training state is handed to `on_checkpoint`
    /// (which typically persists it), and a run restarted from a saved
    /// [`GbdtCheckpoint`] continues where it left off and produces a model
    /// bit-identical to an uninterrupted run.
    ///
    /// Resume replays two things exactly: the RNG stream (by re-running the
    /// completed rounds' `subsample_idx` draws on a fresh seeded RNG) and
    /// the incremental prediction accumulator (by re-applying each stored
    /// tree's contribution in boosting order, the same `pred[i] += lr·t(x)`
    /// float association the live loop uses — *not* `predict_row`, whose
    /// sum groups differently and would drift by an ULP).
    ///
    /// Panics if the checkpoint disagrees with `cfg` or the data size —
    /// resuming against different inputs would silently diverge.
    pub fn fit_resumable(
        xs: &[Vec<f64>],
        ys: &[f64],
        cfg: &GbdtConfig,
        resume: Option<GbdtCheckpoint>,
        checkpoint_every: usize,
        mut on_checkpoint: impl FnMut(&GbdtCheckpoint),
    ) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "cannot fit GBDT on empty data");
        let n = xs.len();
        let base = ys.iter().sum::<f64>() / n as f64;
        let mut pred = vec![base; n];
        let tree_cfg = cfg.tree_config();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let (mut trees, start_round) = match resume {
            None => (Vec::with_capacity(cfg.n_estimators), 0),
            Some(ck) => {
                assert_eq!(ck.cfg, *cfg, "checkpoint config mismatch on resume");
                assert_eq!(ck.n_rows, n, "checkpoint row count mismatch on resume");
                assert_eq!(
                    ck.base.to_bits(),
                    base.to_bits(),
                    "checkpoint base mismatch on resume"
                );
                // Fast-forward the RNG and the prediction accumulator
                // through the completed rounds.
                for tree in &ck.trees {
                    let _ = subsample_idx(n, cfg.subsample, &mut rng);
                    for i in 0..n {
                        pred[i] += cfg.learning_rate * tree.predict_row(&xs[i]);
                    }
                }
                (ck.trees, ck.rounds_done)
            }
        };

        for round in start_round..cfg.n_estimators {
            let rows = subsample_idx(n, cfg.subsample, &mut rng);
            // Squared loss: g = pred − y, h = 1 ⇒ leaf = mean residual.
            let sub_xs: Vec<Vec<f64>> = rows.iter().map(|&i| xs[i].clone()).collect();
            let g: Vec<f64> = rows.iter().map(|&i| pred[i] - ys[i]).collect();
            let h = vec![1.0; rows.len()];
            let tree = RegressionTree::fit_gradients(&sub_xs, &g, &h, &tree_cfg, None);
            for i in 0..n {
                pred[i] += cfg.learning_rate * tree.predict_row(&xs[i]);
            }
            trees.push(tree);
            let done = round + 1;
            if checkpoint_every > 0
                && done.is_multiple_of(checkpoint_every)
                && done < cfg.n_estimators
            {
                on_checkpoint(&GbdtCheckpoint {
                    cfg: *cfg,
                    n_rows: n,
                    rounds_done: done,
                    base,
                    trees: trees.clone(),
                });
            }
        }
        GbdtRegressor {
            base,
            trees,
            lr: cfg.learning_rate,
            n_features: xs[0].len(),
        }
    }

    /// Fit with early stopping: after each round the model is scored on
    /// `(val_xs, val_ys)` (RMSE); training stops when the validation score
    /// has not improved for `patience` rounds, and the model is truncated
    /// to its best round. Returns the model and the per-round validation
    /// RMSE curve.
    pub fn fit_with_validation(
        xs: &[Vec<f64>],
        ys: &[f64],
        val_xs: &[Vec<f64>],
        val_ys: &[f64],
        cfg: &GbdtConfig,
        patience: usize,
    ) -> (Self, Vec<f64>) {
        assert_eq!(val_xs.len(), val_ys.len(), "validation length mismatch");
        assert!(!val_xs.is_empty(), "need validation data");
        assert!(patience >= 1, "patience must be at least 1");
        let mut model = GbdtRegressor::fit(
            xs,
            ys,
            &GbdtConfig {
                n_estimators: 0,
                ..*cfg
            },
        );
        // Incremental boosting with monitoring.
        let n = xs.len();
        let mut pred = vec![model.base; n];
        let mut val_pred = vec![model.base; val_xs.len()];
        let tree_cfg = cfg.tree_config();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut curve = Vec::new();
        let mut best_rmse = f64::INFINITY;
        let mut best_round = 0usize;
        for round in 0..cfg.n_estimators {
            let rows = subsample_idx(n, cfg.subsample, &mut rng);
            let sub_xs: Vec<Vec<f64>> = rows.iter().map(|&i| xs[i].clone()).collect();
            let g: Vec<f64> = rows.iter().map(|&i| pred[i] - ys[i]).collect();
            let h = vec![1.0; rows.len()];
            let tree = RegressionTree::fit_gradients(&sub_xs, &g, &h, &tree_cfg, None);
            for i in 0..n {
                pred[i] += cfg.learning_rate * tree.predict_row(&xs[i]);
            }
            for (vp, vx) in val_pred.iter_mut().zip(val_xs) {
                *vp += cfg.learning_rate * tree.predict_row(vx);
            }
            model.trees.push(tree);

            let rmse = (val_pred
                .iter()
                .zip(val_ys)
                .map(|(p, y)| (p - y) * (p - y))
                .sum::<f64>()
                / val_ys.len() as f64)
                .sqrt();
            curve.push(rmse);
            if rmse < best_rmse - 1e-9 {
                best_rmse = rmse;
                best_round = round;
            } else if round - best_round >= patience {
                break;
            }
        }
        model.trees.truncate(best_round + 1);
        (model, curve)
    }

    /// Predict one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.base + self.lr * self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>()
    }

    /// Prediction after only the first `k` boosting rounds (staged
    /// prediction, for learning-curve analysis).
    pub fn predict_row_staged(&self, row: &[f64], k: usize) -> f64 {
        self.base
            + self.lr
                * self
                    .trees
                    .iter()
                    .take(k)
                    .map(|t| t.predict_row(row))
                    .sum::<f64>()
    }

    /// Predict many rows.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Gain-based global feature importance, normalized to sum to 1.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for t in &self.trees {
            t.add_importance(&mut imp);
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Number of fitted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Serialize: base, learning rate, then each tree as a flat node array.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.base);
        w.put_f64(self.lr);
        w.put_len(self.n_features);
        w.put_len(self.trees.len());
        for t in &self.trees {
            t.encode(w);
        }
    }

    /// Inverse of [`Self::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let base = r.f64()?;
        let lr = r.f64()?;
        let n_features = r.len()?;
        let n_trees = r.len()?;
        let mut trees = Vec::with_capacity(n_trees.min(r.remaining()));
        for _ in 0..n_trees {
            trees.push(RegressionTree::decode(r)?);
        }
        Ok(GbdtRegressor {
            base,
            trees,
            lr,
            n_features,
        })
    }
}

/// Multiclass softmax gradient boosting.
#[derive(Debug, Clone)]
pub struct GbdtClassifier {
    /// `trees[round][class]`.
    trees: Vec<Vec<RegressionTree>>,
    priors: Vec<f64>,
    lr: f64,
    n_classes: usize,
    n_features: usize,
}

fn softmax(scores: &[f64]) -> Vec<f64> {
    let m = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|s| (s - m).exp()).collect();
    let z: f64 = exps.iter().sum();
    exps.iter().map(|e| e / z).collect()
}

impl GbdtClassifier {
    /// Fit on labels in `0..n_classes`.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize], n_classes: usize, cfg: &GbdtConfig) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "cannot fit GBDT on empty data");
        assert!(n_classes >= 2, "need at least two classes");
        assert!(ys.iter().all(|&y| y < n_classes), "label out of range");
        let n = xs.len();
        // Log-prior initialization.
        let mut counts = vec![0.0f64; n_classes];
        for &y in ys {
            counts[y] += 1.0;
        }
        let priors: Vec<f64> = counts
            .iter()
            .map(|c| ((c + 1.0) / (n as f64 + n_classes as f64)).ln())
            .collect();

        let mut scores: Vec<Vec<f64>> = (0..n).map(|_| priors.clone()).collect();
        let tree_cfg = cfg.tree_config();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut all_trees = Vec::with_capacity(cfg.n_estimators);

        for _ in 0..cfg.n_estimators {
            let rows = subsample_idx(n, cfg.subsample, &mut rng);
            let sub_xs: Vec<Vec<f64>> = rows.iter().map(|&i| xs[i].clone()).collect();
            let probs: Vec<Vec<f64>> = rows.iter().map(|&i| softmax(&scores[i])).collect();
            let mut round = Vec::with_capacity(n_classes);
            for k in 0..n_classes {
                let g: Vec<f64> = rows
                    .iter()
                    .zip(&probs)
                    .map(|(&i, p)| p[k] - if ys[i] == k { 1.0 } else { 0.0 })
                    .collect();
                let h: Vec<f64> = probs
                    .iter()
                    .map(|p| (p[k] * (1.0 - p[k])).max(1e-6))
                    .collect();
                let tree = RegressionTree::fit_gradients(&sub_xs, &g, &h, &tree_cfg, None);
                for i in 0..n {
                    scores[i][k] += cfg.learning_rate * tree.predict_row(&xs[i]);
                }
                round.push(tree);
            }
            all_trees.push(round);
        }
        GbdtClassifier {
            trees: all_trees,
            priors,
            lr: cfg.learning_rate,
            n_classes,
            n_features: xs[0].len(),
        }
    }

    /// Raw class scores for one row.
    fn scores_row(&self, row: &[f64]) -> Vec<f64> {
        let mut s = self.priors.clone();
        for round in &self.trees {
            for (k, tree) in round.iter().enumerate() {
                s[k] += self.lr * tree.predict_row(row);
            }
        }
        s
    }

    /// Class probabilities for one row.
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        softmax(&self.scores_row(row))
    }

    /// Predicted class for one row.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        let s = self.scores_row(row);
        s.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .expect("at least one class")
    }

    /// Predicted classes for many rows.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Gain-based global feature importance, normalized to sum to 1.
    pub fn feature_importance(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for round in &self.trees {
            for t in round {
                t.add_importance(&mut imp);
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Serialize: priors, learning rate, then `rounds × classes` trees.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_f64s(&self.priors);
        w.put_f64(self.lr);
        w.put_len(self.n_classes);
        w.put_len(self.n_features);
        w.put_len(self.trees.len());
        for round in &self.trees {
            for t in round {
                t.encode(w);
            }
        }
    }

    /// Inverse of [`Self::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let priors = r.f64s()?;
        let lr = r.f64()?;
        let n_classes = r.len()?;
        let n_features = r.len()?;
        if priors.len() != n_classes || n_classes == 0 {
            return Err(CodecError::Invalid(format!(
                "{} priors for {n_classes} classes",
                priors.len()
            )));
        }
        let n_rounds = r.len()?;
        let mut trees = Vec::with_capacity(n_rounds.min(r.remaining()));
        for _ in 0..n_rounds {
            let round: Result<Vec<_>, _> =
                (0..n_classes).map(|_| RegressionTree::decode(r)).collect();
            trees.push(round?);
        }
        Ok(GbdtClassifier {
            trees,
            priors,
            lr,
            n_classes,
            n_features,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mae, weighted_f1};

    fn quick_cfg() -> GbdtConfig {
        GbdtConfig {
            n_estimators: 60,
            max_depth: 3,
            learning_rate: 0.2,
            min_samples_leaf: 2,
            subsample: 1.0,
            seed: 1,
        }
    }

    #[test]
    fn regressor_fits_linear_function() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] + 1.0).collect();
        let m = GbdtRegressor::fit(&xs, &ys, &quick_cfg());
        let pred = m.predict(&xs);
        assert!(mae(&ys, &pred) < 0.5, "mae = {}", mae(&ys, &pred));
    }

    #[test]
    fn regressor_fits_nonlinear_interaction() {
        // y = x0 · x1 — needs depth ≥ 2 interactions.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..15 {
            for j in 0..15 {
                xs.push(vec![i as f64, j as f64]);
                ys.push((i * j) as f64);
            }
        }
        let m = GbdtRegressor::fit(&xs, &ys, &quick_cfg());
        let pred = m.predict(&xs);
        let scale = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!(mae(&ys, &pred) < 0.15 * scale, "mae = {}", mae(&ys, &pred));
    }

    #[test]
    fn regressor_importance_finds_signal_feature() {
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i % 17) as f64, (i % 2) as f64 * 100.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| x[1]).collect(); // only f1 matters
        let m = GbdtRegressor::fit(&xs, &ys, &quick_cfg());
        let imp = m.feature_importance();
        assert!(imp[1] > 0.9, "importance = {imp:?}");
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regressor_constant_target() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![7.0; 20];
        let m = GbdtRegressor::fit(&xs, &ys, &quick_cfg());
        assert!((m.predict_row(&[5.0]) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn classifier_separates_three_bands() {
        let xs: Vec<Vec<f64>> = (0..150).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..150).map(|i| i / 50).collect();
        let m = GbdtClassifier::fit(&xs, &ys, 3, &quick_cfg());
        let pred = m.predict(&xs);
        assert!(weighted_f1(&ys, &pred, 3) > 0.97);
    }

    #[test]
    fn classifier_proba_sums_to_one_and_is_confident() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..100).map(|i| usize::from(i >= 50)).collect();
        let m = GbdtClassifier::fit(&xs, &ys, 2, &quick_cfg());
        let p = m.predict_proba_row(&[10.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[0] > 0.9, "p = {p:?}");
    }

    #[test]
    fn classifier_xor() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                xs.push(vec![i as f64, j as f64]);
                ys.push(usize::from((i < 5) ^ (j < 5)));
            }
        }
        let m = GbdtClassifier::fit(&xs, &ys, 2, &quick_cfg());
        let pred = m.predict(&xs);
        assert!(weighted_f1(&ys, &pred, 2) > 0.95);
    }

    #[test]
    fn early_stopping_truncates_and_tracks_best_round() {
        // Noisy linear target: validation RMSE bottoms out well before 200
        // rounds at lr 0.3.
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x[0] + ((i * 7919 % 13) as f64 - 6.0) * 20.0)
            .collect();
        let (tr_idx, va_idx): (Vec<usize>, Vec<usize>) = (0..200).partition(|i| i % 3 != 0);
        let take = |idx: &[usize]| -> (Vec<Vec<f64>>, Vec<f64>) {
            (
                idx.iter().map(|&i| xs[i].clone()).collect(),
                idx.iter().map(|&i| ys[i]).collect(),
            )
        };
        let (tx, ty) = take(&tr_idx);
        let (vx, vy) = take(&va_idx);
        let cfg = GbdtConfig {
            n_estimators: 200,
            max_depth: 4,
            learning_rate: 0.3,
            min_samples_leaf: 2,
            subsample: 1.0,
            seed: 1,
        };
        let (model, curve) = GbdtRegressor::fit_with_validation(&tx, &ty, &vx, &vy, &cfg, 10);
        assert!(
            model.n_trees() < 200,
            "should stop early, got {}",
            model.n_trees()
        );
        assert!(!curve.is_empty());
        // The retained model scores the best observed validation RMSE.
        let best = curve.iter().cloned().fold(f64::INFINITY, f64::min);
        let final_rmse = (vx
            .iter()
            .zip(&vy)
            .map(|(x, y)| (model.predict_row(x) - y).powi(2))
            .sum::<f64>()
            / vy.len() as f64)
            .sqrt();
        assert!(
            (final_rmse - best).abs() < 1e-9,
            "{final_rmse} vs best {best}"
        );
    }

    fn wavy_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..160)
            .map(|i| vec![i as f64 / 8.0, ((i * 31) % 17) as f64])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|x| (x[0]).sin() * 40.0 + x[1] * 3.0)
            .collect();
        (xs, ys)
    }

    fn encoded(m: &GbdtRegressor) -> Vec<u8> {
        let mut w = ByteWriter::new();
        m.encode(&mut w);
        w.into_bytes()
    }

    #[test]
    fn resume_from_any_checkpoint_is_bit_identical() {
        // Subsampling on, so the RNG stream matters; interrupt at every
        // checkpoint the run emits and resume from each.
        let (xs, ys) = wavy_data();
        let cfg = GbdtConfig {
            n_estimators: 24,
            max_depth: 3,
            learning_rate: 0.2,
            min_samples_leaf: 2,
            subsample: 0.7,
            seed: 5,
        };
        let uninterrupted = encoded(&GbdtRegressor::fit(&xs, &ys, &cfg));
        let mut checkpoints = Vec::new();
        let _ = GbdtRegressor::fit_resumable(&xs, &ys, &cfg, None, 5, |ck| {
            checkpoints.push(ck.clone());
        });
        assert_eq!(checkpoints.len(), 4, "24 rounds / every 5 → 4 checkpoints");
        for ck in checkpoints {
            let rounds = ck.rounds_done;
            let resumed = GbdtRegressor::fit_resumable(&xs, &ys, &cfg, Some(ck), 0, |_| {});
            assert_eq!(
                encoded(&resumed),
                uninterrupted,
                "resume from round {rounds} diverged"
            );
        }
    }

    #[test]
    fn checkpoint_codec_round_trips() {
        let (xs, ys) = wavy_data();
        let cfg = GbdtConfig {
            n_estimators: 10,
            subsample: 0.6,
            seed: 3,
            ..quick_cfg()
        };
        let mut saved = None;
        let _ = GbdtRegressor::fit_resumable(&xs, &ys, &cfg, None, 4, |ck| {
            saved = Some(ck.clone());
        });
        let ck = saved.unwrap();
        let mut w = ByteWriter::new();
        ck.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = GbdtCheckpoint::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded.cfg, ck.cfg);
        assert_eq!(decoded.rounds_done, ck.rounds_done);
        assert_eq!(decoded.base.to_bits(), ck.base.to_bits());
        // Resuming from the decoded state matches the uninterrupted run.
        let want = encoded(&GbdtRegressor::fit(&xs, &ys, &cfg));
        let got = encoded(&GbdtRegressor::fit_resumable(
            &xs,
            &ys,
            &cfg,
            Some(decoded),
            0,
            |_| {},
        ));
        assert_eq!(got, want);
        // Truncated checkpoints fail cleanly.
        for cut in (0..bytes.len()).step_by(9).chain([bytes.len() - 1]) {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(GbdtCheckpoint::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn staged_prediction_converges_to_full() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..50).map(|i| i as f64 * 3.0).collect();
        let m = GbdtRegressor::fit(&xs, &ys, &quick_cfg());
        let full = m.predict_row(&[25.0]);
        assert_eq!(m.predict_row_staged(&[25.0], m.n_trees()), full);
        // Stage 0 = just the base prediction (the target mean).
        let mean = ys.iter().sum::<f64>() / 50.0;
        assert!((m.predict_row_staged(&[25.0], 0) - mean).abs() < 1e-9);
    }

    #[test]
    fn paper_scale_config_has_paper_values() {
        let c = GbdtConfig::paper_scale();
        assert_eq!(c.n_estimators, 8000);
        assert_eq!(c.max_depth, 8);
        assert!((c.learning_rate - 0.01).abs() < 1e-12);
    }
}
