//! Minimal dense linear algebra: just what Ordinary Kriging needs — a
//! row-major matrix and an LU solve with partial pivoting.

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of shape `(rows, cols)`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Matrix–vector product.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *o = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Solve `A x = b` by LU decomposition with partial pivoting.
    ///
    /// Returns `None` if the matrix is (numerically) singular. Consumes a
    /// copy of `self`; `A` must be square.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(self.rows, b.len(), "dimension mismatch");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Pivot: largest magnitude in this column at/below the diagonal.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return None;
            }
            if pivot_row != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot_row * n + c);
                }
                x.swap(col, pivot_row);
            }
            // Eliminate below.
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for c in (col + 1)..n {
                s -= a[col * n + c] * x[c];
            }
            x[col] = s / a[col * n + col];
        }
        Some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_identity() {
        let i = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_diagonal() {
        let a = Matrix::from_fn(3, 3, |r, c| if r == c { (r + 1) as f64 } else { 0.0 });
        let x = a.solve(&[2.0, 6.0, 12.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let mut a = Matrix::zeros(2, 2);
        a.set(0, 0, 0.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 0.0);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_general_system() {
        // [[2,1],[1,3]] x = [5, 10] → x = [1, 3]
        let a = Matrix::from_fn(2, 2, |r, c| [[2.0, 1.0], [1.0, 3.0]][r][c]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = Matrix::from_fn(2, 2, |r, c| [[1.0, 2.0], [2.0, 4.0]][r][c]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_residual_is_small() {
        let a = Matrix::from_fn(4, 4, |r, c| {
            ((r * 7 + c * 3 + 1) % 11) as f64 + if r == c { 10.0 } else { 0.0 }
        });
        let b = [1.0, -2.0, 3.5, 0.25];
        let x = a.solve(&b).unwrap();
        let r = a.matvec(&x);
        for i in 0..4 {
            assert!((r[i] - b[i]).abs() < 1e-10);
        }
    }
}
