//! Random Forest — the strongest 3G/4G baseline in the paper (Alimpertis et
//! al. \[20\] built city-wide LTE signal-strength maps with it; the paper runs
//! it in Tables 4, 9, 10 and Fig 23).
//!
//! Standard Breiman forests: bootstrap rows per tree plus a random feature
//! subspace per split; regression averages leaf means, classification takes
//! a majority vote.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::tree::{ClassificationTree, RegressionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Depth bound per tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// Features tried per split; `None` = √d for classification, d/3 for
    /// regression (the conventional defaults).
    pub max_features: Option<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 100,
            max_depth: 12,
            min_samples_leaf: 2,
            max_features: None,
            seed: 0,
        }
    }
}

fn bootstrap(n: usize, rng: &mut StdRng) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

/// Bagged regression forest.
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    trees: Vec<RegressionTree>,
}

impl RandomForestRegressor {
    /// Fit on `(xs, ys)`.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], cfg: &ForestConfig) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "cannot fit forest on empty data");
        let d = xs[0].len();
        let max_features = cfg.max_features.unwrap_or(d.div_ceil(3).max(1));
        let tree_cfg = TreeConfig {
            max_depth: cfg.max_depth,
            min_samples_leaf: cfg.min_samples_leaf,
            min_samples_split: cfg.min_samples_leaf * 2,
            max_features: Some(max_features),
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let trees = (0..cfg.n_trees)
            .map(|_| {
                let rows = bootstrap(xs.len(), &mut rng);
                let bx: Vec<Vec<f64>> = rows.iter().map(|&i| xs[i].clone()).collect();
                let by: Vec<f64> = rows.iter().map(|&i| ys[i]).collect();
                let g: Vec<f64> = by.iter().map(|y| -y).collect();
                let h = vec![1.0; by.len()];
                RegressionTree::fit_gradients(&bx, &g, &h, &tree_cfg, Some(&mut rng))
            })
            .collect();
        RandomForestRegressor { trees }
    }

    /// Average of tree predictions for one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict_row(row)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predict many rows.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Serialize all trees.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.trees.len());
        for t in &self.trees {
            t.encode(w);
        }
    }

    /// Inverse of [`Self::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let n = r.len()?;
        if n == 0 {
            return Err(CodecError::Invalid("forest with zero trees".into()));
        }
        let trees: Result<Vec<_>, _> = (0..n).map(|_| RegressionTree::decode(r)).collect();
        Ok(RandomForestRegressor { trees: trees? })
    }
}

/// Bagged classification forest with majority vote.
#[derive(Debug, Clone)]
pub struct RandomForestClassifier {
    trees: Vec<ClassificationTree>,
    n_classes: usize,
}

impl RandomForestClassifier {
    /// Fit on labels in `0..n_classes`.
    pub fn fit(xs: &[Vec<f64>], ys: &[usize], n_classes: usize, cfg: &ForestConfig) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "cannot fit forest on empty data");
        let d = xs[0].len();
        let max_features = cfg
            .max_features
            .unwrap_or(((d as f64).sqrt().round() as usize).max(1));
        let tree_cfg = TreeConfig {
            max_depth: cfg.max_depth,
            min_samples_leaf: cfg.min_samples_leaf,
            min_samples_split: cfg.min_samples_leaf * 2,
            max_features: Some(max_features),
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let trees = (0..cfg.n_trees)
            .map(|_| {
                let rows = bootstrap(xs.len(), &mut rng);
                let bx: Vec<Vec<f64>> = rows.iter().map(|&i| xs[i].clone()).collect();
                let by: Vec<usize> = rows.iter().map(|&i| ys[i]).collect();
                ClassificationTree::fit(&bx, &by, n_classes, &tree_cfg, Some(&mut rng))
            })
            .collect();
        RandomForestClassifier { trees, n_classes }
    }

    /// Majority vote for one row.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        let mut votes = vec![0usize; self.n_classes];
        for t in &self.trees {
            votes[t.predict_row(row)] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(c, _)| c)
            .expect("at least one class")
    }

    /// Predict many rows.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Serialize all trees.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.n_classes);
        w.put_len(self.trees.len());
        for t in &self.trees {
            t.encode(w);
        }
    }

    /// Inverse of [`Self::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let n_classes = r.len()?;
        let n = r.len()?;
        if n == 0 {
            return Err(CodecError::Invalid("forest with zero trees".into()));
        }
        let trees: Result<Vec<_>, _> = (0..n).map(|_| ClassificationTree::decode(r)).collect();
        Ok(RandomForestClassifier {
            trees: trees?,
            n_classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mae, weighted_f1};

    fn quick() -> ForestConfig {
        ForestConfig {
            n_trees: 30,
            max_depth: 8,
            min_samples_leaf: 1,
            max_features: None,
            seed: 3,
        }
    }

    #[test]
    fn regressor_fits_smooth_function() {
        let xs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 / 20.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0]).sin() * 10.0).collect();
        let m = RandomForestRegressor::fit(&xs, &ys, &quick());
        assert!(mae(&ys, &m.predict(&xs)) < 1.0);
    }

    #[test]
    fn regressor_is_deterministic_per_seed() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..50).map(|i| i as f64 * 2.0).collect();
        let a = RandomForestRegressor::fit(&xs, &ys, &quick());
        let b = RandomForestRegressor::fit(&xs, &ys, &quick());
        assert_eq!(a.predict_row(&[25.0]), b.predict_row(&[25.0]));
    }

    #[test]
    fn classifier_separates_bands() {
        let xs: Vec<Vec<f64>> = (0..150).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let ys: Vec<usize> = (0..150).map(|i| i / 50).collect();
        let m = RandomForestClassifier::fit(&xs, &ys, 3, &quick());
        assert!(weighted_f1(&ys, &m.predict(&xs), 3) > 0.95);
    }

    #[test]
    fn classifier_handles_single_class_gracefully() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys = vec![1usize; 20];
        let m = RandomForestClassifier::fit(&xs, &ys, 3, &quick());
        assert_eq!(m.predict_row(&[3.0]), 1);
    }
}
