#![warn(missing_docs)]

//! # lumos5g-ml
//!
//! From-scratch machine-learning substrate for the Lumos5G reproduction.
//!
//! The paper's evaluation (§6) pits its two proposed model families against
//! four baselines from the 3G/4G literature. The Rust ecosystem offers none
//! of these offline, so this crate implements all of them:
//!
//! **Proposed (Lumos5G §5.2)**
//! - [`gbdt`]: gradient-boosted decision trees — regression (squared loss)
//!   and multiclass classification (softmax), with gain-based global feature
//!   importance (App A.2).
//! - [`nn`]: an LSTM **Seq2Seq encoder–decoder** trained with Adam and BPTT,
//!   predicting an arbitrary-length future throughput sequence from a
//!   feature-vector history (Fig 15).
//!
//! **Baselines (§6.3)**
//! - [`forest`]: Random Forest (Alimpertis et al., WWW '19 \[20\]).
//! - [`knn`][]: k-nearest-neighbours.
//! - [`kriging`]: Ordinary Kriging geospatial interpolation (SpecSense \[26\]).
//! - [`harmonic`]: harmonic-mean-of-history predictor (FESTIVE/MPC \[38, 64\]).
//!
//! Support modules: [`linalg`] (dense solve for the Kriging system),
//! [`tree`] (CART, shared by GBDT and RF), [`dataset`] (splits and scalers),
//! [`metrics`] (MAE/RMSE/weighted-F1/recall — the paper's metrics) and
//! [`codec`] (byte-level primitives behind `lumos5g-core::persist`).

pub mod codec;
pub mod dataset;
pub mod forest;
pub mod gbdt;
pub mod harmonic;
pub mod kdtree;
pub mod knn;
pub mod kriging;
pub mod linalg;
pub mod metrics;
pub mod nn;
pub mod tree;

pub use dataset::{train_test_split, StandardScaler};
pub use forest::{RandomForestClassifier, RandomForestRegressor};
pub use gbdt::{GbdtCheckpoint, GbdtClassifier, GbdtConfig, GbdtRegressor};
pub use harmonic::HarmonicMeanPredictor;
pub use knn::{KnnClassifier, KnnRegressor};
pub use kriging::OrdinaryKriging;
pub use metrics::{confusion_matrix, mae, rmse, weighted_f1, ClassificationReport};
pub use nn::seq2seq::{Seq2Seq, Seq2SeqConfig, Seq2SeqTrainState};
pub use tree::{ClassificationTree, RegressionTree, TreeConfig};
