//! CART decision trees.
//!
//! Two variants share the same split machinery:
//!
//! - [`RegressionTree`]: fits first/second-order gradients (XGBoost-style),
//!   so the same code serves plain regression (`g = −y, h = 1` reduces the
//!   gain to variance reduction and leaves to means) and the Newton leaves
//!   of softmax GBDT classification.
//! - [`ClassificationTree`]: Gini-impurity splits with majority leaves, used
//!   by the Random Forest baseline.
//!
//! Both support depth bounds, minimum leaf sizes and random feature
//! subspaces (for forests).

use crate::codec::{ByteReader, ByteWriter, CodecError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Shared tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Number of features examined per split; `None` = all.
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_leaf: 1,
            min_samples_split: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Gain achieved by this split (for feature importance).
        gain: f64,
        left: usize,
        right: usize,
    },
}

/// Gradient-fitted regression tree.
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl RegressionTree {
    /// Fit on features `xs` with per-sample gradient `g` and hessian `h`.
    /// The leaf value minimizing the local quadratic model is `−Σg / Σh`.
    ///
    /// For plain least-squares regression on targets `y`, pass `g = −y`,
    /// `h = 1`: leaves become target means and the split gain is exactly
    /// variance reduction.
    pub fn fit_gradients(
        xs: &[Vec<f64>],
        g: &[f64],
        h: &[f64],
        cfg: &TreeConfig,
        rng: Option<&mut StdRng>,
    ) -> Self {
        assert_eq!(xs.len(), g.len(), "xs/g length mismatch");
        assert_eq!(xs.len(), h.len(), "xs/h length mismatch");
        assert!(!xs.is_empty(), "cannot fit a tree on no data");
        let n_features = xs[0].len();
        assert!(n_features > 0, "need at least one feature");
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features,
        };
        // Pre-sort sample indices per feature once; splits partition these
        // lists order-preservingly, so no per-node sorting is needed.
        let orders: Vec<Vec<usize>> = (0..n_features)
            .map(|f| {
                let mut v: Vec<usize> = (0..xs.len()).collect();
                v.sort_by(|&a, &b| xs[a][f].total_cmp(&xs[b][f]));
                v
            })
            .collect();
        let mut local_rng = rng;
        tree.build(xs, g, h, orders, 0, cfg, &mut local_rng);
        tree
    }

    /// Convenience: least-squares fit on targets.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], cfg: &TreeConfig) -> Self {
        let g: Vec<f64> = ys.iter().map(|y| -y).collect();
        let h = vec![1.0; ys.len()];
        Self::fit_gradients(xs, &g, &h, cfg, None)
    }

    /// Recursive node builder. `orders[f]` holds this node's sample indices
    /// sorted by feature `f` (all features share the same sample set).
    #[allow(clippy::too_many_arguments)]
    fn build(
        &mut self,
        xs: &[Vec<f64>],
        g: &[f64],
        h: &[f64],
        orders: Vec<Vec<usize>>,
        depth: usize,
        cfg: &TreeConfig,
        rng: &mut Option<&mut StdRng>,
    ) -> usize {
        let idx: &[usize] = &orders[0];
        let n = idx.len();
        let sum_g: f64 = idx.iter().map(|&i| g[i]).sum();
        let sum_h: f64 = idx.iter().map(|&i| h[i]).sum();
        let leaf_value = if sum_h.abs() > 1e-12 {
            -sum_g / sum_h
        } else {
            0.0
        };

        if depth >= cfg.max_depth || n < cfg.min_samples_split {
            return self.push(Node::Leaf { value: leaf_value });
        }

        // Pure node (all implied targets equal): nothing to gain by
        // splitting, even at zero cost.
        let first_target = -g[idx[0]] / h[idx[0]].max(1e-12);
        let pure = idx
            .iter()
            .all(|&i| (-g[i] / h[i].max(1e-12) - first_target).abs() < 1e-12);
        if pure {
            return self.push(Node::Leaf { value: leaf_value });
        }

        let parent_score = sum_g * sum_g / sum_h.max(1e-12);
        let features = self.candidate_features(cfg, rng);

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        for &f in &features {
            let order = &orders[f];
            let mut gl = 0.0;
            let mut hl = 0.0;
            for k in 0..n.saturating_sub(1) {
                let i = order[k];
                gl += g[i];
                hl += h[i];
                // Can't split between equal feature values.
                if xs[order[k]][f] == xs[order[k + 1]][f] {
                    continue;
                }
                let left_n = k + 1;
                let right_n = n - left_n;
                if left_n < cfg.min_samples_leaf || right_n < cfg.min_samples_leaf {
                    continue;
                }
                let gr = sum_g - gl;
                let hr = sum_h - hl;
                if hl <= 1e-12 || hr <= 1e-12 {
                    continue;
                }
                // Gain is non-negative by convexity; zero-gain splits are
                // accepted (like sklearn) so symmetric targets such as XOR
                // can still be separated at deeper levels.
                let gain = gl * gl / hl + gr * gr / hr - parent_score;
                if gain > best.map_or(-1e-12, |b| b.2) {
                    let threshold = 0.5 * (xs[order[k]][f] + xs[order[k + 1]][f]);
                    best = Some((f, threshold, gain));
                }
            }
        }

        match best {
            None => self.push(Node::Leaf { value: leaf_value }),
            Some((feature, threshold, gain)) => {
                // Order-preserving partition of every presorted list.
                let mut left_orders = Vec::with_capacity(orders.len());
                let mut right_orders = Vec::with_capacity(orders.len());
                for ord in &orders {
                    let (l, r): (Vec<usize>, Vec<usize>) =
                        ord.iter().partition(|&&i| xs[i][feature] <= threshold);
                    left_orders.push(l);
                    right_orders.push(r);
                }
                drop(orders);
                let node = self.push(Node::Leaf { value: 0.0 }); // placeholder
                let left = self.build(xs, g, h, left_orders, depth + 1, cfg, rng);
                let right = self.build(xs, g, h, right_orders, depth + 1, cfg, rng);
                self.nodes[node] = Node::Split {
                    feature,
                    threshold,
                    gain,
                    left,
                    right,
                };
                node
            }
        }
    }

    fn candidate_features(&self, cfg: &TreeConfig, rng: &mut Option<&mut StdRng>) -> Vec<usize> {
        let all: Vec<usize> = (0..self.n_features).collect();
        match (cfg.max_features, rng) {
            (Some(k), Some(r)) if k < self.n_features => {
                let mut shuffled = all;
                shuffled.shuffle(*r);
                shuffled.truncate(k);
                shuffled
            }
            _ => all,
        }
    }

    fn push(&mut self, n: Node) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    /// Predict for one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predict for many rows.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Accumulate this tree's split gains into `importance[feature]`.
    pub fn add_importance(&self, importance: &mut [f64]) {
        for n in &self.nodes {
            if let Node::Split { feature, gain, .. } = n {
                importance[*feature] += gain.max(0.0);
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Serialize as a flat node array (tag byte per node).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.n_features);
        w.put_len(self.nodes.len());
        for n in &self.nodes {
            match n {
                Node::Leaf { value } => {
                    w.put_u8(0);
                    w.put_f64(*value);
                }
                Node::Split {
                    feature,
                    threshold,
                    gain,
                    left,
                    right,
                } => {
                    w.put_u8(1);
                    w.put_len(*feature);
                    w.put_f64(*threshold);
                    w.put_f64(*gain);
                    w.put_len(*left);
                    w.put_len(*right);
                }
            }
        }
    }

    /// Inverse of [`Self::encode`]. Child and feature indices are validated
    /// so a decoded tree can never panic during prediction.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let n_features = r.len()?;
        let count = r.len()?;
        if count == 0 {
            return Err(CodecError::Invalid("tree with zero nodes".into()));
        }
        let mut nodes = Vec::with_capacity(count.min(r.remaining()));
        for _ in 0..count {
            nodes.push(match r.u8()? {
                0 => Node::Leaf { value: r.f64()? },
                1 => {
                    let feature = r.len()?;
                    let threshold = r.f64()?;
                    let gain = r.f64()?;
                    let left = r.len()?;
                    let right = r.len()?;
                    if feature >= n_features {
                        return Err(CodecError::Invalid(format!(
                            "split feature {feature} out of range (n_features = {n_features})"
                        )));
                    }
                    if left >= count || right >= count {
                        return Err(CodecError::Invalid(format!(
                            "child index out of range ({left}/{right} vs {count} nodes)"
                        )));
                    }
                    Node::Split {
                        feature,
                        threshold,
                        gain,
                        left,
                        right,
                    }
                }
                tag => {
                    return Err(CodecError::BadTag {
                        what: "tree node",
                        tag,
                    })
                }
            });
        }
        Ok(RegressionTree { nodes, n_features })
    }
}

/// Gini-impurity classification tree with majority-vote leaves.
#[derive(Debug, Clone)]
pub struct ClassificationTree {
    nodes: Vec<CNode>,
    n_features: usize,
    n_classes: usize,
}

#[derive(Debug, Clone)]
enum CNode {
    Leaf {
        class: usize,
        proba: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

impl ClassificationTree {
    /// Fit on labels in `0..n_classes`.
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[usize],
        n_classes: usize,
        cfg: &TreeConfig,
        rng: Option<&mut StdRng>,
    ) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "cannot fit a tree on no data");
        assert!(ys.iter().all(|&y| y < n_classes), "label out of range");
        let n_features = xs[0].len();
        assert!(n_features > 0, "need at least one feature");
        let mut tree = ClassificationTree {
            nodes: Vec::new(),
            n_features,
            n_classes,
        };
        let orders: Vec<Vec<usize>> = (0..n_features)
            .map(|f| {
                let mut v: Vec<usize> = (0..xs.len()).collect();
                v.sort_by(|&a, &b| xs[a][f].total_cmp(&xs[b][f]));
                v
            })
            .collect();
        let mut local_rng = rng;
        tree.build(xs, ys, orders, 0, cfg, &mut local_rng);
        tree
    }

    fn counts(&self, ys: &[usize], idx: &[usize]) -> Vec<f64> {
        let mut c = vec![0.0; self.n_classes];
        for &i in idx {
            c[ys[i]] += 1.0;
        }
        c
    }

    fn gini(counts: &[f64]) -> f64 {
        let n: f64 = counts.iter().sum();
        if n == 0.0 {
            return 0.0;
        }
        1.0 - counts.iter().map(|c| (c / n) * (c / n)).sum::<f64>()
    }

    /// Recursive node builder over presorted per-feature index lists.
    fn build(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[usize],
        orders: Vec<Vec<usize>>,
        depth: usize,
        cfg: &TreeConfig,
        rng: &mut Option<&mut StdRng>,
    ) -> usize {
        let idx: Vec<usize> = orders[0].clone();
        let counts = self.counts(ys, &idx);
        let total: f64 = counts.iter().sum();
        let majority = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(c, _)| c)
            .unwrap_or(0);
        let proba: Vec<f64> = counts.iter().map(|c| c / total.max(1.0)).collect();

        let parent_gini = Self::gini(&counts);
        if depth >= cfg.max_depth || idx.len() < cfg.min_samples_split || parent_gini == 0.0 {
            return self.push(CNode::Leaf {
                class: majority,
                proba,
            });
        }

        let features: Vec<usize> = {
            let all: Vec<usize> = (0..self.n_features).collect();
            match (cfg.max_features, rng.as_deref_mut()) {
                (Some(k), Some(r)) if k < self.n_features => {
                    let mut s = all;
                    s.shuffle(r);
                    s.truncate(k);
                    s
                }
                _ => all,
            }
        };

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted gini)
        for &f in &features {
            let order = &orders[f];
            let mut left_counts = vec![0.0; self.n_classes];
            for k in 0..order.len().saturating_sub(1) {
                left_counts[ys[order[k]]] += 1.0;
                if xs[order[k]][f] == xs[order[k + 1]][f] {
                    continue;
                }
                let ln = (k + 1) as f64;
                let rn = total - ln;
                if (ln as usize) < cfg.min_samples_leaf || (rn as usize) < cfg.min_samples_leaf {
                    continue;
                }
                let right_counts: Vec<f64> = counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(t, l)| t - l)
                    .collect();
                let w = (ln * Self::gini(&left_counts) + rn * Self::gini(&right_counts)) / total;
                if w < best.map_or(parent_gini + 1e-12, |b| b.2) {
                    let threshold = 0.5 * (xs[order[k]][f] + xs[order[k + 1]][f]);
                    best = Some((f, threshold, w));
                }
            }
        }

        match best {
            None => self.push(CNode::Leaf {
                class: majority,
                proba,
            }),
            Some((feature, threshold, _)) => {
                let mut left_orders = Vec::with_capacity(orders.len());
                let mut right_orders = Vec::with_capacity(orders.len());
                for ord in &orders {
                    let (l, r): (Vec<usize>, Vec<usize>) =
                        ord.iter().partition(|&&i| xs[i][feature] <= threshold);
                    left_orders.push(l);
                    right_orders.push(r);
                }
                drop(orders);
                let node = self.push(CNode::Leaf {
                    class: majority,
                    proba: vec![0.0; self.n_classes],
                });
                let left = self.build(xs, ys, left_orders, depth + 1, cfg, rng);
                let right = self.build(xs, ys, right_orders, depth + 1, cfg, rng);
                self.nodes[node] = CNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                node
            }
        }
    }

    fn push(&mut self, n: CNode) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    /// Predicted class for one row.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                CNode::Leaf { class, .. } => return *class,
                CNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Class probabilities for one row (leaf class frequencies).
    pub fn predict_proba_row(&self, row: &[f64]) -> Vec<f64> {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                CNode::Leaf { proba, .. } => return proba.clone(),
                CNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Predicted classes for many rows.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Serialize as a flat node array (tag byte per node).
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.n_features);
        w.put_len(self.n_classes);
        w.put_len(self.nodes.len());
        for n in &self.nodes {
            match n {
                CNode::Leaf { class, proba } => {
                    w.put_u8(0);
                    w.put_len(*class);
                    w.put_f64s(proba);
                }
                CNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    w.put_u8(1);
                    w.put_len(*feature);
                    w.put_f64(*threshold);
                    w.put_len(*left);
                    w.put_len(*right);
                }
            }
        }
    }

    /// Inverse of [`Self::encode`], with index validation.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let n_features = r.len()?;
        let n_classes = r.len()?;
        let count = r.len()?;
        if count == 0 {
            return Err(CodecError::Invalid("tree with zero nodes".into()));
        }
        let mut nodes = Vec::with_capacity(count.min(r.remaining()));
        for _ in 0..count {
            nodes.push(match r.u8()? {
                0 => {
                    let class = r.len()?;
                    let proba = r.f64s()?;
                    if class >= n_classes || proba.len() != n_classes {
                        return Err(CodecError::Invalid(format!(
                            "leaf class {class}/proba {} vs {n_classes} classes",
                            proba.len()
                        )));
                    }
                    CNode::Leaf { class, proba }
                }
                1 => {
                    let feature = r.len()?;
                    let threshold = r.f64()?;
                    let left = r.len()?;
                    let right = r.len()?;
                    if feature >= n_features || left >= count || right >= count {
                        return Err(CodecError::Invalid("split indices out of range".into()));
                    }
                    CNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    }
                }
                tag => {
                    return Err(CodecError::BadTag {
                        what: "ctree node",
                        tag,
                    })
                }
            });
        }
        Ok(ClassificationTree {
            nodes,
            n_features,
            n_classes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 10 for x < 5, 20 for x >= 5.
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| if i < 5 { 10.0 } else { 20.0 }).collect();
        (xs, ys)
    }

    #[test]
    fn regression_tree_learns_step_function() {
        let (xs, ys) = step_data();
        let t = RegressionTree::fit(&xs, &ys, &TreeConfig::default());
        assert!((t.predict_row(&[2.0]) - 10.0).abs() < 1e-9);
        assert!((t.predict_row(&[7.0]) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn depth_zero_tree_predicts_mean() {
        let (xs, ys) = step_data();
        let cfg = TreeConfig {
            max_depth: 0,
            ..Default::default()
        };
        let t = RegressionTree::fit(&xs, &ys, &cfg);
        assert!((t.predict_row(&[0.0]) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let (xs, ys) = step_data();
        let cfg = TreeConfig {
            min_samples_leaf: 6, // can't make a 5/5 split ⇒ no split
            ..Default::default()
        };
        let t = RegressionTree::fit(&xs, &ys, &cfg);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn regression_tree_two_features_picks_informative_one() {
        // Feature 0 is noise-free signal, feature 1 is constant.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, 3.0]).collect();
        let ys: Vec<f64> = (0..20).map(|i| if i < 10 { 0.0 } else { 1.0 }).collect();
        let t = RegressionTree::fit(&xs, &ys, &TreeConfig::default());
        let mut imp = vec![0.0; 2];
        t.add_importance(&mut imp);
        assert!(imp[0] > 0.0);
        assert_eq!(imp[1], 0.0);
    }

    #[test]
    fn regression_tree_fits_xor_with_depth_two() {
        let xs = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let ys = vec![0.0, 1.0, 1.0, 0.0];
        let t = RegressionTree::fit(&xs, &ys, &TreeConfig::default());
        for (x, y) in xs.iter().zip(&ys) {
            assert!((t.predict_row(x) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn classification_tree_separable() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let t = ClassificationTree::fit(&xs, &ys, 2, &TreeConfig::default(), None);
        assert_eq!(t.predict_row(&[3.0]), 0);
        assert_eq!(t.predict_row(&[15.0]), 1);
    }

    #[test]
    fn classification_tree_three_classes() {
        let xs: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let ys: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let t = ClassificationTree::fit(&xs, &ys, 3, &TreeConfig::default(), None);
        assert_eq!(t.predict_row(&[5.0]), 0);
        assert_eq!(t.predict_row(&[15.0]), 1);
        assert_eq!(t.predict_row(&[25.0]), 2);
    }

    #[test]
    fn classification_proba_sums_to_one() {
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![(i % 4) as f64]).collect();
        let ys: Vec<usize> = (0..12).map(|i| i % 3).collect();
        let t = ClassificationTree::fit(&xs, &ys, 3, &TreeConfig::default(), None);
        let p = t.predict_proba_row(&[1.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pure_node_stops_early() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec![1usize; 10];
        let t = ClassificationTree::fit(&xs, &ys, 2, &TreeConfig::default(), None);
        assert_eq!(t.predict_row(&[4.0]), 1);
    }
}
