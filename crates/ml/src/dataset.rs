//! Dataset plumbing: seeded shuffling splits and feature standardization.
//!
//! The paper uses a random 70/30 train/test split (§6.1); all splits here
//! are seeded so every experiment in the repro harness is reproducible.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Split indices `0..n` into shuffled (train, test) with `train_frac` of the
/// data in train.
pub fn train_test_split(n: usize, train_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&train_frac),
        "train_frac must be in [0,1]"
    );
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let cut = ((n as f64) * train_frac).round() as usize;
    let test = idx.split_off(cut.min(n));
    (idx, test)
}

/// Gather rows of a feature matrix by index.
pub fn gather_rows(xs: &[Vec<f64>], idx: &[usize]) -> Vec<Vec<f64>> {
    idx.iter().map(|&i| xs[i].clone()).collect()
}

/// Gather elements of a slice by index.
pub fn gather<T: Copy>(v: &[T], idx: &[usize]) -> Vec<T> {
    idx.iter().map(|&i| v[i]).collect()
}

/// Per-feature zero-mean unit-variance scaler (fit on train, apply to test).
#[derive(Debug, Clone)]
pub struct StandardScaler {
    /// Per-feature means.
    pub means: Vec<f64>,
    /// Per-feature standard deviations (1.0 where the feature is constant).
    pub stds: Vec<f64>,
}

impl StandardScaler {
    /// Fit on a feature matrix (rows = samples).
    pub fn fit(xs: &[Vec<f64>]) -> Self {
        assert!(!xs.is_empty(), "cannot fit scaler on empty data");
        let d = xs[0].len();
        let n = xs.len() as f64;
        let mut means = vec![0.0; d];
        for row in xs {
            assert_eq!(row.len(), d, "ragged feature matrix");
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; d];
        for row in xs {
            for j in 0..d {
                let dv = row[j] - means[j];
                vars[j] += dv * dv;
            }
        }
        let stds = vars
            .iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        StandardScaler { means, stds }
    }

    /// Transform one row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "dimension mismatch");
        row.iter()
            .enumerate()
            .map(|(j, v)| (v - self.means[j]) / self.stds[j])
            .collect()
    }

    /// Transform a matrix.
    pub fn transform(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|r| self.transform_row(r)).collect()
    }

    /// Inverse of [`Self::transform_row`].
    pub fn inverse_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "dimension mismatch");
        row.iter()
            .enumerate()
            .map(|(j, v)| v * self.stds[j] + self.means[j])
            .collect()
    }

    /// Serialize (bit-exact).
    pub fn encode(&self, w: &mut crate::codec::ByteWriter) {
        w.put_f64s(&self.means);
        w.put_f64s(&self.stds);
    }

    /// Inverse of [`Self::encode`].
    pub fn decode(r: &mut crate::codec::ByteReader<'_>) -> Result<Self, crate::codec::CodecError> {
        let means = r.f64s()?;
        let stds = r.f64s()?;
        if means.len() != stds.len() {
            return Err(crate::codec::CodecError::Invalid(format!(
                "{} means vs {} stds",
                means.len(),
                stds.len()
            )));
        }
        Ok(StandardScaler { means, stds })
    }
}

/// A scalar standardizer for target values (the Seq2Seq trains on
/// standardized throughput).
#[derive(Debug, Clone, Copy)]
pub struct TargetScaler {
    /// Target mean.
    pub mean: f64,
    /// Target standard deviation (1.0 when constant).
    pub std: f64,
}

impl TargetScaler {
    /// Fit on target values.
    pub fn fit(ys: &[f64]) -> Self {
        assert!(!ys.is_empty(), "cannot fit scaler on empty targets");
        let n = ys.len() as f64;
        let mean = ys.iter().sum::<f64>() / n;
        let var = ys.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / n;
        let std = if var.sqrt() > 1e-12 { var.sqrt() } else { 1.0 };
        TargetScaler { mean, std }
    }

    /// Standardize.
    pub fn transform(&self, y: f64) -> f64 {
        (y - self.mean) / self.std
    }

    /// Undo standardization.
    pub fn inverse(&self, z: f64) -> f64 {
        z * self.std + self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_all_indices() {
        let (tr, te) = train_test_split(100, 0.7, 1);
        assert_eq!(tr.len(), 70);
        assert_eq!(te.len(), 30);
        let mut all: Vec<usize> = tr.iter().chain(te.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_seeded() {
        assert_eq!(train_test_split(50, 0.5, 7), train_test_split(50, 0.5, 7));
        assert_ne!(
            train_test_split(50, 0.5, 7).0,
            train_test_split(50, 0.5, 8).0
        );
    }

    #[test]
    fn scaler_standardizes() {
        let xs = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let s = StandardScaler::fit(&xs);
        let t = s.transform(&xs);
        // First feature: mean 3, population std sqrt(8/3).
        let col0: Vec<f64> = t.iter().map(|r| r[0]).collect();
        assert!((col0.iter().sum::<f64>()).abs() < 1e-12);
        // Constant feature maps to zero with unit std guard.
        assert!(t.iter().all(|r| r[1].abs() < 1e-12));
    }

    #[test]
    fn scaler_roundtrip() {
        let xs = vec![vec![2.0, -1.0], vec![4.0, 5.0], vec![9.0, 0.0]];
        let s = StandardScaler::fit(&xs);
        let back = s.inverse_row(&s.transform_row(&xs[1]));
        assert!((back[0] - 4.0).abs() < 1e-12);
        assert!((back[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn target_scaler_roundtrip() {
        let t = TargetScaler::fit(&[100.0, 300.0, 500.0]);
        assert!((t.inverse(t.transform(300.0)) - 300.0).abs() < 1e-12);
        assert!(t.transform(300.0).abs() < 1e-12); // mean maps to 0
    }

    #[test]
    fn gather_utilities() {
        let xs = vec![vec![1.0], vec![2.0], vec![3.0]];
        assert_eq!(gather_rows(&xs, &[2, 0]), vec![vec![3.0], vec![1.0]]);
        assert_eq!(gather(&[10, 20, 30], &[1, 1]), vec![20, 20]);
    }
}
