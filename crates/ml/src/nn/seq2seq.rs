//! LSTM Seq2Seq encoder–decoder (Fig 15 of the paper).
//!
//! The encoder ingests a history of feature vectors `x_1..x_T`; its final
//! hidden/cell states (per layer) seed the decoder, which autoregressively
//! emits `k` future throughput values through a linear head. The paper uses
//! a 2-layer, 128-unit architecture with input/output length 20, trained
//! for 2000 epochs with batch 256 and MSE loss; [`Seq2SeqConfig::paper_scale`]
//! reproduces that configuration, while the default is a laptop-scale
//! equivalent.
//!
//! Training uses Adam, BPTT through decoder *and* encoder, global-norm
//! gradient clipping, and teacher forcing. The feedback edge from one
//! decoder output into the next decoder input is detached (the standard
//! simplification; gradients flow through the recurrent state instead).
//! Targets are expected pre-standardized (see `dataset::TargetScaler`).

use super::lstm::{LstmLayer, StepCache};
use super::{Adam, Param};
use crate::codec::{ByteReader, ByteWriter, CodecError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Architecture and training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Seq2SeqConfig {
    /// Feature-vector dimension of the encoder input.
    pub input_dim: usize,
    /// Hidden units per LSTM layer.
    pub hidden: usize,
    /// Number of stacked LSTM layers in encoder and decoder.
    pub layers: usize,
    /// Output sequence length `k`.
    pub horizon: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Probability of feeding the ground-truth previous target to the
    /// decoder during training (teacher forcing).
    pub teacher_forcing: f64,
    /// Global gradient-norm clip.
    pub clip_norm: f64,
    /// RNG seed (init + shuffling + forcing decisions).
    pub seed: u64,
}

impl Default for Seq2SeqConfig {
    fn default() -> Self {
        Seq2SeqConfig {
            input_dim: 1,
            hidden: 32,
            layers: 2,
            horizon: 20,
            epochs: 30,
            batch_size: 64,
            lr: 3e-3,
            teacher_forcing: 0.7,
            clip_norm: 5.0,
            seed: 0,
        }
    }
}

impl Seq2SeqConfig {
    /// The paper's §6.1 setup: 2×128 LSTM, sequence length 20, 2000 epochs,
    /// batch 256.
    pub fn paper_scale(input_dim: usize) -> Self {
        Seq2SeqConfig {
            input_dim,
            hidden: 128,
            layers: 2,
            horizon: 20,
            epochs: 2000,
            batch_size: 256,
            lr: 1e-3,
            teacher_forcing: 0.7,
            clip_norm: 5.0,
            seed: 0,
        }
    }
}

/// The encoder–decoder model.
#[derive(Debug, Clone)]
pub struct Seq2Seq {
    cfg: Seq2SeqConfig,
    enc: Vec<LstmLayer>,
    dec: Vec<LstmLayer>,
    w_out: Param,
    b_out: Param,
    adam: Adam,
}

struct DecoderTrace {
    /// caches[t][layer]
    caches: Vec<Vec<StepCache>>,
    /// Top-layer hidden state at each step.
    h_top: Vec<Vec<f64>>,
    /// Emitted outputs.
    outputs: Vec<f64>,
}

impl Seq2Seq {
    /// Build a fresh model.
    pub fn new(cfg: Seq2SeqConfig) -> Self {
        assert!(cfg.layers >= 1, "need at least one layer");
        assert!(cfg.horizon >= 1, "horizon must be positive");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let enc = (0..cfg.layers)
            .map(|l| {
                let input = if l == 0 { cfg.input_dim } else { cfg.hidden };
                LstmLayer::new(input, cfg.hidden, &mut rng)
            })
            .collect();
        let dec = (0..cfg.layers)
            .map(|l| {
                let input = if l == 0 { 1 } else { cfg.hidden };
                LstmLayer::new(input, cfg.hidden, &mut rng)
            })
            .collect();
        let w_out = Param::xavier(cfg.hidden, cfg.hidden, 1, &mut rng);
        let b_out = Param::zeros(1);
        Seq2Seq {
            adam: Adam::new(cfg.lr),
            cfg,
            enc,
            dec,
            w_out,
            b_out,
        }
    }

    /// Model configuration.
    pub fn config(&self) -> &Seq2SeqConfig {
        &self.cfg
    }

    /// Encode an input sequence; returns per-layer (h, c) finals plus all
    /// caches (needed only for training).
    #[allow(clippy::type_complexity)]
    fn run_encoder(&self, xs: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<Vec<f64>>, Vec<Vec<StepCache>>) {
        let hdim = self.cfg.hidden;
        let mut h: Vec<Vec<f64>> = vec![vec![0.0; hdim]; self.cfg.layers];
        let mut c: Vec<Vec<f64>> = vec![vec![0.0; hdim]; self.cfg.layers];
        let mut caches: Vec<Vec<StepCache>> = Vec::with_capacity(xs.len());
        for x in xs {
            let mut input = x.clone();
            let mut step_caches = Vec::with_capacity(self.cfg.layers);
            for (l, layer) in self.enc.iter().enumerate() {
                let (hn, cn, cache) = layer.forward(&input, &h[l], &c[l]);
                input = hn.clone();
                h[l] = hn;
                c[l] = cn;
                step_caches.push(cache);
            }
            caches.push(step_caches);
        }
        (h, c, caches)
    }

    /// Run the decoder from encoder states. During training,
    /// `teacher: Some(targets)` supplies ground truth for forced steps.
    fn run_decoder(
        &self,
        mut h: Vec<Vec<f64>>,
        mut c: Vec<Vec<f64>>,
        teacher: Option<(&[f64], &mut StdRng, f64)>,
    ) -> (DecoderTrace, Vec<bool>) {
        let mut trace = DecoderTrace {
            caches: Vec::with_capacity(self.cfg.horizon),
            h_top: Vec::with_capacity(self.cfg.horizon),
            outputs: Vec::with_capacity(self.cfg.horizon),
        };
        let mut forced = Vec::with_capacity(self.cfg.horizon);
        let mut prev = 0.0f64; // start token
        let mut teacher = teacher;
        for t in 0..self.cfg.horizon {
            let mut input = vec![prev];
            let mut step_caches = Vec::with_capacity(self.cfg.layers);
            for (l, layer) in self.dec.iter().enumerate() {
                let (hn, cn, cache) = layer.forward(&input, &h[l], &c[l]);
                input = hn.clone();
                h[l] = hn;
                c[l] = cn;
                step_caches.push(cache);
            }
            let h_top = h[self.cfg.layers - 1].clone();
            let y: f64 = self.b_out.w[0]
                + self
                    .w_out
                    .w
                    .iter()
                    .zip(&h_top)
                    .map(|(w, h)| w * h)
                    .sum::<f64>();
            trace.caches.push(step_caches);
            trace.h_top.push(h_top);
            trace.outputs.push(y);

            // Next decoder input: teacher-forced truth or own output.
            prev = if let Some((targets, rng, p)) = &mut teacher {
                if rng.gen::<f64>() < *p {
                    forced.push(true);
                    targets[t]
                } else {
                    forced.push(false);
                    y
                }
            } else {
                forced.push(false);
                y
            };
        }
        (trace, forced)
    }

    /// Predict `horizon` future (standardized) values for one input
    /// sequence of feature vectors, or `None` when the sequence is empty
    /// (a warm-up session has nothing to encode). The serving engine uses
    /// this surface so a short history can never unwind a shard worker.
    pub fn predict_checked(&self, xs: &[Vec<f64>]) -> Option<Vec<f64>> {
        if xs.is_empty() {
            return None;
        }
        let (h, c, _) = self.run_encoder(xs);
        let (trace, _) = self.run_decoder(h, c, None);
        Some(trace.outputs)
    }

    /// Predict `horizon` future (standardized) values for one input
    /// sequence of feature vectors.
    ///
    /// Panics on an empty input sequence; use [`Self::predict_checked`]
    /// where the history length is not statically guaranteed.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        self.predict_checked(xs)
            .expect("cannot predict from an empty sequence")
    }

    /// Batched inference: decode `horizon` (standardized) values for a
    /// block of input sequences at once, or `None` if any lane is empty.
    /// Lanes may have different lengths.
    ///
    /// Lane `i` of the result is bit-identical to `predict(&seqs[i])`:
    /// the fused-gate matmuls are blocked over weight rows (see
    /// [`super::batched_matvec_bias`]) so each weight row is applied to
    /// every lane while hot in cache — batching reorders memory traffic,
    /// never the per-lane floating-point operations. This is what lets the
    /// serving engine drain B sessions per dispatch without perturbing the
    /// bit-exactness contract.
    pub fn predict_batch(&self, seqs: &[&[Vec<f64>]]) -> Option<Vec<Vec<f64>>> {
        if seqs.iter().any(|s| s.is_empty()) {
            return None;
        }
        let lanes = seqs.len();
        if lanes == 0 {
            return Some(Vec::new());
        }
        let hdim = self.cfg.hidden;
        let layers = self.cfg.layers;
        // Per-layer, per-lane recurrent state; encoder finals seed the
        // decoder exactly as in the single-sequence path.
        let mut h: Vec<Vec<Vec<f64>>> = vec![vec![vec![0.0; hdim]; lanes]; layers];
        let mut c: Vec<Vec<Vec<f64>>> = vec![vec![vec![0.0; hdim]; lanes]; layers];

        let max_len = seqs.iter().map(|s| s.len()).max().unwrap_or(0);
        for t in 0..max_len {
            let active: Vec<usize> = (0..lanes).filter(|&b| t < seqs[b].len()).collect();
            let mut input: Vec<Vec<f64>> = active.iter().map(|&b| seqs[b][t].clone()).collect();
            for (l, layer) in self.enc.iter().enumerate() {
                let xs: Vec<&[f64]> = input.iter().map(|v| v.as_slice()).collect();
                let hp: Vec<&[f64]> = active.iter().map(|&b| h[l][b].as_slice()).collect();
                let cp: Vec<&[f64]> = active.iter().map(|&b| c[l][b].as_slice()).collect();
                let (hn, cn) = layer.forward_batch(&xs, &hp, &cp);
                for (&b, cnb) in active.iter().zip(cn) {
                    c[l][b] = cnb;
                }
                for (&b, hnb) in active.iter().zip(&hn) {
                    h[l][b] = hnb.clone();
                }
                input = hn;
            }
        }

        let mut outputs: Vec<Vec<f64>> = vec![Vec::with_capacity(self.cfg.horizon); lanes];
        let mut prev: Vec<f64> = vec![0.0; lanes]; // start token per lane
        for _ in 0..self.cfg.horizon {
            let mut input: Vec<Vec<f64>> = prev.iter().map(|&p| vec![p]).collect();
            for (l, layer) in self.dec.iter().enumerate() {
                let xs: Vec<&[f64]> = input.iter().map(|v| v.as_slice()).collect();
                let hp: Vec<&[f64]> = h[l].iter().map(|v| v.as_slice()).collect();
                let cp: Vec<&[f64]> = c[l].iter().map(|v| v.as_slice()).collect();
                let (hn, cn) = layer.forward_batch(&xs, &hp, &cp);
                c[l] = cn;
                h[l] = hn.clone();
                input = hn;
            }
            for (b, (out, prev)) in outputs.iter_mut().zip(prev.iter_mut()).enumerate() {
                let h_top = &h[layers - 1][b];
                let y: f64 = self.b_out.w[0]
                    + self
                        .w_out
                        .w
                        .iter()
                        .zip(h_top)
                        .map(|(w, h)| w * h)
                        .sum::<f64>();
                out.push(y);
                *prev = y;
            }
        }
        Some(outputs)
    }

    /// Serialize the configuration and all weights (raw IEEE-754 bits, so
    /// a round trip is bit-exact). Optimizer moments are deliberately not
    /// persisted: a decoded model serves identically, and simply restarts
    /// Adam cold if it is ever retrained.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.cfg.input_dim);
        w.put_len(self.cfg.hidden);
        w.put_len(self.cfg.layers);
        w.put_len(self.cfg.horizon);
        w.put_len(self.cfg.epochs);
        w.put_len(self.cfg.batch_size);
        w.put_f64(self.cfg.lr);
        w.put_f64(self.cfg.teacher_forcing);
        w.put_f64(self.cfg.clip_norm);
        w.put_u64(self.cfg.seed);
        for layer in self.enc.iter().chain(self.dec.iter()) {
            w.put_f64s(&layer.w.w);
            w.put_f64s(&layer.b.w);
        }
        w.put_f64s(&self.w_out.w);
        w.put_f64s(&self.b_out.w);
    }

    /// Inverse of [`Self::encode`]. Every length is validated against the
    /// decoded architecture, so corrupt input errors instead of panicking.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let cfg = Seq2SeqConfig {
            input_dim: r.len()?,
            hidden: r.len()?,
            layers: r.len()?,
            horizon: r.len()?,
            epochs: r.len()?,
            batch_size: r.len()?,
            lr: r.f64()?,
            teacher_forcing: r.f64()?,
            clip_norm: r.f64()?,
            seed: r.u64()?,
        };
        if cfg.input_dim == 0 || cfg.hidden == 0 || cfg.layers == 0 || cfg.horizon == 0 {
            return Err(CodecError::Invalid(
                "degenerate Seq2Seq architecture".into(),
            ));
        }
        fn param(r: &mut ByteReader<'_>, expect: usize, what: &str) -> Result<Param, CodecError> {
            let vals = r.f64s()?;
            if vals.len() != expect {
                return Err(CodecError::Invalid(format!(
                    "{what}: {} weights, expected {expect}",
                    vals.len()
                )));
            }
            let mut p = Param::zeros(expect);
            p.w = vals;
            Ok(p)
        }
        fn layer(
            r: &mut ByteReader<'_>,
            input_dim: usize,
            hidden: usize,
            what: &str,
        ) -> Result<LstmLayer, CodecError> {
            let wlen = input_dim
                .checked_add(hidden)
                .and_then(|cols| cols.checked_mul(4).and_then(|v| v.checked_mul(hidden)))
                .ok_or_else(|| CodecError::Invalid("Seq2Seq layer shape overflows".into()))?;
            Ok(LstmLayer {
                input_dim,
                hidden,
                w: param(r, wlen, what)?,
                b: param(r, 4 * hidden, what)?,
            })
        }
        let enc = (0..cfg.layers)
            .map(|l| {
                let input = if l == 0 { cfg.input_dim } else { cfg.hidden };
                layer(r, input, cfg.hidden, "encoder layer")
            })
            .collect::<Result<Vec<_>, _>>()?;
        let dec = (0..cfg.layers)
            .map(|l| {
                let input = if l == 0 { 1 } else { cfg.hidden };
                layer(r, input, cfg.hidden, "decoder layer")
            })
            .collect::<Result<Vec<_>, _>>()?;
        let w_out = param(r, cfg.hidden, "output head weights")?;
        let b_out = param(r, 1, "output head bias")?;
        Ok(Seq2Seq {
            adam: Adam::new(cfg.lr),
            cfg,
            enc,
            dec,
            w_out,
            b_out,
        })
    }

    /// Forward + backward on one sample; accumulates gradients and returns
    /// the MSE loss.
    fn loss_and_grad(&mut self, xs: &[Vec<f64>], ys: &[f64], rng: &mut StdRng) -> f64 {
        assert_eq!(ys.len(), self.cfg.horizon, "target length mismatch");
        let layers = self.cfg.layers;
        let hdim = self.cfg.hidden;

        let (h_enc, c_enc, enc_caches) = self.run_encoder(xs);
        let tf = self.cfg.teacher_forcing;
        let (trace, _forced) = self.run_decoder(h_enc, c_enc, Some((ys, rng, tf)));

        let k = self.cfg.horizon as f64;
        let loss: f64 = trace
            .outputs
            .iter()
            .zip(ys)
            .map(|(o, y)| (o - y) * (o - y))
            .sum::<f64>()
            / k;

        // ---- Backward through the decoder ----
        // dL/dy_t = 2 (y_t − t_t) / k
        let mut dh_next: Vec<Vec<f64>> = vec![vec![0.0; hdim]; layers];
        let mut dc_next: Vec<Vec<f64>> = vec![vec![0.0; hdim]; layers];
        for t in (0..self.cfg.horizon).rev() {
            let dy = 2.0 * (trace.outputs[t] - ys[t]) / k;
            // Output head grads.
            self.b_out.g[0] += dy;
            let mut dh_top = dh_next[layers - 1].clone();
            for (j, dh) in dh_top.iter_mut().enumerate() {
                self.w_out.g[j] += dy * trace.h_top[t][j];
                *dh += dy * self.w_out.w[j];
            }
            // Through the stacked layers, top to bottom.
            let mut dh_layer = dh_top;
            for l in (0..layers).rev() {
                let dc_layer = dc_next[l].clone();
                let (dx, dh_prev, dc_prev) =
                    self.dec[l].backward(&dh_layer, &dc_layer, &trace.caches[t][l]);
                dh_next[l] = dh_prev;
                dc_next[l] = dc_prev;
                // dx flows into the layer below's hidden output at this step
                // (for l > 0); at l == 0 the feedback edge is detached.
                if l > 0 {
                    dh_layer = dx.iter().zip(&dh_next[l - 1]).map(|(a, b)| a + b).collect();
                }
            }
        }

        // ---- Backward through the encoder ----
        // Decoder's initial states were the encoder's finals.
        let mut dh = dh_next;
        let mut dc = dc_next;
        for t in (0..xs.len()).rev() {
            let mut dh_from_above: Vec<f64> = vec![0.0; hdim];
            for l in (0..layers).rev() {
                let dh_total: Vec<f64> = dh[l]
                    .iter()
                    .zip(&dh_from_above)
                    .map(|(a, b)| a + b)
                    .collect();
                let (dx, dh_prev, dc_prev) =
                    self.enc[l].backward(&dh_total, &dc[l], &enc_caches[t][l]);
                dh[l] = dh_prev;
                dc[l] = dc_prev;
                dh_from_above = if l > 0 { dx } else { vec![0.0; hdim] };
            }
        }
        loss
    }

    fn zero_grads(&mut self) {
        for l in self.enc.iter_mut().chain(self.dec.iter_mut()) {
            l.w.zero_grad();
            l.b.zero_grad();
        }
        self.w_out.zero_grad();
        self.b_out.zero_grad();
    }

    /// Visit every parameter tensor mutably, in a fixed order (encoder
    /// layers, decoder layers, output head).
    fn for_each_param(&mut self, mut f: impl FnMut(&mut Param)) {
        for l in self.enc.iter_mut().chain(self.dec.iter_mut()) {
            f(&mut l.w);
            f(&mut l.b);
        }
        f(&mut self.w_out);
        f(&mut self.b_out);
    }

    /// Immutable twin of [`Self::for_each_param`], same fixed order.
    fn for_each_param_ref(&self, mut f: impl FnMut(&Param)) {
        for l in self.enc.iter().chain(self.dec.iter()) {
            f(&l.w);
            f(&l.b);
        }
        f(&self.w_out);
        f(&self.b_out);
    }

    /// Number of parameter tensors [`Self::for_each_param`] visits.
    fn param_count(&self) -> usize {
        4 * self.cfg.layers + 2
    }

    fn clip_and_step(&mut self, scale: f64) {
        // Scale by 1/batch, then clip by global norm, then Adam. Each phase
        // is one sequential pass over the parameters in the same fixed
        // order, so the update is bit-identical to a single fused sweep.
        let clip_norm = self.cfg.clip_norm;
        self.for_each_param(|p| p.scale_grad(scale));
        let mut norm_sq = 0.0;
        self.for_each_param(|p| norm_sq += p.grad_norm_sq());
        let norm = norm_sq.sqrt();
        if norm > clip_norm {
            let s = clip_norm / norm;
            self.for_each_param(|p| p.scale_grad(s));
        }
        self.adam.begin_step();
        let adam = self.adam;
        self.for_each_param(|p| adam.update(p));
    }

    /// Train on `(inputs, targets)` pairs; returns the mean training loss
    /// per epoch. Targets should be standardized.
    pub fn train(&mut self, inputs: &[Vec<Vec<f64>>], targets: &[Vec<f64>]) -> Vec<f64> {
        // One epoch loop serves plain, early-stopped and resumed training,
        // so the paths cannot drift apart.
        self.train_resumable(inputs, targets, 0.0, 0, None, 0, |_| {})
    }

    /// [`Self::train`] with two production affordances, both off by default:
    ///
    /// * **Early stopping** — when `val_fraction > 0` and `patience >= 1`,
    ///   a deterministic interleaved slice of the samples is held out;
    ///   after each epoch the model is scored on it (autoregressive MSE, no
    ///   teacher forcing), training stops once `patience` epochs pass
    ///   without improvement, and the best epoch's weights are restored.
    /// * **Crash recovery** — every `checkpoint_every` epochs (0 = never)
    ///   the full training state (weights, Adam moments and step counter,
    ///   best-epoch snapshot, loss history) is handed to `on_checkpoint`;
    ///   a run restarted from that [`Seq2SeqTrainState`] converges
    ///   **bit-identically** to an uninterrupted run.
    ///
    /// `StdRng` is not serializable, so resume fast-forwards a fresh seeded
    /// RNG by replaying exactly what the completed epochs consumed: one
    /// in-place shuffle of the (persistent!) order permutation plus one
    /// `f64` draw per decoder step per training sample. Panics if the
    /// checkpoint disagrees with the config, sample count or early-stop
    /// settings — resuming against different inputs would silently diverge.
    #[allow(clippy::too_many_arguments)]
    pub fn train_resumable(
        &mut self,
        inputs: &[Vec<Vec<f64>>],
        targets: &[Vec<f64>],
        val_fraction: f64,
        patience: usize,
        resume: Option<Seq2SeqTrainState>,
        checkpoint_every: usize,
        mut on_checkpoint: impl FnMut(&Seq2SeqTrainState),
    ) -> Vec<f64> {
        assert_eq!(
            inputs.len(),
            targets.len(),
            "inputs/targets length mismatch"
        );
        assert!(!inputs.is_empty(), "cannot train on empty data");
        let n = inputs.len();
        let (train_idx, val_idx) = split_validation(n, val_fraction, patience);

        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..train_idx.len()).collect();
        let draws_per_epoch = train_idx.len() * self.cfg.horizon;

        let (mut epoch_losses, mut best, start_epoch) = match resume {
            None => (Vec::with_capacity(self.cfg.epochs), None, 0),
            Some(st) => {
                assert_eq!(
                    st.model.cfg, self.cfg,
                    "checkpoint config mismatch on resume"
                );
                assert_eq!(
                    st.n_samples, n,
                    "checkpoint sample count mismatch on resume"
                );
                assert_eq!(
                    st.val_fraction.to_bits(),
                    val_fraction.to_bits(),
                    "checkpoint validation fraction mismatch on resume"
                );
                assert_eq!(
                    st.patience, patience,
                    "checkpoint patience mismatch on resume"
                );
                // Replay the RNG stream of the completed epochs. The order
                // permutation is shuffled in place epoch over epoch, so the
                // shuffles must be replayed on the same evolving vector,
                // interleaved with each epoch's teacher-forcing draws.
                for _ in 0..st.epochs_done {
                    order.shuffle(&mut rng);
                    for _ in 0..draws_per_epoch {
                        let _ = rng.gen::<f64>();
                    }
                }
                let start = st.epochs_done;
                *self = st.model;
                (st.epoch_losses, st.best, start)
            }
        };

        for epoch in start_epoch..self.cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(self.cfg.batch_size) {
                self.zero_grads();
                let mut batch_loss = 0.0;
                for &o in batch {
                    let i = train_idx[o];
                    batch_loss += self.loss_and_grad(&inputs[i], &targets[i], &mut rng);
                }
                self.clip_and_step(1.0 / batch.len() as f64);
                epoch_loss += batch_loss;
            }
            epoch_losses.push(epoch_loss / train_idx.len() as f64);

            // Early stopping: score the held-out slice autoregressively
            // (the way the model is served), track the best epoch.
            let mut stop = false;
            if !val_idx.is_empty() {
                let mut val_loss = 0.0;
                for &i in &val_idx {
                    let pred = self.predict(&inputs[i]);
                    val_loss += pred
                        .iter()
                        .zip(&targets[i])
                        .map(|(p, y)| (p - y) * (p - y))
                        .sum::<f64>()
                        / self.cfg.horizon as f64;
                }
                val_loss /= val_idx.len() as f64;
                match &best {
                    Some(b) if val_loss >= b.val_loss => {
                        if epoch - b.epoch >= patience {
                            stop = true;
                        }
                    }
                    _ => {
                        best = Some(BestEpoch {
                            val_loss,
                            epoch,
                            weights: self.snapshot_weights(),
                        });
                    }
                }
            }

            let done = epoch + 1;
            if !stop
                && checkpoint_every > 0
                && done.is_multiple_of(checkpoint_every)
                && done < self.cfg.epochs
            {
                on_checkpoint(&Seq2SeqTrainState {
                    model: self.clone(),
                    epochs_done: done,
                    n_samples: n,
                    val_fraction,
                    patience,
                    epoch_losses: epoch_losses.clone(),
                    best: best.clone(),
                });
            }
            if stop {
                break;
            }
        }

        // Whether training ran out of epochs or stopped early, serve the
        // best validated weights when a validation slice exists.
        if let Some(b) = best {
            self.restore_weights(&b.weights);
        }
        epoch_losses
    }

    /// Clone every weight tensor, in [`Self::for_each_param`] order.
    fn snapshot_weights(&self) -> Vec<Vec<f64>> {
        let mut ws = Vec::with_capacity(self.param_count());
        self.for_each_param_ref(|p| ws.push(p.w.clone()));
        ws
    }

    fn restore_weights(&mut self, ws: &[Vec<f64>]) {
        assert_eq!(
            ws.len(),
            self.param_count(),
            "weight snapshot shape mismatch"
        );
        let mut it = ws.iter();
        self.for_each_param(|p| {
            let w = it.next().expect("length checked above");
            assert_eq!(w.len(), p.w.len(), "weight tensor shape mismatch");
            p.w.clone_from(w);
        });
    }
}

/// Deterministic interleaved train/validation split: every `k`-th sample
/// (k ≈ 1 / `val_fraction`, at least 2) goes to validation. Returns all
/// samples as training data when early stopping is disabled or the set is
/// too small to split.
fn split_validation(n: usize, val_fraction: f64, patience: usize) -> (Vec<usize>, Vec<usize>) {
    if val_fraction <= 0.0 || patience == 0 || n < 4 {
        return ((0..n).collect(), Vec::new());
    }
    let k = ((1.0 / val_fraction).round() as usize).max(2);
    let (mut train, mut val) = (Vec::new(), Vec::new());
    for i in 0..n {
        if i.is_multiple_of(k) {
            val.push(i);
        } else {
            train.push(i);
        }
    }
    if train.is_empty() || val.is_empty() {
        return ((0..n).collect(), Vec::new());
    }
    (train, val)
}

/// The best validated epoch seen so far (early stopping bookkeeping).
#[derive(Debug, Clone)]
struct BestEpoch {
    val_loss: f64,
    epoch: usize,
    /// Weight tensors in `for_each_param` order.
    weights: Vec<Vec<f64>>,
}

/// A mid-training Seq2Seq snapshot: the model **with** its Adam moments
/// and step counter, plus the epoch bookkeeping needed to resume
/// bit-identically (see [`Seq2Seq::train_resumable`]).
#[derive(Debug, Clone)]
pub struct Seq2SeqTrainState {
    model: Seq2Seq,
    epochs_done: usize,
    n_samples: usize,
    val_fraction: f64,
    patience: usize,
    epoch_losses: Vec<f64>,
    best: Option<BestEpoch>,
}

impl Seq2SeqTrainState {
    /// Epochs completed when this snapshot was taken.
    pub fn epochs_done(&self) -> usize {
        self.epochs_done
    }

    /// True when this snapshot can resume a run of `model` over `n_samples`
    /// sequences with the given early-stopping settings — the exact
    /// preconditions [`Seq2Seq::train_resumable`] asserts, exposed so
    /// callers can degrade to a cold start instead of panicking on a stale
    /// checkpoint.
    pub fn resumes(
        &self,
        model: &Seq2Seq,
        n_samples: usize,
        val_fraction: f64,
        patience: usize,
    ) -> bool {
        self.model.cfg == model.cfg
            && self.n_samples == n_samples
            && self.val_fraction.to_bits() == val_fraction.to_bits()
            && self.patience == patience
    }

    /// Serialize the full training state. Unlike [`Seq2Seq::encode`] this
    /// includes the Adam moments and step counter — a resumed optimizer
    /// must continue exactly where it left off, not restart cold.
    pub fn encode(&self, w: &mut ByteWriter) {
        self.model.encode(w);
        self.model.for_each_param_ref(|p| {
            w.put_f64s(&p.m);
            w.put_f64s(&p.v);
        });
        w.put_u64(self.model.adam.t);
        w.put_len(self.epochs_done);
        w.put_len(self.n_samples);
        w.put_f64(self.val_fraction);
        w.put_len(self.patience);
        w.put_f64s(&self.epoch_losses);
        match &self.best {
            None => w.put_u8(0),
            Some(b) => {
                w.put_u8(1);
                w.put_f64(b.val_loss);
                w.put_len(b.epoch);
                w.put_len(b.weights.len());
                for t in &b.weights {
                    w.put_f64s(t);
                }
            }
        }
    }

    /// Inverse of [`Self::encode`]. Every tensor length is validated
    /// against the decoded architecture.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let mut model = Seq2Seq::decode(r)?;
        let n_params = model.param_count();
        let mut shapes = Vec::with_capacity(n_params);
        model.for_each_param_ref(|p| shapes.push(p.w.len()));
        let mut moments = Vec::with_capacity(n_params);
        for &len in &shapes {
            let m = r.f64s()?;
            let v = r.f64s()?;
            if m.len() != len || v.len() != len {
                return Err(CodecError::Invalid(format!(
                    "Adam moment tensor of {} / {} values, expected {len}",
                    m.len(),
                    v.len()
                )));
            }
            moments.push((m, v));
        }
        let mut it = moments.into_iter();
        model.for_each_param(|p| {
            let (m, v) = it.next().expect("count checked above");
            p.m = m;
            p.v = v;
        });
        model.adam.t = r.u64()?;
        let epochs_done = r.len()?;
        let n_samples = r.len()?;
        let val_fraction = r.f64()?;
        let patience = r.len()?;
        let epoch_losses = r.f64s()?;
        let best = match r.u8()? {
            0 => None,
            1 => {
                let val_loss = r.f64()?;
                let epoch = r.len()?;
                let n_tensors = r.len()?;
                if n_tensors != n_params {
                    return Err(CodecError::Invalid(format!(
                        "best-epoch snapshot of {n_tensors} tensors, expected {n_params}"
                    )));
                }
                let mut weights = Vec::with_capacity(n_params);
                for &len in &shapes {
                    let t = r.f64s()?;
                    if t.len() != len {
                        return Err(CodecError::Invalid(format!(
                            "best-epoch tensor of {} values, expected {len}",
                            t.len()
                        )));
                    }
                    weights.push(t);
                }
                Some(BestEpoch {
                    val_loss,
                    epoch,
                    weights,
                })
            }
            tag => {
                return Err(CodecError::BadTag {
                    what: "best-epoch presence",
                    tag,
                })
            }
        };
        Ok(Seq2SeqTrainState {
            model,
            epochs_done,
            n_samples,
            val_fraction,
            patience,
            epoch_losses,
            best,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> Seq2SeqConfig {
        Seq2SeqConfig {
            input_dim: 2,
            hidden: 4,
            layers: 2,
            horizon: 3,
            epochs: 1,
            batch_size: 4,
            lr: 1e-2,
            teacher_forcing: 1.0, // deterministic path for grad checks
            clip_norm: 1e9,
            seed: 7,
        }
    }

    #[test]
    fn predict_returns_horizon_values() {
        let m = Seq2Seq::new(tiny_cfg());
        let xs = vec![vec![0.1, 0.2], vec![0.3, -0.1], vec![0.0, 0.5]];
        assert_eq!(m.predict(&xs).len(), 3);
    }

    #[test]
    fn prediction_is_deterministic() {
        let m = Seq2Seq::new(tiny_cfg());
        let xs = vec![vec![0.1, 0.2], vec![0.3, -0.1]];
        assert_eq!(m.predict(&xs), m.predict(&xs));
    }

    #[test]
    fn predict_checked_handles_empty_history() {
        let m = Seq2Seq::new(tiny_cfg());
        assert_eq!(m.predict_checked(&[]), None);
        let xs = vec![vec![0.1, 0.2]];
        assert_eq!(m.predict_checked(&xs), Some(m.predict(&xs)));
    }

    #[test]
    fn predict_batch_bit_matches_single_lane_predict() {
        let m = Seq2Seq::new(tiny_cfg());
        // Lanes of different lengths, including one long enough to exercise
        // several encoder steps.
        let seqs: Vec<Vec<Vec<f64>>> = (0..9)
            .map(|b| {
                (0..=(b % 4))
                    .map(|t| {
                        let s = (b * 7 + t) as f64;
                        vec![(s * 0.31).sin(), (s * 0.17).cos()]
                    })
                    .collect()
            })
            .collect();
        let refs: Vec<&[Vec<f64>]> = seqs.iter().map(|s| s.as_slice()).collect();
        for width in [1usize, 2, 3, 8, 9] {
            for chunk in refs.chunks(width) {
                let batched = m.predict_batch(chunk).unwrap();
                for (lane, seq) in chunk.iter().enumerate() {
                    let single = m.predict(seq);
                    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(
                        bits(&batched[lane]),
                        bits(&single),
                        "lane {lane} of width-{width} batch diverged"
                    );
                }
            }
        }
        // Any empty lane poisons the whole batch into a typed None.
        let with_empty: Vec<&[Vec<f64>]> = vec![&seqs[0], &[]];
        assert_eq!(m.predict_batch(&with_empty), None);
        assert_eq!(m.predict_batch(&[]), Some(Vec::new()));
    }

    #[test]
    fn codec_round_trip_is_bit_identical() {
        let mut m = Seq2Seq::new(tiny_cfg());
        // A trained model has non-initial weights — round-trip those.
        let inputs: Vec<Vec<Vec<f64>>> = (0..8)
            .map(|s| {
                (0..4)
                    .map(|t| vec![(s as f64 + t as f64 * 0.5).sin(), (t as f64).cos()])
                    .collect()
            })
            .collect();
        let targets: Vec<Vec<f64>> = (0..8)
            .map(|s| (0..3).map(|t| ((s + t) as f64 * 0.25).sin()).collect())
            .collect();
        m.train(&inputs, &targets);

        let mut w = ByteWriter::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let restored = Seq2Seq::decode(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.config(), m.config());
        let xs = vec![vec![0.4, -0.2], vec![0.1, 0.9], vec![-0.3, 0.0]];
        let a = m.predict(&xs);
        let b = restored.predict(&xs);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "decoded model must predict bit-identically"
        );

        // Every truncation must error, never panic.
        for cut in (0..bytes.len()).step_by(41) {
            let mut r = ByteReader::new(&bytes[..cut]);
            let outcome = Seq2Seq::decode(&mut r).and_then(|_| r.finish());
            assert!(outcome.is_err(), "truncation at {cut} bytes must fail");
        }
    }

    /// Full-model finite-difference gradient check with teacher forcing = 1
    /// (eliminates sampling randomness from the loss path).
    #[test]
    fn gradient_check_end_to_end() {
        let cfg = tiny_cfg();
        let mut m = Seq2Seq::new(cfg);
        let xs = vec![vec![0.2, -0.4], vec![0.5, 0.1]];
        let ys = vec![0.3, -0.2, 0.8];

        let loss_of = |m: &mut Seq2Seq| -> f64 {
            // With tf = 1.0 the path is deterministic regardless of RNG.
            let mut rng = StdRng::seed_from_u64(99);
            // Use a cloned model so grads don't touch the original.
            let mut probe = m.clone();
            probe.loss_and_grad(&xs, &ys, &mut rng)
        };

        let mut rng = StdRng::seed_from_u64(99);
        m.zero_grads();
        let _ = m.loss_and_grad(&xs, &ys, &mut rng);

        let eps = 1e-6;
        // Encoder layer-0 weights (tests BPTT through the enc/dec boundary).
        for &idx in &[0usize, 5, 17, 30] {
            let orig = m.enc[0].w.w[idx];
            m.enc[0].w.w[idx] = orig + eps;
            let lp = loss_of(&mut m);
            m.enc[0].w.w[idx] = orig - eps;
            let lm = loss_of(&mut m);
            m.enc[0].w.w[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = m.enc[0].w.g[idx];
            assert!(
                (numeric - analytic).abs() < 1e-5 * (1.0 + numeric.abs()),
                "enc w[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Decoder layer-1 weights.
        for &idx in &[0usize, 9, 25] {
            let orig = m.dec[1].w.w[idx];
            m.dec[1].w.w[idx] = orig + eps;
            let lp = loss_of(&mut m);
            m.dec[1].w.w[idx] = orig - eps;
            let lm = loss_of(&mut m);
            m.dec[1].w.w[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = m.dec[1].w.g[idx];
            assert!(
                (numeric - analytic).abs() < 1e-5 * (1.0 + numeric.abs()),
                "dec w[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Output head.
        for &idx in &[0usize, 3] {
            let orig = m.w_out.w[idx];
            m.w_out.w[idx] = orig + eps;
            let lp = loss_of(&mut m);
            m.w_out.w[idx] = orig - eps;
            let lm = loss_of(&mut m);
            m.w_out.w[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = m.w_out.g[idx];
            assert!(
                (numeric - analytic).abs() < 1e-5 * (1.0 + numeric.abs()),
                "w_out[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    fn sine_task(n: usize) -> (Vec<Vec<Vec<f64>>>, Vec<Vec<f64>>) {
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for s in 0..n {
            let t0 = s as f64 * 0.37;
            let hist: Vec<Vec<f64>> = (0..6).map(|i| vec![(t0 + i as f64 * 0.5).sin()]).collect();
            let fut: Vec<f64> = (6..9).map(|i| (t0 + i as f64 * 0.5).sin()).collect();
            inputs.push(hist);
            targets.push(fut);
        }
        (inputs, targets)
    }

    fn model_bytes(m: &Seq2Seq) -> Vec<u8> {
        let mut w = ByteWriter::new();
        m.encode(&mut w);
        w.into_bytes()
    }

    #[test]
    fn resume_from_any_checkpoint_is_bit_identical() {
        let cfg = Seq2SeqConfig {
            input_dim: 1,
            hidden: 6,
            layers: 2,
            horizon: 3,
            epochs: 9,
            batch_size: 8,
            lr: 5e-3,
            teacher_forcing: 0.6, // partial forcing: the RNG stream matters
            clip_norm: 5.0,
            seed: 11,
        };
        let (inputs, targets) = sine_task(24);
        let mut uninterrupted = Seq2Seq::new(cfg);
        uninterrupted.train(&inputs, &targets);
        let want = model_bytes(&uninterrupted);

        let mut checkpoints = Vec::new();
        let mut probe = Seq2Seq::new(cfg);
        probe.train_resumable(&inputs, &targets, 0.0, 0, None, 2, |st| {
            checkpoints.push(st.clone());
        });
        assert_eq!(model_bytes(&probe), want, "checkpointing must not perturb");
        assert_eq!(checkpoints.len(), 4, "9 epochs / every 2 → 4 checkpoints");
        for st in checkpoints {
            let epochs = st.epochs_done();
            let mut resumed = Seq2Seq::new(cfg);
            resumed.train_resumable(&inputs, &targets, 0.0, 0, Some(st), 0, |_| {});
            assert_eq!(
                model_bytes(&resumed),
                want,
                "resume from epoch {epochs} diverged"
            );
        }
    }

    #[test]
    fn train_state_codec_round_trips_and_resumes_bit_identically() {
        let cfg = Seq2SeqConfig {
            input_dim: 1,
            hidden: 5,
            layers: 1,
            horizon: 3,
            epochs: 6,
            batch_size: 8,
            lr: 5e-3,
            teacher_forcing: 0.5,
            clip_norm: 5.0,
            seed: 4,
        };
        let (inputs, targets) = sine_task(20);
        let mut uninterrupted = Seq2Seq::new(cfg);
        uninterrupted.train(&inputs, &targets);
        let want = model_bytes(&uninterrupted);

        let mut saved = None;
        let mut probe = Seq2Seq::new(cfg);
        probe.train_resumable(&inputs, &targets, 0.0, 0, None, 3, |st| {
            saved = Some(st.clone());
        });
        let st = saved.unwrap();
        let mut w = ByteWriter::new();
        st.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let decoded = Seq2SeqTrainState::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded.epochs_done(), st.epochs_done());

        // The state that crossed the byte boundary resumes identically —
        // Adam moments and step counter included.
        let mut resumed = Seq2Seq::new(cfg);
        resumed.train_resumable(&inputs, &targets, 0.0, 0, Some(decoded), 0, |_| {});
        assert_eq!(model_bytes(&resumed), want);

        // Truncated states fail cleanly.
        for cut in (0..bytes.len()).step_by(37).chain([bytes.len() - 1]) {
            let mut r = ByteReader::new(&bytes[..cut]);
            let outcome = Seq2SeqTrainState::decode(&mut r).and_then(|_| r.finish());
            assert!(outcome.is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn early_stopping_restores_best_epoch_and_remains_resumable() {
        let cfg = Seq2SeqConfig {
            input_dim: 1,
            hidden: 8,
            layers: 1,
            horizon: 3,
            epochs: 14,
            batch_size: 8,
            lr: 1e-2,
            teacher_forcing: 0.7,
            clip_norm: 5.0,
            seed: 2,
        };
        let (inputs, targets) = sine_task(28);
        let (val_fraction, patience) = (0.25, 2);

        let mut plain = Seq2Seq::new(cfg);
        let losses =
            plain.train_resumable(&inputs, &targets, val_fraction, patience, None, 0, |_| {});
        assert!(!losses.is_empty());
        let want = model_bytes(&plain);

        // The restored weights really are a validated snapshot: re-scoring
        // the held-out slice beats (or ties) every later epoch by
        // construction, so at minimum the final weights must reproduce the
        // best recorded validation loss.
        let (train_idx, val_idx) = split_validation(inputs.len(), val_fraction, patience);
        assert!(!val_idx.is_empty() && !train_idx.is_empty());
        assert!(val_idx.len() < train_idx.len());

        // Early stopping composes with checkpoint/resume bit-identically.
        let mut checkpoints = Vec::new();
        let mut probe = Seq2Seq::new(cfg);
        probe.train_resumable(&inputs, &targets, val_fraction, patience, None, 3, |st| {
            checkpoints.push(st.clone());
        });
        assert_eq!(model_bytes(&probe), want);
        for st in checkpoints {
            let epochs = st.epochs_done();
            let mut resumed = Seq2Seq::new(cfg);
            resumed.train_resumable(
                &inputs,
                &targets,
                val_fraction,
                patience,
                Some(st),
                0,
                |_| {},
            );
            assert_eq!(
                model_bytes(&resumed),
                want,
                "early-stopped resume from epoch {epochs} diverged"
            );
        }
    }

    #[test]
    fn validation_split_is_deterministic_and_guarded() {
        assert_eq!(split_validation(10, 0.0, 3).1.len(), 0);
        assert_eq!(split_validation(10, 0.25, 0).1.len(), 0);
        assert_eq!(split_validation(3, 0.25, 3).1.len(), 0);
        let (train, val) = split_validation(12, 0.25, 2);
        assert_eq!(val, vec![0, 4, 8]);
        assert_eq!(train.len(), 9);
        // Fractions above one half still leave training data (k >= 2).
        let (train, val) = split_validation(10, 0.9, 2);
        assert!(!train.is_empty() && !val.is_empty());
    }

    #[test]
    fn training_reduces_loss_on_learnable_sequence() {
        // Predict the continuation of a noiseless sine from its history.
        let cfg = Seq2SeqConfig {
            input_dim: 1,
            hidden: 12,
            layers: 2,
            horizon: 4,
            epochs: 25,
            batch_size: 16,
            lr: 5e-3,
            teacher_forcing: 0.8,
            clip_norm: 5.0,
            seed: 3,
        };
        let mut inputs = Vec::new();
        let mut targets = Vec::new();
        for s in 0..96 {
            let t0 = s as f64 * 0.37;
            let hist: Vec<Vec<f64>> = (0..8).map(|i| vec![(t0 + i as f64 * 0.5).sin()]).collect();
            let fut: Vec<f64> = (8..12).map(|i| (t0 + i as f64 * 0.5).sin()).collect();
            inputs.push(hist);
            targets.push(fut);
        }
        let mut m = Seq2Seq::new(cfg);
        let losses = m.train(&inputs, &targets);
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(
            last < first * 0.35,
            "loss did not drop enough: {first} → {last}"
        );
        // And predictions beat the trivial zero predictor on a held-out phase.
        let hist: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![(100.0 + i as f64 * 0.5).sin()])
            .collect();
        let truth: Vec<f64> = (8..12).map(|i| (100.0f64 + i as f64 * 0.5).sin()).collect();
        let pred = m.predict(&hist);
        let model_mse: f64 = pred
            .iter()
            .zip(&truth)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
            / 4.0;
        let zero_mse: f64 = truth.iter().map(|t| t * t).sum::<f64>() / 4.0;
        assert!(model_mse < zero_mse, "model {model_mse} vs zero {zero_mse}");
    }
}
