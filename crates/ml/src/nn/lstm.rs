//! A single LSTM layer with hand-derived backpropagation-through-time.
//!
//! Gate layout in the fused weight matrix (rows of `W ∈ ℝ^{4H×(I+H)}`):
//! `[input i | forget f | cell g | output o]`, each block of `H` rows. The
//! forget-gate bias is initialized to +1 (standard practice for sequence
//! stability).

use super::Param;
use rand::rngs::StdRng;

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Per-timestep forward cache needed by the backward pass.
#[derive(Debug, Clone)]
pub struct StepCache {
    /// Concatenated `[x; h_prev]`.
    pub xh: Vec<f64>,
    /// Previous cell state.
    pub c_prev: Vec<f64>,
    /// Gate activations i, f, g, o (each length H).
    pub i: Vec<f64>,
    /// Forget gate.
    pub f: Vec<f64>,
    /// Candidate cell.
    pub g: Vec<f64>,
    /// Output gate.
    pub o: Vec<f64>,
    /// New cell state.
    pub c: Vec<f64>,
    /// tanh(c).
    pub tanh_c: Vec<f64>,
}

/// One LSTM layer: fused gate weights and biases.
#[derive(Debug, Clone)]
pub struct LstmLayer {
    /// Input dimension.
    pub input_dim: usize,
    /// Hidden dimension.
    pub hidden: usize,
    /// Fused gate weights, `4H × (I+H)` row-major.
    pub w: Param,
    /// Fused gate biases, `4H`.
    pub b: Param,
}

impl LstmLayer {
    /// Initialize with Xavier weights; forget-gate bias +1.
    pub fn new(input_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let cols = input_dim + hidden;
        let w = Param::xavier(4 * hidden * cols, cols, hidden, rng);
        let mut b = Param::zeros(4 * hidden);
        for j in hidden..2 * hidden {
            b.w[j] = 1.0;
        }
        LstmLayer {
            input_dim,
            hidden,
            w,
            b,
        }
    }

    /// Forward one step. Returns `(h, c, cache)`.
    pub fn forward(
        &self,
        x: &[f64],
        h_prev: &[f64],
        c_prev: &[f64],
    ) -> (Vec<f64>, Vec<f64>, StepCache) {
        let hdim = self.hidden;
        assert_eq!(x.len(), self.input_dim, "input dim mismatch");
        assert_eq!(h_prev.len(), hdim, "hidden dim mismatch");
        let cols = self.input_dim + hdim;
        let mut xh = Vec::with_capacity(cols);
        xh.extend_from_slice(x);
        xh.extend_from_slice(h_prev);

        // z = W·xh + b
        let mut z = vec![0.0; 4 * hdim];
        for (r, zr) in z.iter_mut().enumerate() {
            let row = &self.w.w[r * cols..(r + 1) * cols];
            *zr = self.b.w[r] + row.iter().zip(&xh).map(|(a, b)| a * b).sum::<f64>();
        }

        let mut i = vec![0.0; hdim];
        let mut f = vec![0.0; hdim];
        let mut g = vec![0.0; hdim];
        let mut o = vec![0.0; hdim];
        let mut c = vec![0.0; hdim];
        let mut tanh_c = vec![0.0; hdim];
        let mut h = vec![0.0; hdim];
        for j in 0..hdim {
            i[j] = sigmoid(z[j]);
            f[j] = sigmoid(z[hdim + j]);
            g[j] = z[2 * hdim + j].tanh();
            o[j] = sigmoid(z[3 * hdim + j]);
            c[j] = f[j] * c_prev[j] + i[j] * g[j];
            tanh_c[j] = c[j].tanh();
            h[j] = o[j] * tanh_c[j];
        }
        let cache = StepCache {
            xh,
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c: c.clone(),
            tanh_c,
        };
        (h, c, cache)
    }

    /// Forward one step for a block of independent lanes sharing this
    /// layer's weights: `xs[b]` / `h_prev[b]` / `c_prev[b]` are lane `b`'s
    /// input, hidden and cell state. Returns `(h, c)` per lane; no backward
    /// caches are produced (inference only).
    ///
    /// Every lane's result is bit-identical to calling [`Self::forward`] on
    /// it alone: the fused-gate matmul is blocked over weight rows (see
    /// [`super::batched_matvec_bias`]) so batching changes only memory
    /// traffic, never the per-lane floating-point order.
    pub fn forward_batch(
        &self,
        xs: &[&[f64]],
        h_prev: &[&[f64]],
        c_prev: &[&[f64]],
    ) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let hdim = self.hidden;
        assert_eq!(h_prev.len(), xs.len(), "lane count mismatch");
        assert_eq!(c_prev.len(), xs.len(), "lane count mismatch");
        let cols = self.input_dim + hdim;
        let xh: Vec<Vec<f64>> = xs
            .iter()
            .zip(h_prev)
            .map(|(x, h)| {
                assert_eq!(x.len(), self.input_dim, "input dim mismatch");
                assert_eq!(h.len(), hdim, "hidden dim mismatch");
                let mut v = Vec::with_capacity(cols);
                v.extend_from_slice(x);
                v.extend_from_slice(h);
                v
            })
            .collect();
        let xh_refs: Vec<&[f64]> = xh.iter().map(|v| v.as_slice()).collect();
        let z = super::batched_matvec_bias(&self.w.w, 4 * hdim, cols, &self.b.w, &xh_refs);
        let mut hs = Vec::with_capacity(xs.len());
        let mut cs = Vec::with_capacity(xs.len());
        for (lane, z) in z.iter().enumerate() {
            let mut h = vec![0.0; hdim];
            let mut c = vec![0.0; hdim];
            for j in 0..hdim {
                let i = sigmoid(z[j]);
                let f = sigmoid(z[hdim + j]);
                let g = z[2 * hdim + j].tanh();
                let o = sigmoid(z[3 * hdim + j]);
                c[j] = f * c_prev[lane][j] + i * g;
                h[j] = o * c[j].tanh();
            }
            hs.push(h);
            cs.push(c);
        }
        (hs, cs)
    }

    /// Backward one step. `dh`/`dc` are gradients flowing into this step's
    /// outputs. Accumulates weight/bias gradients and returns
    /// `(dx, dh_prev, dc_prev)`.
    pub fn backward(
        &mut self,
        dh: &[f64],
        dc_in: &[f64],
        cache: &StepCache,
    ) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let hdim = self.hidden;
        let cols = self.input_dim + hdim;
        let mut dz = vec![0.0; 4 * hdim];
        let mut dc_prev = vec![0.0; hdim];
        for j in 0..hdim {
            let do_ = dh[j] * cache.tanh_c[j];
            let dc = dc_in[j] + dh[j] * cache.o[j] * (1.0 - cache.tanh_c[j] * cache.tanh_c[j]);
            let di = dc * cache.g[j];
            let df = dc * cache.c_prev[j];
            let dg = dc * cache.i[j];
            dc_prev[j] = dc * cache.f[j];
            dz[j] = di * cache.i[j] * (1.0 - cache.i[j]);
            dz[hdim + j] = df * cache.f[j] * (1.0 - cache.f[j]);
            dz[2 * hdim + j] = dg * (1.0 - cache.g[j] * cache.g[j]);
            dz[3 * hdim + j] = do_ * cache.o[j] * (1.0 - cache.o[j]);
        }
        // dW += dz ⊗ xh ; db += dz ; dxh = Wᵀ dz
        let mut dxh = vec![0.0; cols];
        for (r, &dzr) in dz.iter().enumerate() {
            self.b.g[r] += dzr;
            let row_w = &self.w.w[r * cols..(r + 1) * cols];
            let row_g = &mut self.w.g[r * cols..(r + 1) * cols];
            for cidx in 0..cols {
                row_g[cidx] += dzr * cache.xh[cidx];
                dxh[cidx] += dzr * row_w[cidx];
            }
        }
        let dx = dxh[..self.input_dim].to_vec();
        let dh_prev = dxh[self.input_dim..].to_vec();
        (dx, dh_prev, dc_prev)
    }

    /// All parameters, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn layer(i: usize, h: usize, seed: u64) -> LstmLayer {
        let mut rng = StdRng::seed_from_u64(seed);
        LstmLayer::new(i, h, &mut rng)
    }

    #[test]
    fn forward_shapes_and_bounds() {
        let l = layer(3, 4, 1);
        let (h, c, _) = l.forward(&[0.5, -0.2, 1.0], &[0.0; 4], &[0.0; 4]);
        assert_eq!(h.len(), 4);
        assert_eq!(c.len(), 4);
        // |h| < 1 always (o·tanh(c)).
        assert!(h.iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn zero_input_zero_state_gives_small_output() {
        let l = layer(2, 3, 2);
        let (h, _, _) = l.forward(&[0.0, 0.0], &[0.0; 3], &[0.0; 3]);
        // With zero inputs, z = b; h is bounded by tanh of small cell values.
        assert!(h.iter().all(|v| v.abs() < 0.8));
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let l = layer(2, 3, 3);
        for j in 3..6 {
            assert_eq!(l.b.w[j], 1.0);
        }
        assert_eq!(l.b.w[0], 0.0);
    }

    #[test]
    fn forward_batch_bit_matches_forward_per_lane() {
        let l = layer(3, 5, 11);
        let lanes: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = (0..4)
            .map(|b| {
                let s = b as f64;
                (
                    vec![0.1 * s, -0.3, 0.7 - s],
                    vec![0.05 * s, -0.1, 0.2, 0.0, 0.4],
                    vec![0.3, -0.2 * s, 0.1, 0.6, -0.5],
                )
            })
            .collect();
        let xs: Vec<&[f64]> = lanes.iter().map(|(x, _, _)| x.as_slice()).collect();
        let hp: Vec<&[f64]> = lanes.iter().map(|(_, h, _)| h.as_slice()).collect();
        let cp: Vec<&[f64]> = lanes.iter().map(|(_, _, c)| c.as_slice()).collect();
        let (hb, cb) = l.forward_batch(&xs, &hp, &cp);
        for (b, (x, h0, c0)) in lanes.iter().enumerate() {
            let (h1, c1, _) = l.forward(x, h0, c0);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&hb[b]), bits(&h1), "lane {b} hidden state diverged");
            assert_eq!(bits(&cb[b]), bits(&c1), "lane {b} cell state diverged");
        }
    }

    /// Finite-difference gradient check for a single step: loss = Σh².
    #[test]
    fn gradient_check_single_step() {
        let mut l = layer(2, 3, 4);
        let x = [0.3, -0.7];
        let h0 = [0.1, -0.2, 0.05];
        let c0 = [0.2, 0.0, -0.1];

        let loss = |l: &LstmLayer| -> f64 {
            let (h, _, _) = l.forward(&x, &h0, &c0);
            h.iter().map(|v| v * v).sum()
        };

        // Analytic gradients.
        let (h, _, cache) = l.forward(&x, &h0, &c0);
        let dh: Vec<f64> = h.iter().map(|v| 2.0 * v).collect();
        let dc = vec![0.0; 3];
        l.w.zero_grad();
        l.b.zero_grad();
        let (_dx, _dh0, _dc0) = l.backward(&dh, &dc, &cache);

        // Compare a scattering of weight entries.
        let eps = 1e-6;
        for &idx in &[0usize, 7, 13, 29, 41, 59] {
            let orig = l.w.w[idx];
            l.w.w[idx] = orig + eps;
            let lp = loss(&l);
            l.w.w[idx] = orig - eps;
            let lm = loss(&l);
            l.w.w[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = l.w.g[idx];
            assert!(
                (numeric - analytic).abs() < 1e-6 * (1.0 + numeric.abs()),
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
        // And bias entries.
        for &idx in &[0usize, 4, 8, 11] {
            let orig = l.b.w[idx];
            l.b.w[idx] = orig + eps;
            let lp = loss(&l);
            l.b.w[idx] = orig - eps;
            let lm = loss(&l);
            l.b.w[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = l.b.g[idx];
            assert!(
                (numeric - analytic).abs() < 1e-6 * (1.0 + numeric.abs()),
                "bias {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    /// Check the input/state gradients too, via a two-step chain.
    #[test]
    fn gradient_check_input_gradients() {
        let mut l = layer(2, 3, 5);
        let h0 = [0.0; 3];
        let c0 = [0.0; 3];
        let x = [0.4, -0.1];

        let loss_of_x = |l: &LstmLayer, x: &[f64]| -> f64 {
            let (h, _, _) = l.forward(x, &h0, &c0);
            h.iter().map(|v| v * v).sum()
        };

        let (h, _, cache) = l.forward(&x, &h0, &c0);
        let dh: Vec<f64> = h.iter().map(|v| 2.0 * v).collect();
        let (dx, _, _) = l.backward(&dh, &[0.0; 3], &cache);

        let eps = 1e-6;
        for j in 0..2 {
            let mut xp = x;
            xp[j] += eps;
            let mut xm = x;
            xm[j] -= eps;
            let numeric = (loss_of_x(&l, &xp) - loss_of_x(&l, &xm)) / (2.0 * eps);
            assert!(
                (numeric - dx[j]).abs() < 1e-6 * (1.0 + numeric.abs()),
                "dx[{j}]: numeric {numeric} vs analytic {}",
                dx[j]
            );
        }
    }
}
