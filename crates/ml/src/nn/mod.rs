//! Neural-network substrate: parameters, Adam, LSTM cells and the Seq2Seq
//! encoder–decoder of §5.2 / Fig 15.
//!
//! Everything is implemented directly on `Vec<f64>` buffers — no BLAS, no
//! autograd. Gradients are hand-derived and validated against finite
//! differences in the test suite (`seq2seq::tests::gradient_check_*`).

pub mod lstm;
pub mod seq2seq;

use rand::rngs::StdRng;
use rand::Rng;

/// A weight tensor with its gradient accumulator and Adam moments.
#[derive(Debug, Clone)]
pub struct Param {
    /// Weights (row-major for matrices).
    pub w: Vec<f64>,
    /// Gradient accumulator.
    pub g: Vec<f64>,
    /// Adam first moment.
    m: Vec<f64>,
    /// Adam second moment.
    v: Vec<f64>,
}

impl Param {
    /// Xavier-uniform initialized tensor of `len` weights with the given
    /// fan-in/fan-out.
    pub fn xavier(len: usize, fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        Param {
            w: (0..len).map(|_| rng.gen_range(-limit..limit)).collect(),
            g: vec![0.0; len],
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// Zero-initialized tensor (biases).
    pub fn zeros(len: usize) -> Self {
        Param {
            w: vec![0.0; len],
            g: vec![0.0; len],
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// Reset the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.g.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Squared L2 norm of the gradient.
    pub fn grad_norm_sq(&self) -> f64 {
        self.g.iter().map(|g| g * g).sum()
    }

    /// Scale the gradient in place (for global-norm clipping).
    pub fn scale_grad(&mut self, s: f64) {
        self.g.iter_mut().for_each(|g| *g *= s);
    }
}

/// Lane-interleaved batched bias + matrix–vector product:
/// `out[b] = bias + W · xs[b]` for a block of input vectors sharing one
/// row-major `rows × cols` weight matrix.
///
/// This is the serving-side building block for batched Seq2Seq decoding,
/// and it attacks the scalar path's actual bottleneck: one dot product is
/// a single serial `fadd` dependency chain, so an unbatched matvec runs at
/// FP-add *latency*, not throughput. Here up to [`LANE_TILE`] lanes advance
/// through each weight row in lockstep — independent accumulator chains
/// the CPU overlaps — and each weight element is loaded once per lane tile
/// instead of once per lane. Every lane still accumulates its dot product
/// from zero, left-to-right, with the bias added last, exactly like the
/// scalar `b + row.zip(x).map(*).sum()` — so every result is bit-identical
/// to the unbatched computation, for any batch size.
pub fn batched_matvec_bias(
    w: &[f64],
    rows: usize,
    cols: usize,
    bias: &[f64],
    xs: &[&[f64]],
) -> Vec<Vec<f64>> {
    assert_eq!(w.len(), rows * cols, "weight shape mismatch");
    assert_eq!(bias.len(), rows, "bias shape mismatch");
    // 8 independent f64 chains cover fadd latency×throughput on current
    // cores; more just spills accumulators.
    const LANE_TILE: usize = 8;
    let mut out: Vec<Vec<f64>> = xs
        .iter()
        .map(|x| {
            assert_eq!(x.len(), cols, "input dim mismatch");
            vec![0.0; rows]
        })
        .collect();
    // Column-major staging buffer for one lane tile: `xt[j*LANE_TILE + l]`
    // holds lane `l`'s element `j`, so the lockstep loop below reads one
    // contiguous 8-wide chunk per weight element (vectorizable broadcast-FMA)
    // instead of gathering from 8 separate slices.
    let mut xt = vec![0.0; cols * LANE_TILE];
    let mut l0 = 0;
    while l0 + LANE_TILE <= xs.len() {
        for (l, x) in xs[l0..l0 + LANE_TILE].iter().enumerate() {
            for (j, &v) in x.iter().enumerate() {
                xt[j * LANE_TILE + l] = v;
            }
        }
        for r in 0..rows {
            let row = &w[r * cols..(r + 1) * cols];
            let mut acc = [0.0f64; LANE_TILE];
            for (&wj, col) in row.iter().zip(xt.chunks_exact(LANE_TILE)) {
                for (a, &v) in acc.iter_mut().zip(col) {
                    *a += wj * v;
                }
            }
            for (lane, a) in acc.into_iter().enumerate() {
                out[l0 + lane][r] = bias[r] + a;
            }
        }
        l0 += LANE_TILE;
    }
    // Remainder lanes (< LANE_TILE): the plain scalar matvec — the very
    // accumulation the lockstep path reproduces.
    for (lane, x) in xs.iter().enumerate().skip(l0) {
        for r in 0..rows {
            let row = &w[r * cols..(r + 1) * cols];
            out[lane][r] = bias[r] + row.iter().zip(x.iter()).map(|(a, b)| a * b).sum::<f64>();
        }
    }
    out
}

/// Adam optimizer state shared across a parameter set.
#[derive(Debug, Clone, Copy)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
    /// Step counter (for bias correction).
    pub t: u64,
}

impl Adam {
    /// Standard Adam with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Advance the shared step counter; call once per optimizer step before
    /// updating the individual parameters.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Apply one Adam update to `p` using its accumulated gradient.
    pub fn update(&self, p: &mut Param) {
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..p.w.len() {
            p.m[i] = self.beta1 * p.m[i] + (1.0 - self.beta1) * p.g[i];
            p.v[i] = self.beta2 * p.v[i] + (1.0 - self.beta2) * p.g[i] * p.g[i];
            let mhat = p.m[i] / bc1;
            let vhat = p.v[i] / bc2;
            p.w[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_init_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Param::xavier(100, 10, 10, &mut rng);
        let limit = (6.0 / 20.0f64).sqrt();
        assert!(p.w.iter().all(|&w| w.abs() <= limit));
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize (w − 3)² with Adam.
        let mut p = Param::zeros(1);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            p.zero_grad();
            p.g[0] = 2.0 * (p.w[0] - 3.0);
            opt.begin_step();
            opt.update(&mut p);
        }
        assert!((p.w[0] - 3.0).abs() < 1e-3, "w = {}", p.w[0]);
    }

    #[test]
    fn batched_matvec_bit_matches_scalar_matvec() {
        let mut rng = StdRng::seed_from_u64(9);
        let (rows, cols) = (37, 11); // not multiples of the row tile
        let w = Param::xavier(rows * cols, cols, rows, &mut rng);
        let bias = Param::xavier(rows, rows, 1, &mut rng);
        let lanes: Vec<Vec<f64>> = (0..5)
            .map(|_| (0..cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let refs: Vec<&[f64]> = lanes.iter().map(|v| v.as_slice()).collect();
        let batched = batched_matvec_bias(&w.w, rows, cols, &bias.w, &refs);
        for (lane, x) in lanes.iter().enumerate() {
            for (r, got) in batched[lane].iter().enumerate() {
                let row = &w.w[r * cols..(r + 1) * cols];
                let scalar = bias.w[r] + row.iter().zip(x.iter()).map(|(a, b)| a * b).sum::<f64>();
                assert_eq!(got.to_bits(), scalar.to_bits());
            }
        }
    }

    #[test]
    fn grad_clipping_scales() {
        let mut p = Param::zeros(2);
        p.g = vec![3.0, 4.0];
        assert!((p.grad_norm_sq() - 25.0).abs() < 1e-12);
        p.scale_grad(0.5);
        assert_eq!(p.g, vec![1.5, 2.0]);
    }
}
