//! Neural-network substrate: parameters, Adam, LSTM cells and the Seq2Seq
//! encoder–decoder of §5.2 / Fig 15.
//!
//! Everything is implemented directly on `Vec<f64>` buffers — no BLAS, no
//! autograd. Gradients are hand-derived and validated against finite
//! differences in the test suite (`seq2seq::tests::gradient_check_*`).

pub mod lstm;
pub mod seq2seq;

use rand::rngs::StdRng;
use rand::Rng;

/// A weight tensor with its gradient accumulator and Adam moments.
#[derive(Debug, Clone)]
pub struct Param {
    /// Weights (row-major for matrices).
    pub w: Vec<f64>,
    /// Gradient accumulator.
    pub g: Vec<f64>,
    /// Adam first moment.
    m: Vec<f64>,
    /// Adam second moment.
    v: Vec<f64>,
}

impl Param {
    /// Xavier-uniform initialized tensor of `len` weights with the given
    /// fan-in/fan-out.
    pub fn xavier(len: usize, fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        Param {
            w: (0..len).map(|_| rng.gen_range(-limit..limit)).collect(),
            g: vec![0.0; len],
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// Zero-initialized tensor (biases).
    pub fn zeros(len: usize) -> Self {
        Param {
            w: vec![0.0; len],
            g: vec![0.0; len],
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }

    /// Reset the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.g.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Squared L2 norm of the gradient.
    pub fn grad_norm_sq(&self) -> f64 {
        self.g.iter().map(|g| g * g).sum()
    }

    /// Scale the gradient in place (for global-norm clipping).
    pub fn scale_grad(&mut self, s: f64) {
        self.g.iter_mut().for_each(|g| *g *= s);
    }
}

/// Adam optimizer state shared across a parameter set.
#[derive(Debug, Clone, Copy)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
    /// Step counter (for bias correction).
    pub t: u64,
}

impl Adam {
    /// Standard Adam with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Advance the shared step counter; call once per optimizer step before
    /// updating the individual parameters.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Apply one Adam update to `p` using its accumulated gradient.
    pub fn update(&self, p: &mut Param) {
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..p.w.len() {
            p.m[i] = self.beta1 * p.m[i] + (1.0 - self.beta1) * p.g[i];
            p.v[i] = self.beta2 * p.v[i] + (1.0 - self.beta2) * p.g[i] * p.g[i];
            let mhat = p.m[i] / bc1;
            let vhat = p.v[i] / bc2;
            p.w[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_init_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Param::xavier(100, 10, 10, &mut rng);
        let limit = (6.0 / 20.0f64).sqrt();
        assert!(p.w.iter().all(|&w| w.abs() <= limit));
    }

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize (w − 3)² with Adam.
        let mut p = Param::zeros(1);
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            p.zero_grad();
            p.g[0] = 2.0 * (p.w[0] - 3.0);
            opt.begin_step();
            opt.update(&mut p);
        }
        assert!((p.w[0] - 3.0).abs() < 1e-3, "w = {}", p.w[0]);
    }

    #[test]
    fn grad_clipping_scales() {
        let mut p = Param::zeros(2);
        p.g = vec![3.0, 4.0];
        assert!((p.grad_norm_sq() - 25.0).abs() < 1e-12);
        p.scale_grad(0.5);
        assert_eq!(p.g, vec![1.5, 2.0]);
    }
}
