//! Static k-d tree for nearest-neighbour queries.
//!
//! Used by the KNN baseline (low-dimensional feature sets) and by local
//! Ordinary Kriging (2-D coordinates), replacing O(n) scans with
//! O(log n)-ish searches. Built once over the training set by recursive
//! median splits on the widest dimension.
//!
//! k-d trees degrade toward linear scans as dimensionality grows; callers
//! should prefer brute force beyond ~8 dimensions (see [`KdTree::knn`]'s
//! docs) — `KnnRegressor`/`KnnClassifier` make that choice automatically.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A neighbour candidate in the query max-heap, ordered by distance.
#[derive(Debug, PartialEq)]
struct Candidate {
    dist_sq: f64,
    index: usize,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist_sq.total_cmp(&other.dist_sq)
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Indices into the point set.
        points: Vec<usize>,
    },
    Split {
        axis: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A balanced, static k-d tree over points of uniform dimension.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<Node>,
    points: Vec<Vec<f64>>,
    root: usize,
    /// Max points per leaf.
    leaf_size: usize,
}

impl KdTree {
    /// Build over `points` (all rows must share a dimension ≥ 1).
    pub fn build(points: Vec<Vec<f64>>) -> Self {
        assert!(!points.is_empty(), "cannot build a kd-tree on no points");
        let dim = points[0].len();
        assert!(dim >= 1, "points must have at least one dimension");
        assert!(points.iter().all(|p| p.len() == dim), "ragged point set");
        let mut tree = KdTree {
            nodes: Vec::new(),
            points,
            root: 0,
            leaf_size: 16,
        };
        let idx: Vec<usize> = (0..tree.points.len()).collect();
        tree.root = tree.build_node(idx);
        tree
    }

    fn build_node(&mut self, mut idx: Vec<usize>) -> usize {
        if idx.len() <= self.leaf_size {
            self.nodes.push(Node::Leaf { points: idx });
            return self.nodes.len() - 1;
        }
        // Split on the widest axis at the median.
        let dim = self.points[0].len();
        let mut best_axis = 0;
        let mut best_spread = -1.0;
        for axis in 0..dim {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &i in &idx {
                let v = self.points[i][axis];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi - lo > best_spread {
                best_spread = hi - lo;
                best_axis = axis;
            }
        }
        if best_spread <= 0.0 {
            // All points identical: keep as one leaf.
            self.nodes.push(Node::Leaf { points: idx });
            return self.nodes.len() - 1;
        }
        let mid = idx.len() / 2;
        idx.select_nth_unstable_by(mid, |&a, &b| {
            self.points[a][best_axis].total_cmp(&self.points[b][best_axis])
        });
        let threshold = self.points[idx[mid]][best_axis];
        // Guard: with many duplicates the median split can be degenerate;
        // partition strictly-less vs rest and bail to a leaf if one side
        // is empty.
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&i| self.points[i][best_axis] < threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            self.nodes.push(Node::Leaf { points: idx });
            return self.nodes.len() - 1;
        }
        let placeholder = self.nodes.len();
        self.nodes.push(Node::Leaf { points: Vec::new() });
        let left = self.build_node(left_idx);
        let right = self.build_node(right_idx);
        self.nodes[placeholder] = Node::Split {
            axis: best_axis,
            threshold,
            left,
            right,
        };
        placeholder
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// The indexed points, in insertion order (row `i` of the build input is
    /// `points()[i]`, so external parallel arrays keep lining up). Used to
    /// serialize a KNN model as points + deterministic rebuild on load.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// True when empty (construction forbids it, so always false).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of the `k` nearest points to `query` (Euclidean), closest
    /// first. `k` is clamped to the point count.
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<usize> {
        assert_eq!(
            query.len(),
            self.points[0].len(),
            "query dimension mismatch"
        );
        let k = k.max(1).min(self.points.len());
        let mut heap: BinaryHeap<Candidate> = BinaryHeap::with_capacity(k + 1);
        self.search(self.root, query, k, &mut heap);
        let mut out: Vec<Candidate> = heap.into_vec();
        out.sort_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq));
        out.into_iter().map(|c| c.index).collect()
    }

    fn search(&self, node: usize, query: &[f64], k: usize, heap: &mut BinaryHeap<Candidate>) {
        match &self.nodes[node] {
            Node::Leaf { points } => {
                for &i in points {
                    let d = sq_dist(&self.points[i], query);
                    if heap.len() < k {
                        heap.push(Candidate {
                            dist_sq: d,
                            index: i,
                        });
                    } else if d < heap.peek().expect("non-empty").dist_sq {
                        heap.pop();
                        heap.push(Candidate {
                            dist_sq: d,
                            index: i,
                        });
                    }
                }
            }
            Node::Split {
                axis,
                threshold,
                left,
                right,
            } => {
                let delta = query[*axis] - threshold;
                let (near, far) = if delta < 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.search(near, query, k, heap);
                // Prune the far side unless the splitting plane is closer
                // than the current k-th distance.
                let worst = heap.peek().map(|c| c.dist_sq).unwrap_or(f64::INFINITY);
                if heap.len() < k || delta * delta < worst {
                    self.search(far, query, k, heap);
                }
            }
        }
    }
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_knn(points: &[Vec<f64>], q: &[f64], k: usize) -> Vec<usize> {
        let mut d: Vec<(f64, usize)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (sq_dist(p, q), i))
            .collect();
        d.sort_by(|a, b| a.0.total_cmp(&b.0));
        d.into_iter().take(k).map(|(_, i)| i).collect()
    }

    fn grid_points() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..30 {
            for j in 0..30 {
                pts.push(vec![i as f64, j as f64 * 1.7]);
            }
        }
        pts
    }

    #[test]
    fn knn_matches_brute_force_on_grid() {
        let pts = grid_points();
        let tree = KdTree::build(pts.clone());
        for q in [[3.2, 5.1], [29.0, 0.0], [-5.0, 80.0], [15.5, 24.9]] {
            let got = tree.knn(&q, 7);
            let want = brute_knn(&pts, &q, 7);
            // Compare distances (ties may reorder indices).
            let gd: Vec<f64> = got.iter().map(|&i| sq_dist(&pts[i], &q)).collect();
            let wd: Vec<f64> = want.iter().map(|&i| sq_dist(&pts[i], &q)).collect();
            for (a, b) in gd.iter().zip(&wd) {
                assert!((a - b).abs() < 1e-12, "q={q:?}: {gd:?} vs {wd:?}");
            }
        }
    }

    #[test]
    fn knn_matches_brute_force_pseudo_random() {
        // Deterministic scattered points in 4-D.
        let pts: Vec<Vec<f64>> = (0..500)
            .map(|i| {
                (0..4)
                    .map(|j| (((i * 2654435761u64 as usize + j * 40503) % 1000) as f64) / 10.0)
                    .collect()
            })
            .collect();
        let tree = KdTree::build(pts.clone());
        for s in 0..10 {
            let q: Vec<f64> = (0..4).map(|j| ((s * 97 + j * 13) % 100) as f64).collect();
            let got = tree.knn(&q, 5);
            let want = brute_knn(&pts, &q, 5);
            let gd: Vec<f64> = got.iter().map(|&i| sq_dist(&pts[i], &q)).collect();
            let wd: Vec<f64> = want.iter().map(|&i| sq_dist(&pts[i], &q)).collect();
            for (a, b) in gd.iter().zip(&wd) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn k_clamped_to_point_count() {
        let tree = KdTree::build(vec![vec![0.0], vec![1.0], vec![2.0]]);
        assert_eq!(tree.knn(&[0.9], 10).len(), 3);
    }

    #[test]
    fn nearest_of_exact_point_is_itself() {
        let pts = grid_points();
        let tree = KdTree::build(pts.clone());
        let got = tree.knn(&pts[137], 1);
        assert_eq!(sq_dist(&pts[got[0]], &pts[137]), 0.0);
    }

    #[test]
    fn duplicate_points_do_not_break_build() {
        let pts = vec![vec![1.0, 1.0]; 100];
        let tree = KdTree::build(pts);
        assert_eq!(tree.knn(&[0.0, 0.0], 3).len(), 3);
    }

    #[test]
    fn results_sorted_by_distance() {
        let pts = grid_points();
        let tree = KdTree::build(pts.clone());
        let q = [12.3, 7.7];
        let got = tree.knn(&q, 9);
        let d: Vec<f64> = got.iter().map(|&i| sq_dist(&pts[i], &q)).collect();
        for w in d.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }
}
