//! Dependency-free binary encoding primitives for model persistence.
//!
//! Each model family serializes itself with [`ByteWriter`] / [`ByteReader`]
//! (little-endian integers; `f64` as raw IEEE-754 bits, so round-trips are
//! bit-exact). The framing — magic, format version, family tags — lives in
//! `lumos5g-core::persist`; this module only provides the primitives and the
//! per-field error type, so the codec stays usable from any crate that can
//! see the model internals.

use std::fmt;

/// A decoding failure. Decoders never panic on malformed input; every byte
/// read is checked and surfaces here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before a field could be read.
    UnexpectedEof {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes left in the buffer.
        remaining: usize,
    },
    /// A tag byte had no defined meaning in its position.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A structurally invalid value (e.g. an out-of-range index).
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} left"
                )
            }
            CodecError::BadTag { what, tag } => write!(f, "bad {what} tag byte 0x{tag:02x}"),
            CodecError::Invalid(msg) => write!(f, "invalid encoding: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Lookup table for the reflected IEEE CRC-32 polynomial (0xEDB88320),
/// the same checksum zlib and Ethernet use. Built at compile time so the
/// codec stays dependency-free.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (reflected, init/xorout `0xFFFF_FFFF` — matches
/// zlib's `crc32`). Used by the `.l5gm` v2 container to detect torn or
/// bit-flipped checkpoints before any payload decoding runs.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as `u32` (model structures never exceed 4 G items).
    pub fn put_len(&mut self, v: usize) {
        debug_assert!(v <= u32::MAX as usize, "length overflows the u32 wire size");
        self.put_u32(v as u32);
    }

    /// Append an `f64` as its raw IEEE-754 bits (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed `f64` slice.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_len(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Append a length-prefixed list of `usize` (as `u32`).
    pub fn put_lens(&mut self, vs: &[usize]) {
        self.put_len(vs.len());
        for &v in vs {
            self.put_len(v);
        }
    }
}

/// Checked cursor over an encoded byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a length written by [`ByteWriter::put_len`].
    ///
    /// This consumes 4 bytes from the stream — it is a decoder, not a
    /// container-size accessor, so the usual `is_empty` pairing does not
    /// apply.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize, CodecError> {
        Ok(self.u32()? as usize)
    }

    /// Read an `f64` from its raw bits.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed `f64` slice.
    pub fn f64s(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.len()?;
        // Each element needs 8 bytes; checking up front rejects absurd
        // lengths from corrupt input before any allocation.
        if self.remaining() < n * 8 {
            return Err(CodecError::UnexpectedEof {
                needed: n * 8,
                remaining: self.remaining(),
            });
        }
        (0..n).map(|_| self.f64()).collect()
    }

    /// Read a length-prefixed list written by [`ByteWriter::put_lens`].
    pub fn lens(&mut self) -> Result<Vec<usize>, CodecError> {
        let n = self.len()?;
        if self.remaining() < n * 4 {
            return Err(CodecError::UnexpectedEof {
                needed: n * 4,
                remaining: self.remaining(),
            });
        }
        (0..n).map(|_| self.len()).collect()
    }

    /// Error unless the buffer was fully consumed (trailing garbage is
    /// treated as corruption, not ignored).
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes after the encoded payload",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(65_000);
        w.put_u32(4_000_000_000);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65_000);
        assert_eq!(r.u32().unwrap(), 4_000_000_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap(), f64::MAX);
        r.finish().unwrap();
    }

    #[test]
    fn f64_slices_are_bit_exact() {
        let vs = [
            1.0,
            -1.5e300,
            f64::NAN,
            f64::NEG_INFINITY,
            std::f64::consts::PI,
        ];
        let mut w = ByteWriter::new();
        w.put_f64s(&vs);
        let bytes = w.into_bytes();
        let got = ByteReader::new(&bytes).f64s().unwrap();
        assert_eq!(got.len(), vs.len());
        for (a, b) in got.iter().zip(&vs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut w = ByteWriter::new();
        w.put_f64s(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(r.f64s().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn huge_claimed_length_is_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u32(u32::MAX); // claims ~4G elements, no payload
        let bytes = w.into_bytes();
        assert!(ByteReader::new(&bytes).f64s().is_err());
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // Canonical check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let want = crc32(&payload);
        for byte in 0..payload.len() {
            for bit in 0..8 {
                let mut flipped = payload.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip at byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let bytes = [1u8, 2, 3];
        let mut r = ByteReader::new(&bytes);
        r.u8().unwrap();
        assert!(r.finish().is_err());
        r.take(2).unwrap();
        r.finish().unwrap();
    }
}
