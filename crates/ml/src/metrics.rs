//! Evaluation metrics matching §6.1 of the paper: MAE and RMSE for
//! regression; weighted-average F1 and per-class recall (the recall of the
//! low-throughput class is a first-class metric because misclassifying low
//! as high stalls video) for classification.

/// Mean absolute error.
///
/// Panics on mismatched or empty inputs (a harness programming error).
pub fn mae(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "mae: length mismatch");
    assert!(!truth.is_empty(), "mae: empty input");
    truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Root mean squared error.
pub fn rmse(truth: &[f64], pred: &[f64]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "rmse: length mismatch");
    assert!(!truth.is_empty(), "rmse: empty input");
    (truth
        .iter()
        .zip(pred)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / truth.len() as f64)
        .sqrt()
}

/// Confusion matrix `m[truth][pred]` over `n_classes` labels.
pub fn confusion_matrix(truth: &[usize], pred: &[usize], n_classes: usize) -> Vec<Vec<u64>> {
    assert_eq!(truth.len(), pred.len(), "confusion: length mismatch");
    let mut m = vec![vec![0u64; n_classes]; n_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        assert!(t < n_classes && p < n_classes, "label out of range");
        m[t][p] += 1;
    }
    m
}

/// Per-class and aggregate classification metrics.
#[derive(Debug, Clone)]
pub struct ClassificationReport {
    /// Per-class precision.
    pub precision: Vec<f64>,
    /// Per-class recall.
    pub recall: Vec<f64>,
    /// Per-class F1.
    pub f1: Vec<f64>,
    /// Per-class support (number of true instances).
    pub support: Vec<u64>,
    /// Support-weighted average F1 — the paper's headline metric.
    pub weighted_f1: f64,
    /// Overall accuracy.
    pub accuracy: f64,
}

impl ClassificationReport {
    /// Compute from labels.
    pub fn from_labels(truth: &[usize], pred: &[usize], n_classes: usize) -> Self {
        let m = confusion_matrix(truth, pred, n_classes);
        let mut precision = vec![0.0; n_classes];
        let mut recall = vec![0.0; n_classes];
        let mut f1 = vec![0.0; n_classes];
        let mut support = vec![0u64; n_classes];
        let mut correct = 0u64;
        for c in 0..n_classes {
            let tp = m[c][c];
            let fn_: u64 = (0..n_classes).filter(|&j| j != c).map(|j| m[c][j]).sum();
            let fp: u64 = (0..n_classes).filter(|&i| i != c).map(|i| m[i][c]).sum();
            support[c] = tp + fn_;
            correct += tp;
            precision[c] = if tp + fp > 0 {
                tp as f64 / (tp + fp) as f64
            } else {
                0.0
            };
            recall[c] = if tp + fn_ > 0 {
                tp as f64 / (tp + fn_) as f64
            } else {
                0.0
            };
            f1[c] = if precision[c] + recall[c] > 0.0 {
                2.0 * precision[c] * recall[c] / (precision[c] + recall[c])
            } else {
                0.0
            };
        }
        let total: u64 = support.iter().sum();
        let weighted_f1 = if total > 0 {
            (0..n_classes)
                .map(|c| f1[c] * support[c] as f64)
                .sum::<f64>()
                / total as f64
        } else {
            0.0
        };
        let accuracy = if total > 0 {
            correct as f64 / total as f64
        } else {
            0.0
        };
        ClassificationReport {
            precision,
            recall,
            f1,
            support,
            weighted_f1,
            accuracy,
        }
    }
}

/// Support-weighted average F1 over labels.
pub fn weighted_f1(truth: &[usize], pred: &[usize], n_classes: usize) -> f64 {
    ClassificationReport::from_labels(truth, pred, n_classes).weighted_f1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_and_rmse_of_perfect_prediction_are_zero() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(rmse(&y, &y), 0.0);
    }

    #[test]
    fn mae_hand_computed() {
        assert!((mae(&[0.0, 0.0], &[1.0, -3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rmse_upper_bounds_mae() {
        let t = [0.0, 0.0, 0.0, 0.0];
        let p = [1.0, 2.0, 3.0, 4.0];
        assert!(rmse(&t, &p) >= mae(&t, &p));
    }

    #[test]
    fn rmse_hand_computed() {
        // errors 1 and 3 → rmse = sqrt(5)
        assert!((rmse(&[0.0, 0.0], &[1.0, 3.0]) - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn confusion_matrix_counts() {
        let m = confusion_matrix(&[0, 0, 1, 2], &[0, 1, 1, 2], 3);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[2][2], 1);
    }

    #[test]
    fn perfect_classifier_scores_one() {
        let y = [0, 1, 2, 1, 0];
        let r = ClassificationReport::from_labels(&y, &y, 3);
        assert!((r.weighted_f1 - 1.0).abs() < 1e-12);
        assert!((r.accuracy - 1.0).abs() < 1e-12);
        assert!(r.recall.iter().all(|&x| (x - 1.0).abs() < 1e-12));
    }

    #[test]
    fn degenerate_class_gets_zero_f1() {
        // Class 2 never predicted nor true.
        let t = [0, 0, 1, 1];
        let p = [0, 1, 1, 0];
        let r = ClassificationReport::from_labels(&t, &p, 3);
        assert_eq!(r.f1[2], 0.0);
        assert_eq!(r.support[2], 0);
        // Weighted F1 ignores the empty class.
        assert!((r.weighted_f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reference_scores_binary() {
        // truth: [1,1,1,0,0], pred: [1,1,0,0,1]
        // class 1: tp=2 fp=1 fn=1 → P=2/3 R=2/3 F1=2/3
        // class 0: tp=1 fp=1 fn=1 → P=1/2 R=1/2 F1=1/2
        // weighted: (3·2/3 + 2·1/2)/5 = 0.6
        let r = ClassificationReport::from_labels(&[1, 1, 1, 0, 0], &[1, 1, 0, 0, 1], 2);
        assert!((r.weighted_f1 - 0.6).abs() < 1e-12);
        assert!((r.recall[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mae_panics_on_mismatch() {
        mae(&[1.0], &[1.0, 2.0]);
    }
}
