//! Harmonic-mean history predictor (FESTIVE \[38\], MPC \[64\]).
//!
//! The classic short-term ABR throughput estimator: the prediction for the
//! next slot is the harmonic mean of the last `w` observed throughputs. The
//! harmonic mean damps the effect of transient spikes, which works on 4G but
//! "suffers due to the wild and frequent fluctuations in mmWave 5G
//! throughput" (§6.3, Table 9 bottom).

/// Sliding-window harmonic-mean predictor.
#[derive(Debug, Clone)]
pub struct HarmonicMeanPredictor {
    window: usize,
    history: Vec<f64>,
}

impl HarmonicMeanPredictor {
    /// Create with window length `window` (the literature uses 5–20).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        HarmonicMeanPredictor {
            window,
            history: Vec::new(),
        }
    }

    /// Record an observed throughput sample (non-positive samples are kept
    /// as a small epsilon so the harmonic mean remains defined through
    /// outages).
    pub fn observe(&mut self, throughput: f64) {
        self.history.push(throughput.max(1e-6));
        if self.history.len() > self.window {
            self.history.remove(0);
        }
    }

    /// Predict the next-slot throughput; `None` until at least one sample
    /// has been observed.
    pub fn predict(&self) -> Option<f64> {
        if self.history.is_empty() {
            return None;
        }
        let inv_sum: f64 = self.history.iter().map(|t| 1.0 / t).sum();
        Some(self.history.len() as f64 / inv_sum)
    }

    /// One-shot evaluation over a trace: returns `(truth, prediction)` pairs
    /// for every step where a prediction was available.
    pub fn eval_trace(trace: &[f64], window: usize) -> Vec<(f64, f64)> {
        let mut p = HarmonicMeanPredictor::new(window);
        let mut out = Vec::new();
        for &t in trace {
            if let Some(pred) = p.predict() {
                out.push((t, pred));
            }
            p.observe(t);
        }
        out
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True when no samples have been observed.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prediction_before_first_sample() {
        let p = HarmonicMeanPredictor::new(5);
        assert!(p.predict().is_none());
    }

    #[test]
    fn constant_trace_predicts_the_constant() {
        let mut p = HarmonicMeanPredictor::new(5);
        for _ in 0..10 {
            p.observe(100.0);
        }
        assert!((p.predict().unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn harmonic_mean_of_two_values() {
        let mut p = HarmonicMeanPredictor::new(5);
        p.observe(100.0);
        p.observe(300.0);
        // HM(100, 300) = 2 / (1/100 + 1/300) = 150.
        assert!((p.predict().unwrap() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn window_slides() {
        let mut p = HarmonicMeanPredictor::new(2);
        p.observe(1.0);
        p.observe(100.0);
        p.observe(100.0);
        // First sample fell out of the window.
        assert!((p.predict().unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn hm_is_dominated_by_small_values() {
        let mut p = HarmonicMeanPredictor::new(5);
        for &v in &[1000.0, 1000.0, 1000.0, 1000.0, 10.0] {
            p.observe(v);
        }
        // One near-outage drags the harmonic mean far below the mean.
        assert!(p.predict().unwrap() < 100.0);
    }

    #[test]
    fn zero_samples_do_not_poison_the_window() {
        let mut p = HarmonicMeanPredictor::new(3);
        p.observe(0.0);
        p.observe(500.0);
        let pred = p.predict().unwrap();
        assert!(pred.is_finite() && pred >= 0.0);
    }

    #[test]
    fn eval_trace_aligns_truth_and_prediction() {
        let pairs = HarmonicMeanPredictor::eval_trace(&[10.0, 20.0, 30.0], 2);
        assert_eq!(pairs.len(), 2);
        assert!((pairs[0].0 - 20.0).abs() < 1e-12); // truth at t=1
        assert!((pairs[0].1 - 10.0).abs() < 1e-12); // HM of [10]
    }
}
