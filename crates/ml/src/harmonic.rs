//! Harmonic-mean history predictor (FESTIVE \[38\], MPC \[64\]).
//!
//! The classic short-term ABR throughput estimator: the prediction for the
//! next slot is the harmonic mean of the last `w` observed throughputs. The
//! harmonic mean damps the effect of transient spikes, which works on 4G but
//! "suffers due to the wild and frequent fluctuations in mmWave 5G
//! throughput" (§6.3, Table 9 bottom).

use std::collections::VecDeque;

/// Sliding-window harmonic-mean predictor.
///
/// `observe` is O(1): the window is a ring buffer (`VecDeque`), so evicting
/// the oldest sample is a pointer bump instead of the O(w) memmove a
/// `Vec::remove(0)` would pay per sample. `predict` folds the ≤ `window`
/// retained samples afresh rather than maintaining a running inverse-sum:
/// float addition is not associative, so an incrementally updated sum
/// (`+1/new − 1/evicted`) drifts from the windowed fold by ~1e-6 relative
/// error within a handful of evictions, which would break the repo-wide
/// bit-exactness of evaluation outputs. Since `window` is a small fixed
/// hyperparameter (5–20 in the literature), the fold is O(1) in the stream
/// length too.
#[derive(Debug, Clone)]
pub struct HarmonicMeanPredictor {
    window: usize,
    history: VecDeque<f64>,
}

impl HarmonicMeanPredictor {
    /// Create with window length `window` (the literature uses 5–20).
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        HarmonicMeanPredictor {
            window,
            history: VecDeque::with_capacity(window + 1),
        }
    }

    /// Record an observed throughput sample (non-positive samples are kept
    /// as a small epsilon so the harmonic mean remains defined through
    /// outages).
    pub fn observe(&mut self, throughput: f64) {
        self.history.push_back(throughput.max(1e-6));
        if self.history.len() > self.window {
            self.history.pop_front();
        }
    }

    /// Predict the next-slot throughput; `None` until at least one sample
    /// has been observed.
    pub fn predict(&self) -> Option<f64> {
        if self.history.is_empty() {
            return None;
        }
        // Sequential oldest-to-newest fold — the same summation order as the
        // original Vec-backed implementation, so results are bit-identical.
        let inv_sum: f64 = self.history.iter().map(|t| 1.0 / t).sum();
        Some(self.history.len() as f64 / inv_sum)
    }

    /// One-shot evaluation over a trace: returns `(truth, prediction)` pairs
    /// for every step where a prediction was available.
    pub fn eval_trace(trace: &[f64], window: usize) -> Vec<(f64, f64)> {
        let mut p = HarmonicMeanPredictor::new(window);
        let mut out = Vec::new();
        for &t in trace {
            if let Some(pred) = p.predict() {
                out.push((t, pred));
            }
            p.observe(t);
        }
        out
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True when no samples have been observed.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prediction_before_first_sample() {
        let p = HarmonicMeanPredictor::new(5);
        assert!(p.predict().is_none());
    }

    #[test]
    fn constant_trace_predicts_the_constant() {
        let mut p = HarmonicMeanPredictor::new(5);
        for _ in 0..10 {
            p.observe(100.0);
        }
        assert!((p.predict().unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn harmonic_mean_of_two_values() {
        let mut p = HarmonicMeanPredictor::new(5);
        p.observe(100.0);
        p.observe(300.0);
        // HM(100, 300) = 2 / (1/100 + 1/300) = 150.
        assert!((p.predict().unwrap() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn window_slides() {
        let mut p = HarmonicMeanPredictor::new(2);
        p.observe(1.0);
        p.observe(100.0);
        p.observe(100.0);
        // First sample fell out of the window.
        assert!((p.predict().unwrap() - 100.0).abs() < 1e-9);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn hm_is_dominated_by_small_values() {
        let mut p = HarmonicMeanPredictor::new(5);
        for &v in &[1000.0, 1000.0, 1000.0, 1000.0, 10.0] {
            p.observe(v);
        }
        // One near-outage drags the harmonic mean far below the mean.
        assert!(p.predict().unwrap() < 100.0);
    }

    #[test]
    fn zero_samples_do_not_poison_the_window() {
        let mut p = HarmonicMeanPredictor::new(3);
        p.observe(0.0);
        p.observe(500.0);
        let pred = p.predict().unwrap();
        assert!(pred.is_finite() && pred >= 0.0);
    }

    #[test]
    fn eval_trace_aligns_truth_and_prediction() {
        let pairs = HarmonicMeanPredictor::eval_trace(&[10.0, 20.0, 30.0], 2);
        assert_eq!(pairs.len(), 2);
        assert!((pairs[0].0 - 20.0).abs() < 1e-12); // truth at t=1
        assert!((pairs[0].1 - 10.0).abs() < 1e-12); // HM of [10]
    }

    /// The pre-ring-buffer implementation, kept verbatim as the bit-exact
    /// reference the VecDeque version must reproduce.
    fn eval_trace_vec_reference(trace: &[f64], window: usize) -> Vec<(f64, f64)> {
        let mut history: Vec<f64> = Vec::new();
        let mut out = Vec::new();
        for &t in trace {
            if !history.is_empty() {
                let inv_sum: f64 = history.iter().map(|v| 1.0 / v).sum();
                out.push((t, history.len() as f64 / inv_sum));
            }
            history.push(t.max(1e-6));
            if history.len() > window {
                history.remove(0);
            }
        }
        out
    }

    #[test]
    fn eval_trace_is_bit_identical_to_vec_reference() {
        // Throughput-like pseudo-random trace with ~2 % hard outages.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rand = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let trace: Vec<f64> = (0..5000)
            .map(|_| {
                let u = rand();
                if u < 0.02 {
                    0.0
                } else {
                    100.0 + 1900.0 * rand()
                }
            })
            .collect();
        for window in [1, 2, 5, 20] {
            let got = HarmonicMeanPredictor::eval_trace(&trace, window);
            let want = eval_trace_vec_reference(&trace, window);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.0.to_bits(), w.0.to_bits());
                assert_eq!(g.1.to_bits(), w.1.to_bits(), "window {window}");
            }
        }
    }

    #[test]
    fn window_never_grows_beyond_capacity() {
        let mut p = HarmonicMeanPredictor::new(4);
        for i in 0..100 {
            p.observe(i as f64 + 1.0);
            assert!(p.len() <= 4);
        }
        assert_eq!(p.len(), 4);
    }
}
