//! k-nearest-neighbours — the simplest location-based baseline the paper
//! evaluates (Tables 4, 9, 10; Fig 23). Features are standardized internally
//! so Euclidean distance is meaningful across mixed units (meters, degrees,
//! Mbps).
//!
//! Neighbour search uses a k-d tree for low-dimensional feature sets (≤ 8
//! dims, e.g. the pure-location `L` group) where it is asymptotically
//! faster, and falls back to a brute-force scan in higher dimensions where
//! k-d trees degenerate.

use crate::codec::{ByteReader, ByteWriter, CodecError};
use crate::dataset::StandardScaler;
use crate::kdtree::KdTree;

/// Dimension above which brute force beats the k-d tree in practice.
const KDTREE_MAX_DIM: usize = 8;

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Neighbour index: k-d tree when profitable, brute force otherwise.
#[derive(Debug, Clone)]
enum Index {
    Tree(KdTree),
    Brute(Vec<Vec<f64>>),
}

impl Index {
    fn build(xs: Vec<Vec<f64>>) -> Self {
        if xs[0].len() <= KDTREE_MAX_DIM {
            Index::Tree(KdTree::build(xs))
        } else {
            Index::Brute(xs)
        }
    }

    fn k_nearest(&self, q: &[f64], k: usize) -> Vec<usize> {
        match self {
            Index::Tree(t) => t.knn(q, k),
            Index::Brute(xs) => {
                let mut dists: Vec<(f64, usize)> = xs
                    .iter()
                    .enumerate()
                    .map(|(i, row)| (sq_dist(row, q), i))
                    .collect();
                let k = k.min(dists.len());
                dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
                dists[..k].iter().map(|&(_, i)| i).collect()
            }
        }
    }

    /// The indexed (scaled) points, row `i` matching training row `i`.
    fn points(&self) -> &[Vec<f64>] {
        match self {
            Index::Tree(t) => t.points(),
            Index::Brute(xs) => xs,
        }
    }
}

/// Serialize the scaled point matrix: dim, then row-major values.
fn encode_points(points: &[Vec<f64>], w: &mut ByteWriter) {
    w.put_len(points[0].len());
    w.put_len(points.len());
    for p in points {
        for &v in p {
            w.put_f64(v);
        }
    }
}

/// Inverse of [`encode_points`]; the index is rebuilt deterministically by
/// `Index::build` (the tree-vs-brute choice depends only on the dimension).
fn decode_points(r: &mut ByteReader<'_>) -> Result<Vec<Vec<f64>>, CodecError> {
    let dim = r.len()?;
    let n = r.len()?;
    if dim == 0 || n == 0 {
        return Err(CodecError::Invalid("empty KNN point set".into()));
    }
    let needed = n.saturating_mul(dim).saturating_mul(8);
    if r.remaining() < needed {
        return Err(CodecError::UnexpectedEof {
            needed,
            remaining: r.remaining(),
        });
    }
    (0..n)
        .map(|_| (0..dim).map(|_| r.f64()).collect())
        .collect()
}

/// KNN regressor (mean of neighbour targets).
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    k: usize,
    scaler: StandardScaler,
    index: Index,
    ys: Vec<f64>,
}

impl KnnRegressor {
    /// Memorize the training set.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], k: usize) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "cannot fit KNN on empty data");
        assert!(k >= 1, "k must be at least 1");
        let scaler = StandardScaler::fit(xs);
        KnnRegressor {
            k,
            index: Index::build(scaler.transform(xs)),
            ys: ys.to_vec(),
            scaler,
        }
    }

    /// Predict one row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let q = self.scaler.transform_row(row);
        let nn = self.index.k_nearest(&q, self.k);
        nn.iter().map(|&i| self.ys[i]).sum::<f64>() / nn.len() as f64
    }

    /// Predict many rows.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Serialize: k, scaler, targets, then the scaled training points. The
    /// spatial index is not written — it is rebuilt on decode, which is
    /// deterministic, so a loaded model predicts bit-identically.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.k);
        self.scaler.encode(w);
        w.put_f64s(&self.ys);
        encode_points(self.index.points(), w);
    }

    /// Inverse of [`Self::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let k = r.len()?;
        let scaler = StandardScaler::decode(r)?;
        let ys = r.f64s()?;
        let points = decode_points(r)?;
        if k == 0 || ys.len() != points.len() {
            return Err(CodecError::Invalid(format!(
                "k = {k}, {} targets for {} points",
                ys.len(),
                points.len()
            )));
        }
        Ok(KnnRegressor {
            k,
            index: Index::build(points),
            ys,
            scaler,
        })
    }
}

/// KNN classifier (majority of neighbour labels).
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    n_classes: usize,
    scaler: StandardScaler,
    index: Index,
    ys: Vec<usize>,
}

impl KnnClassifier {
    /// Memorize the training set (labels in `0..n_classes`).
    pub fn fit(xs: &[Vec<f64>], ys: &[usize], n_classes: usize, k: usize) -> Self {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "cannot fit KNN on empty data");
        assert!(k >= 1, "k must be at least 1");
        assert!(ys.iter().all(|&y| y < n_classes), "label out of range");
        let scaler = StandardScaler::fit(xs);
        KnnClassifier {
            k,
            n_classes,
            index: Index::build(scaler.transform(xs)),
            ys: ys.to_vec(),
            scaler,
        }
    }

    /// Predict one row.
    pub fn predict_row(&self, row: &[f64]) -> usize {
        let q = self.scaler.transform_row(row);
        let nn = self.index.k_nearest(&q, self.k);
        let mut votes = vec![0usize; self.n_classes];
        for &i in &nn {
            votes[self.ys[i]] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(c, _)| c)
            .expect("at least one class")
    }

    /// Predict many rows.
    pub fn predict(&self, xs: &[Vec<f64>]) -> Vec<usize> {
        xs.iter().map(|r| self.predict_row(r)).collect()
    }

    /// Serialize: k, class count, scaler, labels, scaled training points.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_len(self.k);
        w.put_len(self.n_classes);
        self.scaler.encode(w);
        w.put_lens(&self.ys);
        encode_points(self.index.points(), w);
    }

    /// Inverse of [`Self::encode`].
    pub fn decode(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let k = r.len()?;
        let n_classes = r.len()?;
        let scaler = StandardScaler::decode(r)?;
        let ys = r.lens()?;
        let points = decode_points(r)?;
        if k == 0 || ys.len() != points.len() || ys.iter().any(|&y| y >= n_classes) {
            return Err(CodecError::Invalid("inconsistent KNN classifier".into()));
        }
        Ok(KnnClassifier {
            k,
            n_classes,
            index: Index::build(points),
            ys,
            scaler,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regressor_k1_memorizes_training_points() {
        let xs = vec![vec![0.0], vec![10.0], vec![20.0]];
        let ys = vec![1.0, 2.0, 3.0];
        let m = KnnRegressor::fit(&xs, &ys, 1);
        assert_eq!(m.predict_row(&[10.0]), 2.0);
        assert_eq!(m.predict_row(&[9.0]), 2.0); // nearest is 10
    }

    #[test]
    fn regressor_k3_averages() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![100.0]];
        let ys = vec![10.0, 20.0, 30.0, 1000.0];
        let m = KnnRegressor::fit(&xs, &ys, 3);
        assert!((m.predict_row(&[1.0]) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_makes_features_comparable() {
        // Feature 1 has a huge scale but no signal; without standardization
        // it would dominate the distance.
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64, ((i * 7919) % 13) as f64 * 1e6])
            .collect();
        let ys: Vec<f64> = (0..40).map(|i| if i < 20 { 0.0 } else { 1.0 }).collect();
        let m = KnnRegressor::fit(&xs, &ys, 3);
        // Query close to a low-region x with arbitrary f1.
        let pred = m.predict_row(&[5.0, 6.0e6]);
        assert!(pred < 0.5, "pred = {pred}");
    }

    #[test]
    fn classifier_majority_vote() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0], vec![10.0]];
        let ys = vec![0, 0, 1, 1];
        let m = KnnClassifier::fit(&xs, &ys, 2, 3);
        assert_eq!(m.predict_row(&[0.2]), 0);
        assert_eq!(m.predict_row(&[9.0]), 1);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![2.0, 4.0];
        let m = KnnRegressor::fit(&xs, &ys, 10);
        assert!((m.predict_row(&[0.5]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tree_and_brute_paths_agree() {
        // 2-D (tree path) vs padded 12-D (brute path) of the same problem:
        // the extra constant dims change nothing.
        let xs2: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let xs12: Vec<Vec<f64>> = xs2
            .iter()
            .map(|r| {
                let mut v = r.clone();
                v.extend(std::iter::repeat_n(3.0, 10));
                v
            })
            .collect();
        let ys: Vec<f64> = (0..60).map(|i| (i * i) as f64).collect();
        let m2 = KnnRegressor::fit(&xs2, &ys, 4);
        let m12 = KnnRegressor::fit(&xs12, &ys, 4);
        for probe in 0..10 {
            let q2 = vec![probe as f64 * 5.0 + 0.1, 2.0];
            let mut q12 = q2.clone();
            q12.extend(std::iter::repeat_n(3.0, 10));
            assert!((m2.predict_row(&q2) - m12.predict_row(&q12)).abs() < 1e-9);
        }
    }
}
